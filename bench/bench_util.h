// Shared configuration glue for the figure/table benches.
//
// Every bench accepts the same core options (or OMNC_* environment
// variables):
//   --sessions N        number of unicast sessions            (default 60)
//   --nodes N           deployment size                       (default 300)
//   --sim-seconds S     virtual seconds per session           (default 150)
//   --block-bytes B     data block size                       (default 1024)
//   --gen-blocks N      blocks per generation                 (default 40)
//   --seed S            master seed                           (default 42)
//   --paper             paper-scale run (300 sessions, 800 s)
//   --json PATH         also write flat JSON result records to PATH
//   --trace PATH        record a full JSONL event trace (tools/trace_inspect
//                       replays it offline); implies --metrics
//   --metrics           enable the wall-clock metrics registry and print its
//                       summary table at exit
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coding/coded_packet.h"
#include "common/options.h"
#include "experiments/paper.h"
#include "experiments/runner.h"
#include "experiments/workload.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace omnc::bench {

/// Machine-readable companion to the human-oriented tables: when the bench
/// was given `--json <path>`, collects flat records and writes them out as a
/// JSON array of {"name", "params", "metric", "value"} objects so sweeps can
/// be diffed or plotted without scraping stdout.  With no path the writer is
/// inert and record() is a no-op.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}
  explicit JsonWriter(const Options& options)
      : JsonWriter(options.get("json", "")) {}
  ~JsonWriter() { flush(); }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool enabled() const { return !path_.empty(); }

  void record(std::string name, std::string params, std::string metric,
              double value) {
    if (!enabled()) return;
    records_.push_back(
        {std::move(name), std::move(params), std::move(metric), value});
  }

  /// Writes all records; called automatically from the destructor.
  void flush() {
    if (!enabled() || flushed_) return;
    flushed_ = true;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "warning: cannot write JSON results to %s\n",
                   path_.c_str());
      return;
    }
    std::fputs("[\n", out);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(out,
                   "  {\"name\": \"%s\", \"params\": \"%s\", "
                   "\"metric\": \"%s\", \"value\": %.17g}%s\n",
                   escape(r.name).c_str(), escape(r.params).c_str(),
                   escape(r.metric).c_str(), r.value,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", out);
    std::fclose(out);
    std::fprintf(stderr, "wrote %zu JSON records to %s\n", records_.size(),
                 path_.c_str());
  }

 private:
  struct Record {
    std::string name;
    std::string params;
    std::string metric;
    double value;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
  bool flushed_ = false;
};

struct BenchSetup {
  experiments::WorkloadConfig workload;
  experiments::RunConfig run;
};

inline BenchSetup parse_setup(const Options& options) {
  namespace paper = experiments::paper;
  BenchSetup setup;
  const bool paper_scale = options.get_bool("paper", false);

  setup.workload.deployment.nodes =
      static_cast<int>(options.get_int("nodes", paper::kNodes));
  setup.workload.deployment.density = paper::kDensity;
  setup.workload.sessions = static_cast<int>(options.get_int(
      "sessions", paper_scale ? paper::kPaperSessions : 60));
  setup.workload.min_hops = paper::kMinHops;
  setup.workload.max_hops = paper::kMaxHops;
  setup.workload.seed = options.get_seed("seed", 42);

  auto& protocol = setup.run.protocol;
  protocol.coding.generation_blocks = static_cast<std::uint16_t>(
      options.get_int("gen-blocks", paper::kGenerationBlocks));
  protocol.coding.block_bytes = static_cast<std::uint16_t>(
      options.get_int("block-bytes", paper::kBlockBytes));
  protocol.mac.capacity_bytes_per_s = options.get_double(
      "capacity", paper::kCapacityBytesPerSecond);
  protocol.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                            protocol.coding.generation_blocks +
                            protocol.coding.block_bytes;
  protocol.cbr_bytes_per_s =
      options.get_double("cbr", paper::kCbrBytesPerSecond);
  protocol.max_sim_seconds = options.get_double(
      "sim-seconds", paper_scale ? paper::kPaperSessionSeconds : 150.0);
  return setup;
}

inline void print_setup(const BenchSetup& setup) {
  std::printf(
      "# setup: %d nodes (density %.0f), %d sessions of %.0f s, "
      "generation %u x %u B, C = %.0f B/s, CBR = %.0f B/s, seed %llu\n",
      setup.workload.deployment.nodes, setup.workload.deployment.density,
      setup.workload.sessions, setup.run.protocol.max_sim_seconds,
      setup.run.protocol.coding.generation_blocks,
      setup.run.protocol.coding.block_bytes,
      setup.run.protocol.mac.capacity_bytes_per_s,
      setup.run.protocol.cbr_bytes_per_s,
      static_cast<unsigned long long>(setup.workload.seed));
}

/// Canonical "params" string for JSON records derived from a BenchSetup.
inline std::string setup_params(const BenchSetup& setup) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "nodes=%d;sessions=%d;sim_seconds=%.0f;seed=%llu",
                setup.workload.deployment.nodes, setup.workload.sessions,
                setup.run.protocol.max_sim_seconds,
                static_cast<unsigned long long>(setup.workload.seed));
  return buffer;
}

/// Observability wiring shared by the benches: `--trace PATH` opens a
/// TraceRecorder (runs wired through RunConfig::trace or explicit begin_run
/// serialize into it), and `--trace` or `--metrics` switches the wall-clock
/// registry on.  finish_obs() snapshots the registry into the trace and
/// prints the summary table when requested.
struct ObsSetup {
  std::unique_ptr<obs::TraceRecorder> recorder;
  bool metrics = false;
};

inline ObsSetup parse_obs(const Options& options, const std::string& tool,
                          const std::string& params, std::uint64_t seed) {
  ObsSetup obs;
  obs.metrics = options.get_bool("metrics", false);
  const std::string trace_path = options.get("trace", "");
  if (!trace_path.empty()) {
    obs.recorder =
        std::make_unique<obs::TraceRecorder>(trace_path, tool, params, seed);
    if (!obs.recorder->ok()) {
      std::fprintf(stderr, "warning: cannot write trace to %s\n",
                   trace_path.c_str());
      obs.recorder.reset();
    }
  }
  if (obs.metrics || obs.recorder != nullptr) {
    obs::MetricsRegistry::set_enabled(true);
  }
  return obs;
}

inline ObsSetup parse_obs(const Options& options, const std::string& tool,
                          const BenchSetup& setup) {
  return parse_obs(options, tool, setup_params(setup), setup.workload.seed);
}

inline void finish_obs(ObsSetup& obs) {
  if (obs.recorder != nullptr) {
    obs.recorder->record_registry();
    std::fprintf(stderr, "wrote trace to %s\n", obs.recorder->path().c_str());
  }
  if (obs.metrics) {
    std::printf("\n== metrics registry ==\n%s",
                obs::MetricsRegistry::global().summary().c_str());
  }
}

inline void print_progress(std::size_t done, std::size_t total) {
  if (done % 10 == 0 || done == total) {
    std::fprintf(stderr, "  ... %zu/%zu sessions\n", done, total);
  }
}

}  // namespace omnc::bench

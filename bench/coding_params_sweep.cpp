// Design-choice ablation: the paper fixes the coding geometry at 40 blocks
// of 1 KB per generation.  This bench sweeps both dimensions and shows the
// trade-off the choice sits on:
//   * small generations finish quickly (low per-generation latency, frequent
//     ACK round trips) but pay the per-packet coefficient overhead and the
//     pipeline ramp more often;
//   * large generations amortize ramps but inflate the coefficient vector
//     (n bytes of every packet) and the decode delay.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "coding/coded_packet.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup base = bench::parse_setup(options);
  if (!options.has("sessions")) base.workload.sessions = 16;
  bench::ObsSetup obs = bench::parse_obs(options, "coding_params_sweep", base);
  base.run.trace = obs.recorder.get();
  std::printf("== OMNC throughput vs coding geometry ==\n");
  bench::print_setup(base);

  const auto sessions = generate_workload(base.workload);

  struct Geometry {
    int blocks;
    int bytes;
  };
  const std::vector<Geometry> geometries = {
      {10, 1024}, {20, 1024}, {40, 1024}, {80, 1024},
      {40, 256},  {40, 512},  {40, 2048},
  };

  TextTable table({"generation", "coeff overhead", "OMNC B/s", "gain vs ETX",
                   "generations/session"});
  for (const Geometry& g : geometries) {
    RunConfig run = base.run;
    run.protocol.coding.generation_blocks = static_cast<std::uint16_t>(g.blocks);
    run.protocol.coding.block_bytes = static_cast<std::uint16_t>(g.bytes);
    run.protocol.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                                  static_cast<std::size_t>(g.blocks) +
                                  static_cast<std::size_t>(g.bytes);
    run.run_more = false;
    run.run_oldmore = false;
    const auto results = run_all(sessions, run);
    OnlineStats omnc, gain, generations;
    for (const auto& r : results) {
      if (r.etx.throughput_bytes_per_s <= 0.0) continue;
      omnc.add(r.omnc.throughput_per_generation);
      gain.add(r.gain_omnc);
      generations.add(r.omnc.generations_completed);
    }
    char name[32];
    std::snprintf(name, sizeof(name), "%d x %d B", g.blocks, g.bytes);
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.1f%%",
                  100.0 * (g.blocks + 12.0) /
                      (g.blocks + 12.0 + g.bytes));
    table.add_row({name, overhead, TextTable::fmt(omnc.mean(), 0),
                   TextTable::fmt(gain.mean(), 2),
                   TextTable::fmt(generations.mean(), 1)});
    std::fprintf(stderr, "done %s\n", name);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading guide: the paper's 40 x 1 KB sits near the knee — larger\n"
      "generations buy little once ramps are amortized, smaller ones cycle\n"
      "the ACK machinery too often; fatter blocks cut coefficient overhead\n"
      "at the cost of per-packet latency.\n");
  bench::finish_obs(obs);
  return 0;
}

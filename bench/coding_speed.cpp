// Sec. 4, "Accelerated network coding" — the paper reports that the SIMD
// loop-based coding framework is 3-5x faster than the traditional
// lookup-table implementation, depending on generation and block size.
//
// Benchmarks cover the raw region kernels (single-source axpy, the fused
// four-source fold, and the scatter form), full-generation encoding, and
// progressive decoding through recover(), each registered once per backend
// (scalar / sse2 / ssse3 / avx2 / gfni / neon / portable).  Unsupported
// backends are skipped at run time.  Run with --benchmark_filter=... to narrow, and --json <path>
// to mirror results into the shared bench JSON format.
#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codes/family_runtime.h"
#include "coding/decoder.h"
#include "coding/encoder.h"
#include "common/rng.h"
#include "galois/region.h"

using namespace omnc;

namespace {

constexpr gf::Backend kAllBackends[] = {
    gf::Backend::kScalarTable, gf::Backend::kSse2,    gf::Backend::kSsse3,
    gf::Backend::kAvx2,        gf::Backend::kGfni,    gf::Backend::kNeon,
    gf::Backend::kPortable};

void bench_axpy(benchmark::State& state, gf::Backend backend) {
  if (!gf::backend_supported(backend)) {
    state.SkipWithError("backend not supported on this CPU");
    return;
  }
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::uint8_t> src(size);
  std::vector<std::uint8_t> dst(size);
  for (auto& b : src) b = rng.next_byte();
  std::uint8_t c = 2;
  for (auto _ : state) {
    gf::region_axpy_backend(backend, dst.data(), src.data(), c, size);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<std::uint8_t>(c * 3 + 1) | 1;  // vary the constant
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}

void bench_axpy4(benchmark::State& state, gf::Backend backend) {
  if (!gf::backend_supported(backend)) {
    state.SkipWithError("backend not supported on this CPU");
    return;
  }
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<std::vector<std::uint8_t>> srcs(4,
                                              std::vector<std::uint8_t>(size));
  for (auto& s : srcs) {
    for (auto& b : s) b = rng.next_byte();
  }
  std::vector<std::uint8_t> dst(size);
  std::uint8_t c = 2;
  for (auto _ : state) {
    gf::region_axpy4_backend(backend, dst.data(), srcs[0].data(), c,
                             srcs[1].data(),
                             static_cast<std::uint8_t>(c + 1), srcs[2].data(),
                             static_cast<std::uint8_t>(c + 2), srcs[3].data(),
                             static_cast<std::uint8_t>(c + 3), size);
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<std::uint8_t>(c * 3 + 1) | 1;
  }
  // Source bytes folded per iteration — comparable to 4 single axpys.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * size));
}

void bench_axpy_scatter(benchmark::State& state, gf::Backend backend) {
  if (!gf::backend_supported(backend)) {
    state.SkipWithError("backend not supported on this CPU");
    return;
  }
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRows = 16;
  Rng rng(3);
  std::vector<std::uint8_t> src(size);
  for (auto& b : src) b = rng.next_byte();
  std::vector<std::vector<std::uint8_t>> rows(kRows,
                                              std::vector<std::uint8_t>(size));
  std::vector<std::uint8_t*> dsts;
  std::vector<std::uint8_t> coeffs;
  for (auto& r : rows) {
    dsts.push_back(r.data());
    coeffs.push_back(rng.next_byte());
  }
  for (auto _ : state) {
    gf::region_axpy_scatter_backend(backend, dsts.data(), coeffs.data(), kRows,
                                    src.data(), size);
    benchmark::DoNotOptimize(dsts.data());
  }
  // Destination bytes written per iteration — comparable to kRows axpys.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows * size));
}

void bench_encode(benchmark::State& state, gf::Backend backend) {
  if (!gf::backend_supported(backend)) {
    state.SkipWithError("backend not supported on this CPU");
    return;
  }
  const gf::Backend previous = gf::active_backend();
  gf::set_backend(backend);
  const auto blocks = static_cast<std::uint16_t>(state.range(0));
  const auto bytes = static_cast<std::uint16_t>(state.range(1));
  coding::CodingParams params{blocks, bytes};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 7);
  coding::SourceEncoder encoder(gen, 0);
  Rng rng(3);
  for (auto _ : state) {
    coding::CodedPacket pkt = encoder.next_packet(rng);
    benchmark::DoNotOptimize(pkt.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
  gf::set_backend(previous);
}

void bench_progressive_decode(benchmark::State& state, gf::Backend backend) {
  if (!gf::backend_supported(backend)) {
    state.SkipWithError("backend not supported on this CPU");
    return;
  }
  const gf::Backend previous = gf::active_backend();
  gf::set_backend(backend);
  const auto blocks = static_cast<std::uint16_t>(state.range(0));
  const auto bytes = static_cast<std::uint16_t>(state.range(1));
  coding::CodingParams params{blocks, bytes};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 7);
  coding::SourceEncoder encoder(gen, 0);
  Rng rng(5);
  // Pre-generate a full generation worth of packets outside the timing loop.
  std::vector<coding::CodedPacket> packets;
  for (int i = 0; i < blocks + 4; ++i) packets.push_back(encoder.next_packet(rng));
  std::vector<std::uint8_t> out(params.generation_bytes());
  for (auto _ : state) {
    coding::ProgressiveDecoder decoder(params, 0);
    for (const auto& pkt : packets) {
      if (decoder.complete()) break;
      decoder.offer(pkt.as_view());
    }
    // Decode all the way through: recover_into() runs the deferred payload
    // elimination straight into the caller buffer, so the timing covers
    // offers plus materialization with no output allocation or concat copy.
    decoder.recover_into(std::span<std::uint8_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks) * bytes);
  gf::set_backend(previous);
}

// Family decoders (DESIGN.md §15): the structured CBD-style decoder fed by
// the family encoder's own emission order.  Systematic runs the lossless
// fast path (n uncoded originals, zero GF region multiplies); banded decode
// cost scales with the band width instead of the generation size, which is
// the BENCH_9 decode-cost win against BM_Decode's dense Gauss-Jordan.
void bench_family_decode(benchmark::State& state, gf::Backend backend,
                         codes::CodeSpec spec) {
  if (!gf::backend_supported(backend)) {
    state.SkipWithError("backend not supported on this CPU");
    return;
  }
  const gf::Backend previous = gf::active_backend();
  gf::set_backend(backend);
  const auto blocks = static_cast<std::uint16_t>(state.range(0));
  const auto bytes = static_cast<std::uint16_t>(state.range(1));
  if (spec.family == codes::CodeFamily::kBanded) {
    spec.band_width = static_cast<std::uint16_t>(state.range(2));
  }
  coding::CodingParams params{blocks, bytes};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 7);
  codes::FamilyEncoder encoder(gen, 0, spec);
  Rng rng(5);
  // Pre-generate outside the timing loop until a probe decoder completes,
  // so the timed loop always replays a completing reception sequence; views
  // hold the structures' explicit coefficient bytes, exactly as the wire
  // layer would deliver.
  std::vector<coding::CodedPacket> packets;
  std::vector<coding::CodedStructure> structures;
  std::vector<coding::CodedPacketView> views;
  {
    codes::StructuredDecoder probe(params, 0);
    const std::size_t budget = static_cast<std::size_t>(blocks) * 64;
    while (!probe.complete() && packets.size() < budget) {
      packets.emplace_back();
      structures.emplace_back();
      encoder.next_packet_into(rng, &packets.back(), &structures.back());
      coding::CodedPacketView view = packets.back().as_view();
      switch (structures.back().kind) {
        case coding::CodedStructure::Kind::kDense:
          break;
        case coding::CodedStructure::Kind::kUncoded:
          view.coefficients = {};
          break;
        case coding::CodedStructure::Kind::kWindow:
          view.coefficients = view.coefficients.subspan(
              structures.back().offset, structures.back().width);
          break;
      }
      probe.offer(view, structures.back());
    }
    if (!probe.complete()) {
      state.SkipWithError("family sequence did not reach full rank");
      gf::set_backend(previous);
      return;
    }
    // as_view() spans must be taken after the vector stops reallocating.
    views.resize(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
      coding::CodedPacketView view = packets[i].as_view();
      switch (structures[i].kind) {
        case coding::CodedStructure::Kind::kDense:
          break;
        case coding::CodedStructure::Kind::kUncoded:
          view.coefficients = {};
          break;
        case coding::CodedStructure::Kind::kWindow:
          view.coefficients = view.coefficients.subspan(structures[i].offset,
                                                        structures[i].width);
          break;
      }
      views[i] = view;
    }
  }
  std::vector<std::uint8_t> out(params.generation_bytes());
  for (auto _ : state) {
    codes::StructuredDecoder decoder(params, 0);
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (decoder.complete()) break;
      decoder.offer(views[i], structures[i]);
    }
    decoder.recover_into(std::span<std::uint8_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks) * bytes);
  gf::set_backend(previous);
}

/// One benchmark family per backend, named BM_<What>/<backend-name>/<args>.
void register_benchmarks() {
  for (const gf::Backend backend : kAllBackends) {
    const std::string name = gf::backend_name(backend);
    benchmark::RegisterBenchmark(("BM_Axpy/" + name).c_str(), bench_axpy,
                                 backend)
        ->Arg(256)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_Axpy4/" + name).c_str(), bench_axpy4,
                                 backend)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_AxpyScatter/" + name).c_str(),
                                 bench_axpy_scatter, backend)
        ->Arg(128)
        ->Arg(1024);
    // The paper's coding geometry (40 x 1 KB) plus variations.
    benchmark::RegisterBenchmark(("BM_Encode/" + name).c_str(), bench_encode,
                                 backend)
        ->Args({40, 1024})
        ->Args({16, 1024})
        ->Args({40, 256});
    benchmark::RegisterBenchmark(("BM_Decode/" + name).c_str(),
                                 bench_progressive_decode, backend)
        ->Args({40, 1024})
        ->Args({64, 1024})
        ->Args({16, 256});
    benchmark::RegisterBenchmark(("BM_DecodeSystematic/" + name).c_str(),
                                 bench_family_decode, backend,
                                 codes::CodeSpec::systematic())
        ->Args({64, 1024})
        ->Args({40, 1024});
    // Third arg: band width (<= g/4 is the BENCH_9 decode-cost target).
    benchmark::RegisterBenchmark(("BM_DecodeBanded/" + name).c_str(),
                                 bench_family_decode, backend,
                                 codes::CodeSpec::banded(0))
        ->Args({64, 1024, 16})
        ->Args({64, 1024, 8});
  }
}

/// Console reporter that additionally mirrors every finished run into the
/// shared bench JSON writer (--json <path>), one record per metric.
class JsonBridgeReporter final : public benchmark::ConsoleReporter {
 public:
  explicit JsonBridgeReporter(bench::JsonWriter* writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string params = run.benchmark_name();
      writer_->record("coding_speed", params, "real_time_ns",
                      run.GetAdjustedRealTime());
      writer_->record("coding_speed", params, "cpu_time_ns",
                      run.GetAdjustedCPUTime());
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        writer_->record("coding_speed", params, "bytes_per_second",
                        static_cast<double>(bytes->second));
      }
    }
  }

 private:
  bench::JsonWriter* writer_;
};

}  // namespace

// Hand-rolled BENCHMARK_MAIN(): peel off our --json flag before handing the
// remaining argv to google-benchmark, then run with the bridging reporter.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  register_benchmarks();
  bench::JsonWriter writer(json_path);
  JsonBridgeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

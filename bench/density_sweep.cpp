// Deployment-density ablation: the paper fixes density 6 ("each node has on
// average 5 neighbors within its range").  Density controls the path
// diversity OMNC can exploit and the interference it must price; this bench
// sweeps it and reports the throughput-gain trend.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup base = bench::parse_setup(options);
  if (!options.has("sessions")) base.workload.sessions = 16;
  bench::ObsSetup obs = bench::parse_obs(options, "density_sweep", base);
  base.run.trace = obs.recorder.get();
  std::printf("== throughput gain vs deployment density ==\n");
  bench::print_setup(base);

  TextTable table({"density", "mean degree", "|selected|", "ETX B/s",
                   "gain OMNC", "gain MORE", "gain oldMORE"});
  for (double density : {4.0, 6.0, 8.0, 10.0}) {
    WorkloadConfig wc = base.workload;
    wc.deployment.density = density;
    wc.seed = base.workload.seed + static_cast<std::uint64_t>(density);
    const auto sessions = generate_workload(wc);
    const auto results = run_all(sessions, base.run);
    OnlineStats etx, omnc, more, oldmore, selected;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (r.etx.throughput_bytes_per_s <= 0.0) continue;
      etx.add(r.etx.throughput_bytes_per_s);
      omnc.add(r.gain_omnc);
      more.add(r.gain_more);
      oldmore.add(r.gain_oldmore);
      selected.add(sessions[i].graph.size());
    }
    table.add_row({TextTable::fmt(density, 0),
                   TextTable::fmt(sessions[0].topology->mean_neighbor_count(), 1),
                   TextTable::fmt(selected.mean(), 1),
                   TextTable::fmt(etx.mean(), 0),
                   TextTable::fmt(omnc.mean(), 2),
                   TextTable::fmt(more.mean(), 2),
                   TextTable::fmt(oldmore.mean(), 2)});
    std::fprintf(stderr, "done density %.0f\n", density);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading guide: denser deployments give the coded protocols more\n"
      "forwarders to exploit but also denser interference; OMNC's gain is\n"
      "expected to hold or grow with density while single-path ETX gains\n"
      "nothing from the extra nodes.\n");
  bench::finish_obs(obs);
  return 0;
}

// Figure 1 — convergence speed of the distributed rate control algorithm.
//
// The paper shows the per-node broadcast rate converging within a few tens
// of iterations on a sample topology with tagged reception probabilities and
// channel capacity 10^5 bytes/second.  We use a two-relay diamond plus one
// opportunistic shortcut link, print the iteration series for every node,
// and compare the converged rates against the centralized sUnicast LP.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/table.h"
#include "experiments/paper.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

using namespace omnc;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const double capacity = options.get_double(
      "capacity", experiments::paper::kFig1CapacityBytesPerSecond);
  char obs_params[64];
  std::snprintf(obs_params, sizeof(obs_params), "capacity=%.0f", capacity);
  bench::ObsSetup obs =
      bench::parse_obs(options, "fig1_convergence", obs_params, /*seed=*/0);

  std::printf("== Fig. 1: convergence of the distributed rate control ==\n");
  std::printf("# sample topology: S -> {u, v} -> T diamond with an S -> T\n");
  std::printf("# opportunistic shortcut; tagged reception probabilities.\n");
  std::printf("# channel capacity C = %.0f bytes/second (paper: 1e5)\n\n",
              capacity);

  // Tagged link probabilities, as in the paper's Fig. 1 setup.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;  // S <-> u
  p[0][2] = p[2][0] = 0.6;  // S <-> v
  p[1][3] = p[3][1] = 0.7;  // u <-> T
  p[2][3] = p[3][2] = 0.9;  // v <-> T
  p[0][3] = p[3][0] = 0.2;  // S <-> T opportunistic shortcut
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);

  opt::RateControlParams params;
  params.capacity = capacity;
  opt::DistributedRateControl controller(graph, params);
  opt::IterationTrace trace;
  const opt::RateControlResult result = controller.run(&trace);

  const opt::SUnicastSolution lp = opt::solve_sunicast(graph, capacity);

  std::printf("broadcast rate (bytes/second) per node vs iteration:\n");
  TextTable table({"iter", "b_S", "b_u", "b_v", "gamma"});
  const int total = static_cast<int>(trace.b.size());
  for (int t = 0; t < total;
       t += (t < 10 ? 1 : (t < 50 ? 5 : 25))) {
    const auto& b = trace.b[static_cast<std::size_t>(t)];
    table.add_row({std::to_string(t + 1),
                   TextTable::fmt(b[static_cast<std::size_t>(graph.source)], 0),
                   TextTable::fmt(b[static_cast<std::size_t>(graph.local_index(1))], 0),
                   TextTable::fmt(b[static_cast<std::size_t>(graph.local_index(2))], 0),
                   TextTable::fmt(trace.gamma[static_cast<std::size_t>(t)], 0)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("converged after %d iterations (%s); %zu control messages\n",
              result.iterations, result.converged ? "tolerance met" : "cap hit",
              result.messages);
  std::printf("\nconverged rates vs centralized sUnicast LP:\n");
  TextTable final_table({"node", "distributed b", "LP b"});
  const char* names[] = {"S", "u", "v", "T"};
  for (int id = 0; id < 4; ++id) {
    const int local = graph.local_index(id);
    final_table.add_row(
        {names[id],
         TextTable::fmt(result.b[static_cast<std::size_t>(local)], 0),
         TextTable::fmt(lp.b[static_cast<std::size_t>(local)], 0)});
  }
  std::printf("%s\n", final_table.render().c_str());
  std::printf("distributed gamma estimate: %.0f  |  LP gamma*: %.0f\n",
              result.gamma, lp.gamma);
  std::printf(
      "\npaper comparison: Fig. 1 shows convergence within a few tens of\n"
      "iterations to rates below 5e4 B/s at C = 1e5; measured: converged in\n"
      "%d iterations with max rate %.0f B/s.\n",
      result.iterations,
      *std::max_element(result.b.begin(), result.b.end()));

  if (obs.recorder != nullptr) {
    // Serialize the full convergence curve: one opt_iter record per
    // iteration plus the run's diagnostics (trace_inspect --convergence
    // replots the curve; --verify cross-checks iterations and gamma).
    obs::RunContext ctx;
    ctx.protocol = "rate_control";
    ctx.topology_nodes = topo.node_count();
    ctx.capacity_bytes_per_s = capacity;
    const int run = obs.recorder->begin_run(ctx, {&graph});
    for (std::size_t t = 0; t < trace.gamma.size(); ++t) {
      obs.recorder->record_opt_iteration(run, static_cast<int>(t),
                                         trace.gamma[t], trace.b[t]);
    }
    protocols::SessionResult rc_record;
    rc_record.rc_iterations = result.iterations;
    rc_record.rc_converged = result.converged;
    rc_record.rc_messages = result.messages;
    rc_record.predicted_gamma = result.gamma;
    obs.recorder->end_run(run, {rc_record}, {});
  }

  bench::JsonWriter json(options);
  if (json.enabled()) {
    char params[64];
    std::snprintf(params, sizeof(params), "capacity=%.0f", capacity);
    json.record("fig1_convergence", params, "iterations", result.iterations);
    json.record("fig1_convergence", params, "control_messages",
                static_cast<double>(result.messages));
    json.record("fig1_convergence", params, "gamma_distributed", result.gamma);
    json.record("fig1_convergence", params, "gamma_lp", lp.gamma);
    for (int id = 0; id < 4; ++id) {
      const auto local = static_cast<std::size_t>(graph.local_index(id));
      json.record("fig1_convergence", params,
                  std::string("b_distributed_") + names[id], result.b[local]);
      json.record("fig1_convergence", params,
                  std::string("b_lp_") + names[id], lp.b[local]);
    }
  }
  bench::finish_obs(obs);
  return 0;
}

// Figure 2 — distribution of throughput gains over ETX routing.
//
// Left panel: the lossy network (mean link reception probability ~0.58).
// Paper averages: OMNC 2.45, MORE 1.67, oldMORE 1.12.
// Right panel: the same deployment at higher transmit power (mean link
// quality ~0.9): OMNC ~1.12 while MORE and oldMORE fall below 1.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

namespace {

struct PanelResult {
  Cdf omnc;
  Cdf more;
  Cdf oldmore;
  OnlineStats etx_abs;
};

PanelResult run_panel(bench::BenchSetup setup, double power_factor) {
  setup.workload.deployment.power_factor = power_factor;
  const auto sessions = generate_workload(setup.workload);
  std::fprintf(stderr, "panel power_factor=%.2f: mean link p = %.3f\n",
               power_factor, sessions[0].topology->mean_link_probability());
  PanelResult panel;
  const auto results =
      run_all(sessions, setup.run, nullptr, bench::print_progress);
  for (const auto& r : results) {
    if (r.etx.throughput_bytes_per_s <= 0.0) continue;  // dead baseline
    panel.omnc.add(r.gain_omnc);
    panel.more.add(r.gain_more);
    panel.oldmore.add(r.gain_oldmore);
    panel.etx_abs.add(r.etx.throughput_bytes_per_s);
  }
  return panel;
}

void print_panel(const char* title, const PanelResult& panel, double x_max) {
  std::printf("\n-- %s --\n", title);
  std::printf("%zu sessions with a live ETX baseline (mean ETX throughput "
              "%.0f B/s)\n\n",
              panel.omnc.count(), panel.etx_abs.mean());
  std::printf("%s\n",
              render_cdf_chart({{"OMNC", &panel.omnc},
                                {"MORE", &panel.more},
                                {"oldMORE", &panel.oldmore}},
                               0.0, x_max)
                  .c_str());
  std::printf("%s\n",
              render_cdf_data({{"OMNC", &panel.omnc},
                               {"MORE", &panel.more},
                               {"oldMORE", &panel.oldmore}},
                              0.0, x_max, 19)
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  bench::ObsSetup obs =
      bench::parse_obs(options, "fig2_throughput_gain", setup);
  setup.run.trace = obs.recorder.get();
  const double high_power =
      options.get_double("high-power-factor", 1.6);

  std::printf("== Fig. 2: throughput gain over ETX routing ==\n");
  bench::print_setup(setup);

  const PanelResult lossy = run_panel(setup, 1.0);
  const PanelResult high = run_panel(setup, high_power);

  print_panel("lossy network (Fig. 2 left)", lossy, 6.0);
  print_panel("high link quality (Fig. 2 right)", high, 2.0);

  std::printf("\n== paper vs measured (average throughput gain) ==\n");
  TextTable table({"protocol", "paper lossy", "measured lossy",
                   "measured median", "paper high-q", "measured high-q"});
  table.add_row({"OMNC", "2.45", TextTable::fmt(lossy.omnc.mean(), 2),
                 TextTable::fmt(lossy.omnc.median(), 2), "1.12",
                 TextTable::fmt(high.omnc.mean(), 2)});
  table.add_row({"MORE", "1.67", TextTable::fmt(lossy.more.mean(), 2),
                 TextTable::fmt(lossy.more.median(), 2), "<1",
                 TextTable::fmt(high.more.mean(), 2)});
  table.add_row({"oldMORE", "1.12", TextTable::fmt(lossy.oldmore.mean(), 2),
                 TextTable::fmt(lossy.oldmore.median(), 2), "<1",
                 TextTable::fmt(high.oldmore.mean(), 2)});
  std::printf("%s", table.render().c_str());

  bench::JsonWriter json(options);
  if (json.enabled()) {
    const std::string base = bench::setup_params(setup);
    const struct {
      const char* panel;
      const PanelResult* result;
    } panels[] = {{"lossy", &lossy}, {"high_quality", &high}};
    for (const auto& p : panels) {
      const std::string params = base + ";panel=" + p.panel;
      json.record("fig2_throughput_gain", params, "sessions_with_baseline",
                  static_cast<double>(p.result->omnc.count()));
      json.record("fig2_throughput_gain", params, "etx_mean_bytes_per_s",
                  p.result->etx_abs.mean());
      json.record("fig2_throughput_gain", params, "mean_gain_omnc",
                  p.result->omnc.mean());
      json.record("fig2_throughput_gain", params, "median_gain_omnc",
                  p.result->omnc.median());
      json.record("fig2_throughput_gain", params, "mean_gain_more",
                  p.result->more.mean());
      json.record("fig2_throughput_gain", params, "median_gain_more",
                  p.result->more.median());
      json.record("fig2_throughput_gain", params, "mean_gain_oldmore",
                  p.result->oldmore.mean());
      json.record("fig2_throughput_gain", params, "median_gain_oldmore",
                  p.result->oldmore.median());
    }
  }
  bench::finish_obs(obs);
  return 0;
}

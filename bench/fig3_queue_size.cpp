// Figure 3 — distribution of the per-session average queue size.
//
// For each session the metric is the time-averaged transmit queue of each
// node involved in the transmission, averaged over those nodes.  Paper:
// OMNC's overall average is 0.63 (its rate control matches transmission
// rates to the channel) while MORE's is 22 (congestion oblivious).
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  bench::ObsSetup obs = bench::parse_obs(options, "fig3_queue_size", setup);
  setup.run.trace = obs.recorder.get();
  std::printf("== Fig. 3: time-averaged queue size ==\n");
  bench::print_setup(setup);

  const auto sessions = generate_workload(setup.workload);
  const auto results =
      run_all(sessions, setup.run, nullptr, bench::print_progress);

  Cdf omnc;
  Cdf more;
  Cdf oldmore;
  for (const auto& r : results) {
    omnc.add(r.omnc.mean_queue);
    more.add(r.more.mean_queue);
    oldmore.add(r.oldmore.mean_queue);
  }

  std::printf("\n-- OMNC (left panel of Fig. 3 right chart) --\n%s\n",
              render_cdf_chart({{"OMNC", &omnc}}, 0.0,
                               std::max(2.0, omnc.max()))
                  .c_str());
  std::printf("-- MORE (left panel of Fig. 3) --\n%s\n",
              render_cdf_chart({{"MORE", &more}}, 0.0,
                               std::max(10.0, more.max()))
                  .c_str());
  std::printf("%s\n", render_cdf_data({{"OMNC", &omnc},
                                       {"MORE", &more},
                                       {"oldMORE", &oldmore}},
                                      0.0, std::max(10.0, more.max()), 21)
                          .c_str());

  std::printf("== paper vs measured (overall average queue size) ==\n");
  TextTable table({"protocol", "paper", "measured mean", "measured median"});
  table.add_row({"OMNC", "0.63", TextTable::fmt(omnc.mean(), 2),
                 TextTable::fmt(omnc.median(), 2)});
  table.add_row({"MORE", "22", TextTable::fmt(more.mean(), 2),
                 TextTable::fmt(more.median(), 2)});
  table.add_row({"oldMORE", "(n/a)", TextTable::fmt(oldmore.mean(), 2),
                 TextTable::fmt(oldmore.median(), 2)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nshape check: OMNC stays around/below one queued packet per node\n"
      "(rate control matches the channel), the credit protocols queue an\n"
      "order of magnitude more.  measured MORE/OMNC queue ratio: %.1fx\n",
      more.mean() / std::max(omnc.mean(), 1e-9));
  bench::finish_obs(obs);
  return 0;
}

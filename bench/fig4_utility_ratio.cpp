// Figure 4 — node utility ratio and path utility ratio.
//
// Node utility: nodes that actually transmitted / nodes selected.
// Path utility: S->T paths of the selected DAG that carried innovative
// traffic / all available paths.  Paper: oldMORE prunes low-quality links
// and scores low on both; OMNC and (new) MORE involve almost everything.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  bench::ObsSetup obs = bench::parse_obs(options, "fig4_utility_ratio", setup);
  setup.run.trace = obs.recorder.get();
  std::printf("== Fig. 4: node and path utility ratios ==\n");
  bench::print_setup(setup);

  const auto sessions = generate_workload(setup.workload);
  const auto results =
      run_all(sessions, setup.run, nullptr, bench::print_progress);

  Cdf node_omnc, node_more, node_old;
  Cdf path_omnc, path_more, path_old;
  for (const auto& r : results) {
    node_omnc.add(r.omnc.node_utility_ratio);
    node_more.add(r.more.node_utility_ratio);
    node_old.add(r.oldmore.node_utility_ratio);
    path_omnc.add(r.omnc.path_utility_ratio);
    path_more.add(r.more.path_utility_ratio);
    path_old.add(r.oldmore.path_utility_ratio);
  }

  std::printf("\n-- node utility ratio (Fig. 4 left) --\n%s\n",
              render_cdf_chart({{"OMNC", &node_omnc},
                                {"oldMORE", &node_old},
                                {"MORE", &node_more}},
                               0.0, 1.0)
                  .c_str());
  std::printf("-- path utility ratio (Fig. 4 right) --\n%s\n",
              render_cdf_chart({{"OMNC", &path_omnc},
                                {"oldMORE", &path_old},
                                {"MORE", &path_more}},
                               0.0, 1.0)
                  .c_str());
  std::printf("%s\n",
              render_cdf_data({{"node_OMNC", &node_omnc},
                               {"node_MORE", &node_more},
                               {"node_oldMORE", &node_old},
                               {"path_OMNC", &path_omnc},
                               {"path_MORE", &path_more},
                               {"path_oldMORE", &path_old}},
                              0.0, 1.0, 21)
                  .c_str());

  std::printf("== paper vs measured (mean utility ratios) ==\n");
  TextTable table({"protocol", "node (paper)", "node (measured)",
                   "path (paper)", "path (measured)"});
  table.add_row({"OMNC", "high (~1)", TextTable::fmt(node_omnc.mean(), 2),
                 "high", TextTable::fmt(path_omnc.mean(), 2)});
  table.add_row({"MORE", "similar to OMNC", TextTable::fmt(node_more.mean(), 2),
                 "similar", TextTable::fmt(path_more.mean(), 2)});
  table.add_row({"oldMORE", "low (prunes nodes)",
                 TextTable::fmt(node_old.mean(), 2), "low",
                 TextTable::fmt(path_old.mean(), 2)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nshape check: oldMORE's min-cost pruning keeps its utility well\n"
      "below OMNC/MORE; measured node-utility gap OMNC - oldMORE = %.2f\n",
      node_omnc.mean() - node_old.mean());
  bench::finish_obs(obs);
  return 0;
}

// Ablation of the Drift-substitute MAC/PHY modelling choices (DESIGN.md).
//
// Each row re-runs a small session batch with one knob moved back to its
// idealized setting, showing how the headline gains depend on:
//   * contention (CSMA) vs idealized randomized-TDMA scheduling,
//   * bursty (Gilbert-Elliott) vs i.i.d. losses,
//   * the 802.11 unicast airtime cost (2 slots) vs equal airtime,
//   * the 802.11 retry limit vs retry-forever ARQ,
//   * hidden-terminal collisions vs receiver-protected scheduling,
//   * draining vs magically flushing stale-generation frames.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup base = bench::parse_setup(options);
  if (!options.has("sessions")) base.workload.sessions = 24;
  bench::ObsSetup obs = bench::parse_obs(options, "mac_ablation", base);
  base.run.trace = obs.recorder.get();
  std::printf("== MAC/PHY model ablation (throughput gains vs ETX) ==\n");
  bench::print_setup(base);

  struct Variant {
    const char* name;
    std::function<void(RunConfig&)> tweak;
  };
  const std::vector<Variant> variants = {
      {"calibrated model (benchmarks' default)", [](RunConfig&) {}},
      {"ideal TDMA scheduling (no contention)",
       [](RunConfig& c) { c.protocol.mac.mode = net::MacMode::kIdealScheduling; }},
      {"i.i.d. losses (no fading)",
       [](RunConfig& c) { c.protocol.mac.fading.enabled = false; }},
      {"unicast airtime = broadcast airtime",
       [](RunConfig& c) { c.protocol.mac.unicast_slot_cost = 1; }},
      {"ARQ retries forever (idealized reliability)",
       [](RunConfig& c) { c.protocol.mac.unicast_retry_limit = 0; }},
      {"receiver-protected ideal scheduling (no collisions)",
       [](RunConfig& c) {
         c.protocol.mac.mode = net::MacMode::kIdealScheduling;
         c.protocol.mac.protect_receivers = true;
       }},
      {"flush stale frames at ACK (free queue purge)",
       [](RunConfig& c) { c.protocol.flush_stale_frames = true; }},
  };

  const auto sessions = generate_workload(base.workload);
  TextTable table({"variant", "ETX B/s", "gain OMNC", "gain MORE",
                   "gain oldMORE", "q OMNC", "q MORE"});
  for (const auto& variant : variants) {
    RunConfig run = base.run;
    variant.tweak(run);
    const auto results = run_all(sessions, run);
    OnlineStats etx, omnc, more, oldmore, q_omnc, q_more;
    for (const auto& r : results) {
      if (r.etx.throughput_bytes_per_s <= 0.0) continue;
      etx.add(r.etx.throughput_bytes_per_s);
      omnc.add(r.gain_omnc);
      more.add(r.gain_more);
      oldmore.add(r.gain_oldmore);
      q_omnc.add(r.omnc.mean_queue);
      q_more.add(r.more.mean_queue);
    }
    table.add_row({variant.name, TextTable::fmt(etx.mean(), 0),
                   TextTable::fmt(omnc.mean(), 2),
                   TextTable::fmt(more.mean(), 2),
                   TextTable::fmt(oldmore.mean(), 2),
                   TextTable::fmt(q_omnc.mean(), 2),
                   TextTable::fmt(q_more.mean(), 1)});
    std::fprintf(stderr, "done: %s\n", variant.name);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading guide: the paper's qualitative results (coded > ETX, OMNC\n"
      "> MORE > oldMORE) need the realistic unicast costs and bursty losses\n"
      "of real 802.11 meshes; each idealization above moves the baseline\n"
      "closer to (or past) the coded protocols.  See EXPERIMENTS.md.\n");
  bench::finish_obs(obs);
  return 0;
}

// Extension bench — the multiple-unicast scenario from the paper's
// conclusion.  Runs K concurrent sessions under the joint distributed rate
// control and compares against (a) the joint max-min LP and (b) each session
// running alone, quantifying the cost of sharing and the fairness of the
// allocation.
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"
#include "opt/multi_unicast.h"
#include "opt/sunicast.h"
#include "protocols/multi_unicast.h"
#include "protocols/omnc.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  const int k = static_cast<int>(options.get_int("concurrent", 2));
  const int batches = static_cast<int>(options.get_int(
      "batches", options.get_bool("paper", false) ? 30 : 10));
  setup.workload.sessions = k * batches;
  bench::ObsSetup obs =
      bench::parse_obs(options, "multi_unicast_bench", setup);

  std::printf("== multiple-unicast extension: %d concurrent sessions ==\n",
              k);
  bench::print_setup(setup);

  const auto specs = generate_workload(setup.workload);

  OnlineStats joint_min, joint_aggregate, alone_mean, lp_min, fairness;
  OnlineStats rc_iters;
  int decoded_everywhere = 0;
  for (int batch = 0; batch < batches; ++batch) {
    std::vector<const routing::SessionGraph*> graphs;
    for (int j = 0; j < k; ++j) {
      graphs.push_back(&specs[static_cast<std::size_t>(batch * k + j)].graph);
    }
    const auto& topology = *specs[static_cast<std::size_t>(batch * k)].topology;

    // Joint LP reference.
    const opt::MultiSUnicastSolution lp = opt::solve_multi_sunicast(
        topology, graphs, setup.run.protocol.mac.capacity_bytes_per_s);
    if (lp.feasible) lp_min.add(lp.min_gamma);

    // Concurrent emulation under the joint distributed controller.
    protocols::MultiUnicastConfig config;
    config.protocol = setup.run.protocol;
    config.protocol.seed = specs[static_cast<std::size_t>(batch * k)].seed;
    int trace_run = -1;
    std::optional<obs::RunSink> trace_sink;
    if (obs.recorder != nullptr) {
      obs::RunContext ctx;
      ctx.protocol = "multi_omnc";
      ctx.seed = config.protocol.seed;
      ctx.topology_nodes = topology.node_count();
      ctx.generation_blocks = config.protocol.coding.generation_blocks;
      ctx.block_bytes = config.protocol.coding.block_bytes;
      ctx.capacity_bytes_per_s = config.protocol.mac.capacity_bytes_per_s;
      ctx.cbr_bytes_per_s = config.protocol.cbr_bytes_per_s;
      ctx.sim_seconds = config.protocol.max_sim_seconds;
      ctx.shared_queue = true;  // every session reports the channel-wide mean
      trace_run = obs.recorder->begin_run(ctx, graphs);
      trace_sink.emplace(obs.recorder.get(), trace_run);
      config.trace_sink = trace_sink->sink_or_null();
    }
    protocols::MultiUnicastOmnc runner(topology, graphs, config);
    const auto joint = runner.run();
    if (obs.recorder != nullptr) {
      obs.recorder->end_run(trace_run, joint.sessions, joint.edge_innovative);
    }
    joint_min.add(joint.min_throughput);
    joint_aggregate.add(joint.aggregate_throughput);
    rc_iters.add(joint.rc_iterations);
    bool all = true;
    double best = 0.0;
    double worst = 1e18;
    for (const auto& s : joint.sessions) {
      all = all && s.generations_completed > 0;
      best = std::max(best, s.throughput_per_generation);
      worst = std::min(worst, s.throughput_per_generation);
    }
    if (all) ++decoded_everywhere;
    if (best > 0.0) fairness.add(worst / best);

    // Each session alone (single-session OMNC) for the sharing cost.
    for (int j = 0; j < k; ++j) {
      const auto& spec = specs[static_cast<std::size_t>(batch * k + j)];
      protocols::ProtocolConfig pc = setup.run.protocol;
      pc.seed = spec.seed ^ 0x77;
      protocols::OmncProtocol alone(*spec.topology, spec.graph, pc,
                                    protocols::OmncConfig{});
      alone_mean.add(alone.run().throughput_per_generation);
    }
    std::fprintf(stderr, "  batch %d/%d done\n", batch + 1, batches);
  }

  TextTable table({"metric", "value"});
  table.add_row({"batches x concurrent sessions",
                 std::to_string(batches) + " x " + std::to_string(k)});
  table.add_row({"joint LP max-min throughput (B/s)",
                 TextTable::fmt(lp_min.mean(), 0)});
  table.add_row({"emulated min session throughput (B/s)",
                 TextTable::fmt(joint_min.mean(), 0)});
  table.add_row({"emulated aggregate throughput (B/s)",
                 TextTable::fmt(joint_aggregate.mean(), 0)});
  table.add_row({"single-session (alone) mean throughput (B/s)",
                 TextTable::fmt(alone_mean.mean(), 0)});
  table.add_row({"sharing efficiency (aggregate / k x alone)",
                 TextTable::fmt(joint_aggregate.mean() /
                                    (k * alone_mean.mean()), 2)});
  table.add_row({"fairness (worst/best session)",
                 TextTable::fmt(fairness.mean(), 2)});
  table.add_row({"batches with every session decoding",
                 std::to_string(decoded_everywhere) + "/" +
                     std::to_string(batches)});
  table.add_row({"mean joint rate-control iterations",
                 TextTable::fmt(rc_iters.mean(), 0)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nshape check: the shared congestion prices split the channel — the\n"
      "aggregate stays within the single-session ballpark while no session\n"
      "starves (the paper's Sec. 6 multiple-unicast extension).\n");
  bench::finish_obs(obs);
  return 0;
}

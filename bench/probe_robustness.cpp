// Robustness bench: how much do the protocols lose when they plan on
// *measured* link qualities (Sec. 4's probing procedure) instead of the
// PHY's true averages?  The paper's premise — "OMNC is based on the
// presumption that the link qualities ... are relatively stable over time"
// — implies the coded protocols should degrade gracefully under estimation
// error; the ETX baseline's single path is the most exposed to a
// mis-estimated link.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"
#include "experiments/probed.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  if (!options.has("sessions")) setup.workload.sessions = 24;
  bench::ObsSetup obs = bench::parse_obs(options, "probe_robustness", setup);
  setup.run.trace = obs.recorder.get();
  const int probes = static_cast<int>(options.get_int("probes", 200));

  std::printf("== planning on measured vs oracle link qualities ==\n");
  bench::print_setup(setup);
  std::printf("# probing campaign: %d broadcast probes per node\n\n", probes);

  const auto sessions = generate_workload(setup.workload);

  ProbeModeConfig probe_config;
  probe_config.probes_per_node = probes;
  probe_config.mac = setup.run.protocol.mac;

  OnlineStats oracle_omnc, probed_omnc, oracle_more, probed_more;
  OnlineStats probe_error, probe_seconds;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& spec = sessions[i];
    const ComparisonResult oracle = run_comparison(spec, setup.run);
    const ProbedSession probed = probe_session(spec, probe_config);
    if (obs.recorder != nullptr) {
      // Per-link estimates: the probed graph keeps the oracle graph's edge
      // order, so zipping the two yields (true p, estimated p) pairs.
      for (std::size_t e = 0; e < spec.graph.edges.size(); ++e) {
        const auto& truth = spec.graph.edges[e];
        const auto& estimate = probed.spec.graph.edges[e];
        obs.recorder->record_probe(static_cast<int>(i), static_cast<int>(e),
                                   truth.from, truth.to, truth.p, estimate.p);
      }
    }
    const ComparisonResult measured =
        run_comparison(probed.spec, setup.run);
    if (oracle.etx.throughput_bytes_per_s <= 0.0) continue;
    oracle_omnc.add(oracle.omnc.throughput_per_generation);
    probed_omnc.add(measured.omnc.throughput_per_generation);
    oracle_more.add(oracle.more.throughput_per_generation);
    probed_more.add(measured.more.throughput_per_generation);
    probe_error.add(probed.mean_abs_error);
    probe_seconds.add(probed.probe_seconds);
  }

  TextTable table({"metric", "oracle links", "measured links", "ratio"});
  table.add_row({"OMNC throughput (B/s)",
                 TextTable::fmt(oracle_omnc.mean(), 0),
                 TextTable::fmt(probed_omnc.mean(), 0),
                 TextTable::fmt(probed_omnc.mean() / oracle_omnc.mean(), 2)});
  table.add_row({"MORE throughput (B/s)",
                 TextTable::fmt(oracle_more.mean(), 0),
                 TextTable::fmt(probed_more.mean(), 0),
                 TextTable::fmt(probed_more.mean() / oracle_more.mean(), 2)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nmean |p_hat - p| over session links: %.3f; probing campaign: %.1f "
      "virtual seconds per session\n",
      probe_error.mean(), probe_seconds.mean());
  std::printf(
      "shape check: rate control planned on estimates keeps OMNC within a\n"
      "few percent of the oracle plan — link probing (Sec. 4) is adequate.\n");
  bench::finish_obs(obs);
  return 0;
}

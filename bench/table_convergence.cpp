// Sec. 5 text — convergence statistics of the distributed rate control
// algorithm across the evaluation sessions.  The paper reports an average of
// 91 iterations and notes that the only message passing is the rate/price
// exchange of (15)/(17) plus the distributed shortest path.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"
#include "opt/rate_control.h"
#include "routing/node_selection.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  std::printf("== rate-control convergence statistics ==\n");
  bench::print_setup(setup);

  const auto sessions = generate_workload(setup.workload);

  OnlineStats iterations;
  OnlineStats messages;
  OnlineStats graph_nodes;
  OnlineStats selection_overhead;
  int converged = 0;
  for (const auto& session : sessions) {
    opt::RateControlParams params;
    params.capacity = setup.run.protocol.mac.capacity_bytes_per_s;
    opt::DistributedRateControl controller(session.graph, params);
    const opt::RateControlResult result = controller.run();
    iterations.add(result.iterations);
    messages.add(static_cast<double>(result.messages));
    graph_nodes.add(session.graph.size());
    selection_overhead.add(routing::selection_overhead_transmissions(
        *session.topology, session.graph));
    if (result.converged) ++converged;
  }

  TextTable table({"metric", "paper", "measured"});
  table.add_row({"mean iterations to convergence", "91",
                 TextTable::fmt(iterations.mean(), 1)});
  table.add_row({"min / max iterations", "-",
                 TextTable::fmt(iterations.min(), 0) + " / " +
                     TextTable::fmt(iterations.max(), 0)});
  table.add_row({"sessions converged", "-",
                 std::to_string(converged) + "/" +
                     std::to_string(sessions.size())});
  table.add_row({"mean control messages / session", "-",
                 TextTable::fmt(messages.mean(), 0)});
  table.add_row({"mean selected nodes / session", "-",
                 TextTable::fmt(graph_nodes.mean(), 1)});
  table.add_row({"node-selection overhead (expected tx)", "-",
                 TextTable::fmt(selection_overhead.mean(), 1)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nnote: the rate control runs once per unicast and is re-initiated\n"
      "only when link qualities change (Sec. 4 of the paper).\n");
  return 0;
}

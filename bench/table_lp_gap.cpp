// Sec. 5 text — "the actual emulated throughput of OMNC tends to be lower
// than the optimized throughput computed by the sUnicast framework,
// especially for the non-lossy case."  This bench quantifies the gap in both
// operating points.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"

using namespace omnc;
using namespace omnc::experiments;

namespace {

struct GapResult {
  OnlineStats emulated;
  OnlineStats optimized;
  OnlineStats ratio;
};

GapResult run_point(bench::BenchSetup setup, double power_factor) {
  setup.workload.deployment.power_factor = power_factor;
  setup.run.solve_lp = true;
  setup.run.run_more = false;
  setup.run.run_oldmore = false;
  setup.run.run_etx = false;
  const auto sessions = generate_workload(setup.workload);
  const auto results =
      run_all(sessions, setup.run, nullptr, bench::print_progress);
  GapResult gap;
  for (const auto& r : results) {
    if (r.lp_gamma <= 0.0) continue;
    gap.emulated.add(r.omnc.throughput_per_generation);
    gap.optimized.add(r.lp_gamma);
    gap.ratio.add(r.omnc.throughput_per_generation / r.lp_gamma);
  }
  return gap;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::BenchSetup setup = bench::parse_setup(options);
  bench::ObsSetup obs = bench::parse_obs(options, "table_lp_gap", setup);
  setup.run.trace = obs.recorder.get();
  std::printf("== emulated vs optimized (sUnicast LP) throughput ==\n");
  bench::print_setup(setup);

  const GapResult lossy = run_point(setup, 1.0);
  const GapResult high =
      run_point(setup, options.get_double("high-power-factor", 1.6));

  TextTable table({"operating point", "mean emulated B/s", "mean LP B/s",
                   "mean emulated/LP"});
  table.add_row({"lossy (p~0.58)", TextTable::fmt(lossy.emulated.mean(), 0),
                 TextTable::fmt(lossy.optimized.mean(), 0),
                 TextTable::fmt(lossy.ratio.mean(), 2)});
  table.add_row({"high quality", TextTable::fmt(high.emulated.mean(), 0),
                 TextTable::fmt(high.optimized.mean(), 0),
                 TextTable::fmt(high.ratio.mean(), 2)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nshape check (paper): emulated < optimized everywhere, and the gap\n"
      "is wider in the non-lossy case (constraint (4) only approximates the\n"
      "propagation of innovative flows).  measured gap widening: %.2f -> "
      "%.2f\n",
      1.0 - lossy.ratio.mean(), 1.0 - high.ratio.mean());
  bench::finish_obs(obs);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/coding_params_sweep.dir/coding_params_sweep.cpp.o"
  "CMakeFiles/coding_params_sweep.dir/coding_params_sweep.cpp.o.d"
  "coding_params_sweep"
  "coding_params_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_params_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for coding_params_sweep.
# This may be replaced when dependencies are built.

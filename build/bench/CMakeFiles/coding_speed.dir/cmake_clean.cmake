file(REMOVE_RECURSE
  "CMakeFiles/coding_speed.dir/coding_speed.cpp.o"
  "CMakeFiles/coding_speed.dir/coding_speed.cpp.o.d"
  "coding_speed"
  "coding_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

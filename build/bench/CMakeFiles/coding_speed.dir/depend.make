# Empty dependencies file for coding_speed.
# This may be replaced when dependencies are built.

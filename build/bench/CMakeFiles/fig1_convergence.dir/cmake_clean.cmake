file(REMOVE_RECURSE
  "CMakeFiles/fig1_convergence.dir/fig1_convergence.cpp.o"
  "CMakeFiles/fig1_convergence.dir/fig1_convergence.cpp.o.d"
  "fig1_convergence"
  "fig1_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

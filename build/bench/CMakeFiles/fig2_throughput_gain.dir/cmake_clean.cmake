file(REMOVE_RECURSE
  "CMakeFiles/fig2_throughput_gain.dir/fig2_throughput_gain.cpp.o"
  "CMakeFiles/fig2_throughput_gain.dir/fig2_throughput_gain.cpp.o.d"
  "fig2_throughput_gain"
  "fig2_throughput_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_throughput_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2_throughput_gain.
# This may be replaced when dependencies are built.

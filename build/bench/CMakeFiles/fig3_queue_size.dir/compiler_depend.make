# Empty compiler generated dependencies file for fig3_queue_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_utility_ratio.dir/fig4_utility_ratio.cpp.o"
  "CMakeFiles/fig4_utility_ratio.dir/fig4_utility_ratio.cpp.o.d"
  "fig4_utility_ratio"
  "fig4_utility_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_utility_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

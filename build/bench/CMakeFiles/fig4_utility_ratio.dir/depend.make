# Empty dependencies file for fig4_utility_ratio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multi_unicast_bench.dir/multi_unicast_bench.cpp.o"
  "CMakeFiles/multi_unicast_bench.dir/multi_unicast_bench.cpp.o.d"
  "multi_unicast_bench"
  "multi_unicast_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_unicast_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

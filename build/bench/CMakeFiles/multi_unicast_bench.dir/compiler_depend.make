# Empty compiler generated dependencies file for multi_unicast_bench.
# This may be replaced when dependencies are built.

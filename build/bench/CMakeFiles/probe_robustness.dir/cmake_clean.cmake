file(REMOVE_RECURSE
  "CMakeFiles/probe_robustness.dir/probe_robustness.cpp.o"
  "CMakeFiles/probe_robustness.dir/probe_robustness.cpp.o.d"
  "probe_robustness"
  "probe_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for probe_robustness.
# This may be replaced when dependencies are built.

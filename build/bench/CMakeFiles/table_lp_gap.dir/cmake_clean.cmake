file(REMOVE_RECURSE
  "CMakeFiles/table_lp_gap.dir/table_lp_gap.cpp.o"
  "CMakeFiles/table_lp_gap.dir/table_lp_gap.cpp.o.d"
  "table_lp_gap"
  "table_lp_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_lp_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

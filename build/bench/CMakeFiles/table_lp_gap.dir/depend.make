# Empty dependencies file for table_lp_gap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/diamond_relay.dir/diamond_relay.cpp.o"
  "CMakeFiles/diamond_relay.dir/diamond_relay.cpp.o.d"
  "diamond_relay"
  "diamond_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diamond_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

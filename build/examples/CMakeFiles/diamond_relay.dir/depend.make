# Empty dependencies file for diamond_relay.
# This may be replaced when dependencies are built.

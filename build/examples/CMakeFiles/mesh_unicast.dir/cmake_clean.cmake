file(REMOVE_RECURSE
  "CMakeFiles/mesh_unicast.dir/mesh_unicast.cpp.o"
  "CMakeFiles/mesh_unicast.dir/mesh_unicast.cpp.o.d"
  "mesh_unicast"
  "mesh_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mesh_unicast.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multi_unicast.dir/multi_unicast.cpp.o"
  "CMakeFiles/multi_unicast.dir/multi_unicast.cpp.o.d"
  "multi_unicast"
  "multi_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

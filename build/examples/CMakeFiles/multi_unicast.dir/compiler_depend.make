# Empty compiler generated dependencies file for multi_unicast.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/coded_packet.cpp" "src/coding/CMakeFiles/omnc_coding.dir/coded_packet.cpp.o" "gcc" "src/coding/CMakeFiles/omnc_coding.dir/coded_packet.cpp.o.d"
  "/root/repo/src/coding/decoder.cpp" "src/coding/CMakeFiles/omnc_coding.dir/decoder.cpp.o" "gcc" "src/coding/CMakeFiles/omnc_coding.dir/decoder.cpp.o.d"
  "/root/repo/src/coding/encoder.cpp" "src/coding/CMakeFiles/omnc_coding.dir/encoder.cpp.o" "gcc" "src/coding/CMakeFiles/omnc_coding.dir/encoder.cpp.o.d"
  "/root/repo/src/coding/generation.cpp" "src/coding/CMakeFiles/omnc_coding.dir/generation.cpp.o" "gcc" "src/coding/CMakeFiles/omnc_coding.dir/generation.cpp.o.d"
  "/root/repo/src/coding/recoder.cpp" "src/coding/CMakeFiles/omnc_coding.dir/recoder.cpp.o" "gcc" "src/coding/CMakeFiles/omnc_coding.dir/recoder.cpp.o.d"
  "/root/repo/src/coding/rref.cpp" "src/coding/CMakeFiles/omnc_coding.dir/rref.cpp.o" "gcc" "src/coding/CMakeFiles/omnc_coding.dir/rref.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/galois/CMakeFiles/omnc_galois.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omnc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/omnc_coding.dir/coded_packet.cpp.o"
  "CMakeFiles/omnc_coding.dir/coded_packet.cpp.o.d"
  "CMakeFiles/omnc_coding.dir/decoder.cpp.o"
  "CMakeFiles/omnc_coding.dir/decoder.cpp.o.d"
  "CMakeFiles/omnc_coding.dir/encoder.cpp.o"
  "CMakeFiles/omnc_coding.dir/encoder.cpp.o.d"
  "CMakeFiles/omnc_coding.dir/generation.cpp.o"
  "CMakeFiles/omnc_coding.dir/generation.cpp.o.d"
  "CMakeFiles/omnc_coding.dir/recoder.cpp.o"
  "CMakeFiles/omnc_coding.dir/recoder.cpp.o.d"
  "CMakeFiles/omnc_coding.dir/rref.cpp.o"
  "CMakeFiles/omnc_coding.dir/rref.cpp.o.d"
  "libomnc_coding.a"
  "libomnc_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libomnc_coding.a"
)

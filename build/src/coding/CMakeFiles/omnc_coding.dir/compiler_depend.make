# Empty compiler generated dependencies file for omnc_coding.
# This may be replaced when dependencies are built.

# Empty dependencies file for omnc_coding.
# This may be replaced when dependencies are built.

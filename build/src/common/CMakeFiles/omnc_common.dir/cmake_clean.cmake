file(REMOVE_RECURSE
  "CMakeFiles/omnc_common.dir/logging.cpp.o"
  "CMakeFiles/omnc_common.dir/logging.cpp.o.d"
  "CMakeFiles/omnc_common.dir/options.cpp.o"
  "CMakeFiles/omnc_common.dir/options.cpp.o.d"
  "CMakeFiles/omnc_common.dir/rng.cpp.o"
  "CMakeFiles/omnc_common.dir/rng.cpp.o.d"
  "CMakeFiles/omnc_common.dir/stats.cpp.o"
  "CMakeFiles/omnc_common.dir/stats.cpp.o.d"
  "CMakeFiles/omnc_common.dir/table.cpp.o"
  "CMakeFiles/omnc_common.dir/table.cpp.o.d"
  "CMakeFiles/omnc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/omnc_common.dir/thread_pool.cpp.o.d"
  "libomnc_common.a"
  "libomnc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libomnc_common.a"
)

# Empty compiler generated dependencies file for omnc_common.
# This may be replaced when dependencies are built.

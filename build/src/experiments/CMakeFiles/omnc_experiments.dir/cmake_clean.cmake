file(REMOVE_RECURSE
  "CMakeFiles/omnc_experiments.dir/probed.cpp.o"
  "CMakeFiles/omnc_experiments.dir/probed.cpp.o.d"
  "CMakeFiles/omnc_experiments.dir/runner.cpp.o"
  "CMakeFiles/omnc_experiments.dir/runner.cpp.o.d"
  "CMakeFiles/omnc_experiments.dir/workload.cpp.o"
  "CMakeFiles/omnc_experiments.dir/workload.cpp.o.d"
  "libomnc_experiments.a"
  "libomnc_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libomnc_experiments.a"
)

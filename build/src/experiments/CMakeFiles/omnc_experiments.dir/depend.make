# Empty dependencies file for omnc_experiments.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/galois/gf256.cpp" "src/galois/CMakeFiles/omnc_galois.dir/gf256.cpp.o" "gcc" "src/galois/CMakeFiles/omnc_galois.dir/gf256.cpp.o.d"
  "/root/repo/src/galois/matrix.cpp" "src/galois/CMakeFiles/omnc_galois.dir/matrix.cpp.o" "gcc" "src/galois/CMakeFiles/omnc_galois.dir/matrix.cpp.o.d"
  "/root/repo/src/galois/region.cpp" "src/galois/CMakeFiles/omnc_galois.dir/region.cpp.o" "gcc" "src/galois/CMakeFiles/omnc_galois.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/omnc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

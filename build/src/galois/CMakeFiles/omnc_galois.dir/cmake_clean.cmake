file(REMOVE_RECURSE
  "CMakeFiles/omnc_galois.dir/gf256.cpp.o"
  "CMakeFiles/omnc_galois.dir/gf256.cpp.o.d"
  "CMakeFiles/omnc_galois.dir/matrix.cpp.o"
  "CMakeFiles/omnc_galois.dir/matrix.cpp.o.d"
  "CMakeFiles/omnc_galois.dir/region.cpp.o"
  "CMakeFiles/omnc_galois.dir/region.cpp.o.d"
  "libomnc_galois.a"
  "libomnc_galois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_galois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libomnc_galois.a"
)

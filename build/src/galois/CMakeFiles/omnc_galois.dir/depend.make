# Empty dependencies file for omnc_galois.
# This may be replaced when dependencies are built.

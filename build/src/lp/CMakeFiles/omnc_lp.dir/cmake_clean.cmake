file(REMOVE_RECURSE
  "CMakeFiles/omnc_lp.dir/simplex.cpp.o"
  "CMakeFiles/omnc_lp.dir/simplex.cpp.o.d"
  "libomnc_lp.a"
  "libomnc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

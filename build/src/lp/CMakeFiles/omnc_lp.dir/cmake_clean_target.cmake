file(REMOVE_RECURSE
  "libomnc_lp.a"
)

# Empty dependencies file for omnc_lp.
# This may be replaced when dependencies are built.

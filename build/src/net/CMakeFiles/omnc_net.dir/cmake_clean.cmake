file(REMOVE_RECURSE
  "CMakeFiles/omnc_net.dir/mac.cpp.o"
  "CMakeFiles/omnc_net.dir/mac.cpp.o.d"
  "CMakeFiles/omnc_net.dir/phy_model.cpp.o"
  "CMakeFiles/omnc_net.dir/phy_model.cpp.o.d"
  "CMakeFiles/omnc_net.dir/topology.cpp.o"
  "CMakeFiles/omnc_net.dir/topology.cpp.o.d"
  "libomnc_net.a"
  "libomnc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

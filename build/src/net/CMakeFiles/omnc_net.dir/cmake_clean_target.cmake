file(REMOVE_RECURSE
  "libomnc_net.a"
)

# Empty compiler generated dependencies file for omnc_net.
# This may be replaced when dependencies are built.

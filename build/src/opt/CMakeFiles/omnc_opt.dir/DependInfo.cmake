
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/multi_unicast.cpp" "src/opt/CMakeFiles/omnc_opt.dir/multi_unicast.cpp.o" "gcc" "src/opt/CMakeFiles/omnc_opt.dir/multi_unicast.cpp.o.d"
  "/root/repo/src/opt/rate_control.cpp" "src/opt/CMakeFiles/omnc_opt.dir/rate_control.cpp.o" "gcc" "src/opt/CMakeFiles/omnc_opt.dir/rate_control.cpp.o.d"
  "/root/repo/src/opt/sunicast.cpp" "src/opt/CMakeFiles/omnc_opt.dir/sunicast.cpp.o" "gcc" "src/opt/CMakeFiles/omnc_opt.dir/sunicast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/omnc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/omnc_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/omnc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omnc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omnc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

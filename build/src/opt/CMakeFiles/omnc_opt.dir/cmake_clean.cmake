file(REMOVE_RECURSE
  "CMakeFiles/omnc_opt.dir/multi_unicast.cpp.o"
  "CMakeFiles/omnc_opt.dir/multi_unicast.cpp.o.d"
  "CMakeFiles/omnc_opt.dir/rate_control.cpp.o"
  "CMakeFiles/omnc_opt.dir/rate_control.cpp.o.d"
  "CMakeFiles/omnc_opt.dir/sunicast.cpp.o"
  "CMakeFiles/omnc_opt.dir/sunicast.cpp.o.d"
  "libomnc_opt.a"
  "libomnc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libomnc_opt.a"
)

# Empty dependencies file for omnc_opt.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/coded_base.cpp" "src/protocols/CMakeFiles/omnc_protocols.dir/coded_base.cpp.o" "gcc" "src/protocols/CMakeFiles/omnc_protocols.dir/coded_base.cpp.o.d"
  "/root/repo/src/protocols/etx_routing.cpp" "src/protocols/CMakeFiles/omnc_protocols.dir/etx_routing.cpp.o" "gcc" "src/protocols/CMakeFiles/omnc_protocols.dir/etx_routing.cpp.o.d"
  "/root/repo/src/protocols/more.cpp" "src/protocols/CMakeFiles/omnc_protocols.dir/more.cpp.o" "gcc" "src/protocols/CMakeFiles/omnc_protocols.dir/more.cpp.o.d"
  "/root/repo/src/protocols/multi_unicast.cpp" "src/protocols/CMakeFiles/omnc_protocols.dir/multi_unicast.cpp.o" "gcc" "src/protocols/CMakeFiles/omnc_protocols.dir/multi_unicast.cpp.o.d"
  "/root/repo/src/protocols/oldmore.cpp" "src/protocols/CMakeFiles/omnc_protocols.dir/oldmore.cpp.o" "gcc" "src/protocols/CMakeFiles/omnc_protocols.dir/oldmore.cpp.o.d"
  "/root/repo/src/protocols/omnc.cpp" "src/protocols/CMakeFiles/omnc_protocols.dir/omnc.cpp.o" "gcc" "src/protocols/CMakeFiles/omnc_protocols.dir/omnc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coding/CMakeFiles/omnc_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/omnc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/omnc_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/omnc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omnc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omnc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/galois/CMakeFiles/omnc_galois.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/omnc_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/omnc_protocols.dir/coded_base.cpp.o"
  "CMakeFiles/omnc_protocols.dir/coded_base.cpp.o.d"
  "CMakeFiles/omnc_protocols.dir/etx_routing.cpp.o"
  "CMakeFiles/omnc_protocols.dir/etx_routing.cpp.o.d"
  "CMakeFiles/omnc_protocols.dir/more.cpp.o"
  "CMakeFiles/omnc_protocols.dir/more.cpp.o.d"
  "CMakeFiles/omnc_protocols.dir/multi_unicast.cpp.o"
  "CMakeFiles/omnc_protocols.dir/multi_unicast.cpp.o.d"
  "CMakeFiles/omnc_protocols.dir/oldmore.cpp.o"
  "CMakeFiles/omnc_protocols.dir/oldmore.cpp.o.d"
  "CMakeFiles/omnc_protocols.dir/omnc.cpp.o"
  "CMakeFiles/omnc_protocols.dir/omnc.cpp.o.d"
  "libomnc_protocols.a"
  "libomnc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

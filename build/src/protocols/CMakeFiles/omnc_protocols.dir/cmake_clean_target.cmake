file(REMOVE_RECURSE
  "libomnc_protocols.a"
)

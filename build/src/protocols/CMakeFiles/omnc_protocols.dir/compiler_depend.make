# Empty compiler generated dependencies file for omnc_protocols.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/etx.cpp" "src/routing/CMakeFiles/omnc_routing.dir/etx.cpp.o" "gcc" "src/routing/CMakeFiles/omnc_routing.dir/etx.cpp.o.d"
  "/root/repo/src/routing/link_prober.cpp" "src/routing/CMakeFiles/omnc_routing.dir/link_prober.cpp.o" "gcc" "src/routing/CMakeFiles/omnc_routing.dir/link_prober.cpp.o.d"
  "/root/repo/src/routing/node_selection.cpp" "src/routing/CMakeFiles/omnc_routing.dir/node_selection.cpp.o" "gcc" "src/routing/CMakeFiles/omnc_routing.dir/node_selection.cpp.o.d"
  "/root/repo/src/routing/path_count.cpp" "src/routing/CMakeFiles/omnc_routing.dir/path_count.cpp.o" "gcc" "src/routing/CMakeFiles/omnc_routing.dir/path_count.cpp.o.d"
  "/root/repo/src/routing/shortest_path.cpp" "src/routing/CMakeFiles/omnc_routing.dir/shortest_path.cpp.o" "gcc" "src/routing/CMakeFiles/omnc_routing.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/omnc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omnc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omnc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

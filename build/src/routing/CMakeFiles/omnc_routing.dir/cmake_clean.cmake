file(REMOVE_RECURSE
  "CMakeFiles/omnc_routing.dir/etx.cpp.o"
  "CMakeFiles/omnc_routing.dir/etx.cpp.o.d"
  "CMakeFiles/omnc_routing.dir/link_prober.cpp.o"
  "CMakeFiles/omnc_routing.dir/link_prober.cpp.o.d"
  "CMakeFiles/omnc_routing.dir/node_selection.cpp.o"
  "CMakeFiles/omnc_routing.dir/node_selection.cpp.o.d"
  "CMakeFiles/omnc_routing.dir/path_count.cpp.o"
  "CMakeFiles/omnc_routing.dir/path_count.cpp.o.d"
  "CMakeFiles/omnc_routing.dir/shortest_path.cpp.o"
  "CMakeFiles/omnc_routing.dir/shortest_path.cpp.o.d"
  "libomnc_routing.a"
  "libomnc_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libomnc_routing.a"
)

# Empty dependencies file for omnc_routing.
# This may be replaced when dependencies are built.

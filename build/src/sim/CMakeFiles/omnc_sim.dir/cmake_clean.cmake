file(REMOVE_RECURSE
  "CMakeFiles/omnc_sim.dir/simulator.cpp.o"
  "CMakeFiles/omnc_sim.dir/simulator.cpp.o.d"
  "libomnc_sim.a"
  "libomnc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omnc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

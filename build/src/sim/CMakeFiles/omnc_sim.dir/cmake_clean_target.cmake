file(REMOVE_RECURSE
  "libomnc_sim.a"
)

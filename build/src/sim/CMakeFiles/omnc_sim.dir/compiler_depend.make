# Empty compiler generated dependencies file for omnc_sim.
# This may be replaced when dependencies are built.

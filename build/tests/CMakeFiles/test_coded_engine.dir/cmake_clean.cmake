file(REMOVE_RECURSE
  "CMakeFiles/test_coded_engine.dir/test_coded_engine.cpp.o"
  "CMakeFiles/test_coded_engine.dir/test_coded_engine.cpp.o.d"
  "test_coded_engine"
  "test_coded_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coded_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

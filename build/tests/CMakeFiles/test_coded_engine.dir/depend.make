# Empty dependencies file for test_coded_engine.
# This may be replaced when dependencies are built.

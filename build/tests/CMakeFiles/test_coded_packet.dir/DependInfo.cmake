
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_coded_packet.cpp" "tests/CMakeFiles/test_coded_packet.dir/test_coded_packet.cpp.o" "gcc" "tests/CMakeFiles/test_coded_packet.dir/test_coded_packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/omnc_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/omnc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/omnc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/omnc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/omnc_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/omnc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omnc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/omnc_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/galois/CMakeFiles/omnc_galois.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omnc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

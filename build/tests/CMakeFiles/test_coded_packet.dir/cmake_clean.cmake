file(REMOVE_RECURSE
  "CMakeFiles/test_coded_packet.dir/test_coded_packet.cpp.o"
  "CMakeFiles/test_coded_packet.dir/test_coded_packet.cpp.o.d"
  "test_coded_packet"
  "test_coded_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coded_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_coded_packet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_coding_roundtrip.dir/test_coding_roundtrip.cpp.o"
  "CMakeFiles/test_coding_roundtrip.dir/test_coding_roundtrip.cpp.o.d"
  "test_coding_roundtrip"
  "test_coding_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coding_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_coding_roundtrip.
# This may be replaced when dependencies are built.

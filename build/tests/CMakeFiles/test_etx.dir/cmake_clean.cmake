file(REMOVE_RECURSE
  "CMakeFiles/test_etx.dir/test_etx.cpp.o"
  "CMakeFiles/test_etx.dir/test_etx.cpp.o.d"
  "test_etx"
  "test_etx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_etx.
# This may be replaced when dependencies are built.

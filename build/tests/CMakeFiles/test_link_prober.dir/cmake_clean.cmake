file(REMOVE_RECURSE
  "CMakeFiles/test_link_prober.dir/test_link_prober.cpp.o"
  "CMakeFiles/test_link_prober.dir/test_link_prober.cpp.o.d"
  "test_link_prober"
  "test_link_prober.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

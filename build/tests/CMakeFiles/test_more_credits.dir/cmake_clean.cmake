file(REMOVE_RECURSE
  "CMakeFiles/test_more_credits.dir/test_more_credits.cpp.o"
  "CMakeFiles/test_more_credits.dir/test_more_credits.cpp.o.d"
  "test_more_credits"
  "test_more_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_more_credits.
# This may be replaced when dependencies are built.

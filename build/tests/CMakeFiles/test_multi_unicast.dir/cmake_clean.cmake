file(REMOVE_RECURSE
  "CMakeFiles/test_multi_unicast.dir/test_multi_unicast.cpp.o"
  "CMakeFiles/test_multi_unicast.dir/test_multi_unicast.cpp.o.d"
  "test_multi_unicast"
  "test_multi_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_multi_unicast.
# This may be replaced when dependencies are built.

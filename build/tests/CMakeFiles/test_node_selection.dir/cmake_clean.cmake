file(REMOVE_RECURSE
  "CMakeFiles/test_node_selection.dir/test_node_selection.cpp.o"
  "CMakeFiles/test_node_selection.dir/test_node_selection.cpp.o.d"
  "test_node_selection"
  "test_node_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

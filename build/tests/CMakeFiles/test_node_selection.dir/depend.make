# Empty dependencies file for test_node_selection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_oldmore.dir/test_oldmore.cpp.o"
  "CMakeFiles/test_oldmore.dir/test_oldmore.cpp.o.d"
  "test_oldmore"
  "test_oldmore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oldmore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_oldmore.
# This may be replaced when dependencies are built.

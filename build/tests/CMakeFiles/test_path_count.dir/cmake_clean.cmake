file(REMOVE_RECURSE
  "CMakeFiles/test_path_count.dir/test_path_count.cpp.o"
  "CMakeFiles/test_path_count.dir/test_path_count.cpp.o.d"
  "test_path_count"
  "test_path_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

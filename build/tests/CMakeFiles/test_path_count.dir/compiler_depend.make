# Empty compiler generated dependencies file for test_path_count.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/test_phy.cpp.o"
  "CMakeFiles/test_phy.dir/test_phy.cpp.o.d"
  "test_phy"
  "test_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_probed.dir/test_probed.cpp.o"
  "CMakeFiles/test_probed.dir/test_probed.cpp.o.d"
  "test_probed"
  "test_probed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_probed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_recoder.dir/test_recoder.cpp.o"
  "CMakeFiles/test_recoder.dir/test_recoder.cpp.o.d"
  "test_recoder"
  "test_recoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

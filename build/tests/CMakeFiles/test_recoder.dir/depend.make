# Empty dependencies file for test_recoder.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rref.dir/test_rref.cpp.o"
  "CMakeFiles/test_rref.dir/test_rref.cpp.o.d"
  "test_rref"
  "test_rref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

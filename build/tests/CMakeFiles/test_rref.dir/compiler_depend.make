# Empty compiler generated dependencies file for test_rref.
# This may be replaced when dependencies are built.

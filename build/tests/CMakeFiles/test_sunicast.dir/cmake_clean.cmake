file(REMOVE_RECURSE
  "CMakeFiles/test_sunicast.dir/test_sunicast.cpp.o"
  "CMakeFiles/test_sunicast.dir/test_sunicast.cpp.o.d"
  "test_sunicast"
  "test_sunicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sunicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

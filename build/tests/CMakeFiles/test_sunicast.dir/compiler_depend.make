# Empty compiler generated dependencies file for test_sunicast.
# This may be replaced when dependencies are built.

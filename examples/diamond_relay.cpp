// Runs all four protocols on the classic two-relay diamond and prints a
// side-by-side comparison — a minimal version of the paper's evaluation.
//
//   ./diamond_relay [--sim-seconds 120] [--seed 7]
#include <cstdio>

#include "coding/coded_packet.h"
#include "common/options.h"
#include "common/table.h"
#include "net/topology.h"
#include "protocols/etx_routing.h"
#include "protocols/more.h"
#include "protocols/oldmore.h"
#include "protocols/omnc.h"
#include "routing/node_selection.h"

using namespace omnc;
using namespace omnc::protocols;

int main(int argc, char** argv) {
  const Options options(argc, argv);

  // S -> {u, v} -> T: a strong and a weak relay plus a weak shortcut.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  auto link = [&](int a, int b, double q) { p[a][b] = p[b][a] = q; };
  link(0, 1, 0.8);
  link(0, 2, 0.5);
  link(1, 3, 0.7);
  link(2, 3, 0.9);
  link(0, 3, 0.1);
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);

  ProtocolConfig config;
  config.coding.generation_blocks = 16;
  config.coding.block_bytes = 256;
  config.mac.capacity_bytes_per_s = 2e4;
  config.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                          config.coding.generation_blocks +
                          config.coding.block_bytes;
  config.cbr_bytes_per_s = 1e4;
  config.max_sim_seconds = options.get_double("sim-seconds", 120.0);
  config.seed = options.get_seed("seed", 7);

  std::printf("diamond topology: S=0 -> {u=1, v=2} -> T=3, %s fading, %s\n\n",
              config.mac.fading.enabled ? "bursty" : "no",
              "CSMA contention MAC");

  EtxRoutingProtocol etx(topo, 0, 3, config);
  const SessionResult r_etx = etx.run();
  std::printf("ETX route:");
  for (net::NodeId n : etx.route()) std::printf(" %d", n);
  std::printf("\n");

  OmncProtocol omnc(topo, graph, config, OmncConfig{});
  const SessionResult r_omnc = omnc.run();
  std::printf("OMNC rates (B/s):");
  for (double b : omnc.rates()) std::printf(" %.0f", b);
  std::printf("  (rate control: %d iterations)\n\n", r_omnc.rc_iterations);

  MoreProtocol more(topo, graph, config, MoreConfig{});
  const SessionResult r_more = more.run();
  OldMoreProtocol oldmore(topo, graph, config, OldMoreConfig{});
  const SessionResult r_old = oldmore.run();

  TextTable table({"protocol", "throughput B/s", "generations", "gain vs ETX",
                   "avg queue", "transmissions"});
  auto add = [&](const char* name, const SessionResult& r) {
    const double gain =
        r_etx.throughput_bytes_per_s > 0
            ? r.throughput_per_generation / r_etx.throughput_bytes_per_s
            : 0.0;
    table.add_row({name, TextTable::fmt(r.throughput_per_generation, 0),
                   std::to_string(r.generations_completed),
                   TextTable::fmt(gain, 2), TextTable::fmt(r.mean_queue, 2),
                   std::to_string(r.transmissions)});
  };
  table.add_row({"ETX", TextTable::fmt(r_etx.throughput_bytes_per_s, 0), "-",
                 "1.00", TextTable::fmt(r_etx.mean_queue, 2),
                 std::to_string(r_etx.transmissions)});
  add("OMNC", r_omnc);
  add("MORE", r_more);
  add("oldMORE", r_old);
  std::printf("%s", table.render().c_str());
  return 0;
}

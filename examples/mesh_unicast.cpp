// A full mesh scenario: deploy a random lossy mesh, pick a multi-hop unicast
// session, run OMNC against the ETX baseline, and print the whole pipeline's
// intermediate artifacts (selection, rates, throughput).
//
//   ./mesh_unicast [--nodes 300] [--seed 11] [--sim-seconds 150]
#include <cstdio>

#include "coding/coded_packet.h"
#include "common/options.h"
#include "common/table.h"
#include "experiments/runner.h"
#include "experiments/workload.h"
#include "opt/sunicast.h"
#include "routing/etx.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);

  WorkloadConfig wc;
  wc.deployment.nodes = static_cast<int>(options.get_int("nodes", 300));
  wc.sessions = 1;
  wc.seed = options.get_seed("seed", 11);
  const auto sessions = generate_workload(wc);
  const SessionSpec& session = sessions.front();

  std::printf("deployed %d nodes, %zu links, mean link quality %.2f\n",
              session.topology->node_count(), session.topology->link_count(),
              session.topology->mean_link_probability());
  std::printf("session %d -> %d: min-ETX route has %d hops\n", session.src,
              session.dst, session.hops);
  std::printf("node selection kept %d forwarders, %zu DAG edges, ETX "
              "distance of source %.2f\n\n",
              session.graph.size(), session.graph.edges.size(),
              session.graph.etx_to_dst[static_cast<std::size_t>(
                  session.graph.source)]);

  RunConfig rc;
  rc.protocol.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                               rc.protocol.coding.generation_blocks +
                               rc.protocol.coding.block_bytes;
  rc.protocol.max_sim_seconds = options.get_double("sim-seconds", 150.0);
  rc.solve_lp = true;
  const ComparisonResult result = run_comparison(session, rc);

  TextTable table({"metric", "value"});
  table.add_row({"sUnicast LP optimum (B/s)", TextTable::fmt(result.lp_gamma, 0)});
  table.add_row({"rate-control prediction (B/s)",
                 TextTable::fmt(result.omnc.predicted_gamma, 0)});
  table.add_row({"rate-control iterations",
                 std::to_string(result.omnc.rc_iterations)});
  table.add_row({"OMNC emulated throughput (B/s)",
                 TextTable::fmt(result.omnc.throughput_per_generation, 0)});
  table.add_row({"MORE emulated throughput (B/s)",
                 TextTable::fmt(result.more.throughput_per_generation, 0)});
  table.add_row({"oldMORE emulated throughput (B/s)",
                 TextTable::fmt(result.oldmore.throughput_per_generation, 0)});
  table.add_row({"ETX routing throughput (B/s)",
                 TextTable::fmt(result.etx.throughput_bytes_per_s, 0)});
  table.add_row({"OMNC gain vs ETX", TextTable::fmt(result.gain_omnc, 2)});
  table.add_row({"MORE gain vs ETX", TextTable::fmt(result.gain_more, 2)});
  table.add_row({"OMNC avg queue", TextTable::fmt(result.omnc.mean_queue, 2)});
  table.add_row({"MORE avg queue", TextTable::fmt(result.more.mean_queue, 2)});
  table.add_row({"OMNC node utility",
                 TextTable::fmt(result.omnc.node_utility_ratio, 2)});
  table.add_row({"OMNC path utility",
                 TextTable::fmt(result.omnc.path_utility_ratio, 2)});
  std::printf("%s", table.render().c_str());
  return 0;
}

// Two concurrent unicast sessions sharing one lossy mesh — the
// multiple-unicast extension of OMNC (paper, Sec. 6).
//
//   ./multi_unicast [--nodes 200] [--seed 3] [--sim-seconds 150]
#include <cstdio>

#include "coding/coded_packet.h"
#include "common/options.h"
#include "common/table.h"
#include "experiments/workload.h"
#include "opt/multi_unicast.h"
#include "protocols/multi_unicast.h"

using namespace omnc;
using namespace omnc::experiments;

int main(int argc, char** argv) {
  const Options options(argc, argv);

  WorkloadConfig wc;
  wc.deployment.nodes = static_cast<int>(options.get_int("nodes", 200));
  wc.sessions = 2;
  wc.seed = options.get_seed("seed", 3);
  const auto specs = generate_workload(wc);
  const auto& topology = *specs[0].topology;

  std::printf("mesh: %d nodes, mean link quality %.2f\n",
              topology.node_count(), topology.mean_link_probability());
  for (int s = 0; s < 2; ++s) {
    std::printf("session %d: %d -> %d (%d hops, %d selected forwarders)\n", s,
                specs[static_cast<std::size_t>(s)].src,
                specs[static_cast<std::size_t>(s)].dst,
                specs[static_cast<std::size_t>(s)].hops,
                specs[static_cast<std::size_t>(s)].graph.size());
  }

  std::vector<const routing::SessionGraph*> graphs = {&specs[0].graph,
                                                      &specs[1].graph};

  protocols::MultiUnicastConfig config;
  config.protocol.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                                   config.protocol.coding.generation_blocks +
                                   config.protocol.coding.block_bytes;
  config.protocol.max_sim_seconds = options.get_double("sim-seconds", 150.0);
  config.protocol.seed = specs[0].seed;

  const auto lp = opt::solve_multi_sunicast(
      topology, graphs, config.protocol.mac.capacity_bytes_per_s);
  protocols::MultiUnicastOmnc runner(topology, graphs, config);
  const auto result = runner.run();

  TextTable table({"metric", "session 0", "session 1"});
  table.add_row({"LP max-min share (B/s)",
                 TextTable::fmt(lp.feasible ? lp.gamma[0] : 0.0, 0),
                 TextTable::fmt(lp.feasible ? lp.gamma[1] : 0.0, 0)});
  table.add_row(
      {"emulated throughput (B/s)",
       TextTable::fmt(result.sessions[0].throughput_per_generation, 0),
       TextTable::fmt(result.sessions[1].throughput_per_generation, 0)});
  table.add_row({"generations decoded",
                 std::to_string(result.sessions[0].generations_completed),
                 std::to_string(result.sessions[1].generations_completed)});
  std::printf("%s", table.render().c_str());
  std::printf("\njoint rate control: %s in %d iterations; aggregate %.0f "
              "B/s, floor %.0f B/s\n",
              result.rc_converged ? "converged" : "hit the cap",
              result.rc_iterations, result.aggregate_throughput,
              result.min_throughput);
  return 0;
}

// Quickstart: random linear coding end to end in ~60 lines.
//
// Encodes a message at a source, loses packets on the way, re-encodes at a
// relay, and decodes progressively at the destination — the coding core the
// OMNC protocol is built on.
//
//   ./quickstart [--loss 0.4]
#include <cstdio>
#include <cstring>
#include <string>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/recoder.h"
#include "common/options.h"
#include "common/rng.h"

using namespace omnc;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const double loss = options.get_double("loss", 0.4);

  // The message to ship: grouped into a generation of 8 blocks x 32 bytes.
  const std::string message =
      "Optimized Multipath Network Coding pushes random linear combinations "
      "of data blocks over every useful path; any n independent coded "
      "packets reconstruct the generation.";
  coding::CodingParams params{8, 32};
  const auto generation = coding::Generation::from_bytes(
      0, params,
      {reinterpret_cast<const std::uint8_t*>(message.data()), message.size()});

  coding::SourceEncoder source(generation, /*session_id=*/1);
  coding::Recoder relay(params, 1, 0);
  coding::ProgressiveDecoder destination(params, 0);
  Rng rng(7);

  int source_tx = 0;
  int relay_tx = 0;
  while (!destination.complete()) {
    // Source broadcasts a fresh random combination; the relay overhears it
    // with probability (1 - loss).
    const coding::CodedPacket pkt = source.next_packet(rng);
    ++source_tx;
    if (!rng.chance(loss)) relay.offer(pkt);
    // The relay re-encodes whatever it holds and broadcasts onward.
    if (relay.can_send()) {
      ++relay_tx;
      if (!rng.chance(loss)) {
        const bool innovative = destination.offer(relay.recode(rng));
        if (innovative) {
          std::printf("destination rank %2zu/%u after %d source + %d relay "
                      "transmissions\n",
                      destination.rank(), params.generation_blocks, source_tx,
                      relay_tx);
        }
      }
    }
  }

  const auto bytes = destination.recover();
  const std::string recovered(reinterpret_cast<const char*>(bytes.data()),
                              message.size());
  std::printf("\nloss rate %.0f%%, no retransmissions, no feedback:\n  \"%s\"\n",
              loss * 100.0, recovered.c_str());
  std::printf("\nround trip %s\n",
              recovered == message ? "EXACT — generation recovered" : "FAILED");
  return recovered == message ? 0 : 1;
}

// Demonstrates the paper's core contribution in isolation: the distributed
// rate control algorithm of Table 1 converging on a hand-tagged topology,
// compared against the centralized sUnicast LP it decomposes.
//
//   ./rate_control_demo [--capacity 1e5] [--trace]
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

using namespace omnc;

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const double capacity = options.get_double("capacity", 1e5);

  // S --> {u, v, w} --> T with mixed-quality links and a weak shortcut.
  //           u(0.9->0.5)    the numbers are one-way reception
  //   S ----- v(0.6->0.8)    probabilities; everything within range
  //           w(0.4->0.9)    competes for the same channel.
  std::vector<std::vector<double>> p(5, std::vector<double>(5, 0.0));
  auto link = [&](int a, int b, double q) { p[a][b] = p[b][a] = q; };
  link(0, 1, 0.9);
  link(0, 2, 0.6);
  link(0, 3, 0.4);
  link(1, 4, 0.5);
  link(2, 4, 0.8);
  link(3, 4, 0.9);
  link(0, 4, 0.1);  // weak opportunistic shortcut
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 4);
  std::printf("session graph: %d nodes, %zu directed DAG edges\n\n",
              graph.size(), graph.edges.size());

  opt::RateControlParams params;
  params.capacity = capacity;
  opt::DistributedRateControl controller(graph, params);
  opt::IterationTrace trace;
  const opt::RateControlResult result = controller.run(&trace);

  if (options.get_bool("trace", false)) {
    std::printf("iter");
    for (int v = 0; v < graph.size(); ++v) {
      std::printf("  b[%d]", graph.node_id(v));
    }
    std::printf("\n");
    for (std::size_t t = 0; t < trace.b.size(); t += 10) {
      std::printf("%4zu", t + 1);
      for (double b : trace.b[t]) std::printf(" %6.0f", b);
      std::printf("\n");
    }
  }

  const opt::SUnicastSolution lp = opt::solve_sunicast(graph, capacity);
  TextTable table({"node", "distributed b (B/s)", "centralized LP b (B/s)"});
  for (int v = 0; v < graph.size(); ++v) {
    table.add_row({std::to_string(graph.node_id(v)),
                   TextTable::fmt(result.b[static_cast<std::size_t>(v)], 0),
                   TextTable::fmt(lp.b[static_cast<std::size_t>(v)], 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("converged: %s after %d iterations, %zu control messages\n",
              result.converged ? "yes" : "no", result.iterations,
              result.messages);
  std::printf("throughput: distributed estimate %.0f B/s vs LP optimum %.0f "
              "B/s\n",
              result.gamma, lp.gamma);
  std::printf("broadcast load factor of recovered rates: %.2f (<= 1 means a\n"
              "collision-free schedule exists)\n",
              opt::broadcast_load_factor(graph, result.b, capacity));
  return 0;
}

#include "codes/code_spec.h"

#include <algorithm>
#include <cstdlib>

namespace omnc::codes {

const char* CodeSpec::name() const {
  switch (family) {
    case CodeFamily::kDense:
      return "dense";
    case CodeFamily::kSystematic:
      return "systematic";
    case CodeFamily::kBanded:
      return "banded";
  }
  return "dense";
}

std::string CodeSpec::selector() const {
  if (family == CodeFamily::kBanded && band_width != 0) {
    return std::string("banded:") + std::to_string(band_width);
  }
  return name();
}

CodeSpec CodeSpec::clamped_for(const coding::CodingParams& params) const {
  CodeSpec spec = *this;
  if (spec.family != CodeFamily::kBanded) {
    spec.band_width = 0;
    return spec;
  }
  const std::uint16_t n = params.generation_blocks;
  if (spec.band_width == 0) {
    spec.band_width = std::max<std::uint16_t>(1, n / 4);
  }
  spec.band_width = std::clamp<std::uint16_t>(spec.band_width, 1, n);
  return spec;
}

bool CodeSpec::parse(const std::string& text, CodeSpec* out) {
  if (text == "dense") {
    *out = dense();
    return true;
  }
  if (text == "systematic") {
    *out = systematic();
    return true;
  }
  if (text == "banded") {
    *out = banded(0);
    return true;
  }
  const std::string prefix = "banded:";
  if (text.rfind(prefix, 0) == 0) {
    const std::string digits = text.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const long width = std::strtol(digits.c_str(), nullptr, 10);
    if (width < 1 || width > 0xFFFF) return false;
    *out = banded(static_cast<std::uint16_t>(width));
    return true;
  }
  return false;
}

CodeSpec CodeSpec::from_env() {
  CodeSpec spec = dense();
  if (const char* family = std::getenv("OMNC_CODE_FAMILY")) {
    if (!parse(family, &spec)) return dense();
  }
  if (spec.family == CodeFamily::kBanded && spec.band_width == 0) {
    if (const char* width = std::getenv("OMNC_BAND_WIDTH")) {
      const long w = std::strtol(width, nullptr, 10);
      if (w >= 1 && w <= 0xFFFF) spec.band_width = static_cast<std::uint16_t>(w);
    }
  }
  return spec;
}

}  // namespace omnc::codes

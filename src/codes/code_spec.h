// Code-family selection seam (DESIGN.md §15).
//
// A CodeSpec names the random-linear code family a session runs — dense RLNC
// (the paper's baseline), systematic RLNC (originals first, dense repairs
// after), or banded RLNC (coefficients confined to a sliding window) — plus
// the family's shape parameters.  Everything above the raw coding primitives
// (NodeRuntime, SessionEngine, omnc_emu, the benches) takes a CodeSpec and
// threads it down to the family-parameterized encoder/recoder/decoder in
// family_runtime.h; the dense spec reproduces the pre-family pipeline
// byte-for-byte, RNG draw-for-draw.
#pragma once

#include <cstdint>
#include <string>

#include "coding/generation.h"

namespace omnc::codes {

enum class CodeFamily : std::uint8_t {
  kDense = 0,
  kSystematic = 1,
  kBanded = 2,
};

struct CodeSpec {
  CodeFamily family = CodeFamily::kDense;
  /// Banded only: coefficient window width.  0 means auto — resolved to
  /// max(1, n/4) for the generation at hand by clamped_for().
  std::uint16_t band_width = 0;

  static CodeSpec dense() { return {}; }
  static CodeSpec systematic() { return {CodeFamily::kSystematic, 0}; }
  static CodeSpec banded(std::uint16_t width) {
    return {CodeFamily::kBanded, width};
  }

  bool is_dense() const { return family == CodeFamily::kDense; }

  /// Family name: "dense" | "systematic" | "banded".
  const char* name() const;

  /// Canonical selector text: the family name, plus ":<width>" for banded
  /// with an explicit band width.  parse() round-trips it.
  std::string selector() const;

  /// Resolves the spec against a concrete generation geometry: the band
  /// width auto-default (n/4) is applied and explicit widths are clamped to
  /// [1, n].  Non-banded specs pass through unchanged.
  CodeSpec clamped_for(const coding::CodingParams& params) const;

  /// Parses "dense", "systematic", "banded", or "banded:<width>".
  /// Returns false (leaving *out untouched) on anything else.
  static bool parse(const std::string& text, CodeSpec* out);

  /// Spec selected by the OMNC_CODE_FAMILY / OMNC_BAND_WIDTH environment
  /// variables, or dense() when unset or unparseable.  Only consulted by
  /// explicitly env-aware entry points (omnc_emu's default, the forced-
  /// family CI passes); library defaults are hard dense.
  static CodeSpec from_env();

  bool operator==(const CodeSpec&) const = default;
};

}  // namespace omnc::codes

#include "codes/family_runtime.h"

#include <cstring>

#include "common/assert.h"
#include "galois/region.h"

namespace omnc::codes {

// --- FamilyEncoder ---------------------------------------------------------

FamilyEncoder::FamilyEncoder(const coding::Generation& generation,
                             std::uint32_t session_id, const CodeSpec& spec)
    : dense_(generation, session_id),
      generation_(&generation),
      session_id_(session_id),
      spec_(spec.clamped_for(generation.params())) {}

void FamilyEncoder::next_packet_into(Rng& rng, coding::CodedPacket* out,
                                     coding::CodedStructure* structure) {
  const coding::CodingParams& params = generation_->params();
  const std::size_t n = params.generation_blocks;
  switch (spec_.family) {
    case CodeFamily::kDense:
      dense_.next_packet_into(rng, out);
      *structure = coding::CodedStructure::make_dense();
      return;
    case CodeFamily::kSystematic:
      if (next_uncoded_ < n) {
        // Original block, uncoded: zero RNG draws, zero GF work.
        const std::uint16_t index =
            static_cast<std::uint16_t>(next_uncoded_++);
        out->session_id = session_id_;
        out->generation_id = generation_->id();
        out->generation_blocks = params.generation_blocks;
        out->block_bytes = params.block_bytes;
        out->coefficients.assign(n, 0);
        out->coefficients[index] = 1;
        out->payload.resize(params.block_bytes);
        std::memcpy(out->payload.data(), generation_->block(index),
                    params.block_bytes);
        *structure = coding::CodedStructure::make_uncoded(index);
        return;
      }
      // Repairs are plain dense packets (n draws).
      dense_.next_packet_into(rng, out);
      *structure = coding::CodedStructure::make_dense();
      return;
    case CodeFamily::kBanded: {
      const std::size_t w = spec_.band_width;
      OMNC_ASSERT(w >= 1 && w <= n);
      // Pinned draws: exactly w bytes.  The window start slides cyclically
      // so every pivot column is covered once per cycle of n-w+1 packets; a
      // uniformly random start would leave the edge columns uncovered for
      // arbitrarily long (column 0 only appears when start == 0).
      const std::size_t positions = n - w + 1;
      const std::uint16_t start =
          static_cast<std::uint16_t>(band_seq_++ % positions);
      out->session_id = session_id_;
      out->generation_id = generation_->id();
      out->generation_blocks = params.generation_blocks;
      out->block_bytes = params.block_bytes;
      out->coefficients.assign(n, 0);
      bool nonzero = false;
      for (std::size_t i = 0; i < w; ++i) {
        const std::uint8_t c = rng.next_byte();
        out->coefficients[start + i] = c;
        nonzero |= (c != 0);
      }
      if (!nonzero) out->coefficients[start] = 1;
      out->payload.assign(params.block_bytes, 0);
      fold_ptrs_.resize(w);
      for (std::size_t i = 0; i < w; ++i) {
        fold_ptrs_[i] = generation_->block(start + i);
      }
      gf::region_axpy_many(out->payload.data(), fold_ptrs_.data(),
                           out->coefficients.data() + start, w,
                           params.block_bytes);
      *structure = coding::CodedStructure::make_window(
          start, static_cast<std::uint16_t>(w));
      return;
    }
  }
}

// --- FamilyRecoder ---------------------------------------------------------

FamilyRecoder::FamilyRecoder(const coding::CodingParams& params,
                             std::uint32_t session_id,
                             std::uint32_t generation_id, const CodeSpec& spec)
    : dense_(params, session_id, generation_id),
      params_(params),
      session_id_(session_id),
      spec_(spec.clamped_for(params)) {
  scratch_coeffs_.resize(params.generation_blocks);
}

bool FamilyRecoder::offer(const coding::CodedPacketView& view,
                          const coding::CodedStructure& structure) {
  if (structure.dense()) return dense_.offer(view);
  if (view.generation_id != generation_id()) return false;
  if (view.generation_blocks != params_.generation_blocks ||
      view.block_bytes != params_.block_bytes ||
      view.payload.size() != params_.block_bytes ||
      !structure.valid_for(view.generation_blocks)) {
    return false;
  }
  // Expand the compact coefficients to a dense row for the innovation
  // filter, which stays the single source of truth for rank.
  coding::expand_coefficients(structure, view.coefficients,
                              view.generation_blocks, scratch_coeffs_.data());
  coding::CodedPacketView dense_view = view;
  dense_view.coefficients =
      std::span<const std::uint8_t>(scratch_coeffs_.data(),
                                    params_.generation_blocks);
  if (!dense_.offer(dense_view)) return false;
  if (!spec_.is_dense()) {
    // Keep a verbatim copy so the structure survives this relay hop.
    StoredRow row;
    row.structure = structure;
    row.window.assign(view.coefficients.begin(), view.coefficients.end());
    row.payload.assign(view.payload.begin(), view.payload.end());
    forward_rows_.push_back(std::move(row));
  }
  return true;
}

void FamilyRecoder::recode_into(Rng& rng, coding::CodedPacket* out,
                                coding::CodedStructure* structure) {
  if (spec_.is_dense() || next_forward_ >= forward_rows_.size()) {
    dense_.recode_into(rng, out);
    *structure = coding::CodedStructure::make_dense();
    return;
  }
  // Structure-preserving forwarding: re-emit a stored structured row
  // verbatim, zero RNG draws.
  const StoredRow& row = forward_rows_[next_forward_++];
  out->session_id = session_id_;
  out->generation_id = generation_id();
  out->generation_blocks = params_.generation_blocks;
  out->block_bytes = params_.block_bytes;
  out->coefficients.assign(params_.generation_blocks, 0);
  coding::expand_coefficients(
      row.structure,
      std::span<const std::uint8_t>(row.window.data(), row.window.size()),
      params_.generation_blocks, out->coefficients.data());
  out->payload.assign(row.payload.begin(), row.payload.end());
  *structure = row.structure;
}

void FamilyRecoder::reset(std::uint32_t generation_id) {
  dense_.reset(generation_id);
  forward_rows_.clear();
  next_forward_ = 0;
}

// --- FamilyDecoder ---------------------------------------------------------

FamilyDecoder::FamilyDecoder(const coding::CodingParams& params,
                             std::uint32_t generation_id, const CodeSpec& spec)
    : params_(params), spec_(spec.clamped_for(params)) {
  if (spec_.is_dense()) {
    dense_.emplace(params, generation_id);
    scratch_coeffs_.resize(params.generation_blocks);
  } else {
    structured_.emplace(params, generation_id);
  }
}

FamilyDecoder::OfferResult FamilyDecoder::offer(
    const coding::CodedPacketView& view,
    const coding::CodedStructure& structure) {
  OfferResult result;
  if (dense_) {
    if (structure.dense()) {
      result.innovative = dense_->offer(view);
    } else {
      // A structured packet reaching a dense-spec decoder (mixed-family
      // peers): expand and decode; the structural fast path is lost but
      // correctness is not.
      if (view.generation_id != dense_->generation_id() ||
          !structure.valid_for(view.generation_blocks) ||
          view.generation_blocks != params_.generation_blocks ||
          view.block_bytes != params_.block_bytes) {
        return result;
      }
      coding::expand_coefficients(structure, view.coefficients,
                                  view.generation_blocks,
                                  scratch_coeffs_.data());
      coding::CodedPacketView dense_view = view;
      dense_view.coefficients = std::span<const std::uint8_t>(
          scratch_coeffs_.data(), params_.generation_blocks);
      result.innovative = dense_->offer(dense_view);
    }
    if (result.innovative) result.pivot = dense_->last_pivot();
    return result;
  }
  result.innovative = structured_->offer(view, structure);
  if (result.innovative) {
    result.pivot = structured_->last_pivot();
    result.uncoded =
        structure.kind == coding::CodedStructure::Kind::kUncoded &&
        result.pivot == static_cast<int>(structure.index);
  }
  return result;
}

std::uint32_t FamilyDecoder::generation_id() const {
  return dense_ ? dense_->generation_id() : structured_->generation_id();
}

std::size_t FamilyDecoder::rank() const {
  return dense_ ? dense_->rank() : structured_->rank();
}

bool FamilyDecoder::complete() const {
  return dense_ ? dense_->complete() : structured_->complete();
}

std::size_t FamilyDecoder::packets_seen() const {
  return dense_ ? dense_->packets_seen() : structured_->packets_seen();
}

std::vector<std::uint8_t> FamilyDecoder::recover() const {
  return dense_ ? dense_->recover() : structured_->recover();
}

std::size_t FamilyDecoder::recovered_size() const {
  return dense_ ? dense_->recovered_size() : structured_->recovered_size();
}

void FamilyDecoder::recover_into(std::span<std::uint8_t> out) const {
  if (dense_) {
    dense_->recover_into(out);
  } else {
    structured_->recover_into(out);
  }
}

void FamilyDecoder::reset(std::uint32_t generation_id) {
  if (dense_) {
    dense_->reset(generation_id);
  } else {
    structured_->reset(generation_id);
  }
}

const StructuredDecoder::Stats* FamilyDecoder::structured_stats() const {
  return structured_ ? &structured_->stats() : nullptr;
}

}  // namespace omnc::codes

// Family-parameterized encoder / recoder / decoder (DESIGN.md §15).
//
// These are the concrete seam behind CodeSpec: NodeRuntime instantiates one
// of each instead of the raw coding-layer classes, and every call carries a
// CodedStructure side channel describing how the emitted packet's
// coefficients were produced (so the wire layer can compress them and the
// receiving decoder can exploit them).
//
// Dense is the reference family: FamilyEncoder/FamilyRecoder/FamilyDecoder
// with a dense spec delegate to SourceEncoder / Recoder / ProgressiveDecoder
// with byte-identical outputs and RNG-draw-identical streams, so every
// pre-family baseline (det-clock traces, goodput snapshots, regression pins)
// is reproduced exactly.
//
// RNG draw counts are a pinned per-family invariant (per emitted packet):
//   dense encode         — n byte draws;
//   systematic original  — 0 draws;
//   systematic repair    — n byte draws (a dense packet);
//   banded               — w byte draws (the window start is not drawn: it
//                          slides cyclically over the n-w+1 positions with
//                          the encoder's packet sequence, so every pivot
//                          column is covered once per cycle — a uniformly
//                          random start would leave column 0 uncovered with
//                          probability (1-1/(n-w+1))^k after k packets);
//   dense recode         — rank() byte draws;
//   structured forward   — 0 draws (a stored row re-emitted verbatim).
// All-zero draws are repaired deterministically (never re-drawn).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "codes/code_spec.h"
#include "codes/structured_decoder.h"
#include "coding/coded_packet.h"
#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/generation.h"
#include "coding/recoder.h"
#include "common/rng.h"

namespace omnc::codes {

class FamilyEncoder {
 public:
  /// Borrows the generation; the caller keeps it alive.  The spec is
  /// clamped to the generation's geometry (band width auto/limits).
  FamilyEncoder(const coding::Generation& generation, std::uint32_t session_id,
                const CodeSpec& spec);

  /// Emits one packet and its structure.  Dense spec: byte- and draw-
  /// identical to SourceEncoder::next_packet_into, structure kDense.
  /// Systematic: the n originals in order (kUncoded), then dense repairs.
  /// Banded: a sliding-window combination (kWindow) whose start cycles
  /// deterministically over the n-w+1 positions.
  void next_packet_into(Rng& rng, coding::CodedPacket* out,
                        coding::CodedStructure* structure);

  std::uint32_t generation_id() const { return dense_.generation_id(); }
  const CodeSpec& spec() const { return spec_; }

 private:
  coding::SourceEncoder dense_;
  const coding::Generation* generation_;
  std::uint32_t session_id_;
  CodeSpec spec_;  // clamped
  std::uint32_t next_uncoded_ = 0;
  std::uint32_t band_seq_ = 0;  // banded window-start cycle position
  std::vector<const std::uint8_t*> fold_ptrs_;  // banded window fold scratch
};

class FamilyRecoder {
 public:
  FamilyRecoder(const coding::CodingParams& params, std::uint32_t session_id,
                std::uint32_t generation_id, const CodeSpec& spec);

  /// Considers an incoming packet (with its structure side channel).
  /// Returns true iff it was innovative.  Non-dense specs additionally keep
  /// a verbatim copy of innovative *structured* rows for structure-
  /// preserving forwarding.
  bool offer(const coding::CodedPacketView& view,
             const coding::CodedStructure& structure);

  bool can_send() const { return dense_.can_send(); }
  std::size_t rank() const { return dense_.rank(); }
  bool is_full() const { return dense_.is_full(); }
  std::uint32_t generation_id() const { return dense_.generation_id(); }

  /// Emits one packet.  Dense spec: delegates to Recoder::recode_into
  /// byte-for-byte.  Non-dense: stored structured rows are forwarded
  /// verbatim first (zero draws, structure preserved, so the compression
  /// and the downstream structured fast paths survive one relay hop); once
  /// drained, falls back to dense recoding over the full basis.
  void recode_into(Rng& rng, coding::CodedPacket* out,
                   coding::CodedStructure* structure);

  void reset(std::uint32_t generation_id);

 private:
  struct StoredRow {
    coding::CodedStructure structure;
    std::vector<std::uint8_t> window;  // explicit coefficients (kWindow)
    std::vector<std::uint8_t> payload;
  };

  coding::Recoder dense_;
  coding::CodingParams params_;
  std::uint32_t session_id_;
  CodeSpec spec_;
  std::vector<StoredRow> forward_rows_;  // non-dense spec only
  std::size_t next_forward_ = 0;
  std::vector<std::uint8_t> scratch_coeffs_;  // dense expansion for offers
};

class FamilyDecoder {
 public:
  FamilyDecoder(const coding::CodingParams& params,
                std::uint32_t generation_id, const CodeSpec& spec);

  struct OfferResult {
    bool innovative = false;
    int pivot = -1;       // pivot column claimed, -1 if rejected
    bool uncoded = false; // landed via the systematic zero-work fast path
  };

  OfferResult offer(const coding::CodedPacketView& view,
                    const coding::CodedStructure& structure);

  std::uint32_t generation_id() const;
  std::size_t rank() const;
  bool complete() const;
  std::size_t packets_seen() const;

  std::vector<std::uint8_t> recover() const;
  std::size_t recovered_size() const;
  void recover_into(std::span<std::uint8_t> out) const;
  void reset(std::uint32_t generation_id);

  /// Structured-decoder statistics; nullptr under the dense spec.
  const StructuredDecoder::Stats* structured_stats() const;

 private:
  coding::CodingParams params_;
  CodeSpec spec_;
  // Exactly one of the two is engaged, by spec.
  std::optional<coding::ProgressiveDecoder> dense_;
  std::optional<StructuredDecoder> structured_;
  std::vector<std::uint8_t> scratch_coeffs_;  // dense expansion fallback
};

}  // namespace omnc::codes

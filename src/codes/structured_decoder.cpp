#include "codes/structured_decoder.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"
#include "galois/gf256.h"
#include "galois/region.h"
#include "obs/registry.h"

namespace omnc::codes {

StructuredDecoder::StructuredDecoder(const coding::CodingParams& params,
                                     std::uint32_t generation_id)
    : params_(params), generation_id_(generation_id) {
  const std::size_t n = params_.generation_blocks;
  present_.assign(n, 0);
  begin_.assign(n, 0);
  end_.assign(n, 0);
  coeffs_.resize(n * n);
  payloads_.resize(n * params_.block_bytes);
  scratch_.resize(n);
  stats_.touched_lo = n;
  stats_.touched_hi = 0;
}

void StructuredDecoder::note_touch(std::size_t begin, std::size_t end) {
  OMNC_ASSERT(begin <= end && end <= params_.generation_blocks);
  stats_.touched_lo = std::min(stats_.touched_lo, begin);
  stats_.touched_hi = std::max(stats_.touched_hi, end);
}

bool StructuredDecoder::offer(const coding::CodedPacketView& view,
                              const coding::CodedStructure& structure) {
  OMNC_SCOPED_TIMER("codes/structured_offer");
  if (view.generation_id != generation_id_) return false;
  if (view.generation_blocks != params_.generation_blocks ||
      view.block_bytes != params_.block_bytes ||
      view.payload.size() != params_.block_bytes) {
    return false;
  }
  const std::size_t n = params_.generation_blocks;
  const std::size_t m = params_.block_bytes;
  if (!structure.valid_for(view.generation_blocks)) return false;
  switch (structure.kind) {
    case coding::CodedStructure::Kind::kDense:
      if (view.coefficients.size() != n) return false;
      break;
    case coding::CodedStructure::Kind::kWindow:
      if (view.coefficients.size() != structure.width) return false;
      break;
    case coding::CodedStructure::Kind::kUncoded:
      break;
  }
  ++stats_.offered;
  last_pivot_ = -1;
  if (complete()) return false;

  // The systematic fast path: an uncoded original whose pivot is free lands
  // with a single payload memcpy — no scratch row, no GF kernel calls.
  if (structure.kind == coding::CodedStructure::Kind::kUncoded &&
      !present_[structure.index]) {
    const std::size_t p = structure.index;
    row_coeffs(p)[p] = 1;
    std::memcpy(row_payload(p), view.payload.data(), m);
    begin_[p] = static_cast<std::uint16_t>(p);
    end_[p] = static_cast<std::uint16_t>(p + 1);
    present_[p] = 1;
    ++rank_;
    ++stats_.innovative;
    ++stats_.uncoded_hits;
    stats_.pivot_sum += p;
    stats_.max_window = std::max<std::size_t>(stats_.max_window, 1);
    last_pivot_ = static_cast<int>(p);
    return true;
  }

  // Stage the incoming row's live coefficient window into scratch.
  std::size_t b = 0;
  std::size_t e = 0;
  switch (structure.kind) {
    case coding::CodedStructure::Kind::kDense:
      b = 0;
      e = n;
      std::memcpy(scratch_.data(), view.coefficients.data(), n);
      break;
    case coding::CodedStructure::Kind::kWindow:
      b = structure.offset;
      e = b + structure.width;
      std::memcpy(scratch_.data() + b, view.coefficients.data(),
                  structure.width);
      break;
    case coding::CodedStructure::Kind::kUncoded:
      // Pivot occupied: fall back to the generic path with a unit row.
      b = structure.index;
      e = b + 1;
      scratch_[b] = 1;
      break;
  }
  // Trim to the actual support; a zero row is non-innovative outright.
  while (b < e && scratch_[b] == 0) ++b;
  while (e > b && scratch_[e - 1] == 0) --e;
  if (b == e) return false;

  // Forward-eliminate against the triangular basis, coefficients only.  The
  // payload fold is deferred: factors are recorded and applied in one
  // batched pass iff the row survives.
  pending_rows_.clear();
  pending_factors_.clear();
  std::size_t h = b;
  while (true) {
    while (b < e && scratch_[b] == 0) ++b;
    if (b == e) return false;  // reduced to zero: linearly dependent
    h = b;
    if (!present_[h]) break;  // free pivot found
    const std::uint8_t factor = scratch_[h];
    const std::size_t row_end = end_[h];
    if (row_end > e) {
      // The stored row is wider than the working window; the newly exposed
      // scratch region must start from zero before the axpy lands there.
      std::memset(scratch_.data() + e, 0, row_end - e);
      e = row_end;
    }
    // Stored heads are normalized to 1, so this zeroes scratch[h] exactly.
    note_touch(h, row_end);
    gf::region_axpy(scratch_.data() + h, row_coeffs(h) + h, factor,
                    row_end - h);
    pending_rows_.push_back(h);
    pending_factors_.push_back(factor);
  }

  // Install at pivot h: normalize the head to 1, store the window, then run
  // the deferred payload fold (same factor order as the coefficients).
  const std::uint8_t lead = scratch_[h];
  note_touch(h, e);
  if (lead != 1) {
    gf::region_mul(scratch_.data() + h, scratch_.data() + h, gf::inv(lead),
                   e - h);
  }
  std::memcpy(row_coeffs(h) + h, scratch_.data() + h, e - h);
  begin_[h] = static_cast<std::uint16_t>(h);
  end_[h] = static_cast<std::uint16_t>(e);
  present_[h] = 1;
  std::memcpy(row_payload(h), view.payload.data(), m);
  if (!pending_rows_.empty()) {
    axpy_srcs_.resize(pending_rows_.size());
    axpy_factors_.resize(pending_rows_.size());
    for (std::size_t k = 0; k < pending_rows_.size(); ++k) {
      axpy_srcs_[k] = row_payload(pending_rows_[k]);
      axpy_factors_[k] = pending_factors_[k];
    }
    gf::region_axpy_many(row_payload(h), axpy_srcs_.data(),
                         axpy_factors_.data(), axpy_srcs_.size(), m);
  }
  if (lead != 1) {
    gf::region_mul(row_payload(h), row_payload(h), gf::inv(lead), m);
  }
  ++rank_;
  ++stats_.innovative;
  stats_.pivot_sum += h;
  stats_.max_window = std::max(stats_.max_window, e - h);
  last_pivot_ = static_cast<int>(h);
  return true;
}

void StructuredDecoder::recover_into(std::span<std::uint8_t> out) const {
  OMNC_SCOPED_TIMER("codes/structured_recover");
  OMNC_ASSERT_MSG(complete(), "recover on an incomplete structured basis");
  OMNC_ASSERT(out.size() == params_.generation_bytes());
  const std::size_t n = params_.generation_blocks;
  const std::size_t m = params_.block_bytes;
  // Bottom-up back-substitution: row p's head is 1, so block p is the row
  // payload minus the already-solved blocks at the row's trailing columns.
  // Every read stays inside the row's stored window — a fully uncoded basis
  // degenerates to n memcpys with zero GF kernel calls.
  for (std::size_t p = n; p-- > 0;) {
    std::uint8_t* dst = out.data() + p * m;
    std::memcpy(dst, row_payload(p), m);
    const std::uint8_t* coeffs = row_coeffs(p);
    axpy_srcs_.clear();
    axpy_factors_.clear();
    for (std::size_t j = p + 1; j < end_[p]; ++j) {
      if (coeffs[j] != 0) {
        axpy_srcs_.push_back(out.data() + j * m);
        axpy_factors_.push_back(coeffs[j]);
      }
    }
    if (!axpy_srcs_.empty()) {
      gf::region_axpy_many(dst, axpy_srcs_.data(), axpy_factors_.data(),
                           axpy_srcs_.size(), m);
    }
  }
}

std::vector<std::uint8_t> StructuredDecoder::recover() const {
  std::vector<std::uint8_t> out(recovered_size());
  recover_into(std::span<std::uint8_t>(out));
  return out;
}

void StructuredDecoder::reset(std::uint32_t generation_id) {
  generation_id_ = generation_id;
  rank_ = 0;
  last_pivot_ = -1;
  std::fill(present_.begin(), present_.end(), 0);
  stats_ = Stats{};
  stats_.touched_lo = params_.generation_blocks;
  stats_.touched_hi = 0;
}

}  // namespace omnc::codes

// Structured decoder for systematic and banded code families (DESIGN.md §15).
//
// The dense ProgressiveDecoder keeps its basis in full reduced row-echelon
// form: every insert back-substitutes the new pivot out of every existing
// row, so insert cost is O(rank * g) coefficient bytes regardless of row
// structure.  Structured rows make that a waste — an uncoded systematic
// original is already a unit vector, and a banded row only ever has
// coefficients inside a narrow window.  This decoder is the CBD-style
// alternative: the basis is kept merely *upper-triangular* (one row per head
// column, head coefficient normalized to 1, no back-substitution at insert),
// each row remembers its live coefficient window [begin, end), and all
// elimination work is confined to window overlaps.  Recovery runs one
// back-substitution sweep from the last pivot to the first, again touching
// only each row's window.
//
// The two structural fast paths the code families buy:
//  - an uncoded original landing on a free pivot is a pure payload memcpy —
//    zero GF multiply kernels (the lossless systematic case decodes an
//    entire generation without a single region_mul/axpy);
//  - a banded row's insert and recovery cost O(window) per row instead of
//    O(g), so banded decode is ~g/w times cheaper than dense Gauss–Jordan.
//
// Payloads stay deferred exactly like the dense RREF: a rejected row's
// payload is never read, and an accepted row folds the recorded elimination
// factors through one batched region_axpy_many pass.
//
// Every coefficient kernel call is funnelled through one span-bounds helper
// that tracks the min/max column ever touched — the instrumented assertion
// behind the "banded decode never reads outside the band" property test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_packet.h"
#include "coding/generation.h"

namespace omnc::codes {

class StructuredDecoder {
 public:
  StructuredDecoder(const coding::CodingParams& params,
                    std::uint32_t generation_id);

  /// Absorbs a packet with its structural side channel.  Returns true if it
  /// was innovative.  Wrong-generation or geometry-mismatched packets are
  /// rejected.  The view's coefficient span must match the structure: all n
  /// for dense, the window bytes for kWindow, empty for kUncoded.
  bool offer(const coding::CodedPacketView& view,
             const coding::CodedStructure& structure);

  std::uint32_t generation_id() const { return generation_id_; }
  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == params_.generation_blocks; }
  std::size_t packets_seen() const { return stats_.offered; }
  std::size_t packets_innovative() const { return stats_.innovative; }

  /// Pivot column claimed by the last innovative offer, -1 otherwise.
  int last_pivot() const { return last_pivot_; }

  /// Back-substitutes the whole generation into `out` (generation_bytes()
  /// bytes, block-major).  Requires complete().
  void recover_into(std::span<std::uint8_t> out) const;

  std::vector<std::uint8_t> recover() const;
  std::size_t recovered_size() const { return params_.generation_bytes(); }

  /// Drops all state and retargets a new generation.
  void reset(std::uint32_t generation_id);

  struct Stats {
    std::size_t offered = 0;       // packets offered (right generation)
    std::size_t innovative = 0;    // rows that joined the basis
    std::size_t uncoded_hits = 0;  // uncoded originals landed by pure memcpy
    std::size_t pivot_sum = 0;     // sum of claimed pivot columns
    std::size_t max_window = 0;    // widest row window ever stored
    /// Column range ever touched by a coefficient kernel, [lo, hi); lo > hi
    /// means no coefficient arithmetic has happened at all.  The banded
    /// property test pins this range inside the offered bands.
    std::size_t touched_lo = 0;
    std::size_t touched_hi = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Row `p` of the coefficient arena (n bytes; live data in [begin, end)).
  std::uint8_t* row_coeffs(std::size_t p) {
    return coeffs_.data() + p * params_.generation_blocks;
  }
  const std::uint8_t* row_coeffs(std::size_t p) const {
    return coeffs_.data() + p * params_.generation_blocks;
  }
  std::uint8_t* row_payload(std::size_t p) {
    return payloads_.data() + p * params_.block_bytes;
  }
  const std::uint8_t* row_payload(std::size_t p) const {
    return payloads_.data() + p * params_.block_bytes;
  }

  /// Records that coefficient arithmetic is about to touch [begin, end).
  void note_touch(std::size_t begin, std::size_t end);

  coding::CodingParams params_;
  std::uint32_t generation_id_;
  std::size_t rank_ = 0;
  int last_pivot_ = -1;
  Stats stats_;

  std::vector<std::uint8_t> present_;   // per pivot column, 0/1
  std::vector<std::uint16_t> begin_;    // per row: window start (== pivot)
  std::vector<std::uint16_t> end_;      // per row: window end (exclusive)
  std::vector<std::uint8_t> coeffs_;    // n x n arena, head normalized to 1
  std::vector<std::uint8_t> payloads_;  // n x m arena, eliminated payloads

  // offer() scratch, reused across calls.
  std::vector<std::uint8_t> scratch_;              // one dense coeff row
  std::vector<std::size_t> pending_rows_;          // elimination trail
  std::vector<std::uint8_t> pending_factors_;
  // Also used by const recover_into(); logically scratch, like the RREF's.
  mutable std::vector<const std::uint8_t*> axpy_srcs_;  // batched payload fold
  mutable std::vector<std::uint8_t> axpy_factors_;
};

}  // namespace omnc::codes

#include "codes/tuner.h"

#include <algorithm>
#include <cmath>

#include "coding/coded_packet.h"
#include "common/assert.h"

namespace omnc::codes {

double dense_full_rank_prob(int generation_blocks, int received) {
  if (received < generation_blocks) return 0.0;
  double prob = 1.0;
  for (int i = 0; i < generation_blocks; ++i) {
    // 256^-(received - i); underflows to 0 harmlessly for deep surpluses.
    prob *= 1.0 - std::pow(256.0, -(received - i));
  }
  return prob;
}

double decode_success_prob(int generation_blocks, int sent, double loss_rate) {
  OMNC_ASSERT(generation_blocks >= 1 && sent >= 0);
  const double p = std::clamp(loss_rate, 0.0, 1.0);
  const double q = 1.0 - p;
  if (sent < generation_blocks) return 0.0;
  if (p == 0.0) return dense_full_rank_prob(generation_blocks, sent);
  // Binomial pmf over the received count, built iteratively:
  //   pmf(0) = p^N,  pmf(r+1) = pmf(r) * (N-r)/(r+1) * q/p.
  double pmf = std::pow(p, sent);
  double total = 0.0;
  for (int r = 0; r <= sent; ++r) {
    if (r >= generation_blocks && pmf > 0.0) {
      total += pmf * dense_full_rank_prob(generation_blocks, r);
    }
    pmf *= static_cast<double>(sent - r) / (r + 1) * (q / p);
  }
  return std::min(total, 1.0);
}

TunerChoice tune_generation(double loss_rate, double target_success,
                            int min_g, int max_g, int block_bytes) {
  OMNC_ASSERT(min_g >= 1 && max_g >= min_g && block_bytes >= 1);
  const double p = std::clamp(loss_rate, 0.0, 0.95);
  const double target = std::clamp(target_success, 0.5, 0.999999);
  TunerChoice best;
  for (int g = min_g; g <= max_g; g *= 2) {
    // Minimal N with P[decode] >= target.  The success probability is
    // monotone in N, so a linear scan from g upward terminates; the cap is
    // a pure safety net for absurd loss rates.
    const int cap = std::max(64, static_cast<int>(8.0 * g / (1.0 - p)));
    int sent = g;
    double prob = 0.0;
    while (sent <= cap) {
      prob = decode_success_prob(g, sent, p);
      if (prob >= target) break;
      ++sent;
    }
    if (prob < target) continue;  // not reachable within the cap
    // Delivered bytes per on-air byte: g blocks of payload against N
    // packets each carrying the coded-packet header, g coefficient bytes,
    // and the payload.
    const double delivered = static_cast<double>(g) * block_bytes;
    const double air =
        static_cast<double>(sent) *
        (static_cast<double>(coding::CodedPacket::kHeaderBytes) + g +
         block_bytes);
    const double efficiency = delivered / air;
    if (efficiency > best.efficiency) {
      best.generation_blocks = g;
      best.send_count = sent;
      best.redundancy = static_cast<double>(sent) / g;
      best.success_prob = prob;
      best.efficiency = efficiency;
    }
  }
  return best;
}

}  // namespace omnc::codes

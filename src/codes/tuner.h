// Finite-length generation tuner (PAPERS.md: "Optimal Finite Length Coding
// Rate of Random Linear Network Coding Schemes").
//
// Asymptotically RLNC is capacity-achieving for any generation size, but at
// finite length two effects pull against each other: large generations
// amortize the per-packet coefficient overhead (g bytes of header per m-byte
// payload) while small generations need fewer extra packets to survive both
// loss and the O(256^-(r-g)) probability that r received dense rows are rank
// deficient.  The tuner evaluates the exact finite-length model —
//
//   P[full rank | r rows]  = prod_{i=0}^{g-1} (1 - 256^-(r-i))
//   P[decode | N sent]     = sum_r Binom(N, r, 1-p) * P[full rank | r]
//
// — finds the minimal send count N(g) meeting a target decode probability
// for each candidate generation size, and picks the g that maximizes
// delivered bytes per on-air byte.  The redundancy N/g feeds the emulation
// source's rate boost so a lossy run sends just enough.
#pragma once

#include <cstdint>

namespace omnc::codes {

/// P[r iid uniform GF(256) rows span the full g-dimensional space], r >= g.
double dense_full_rank_prob(int generation_blocks, int received);

/// P[destination decodes] when `sent` packets each survive independently
/// with probability (1 - loss_rate).
double decode_success_prob(int generation_blocks, int sent, double loss_rate);

struct TunerChoice {
  int generation_blocks = 0;   // chosen g
  int send_count = 0;          // minimal N with P[decode] >= target
  double redundancy = 1.0;     // N / g — the source's rate boost
  double success_prob = 0.0;   // achieved P[decode] at N
  double efficiency = 0.0;     // delivered bytes per on-air byte
};

/// Sweeps candidate generation sizes (powers of two in [min_g, max_g]) and
/// returns the most air-efficient choice meeting `target_success`.
/// `block_bytes` sets the payload-to-coefficient-overhead ratio.
TunerChoice tune_generation(double loss_rate, double target_success,
                            int min_g, int max_g, int block_bytes);

}  // namespace omnc::codes

#include "coding/coded_packet.h"

#include <cstring>

namespace omnc::coding {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

}  // namespace

std::vector<std::uint8_t> CodedPacket::serialize() const {
  std::vector<std::uint8_t> wire;
  wire.reserve(wire_size());
  put_u32(wire, session_id);
  put_u32(wire, generation_id);
  put_u16(wire, generation_blocks);
  put_u16(wire, block_bytes);
  wire.insert(wire.end(), coefficients.begin(), coefficients.end());
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

bool CodedPacketView::parse(std::span<const std::uint8_t> wire,
                            CodedPacketView* out) {
  if (wire.size() < CodedPacket::kHeaderBytes) return false;
  CodedPacketView view;
  view.session_id = get_u32(wire.data());
  view.generation_id = get_u32(wire.data() + 4);
  view.generation_blocks = get_u16(wire.data() + 8);
  view.block_bytes = get_u16(wire.data() + 10);
  // Reject degenerate geometry before any arithmetic with the
  // attacker-controlled length fields.  The sum below cannot overflow —
  // both fields are u16, widened to size_t — but hostile headers should
  // fail on their own terms, not on a downstream size comparison.
  if (view.generation_blocks == 0 || view.block_bytes == 0) return false;
  const std::size_t expected =
      CodedPacket::kHeaderBytes +
      static_cast<std::size_t>(view.generation_blocks) + view.block_bytes;
  if (wire.size() != expected) return false;
  view.coefficients =
      wire.subspan(CodedPacket::kHeaderBytes, view.generation_blocks);
  view.payload = wire.subspan(
      CodedPacket::kHeaderBytes + view.generation_blocks, view.block_bytes);
  *out = view;
  return true;
}

CodedPacket CodedPacketView::to_packet() const {
  CodedPacket pkt;
  pkt.session_id = session_id;
  pkt.generation_id = generation_id;
  pkt.generation_blocks = generation_blocks;
  pkt.block_bytes = block_bytes;
  pkt.coefficients.assign(coefficients.begin(), coefficients.end());
  pkt.payload.assign(payload.begin(), payload.end());
  return pkt;
}

CodedPacketView CodedPacket::as_view() const {
  CodedPacketView view;
  view.session_id = session_id;
  view.generation_id = generation_id;
  view.generation_blocks = generation_blocks;
  view.block_bytes = block_bytes;
  view.coefficients = std::span<const std::uint8_t>(coefficients);
  view.payload = std::span<const std::uint8_t>(payload);
  return view;
}

bool CodedPacket::parse(std::span<const std::uint8_t> wire, CodedPacket* out) {
  CodedPacketView view;
  if (!CodedPacketView::parse(wire, &view)) return false;
  *out = view.to_packet();
  return true;
}

}  // namespace omnc::coding

#include "coding/coded_packet.h"

#include <cstring>

namespace omnc::coding {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

}  // namespace

std::vector<std::uint8_t> CodedPacket::serialize() const {
  std::vector<std::uint8_t> wire;
  wire.reserve(wire_size());
  put_u32(wire, session_id);
  put_u32(wire, generation_id);
  put_u16(wire, generation_blocks);
  put_u16(wire, block_bytes);
  wire.insert(wire.end(), coefficients.begin(), coefficients.end());
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

bool CodedPacketView::parse(std::span<const std::uint8_t> wire,
                            CodedPacketView* out) {
  if (wire.size() < CodedPacket::kHeaderBytes) return false;
  CodedPacketView view;
  view.session_id = get_u32(wire.data());
  view.generation_id = get_u32(wire.data() + 4);
  view.generation_blocks = get_u16(wire.data() + 8);
  view.block_bytes = get_u16(wire.data() + 10);
  // Reject degenerate geometry before any arithmetic with the
  // attacker-controlled length fields.  The sum below cannot overflow —
  // both fields are u16, widened to size_t — but hostile headers should
  // fail on their own terms, not on a downstream size comparison.
  if (view.generation_blocks == 0 || view.block_bytes == 0) return false;
  const std::size_t expected =
      CodedPacket::kHeaderBytes +
      static_cast<std::size_t>(view.generation_blocks) + view.block_bytes;
  if (wire.size() != expected) return false;
  view.coefficients =
      wire.subspan(CodedPacket::kHeaderBytes, view.generation_blocks);
  view.payload = wire.subspan(
      CodedPacket::kHeaderBytes + view.generation_blocks, view.block_bytes);
  *out = view;
  return true;
}

CodedPacket CodedPacketView::to_packet() const {
  CodedPacket pkt;
  pkt.session_id = session_id;
  pkt.generation_id = generation_id;
  pkt.generation_blocks = generation_blocks;
  pkt.block_bytes = block_bytes;
  pkt.coefficients.assign(coefficients.begin(), coefficients.end());
  pkt.payload.assign(payload.begin(), payload.end());
  return pkt;
}

CodedPacketView CodedPacket::as_view() const {
  CodedPacketView view;
  view.session_id = session_id;
  view.generation_id = generation_id;
  view.generation_blocks = generation_blocks;
  view.block_bytes = block_bytes;
  view.coefficients = std::span<const std::uint8_t>(coefficients);
  view.payload = std::span<const std::uint8_t>(payload);
  return view;
}

bool CodedPacket::parse(std::span<const std::uint8_t> wire, CodedPacket* out) {
  CodedPacketView view;
  if (!CodedPacketView::parse(wire, &view)) return false;
  *out = view.to_packet();
  return true;
}

bool CodedStructure::valid_for(std::uint16_t generation_blocks) const {
  switch (kind) {
    case Kind::kDense:
      return true;
    case Kind::kUncoded:
      return index < generation_blocks;
    case Kind::kWindow:
      return width >= 1 &&
             static_cast<std::size_t>(offset) + width <= generation_blocks;
  }
  return false;
}

void expand_coefficients(const CodedStructure& structure,
                         std::span<const std::uint8_t> window,
                         std::uint16_t generation_blocks, std::uint8_t* out) {
  const std::size_t n = generation_blocks;
  switch (structure.kind) {
    case CodedStructure::Kind::kDense:
      std::memcpy(out, window.data(), n);
      return;
    case CodedStructure::Kind::kUncoded:
      std::memset(out, 0, n);
      out[structure.index] = 1;
      return;
    case CodedStructure::Kind::kWindow:
      std::memset(out, 0, n);
      std::memcpy(out + structure.offset, window.data(), structure.width);
      return;
  }
}

namespace {

/// Structure tag + fields, before the window coefficients and payload.
std::size_t structure_header_bytes(const CodedStructure& structure) {
  return structure.kind == CodedStructure::Kind::kUncoded ? 3 : 5;
}

}  // namespace

std::size_t compact_wire_size(const CodedStructure& structure,
                              std::uint16_t block_bytes) {
  const std::size_t coeffs =
      structure.kind == CodedStructure::Kind::kWindow ? structure.width : 0;
  return CodedPacket::kHeaderBytes + structure_header_bytes(structure) +
         coeffs + block_bytes;
}

bool serialize_compact(const CodedPacket& packet,
                       const CodedStructure& structure,
                       std::vector<std::uint8_t>& out) {
  if (structure.dense()) return false;
  if (!structure.valid_for(packet.generation_blocks)) return false;
  if (packet.coefficients.size() != packet.generation_blocks) return false;
  put_u32(out, packet.session_id);
  put_u32(out, packet.generation_id);
  put_u16(out, packet.generation_blocks);
  put_u16(out, packet.block_bytes);
  out.push_back(static_cast<std::uint8_t>(structure.kind));
  if (structure.kind == CodedStructure::Kind::kUncoded) {
    put_u16(out, structure.index);
  } else {
    put_u16(out, structure.offset);
    put_u16(out, structure.width);
    out.insert(out.end(), packet.coefficients.begin() + structure.offset,
               packet.coefficients.begin() + structure.offset +
                   structure.width);
  }
  out.insert(out.end(), packet.payload.begin(), packet.payload.end());
  return true;
}

bool parse_compact(std::span<const std::uint8_t> wire, CodedPacketView* view,
                   CodedStructure* structure) {
  if (wire.size() < CodedPacket::kHeaderBytes + 3) return false;
  CodedPacketView v;
  v.session_id = get_u32(wire.data());
  v.generation_id = get_u32(wire.data() + 4);
  v.generation_blocks = get_u16(wire.data() + 8);
  v.block_bytes = get_u16(wire.data() + 10);
  if (v.generation_blocks == 0 || v.block_bytes == 0) return false;
  CodedStructure s;
  const std::uint8_t kind = wire[CodedPacket::kHeaderBytes];
  std::size_t cursor = CodedPacket::kHeaderBytes + 1;
  if (kind == static_cast<std::uint8_t>(CodedStructure::Kind::kUncoded)) {
    s.kind = CodedStructure::Kind::kUncoded;
    if (wire.size() < cursor + 2) return false;
    s.index = get_u16(wire.data() + cursor);
    cursor += 2;
    v.coefficients = {};
  } else if (kind == static_cast<std::uint8_t>(CodedStructure::Kind::kWindow)) {
    s.kind = CodedStructure::Kind::kWindow;
    if (wire.size() < cursor + 4) return false;
    s.offset = get_u16(wire.data() + cursor);
    s.width = get_u16(wire.data() + cursor + 2);
    cursor += 4;
    if (wire.size() < cursor + s.width) return false;
    v.coefficients = wire.subspan(cursor, s.width);
    cursor += s.width;
  } else {
    return false;  // dense packets never use the compact form
  }
  if (!s.valid_for(v.generation_blocks)) return false;
  if (wire.size() != cursor + v.block_bytes) return false;
  v.payload = wire.subspan(cursor, v.block_bytes);
  *view = v;
  *structure = s;
  return true;
}

}  // namespace omnc::coding

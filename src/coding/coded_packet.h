// Wire format of a coded packet: header, coding-coefficient vector (a row of
// the R matrix) and the coded payload (the corresponding row of X = R * B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/generation.h"

namespace omnc::coding {

struct CodedPacket;

/// Non-owning parse of a coded packet: the header fields are decoded, the
/// coefficient vector and payload stay as spans into the caller's buffer.
/// This is the zero-copy receive path — a view can be validated and offered
/// to the RREF accumulator without materializing owning vectors; the
/// accumulator copies the payload region directly into its arena only when
/// the row turns out to be innovative.  A view is only valid while the
/// buffer it was parsed from is alive and unmodified.
struct CodedPacketView {
  std::uint32_t session_id = 0;
  std::uint32_t generation_id = 0;
  std::uint16_t generation_blocks = 0;        // n
  std::uint16_t block_bytes = 0;              // m
  std::span<const std::uint8_t> coefficients;  // length n, into the buffer
  std::span<const std::uint8_t> payload;       // length m, into the buffer

  bool dimensions_match(const CodingParams& params) const {
    return generation_blocks == params.generation_blocks &&
           block_bytes == params.block_bytes &&
           coefficients.size() == params.generation_blocks &&
           payload.size() == params.block_bytes;
  }

  /// Validates geometry in place; on success the spans alias `wire`.
  /// Returns false on truncation or inconsistent lengths.
  static bool parse(std::span<const std::uint8_t> wire, CodedPacketView* out);

  /// Owning copy, for paths that must outlive the receive buffer.
  CodedPacket to_packet() const;
};

struct CodedPacket {
  std::uint32_t session_id = 0;
  std::uint32_t generation_id = 0;
  std::uint16_t generation_blocks = 0;        // n
  std::uint16_t block_bytes = 0;              // m
  std::vector<std::uint8_t> coefficients;     // length n
  std::vector<std::uint8_t> payload;          // length m

  /// Fixed header bytes on the wire (session, generation, n, m).
  static constexpr std::size_t kHeaderBytes = 12;

  /// Total bytes this packet occupies on the air; the MAC charges this.
  std::size_t wire_size() const {
    return kHeaderBytes + coefficients.size() + payload.size();
  }

  bool dimensions_match(const CodingParams& params) const {
    return generation_blocks == params.generation_blocks &&
           block_bytes == params.block_bytes &&
           coefficients.size() == params.generation_blocks &&
           payload.size() == params.block_bytes;
  }

  std::vector<std::uint8_t> serialize() const;

  /// Non-owning view over this packet's own storage (same lifetime rules as
  /// a parsed view: valid while the packet is alive and unmodified).
  CodedPacketView as_view() const;

  /// Parses a packet; returns false on truncation or inconsistent lengths.
  static bool parse(std::span<const std::uint8_t> wire, CodedPacket* out);
};

}  // namespace omnc::coding

// Wire format of a coded packet: header, coding-coefficient vector (a row of
// the R matrix) and the coded payload (the corresponding row of X = R * B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/generation.h"

namespace omnc::coding {

struct CodedPacket {
  std::uint32_t session_id = 0;
  std::uint32_t generation_id = 0;
  std::uint16_t generation_blocks = 0;        // n
  std::uint16_t block_bytes = 0;              // m
  std::vector<std::uint8_t> coefficients;     // length n
  std::vector<std::uint8_t> payload;          // length m

  /// Fixed header bytes on the wire (session, generation, n, m).
  static constexpr std::size_t kHeaderBytes = 12;

  /// Total bytes this packet occupies on the air; the MAC charges this.
  std::size_t wire_size() const {
    return kHeaderBytes + coefficients.size() + payload.size();
  }

  bool dimensions_match(const CodingParams& params) const {
    return generation_blocks == params.generation_blocks &&
           block_bytes == params.block_bytes &&
           coefficients.size() == params.generation_blocks &&
           payload.size() == params.block_bytes;
  }

  std::vector<std::uint8_t> serialize() const;

  /// Parses a packet; returns false on truncation or inconsistent lengths.
  static bool parse(std::span<const std::uint8_t> wire, CodedPacket* out);
};

}  // namespace omnc::coding

// Wire format of a coded packet: header, coding-coefficient vector (a row of
// the R matrix) and the coded payload (the corresponding row of X = R * B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/generation.h"

namespace omnc::coding {

struct CodedPacket;

/// Structural side-channel of a coded packet: how its coefficient vector was
/// produced.  Dense packets carry all n coefficients on the wire; structured
/// ones (a systematic original, a banded combination) admit a compact
/// encoding that elides the implied zeros — an uncoded original is fully
/// described by its block index, a banded row by its window offset/width and
/// the window's coefficients.  The structure rides next to the packet through
/// the stack (frame <-> runtime <-> codes) so decoders can exploit it; dense
/// serialization is byte-identical to the pre-structure wire format.
struct CodedStructure {
  enum class Kind : std::uint8_t { kDense = 0, kUncoded = 1, kWindow = 2 };
  Kind kind = Kind::kDense;
  std::uint16_t index = 0;   // kUncoded: original block index
  std::uint16_t offset = 0;  // kWindow: first coefficient column
  std::uint16_t width = 0;   // kWindow: coefficient count

  bool dense() const { return kind == Kind::kDense; }

  static CodedStructure make_dense() { return {}; }
  static CodedStructure make_uncoded(std::uint16_t index) {
    return {Kind::kUncoded, index, 0, 0};
  }
  static CodedStructure make_window(std::uint16_t offset, std::uint16_t width) {
    return {Kind::kWindow, 0, offset, width};
  }

  /// True if the structure is internally consistent for n coefficient
  /// columns (uncoded index in range, window inside [0, n) and nonempty).
  bool valid_for(std::uint16_t generation_blocks) const;

  bool operator==(const CodedStructure&) const = default;
};

/// Writes the dense n-byte coefficient vector implied by `structure` whose
/// explicit entries are `window` (the window bytes for kWindow, empty for
/// kUncoded, all n for kDense) into `out` (n bytes, fully overwritten).
void expand_coefficients(const CodedStructure& structure,
                         std::span<const std::uint8_t> window,
                         std::uint16_t generation_blocks, std::uint8_t* out);

/// Non-owning parse of a coded packet: the header fields are decoded, the
/// coefficient vector and payload stay as spans into the caller's buffer.
/// This is the zero-copy receive path — a view can be validated and offered
/// to the RREF accumulator without materializing owning vectors; the
/// accumulator copies the payload region directly into its arena only when
/// the row turns out to be innovative.  A view is only valid while the
/// buffer it was parsed from is alive and unmodified.
struct CodedPacketView {
  std::uint32_t session_id = 0;
  std::uint32_t generation_id = 0;
  std::uint16_t generation_blocks = 0;        // n
  std::uint16_t block_bytes = 0;              // m
  std::span<const std::uint8_t> coefficients;  // length n, into the buffer
  std::span<const std::uint8_t> payload;       // length m, into the buffer

  bool dimensions_match(const CodingParams& params) const {
    return generation_blocks == params.generation_blocks &&
           block_bytes == params.block_bytes &&
           coefficients.size() == params.generation_blocks &&
           payload.size() == params.block_bytes;
  }

  /// Validates geometry in place; on success the spans alias `wire`.
  /// Returns false on truncation or inconsistent lengths.
  static bool parse(std::span<const std::uint8_t> wire, CodedPacketView* out);

  /// Owning copy, for paths that must outlive the receive buffer.
  CodedPacket to_packet() const;
};

struct CodedPacket {
  std::uint32_t session_id = 0;
  std::uint32_t generation_id = 0;
  std::uint16_t generation_blocks = 0;        // n
  std::uint16_t block_bytes = 0;              // m
  std::vector<std::uint8_t> coefficients;     // length n
  std::vector<std::uint8_t> payload;          // length m

  /// Fixed header bytes on the wire (session, generation, n, m).
  static constexpr std::size_t kHeaderBytes = 12;

  /// Total bytes this packet occupies on the air; the MAC charges this.
  std::size_t wire_size() const {
    return kHeaderBytes + coefficients.size() + payload.size();
  }

  bool dimensions_match(const CodingParams& params) const {
    return generation_blocks == params.generation_blocks &&
           block_bytes == params.block_bytes &&
           coefficients.size() == params.generation_blocks &&
           payload.size() == params.block_bytes;
  }

  std::vector<std::uint8_t> serialize() const;

  /// Non-owning view over this packet's own storage (same lifetime rules as
  /// a parsed view: valid while the packet is alive and unmodified).
  CodedPacketView as_view() const;

  /// Parses a packet; returns false on truncation or inconsistent lengths.
  static bool parse(std::span<const std::uint8_t> wire, CodedPacket* out);
};

/// Bytes the compact encoding of a packet with `block_bytes` of payload
/// occupies under `structure`: the 12-byte header, a structure tag, the
/// structure fields, the window coefficients (kWindow only), the payload.
/// kDense has no compact form; callers keep the dense wire format for it.
std::size_t compact_wire_size(const CodedStructure& structure,
                              std::uint16_t block_bytes);

/// Appends the compact encoding of `packet` (whose coefficients are dense in
/// memory) under `structure` to `out`.  Returns false — appending nothing —
/// if the structure is dense or inconsistent with the packet's geometry.
bool serialize_compact(const CodedPacket& packet,
                       const CodedStructure& structure,
                       std::vector<std::uint8_t>& out);

/// Parses a compact encoding.  On success the view's `coefficients` span
/// holds only the explicit window bytes (empty for an uncoded original) —
/// dimensions_match() intentionally fails; consumers go through `structure`
/// or expand_coefficients().  The payload span aliases `wire` as usual.
bool parse_compact(std::span<const std::uint8_t> wire, CodedPacketView* view,
                   CodedStructure* structure);

}  // namespace omnc::coding

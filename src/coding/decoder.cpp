#include "coding/decoder.h"

#include "common/assert.h"
#include "obs/registry.h"

namespace omnc::coding {

ProgressiveDecoder::ProgressiveDecoder(const CodingParams& params,
                                       std::uint32_t generation_id)
    : params_(params),
      generation_id_(generation_id),
      rref_(params.generation_blocks,
            static_cast<std::size_t>(params.generation_blocks) +
                params.block_bytes) {}

bool ProgressiveDecoder::offer(const CodedPacket& packet) {
  OMNC_SCOPED_TIMER("coding/decode");
  if (packet.generation_id != generation_id_) return false;
  if (!packet.dimensions_match(params_)) return false;
  ++packets_seen_;
  // No row assembly: coefficients and payload go straight into the split
  // arenas, and a non-innovative packet's payload is never even read.
  return rref_.insert(packet.coefficients.data(), packet.payload.data());
}

const std::uint8_t* ProgressiveDecoder::decoded_block(std::size_t index) const {
  OMNC_ASSERT(index < params_.generation_blocks);
  const std::uint8_t* coeffs = rref_.coefficients_for_pivot(index);
  if (coeffs == nullptr) return nullptr;
  // The block is decoded when its row's coefficient part is the unit vector:
  // pivot normalized to 1 and every other coefficient zero.  Only then is
  // the deferred payload elimination for this row worth running.
  for (std::size_t c = 0; c < params_.generation_blocks; ++c) {
    const std::uint8_t expected = (c == index) ? 1 : 0;
    if (coeffs[c] != expected) return nullptr;
  }
  return rref_.payload_for_pivot(index);
}

std::vector<std::uint8_t> ProgressiveDecoder::recover() const {
  OMNC_ASSERT_MSG(complete(), "recover() before the generation is decodable");
  // One blocked pass beats decoded_block's row-at-a-time materialization
  // when the whole generation is being read anyway.
  rref_.materialize_payloads();
  std::vector<std::uint8_t> out;
  out.reserve(params_.generation_bytes());
  for (std::size_t b = 0; b < params_.generation_blocks; ++b) {
    const std::uint8_t* block = decoded_block(b);
    OMNC_ASSERT(block != nullptr);
    out.insert(out.end(), block, block + params_.block_bytes);
  }
  return out;
}

void ProgressiveDecoder::reset(std::uint32_t generation_id) {
  generation_id_ = generation_id;
  rref_.clear();
  packets_seen_ = 0;
}

}  // namespace omnc::coding

#include "coding/decoder.h"

#include "common/assert.h"
#include "obs/registry.h"

namespace omnc::coding {

ProgressiveDecoder::ProgressiveDecoder(const CodingParams& params,
                                       std::uint32_t generation_id)
    : params_(params),
      generation_id_(generation_id),
      rref_(params.generation_blocks,
            static_cast<std::size_t>(params.generation_blocks) +
                params.block_bytes) {}

bool ProgressiveDecoder::offer(const CodedPacket& packet) {
  return offer(packet.as_view());
}

bool ProgressiveDecoder::offer(const CodedPacketView& view) {
  OMNC_SCOPED_TIMER("coding/decode");
  if (view.generation_id != generation_id_) return false;
  if (!view.dimensions_match(params_)) return false;
  ++packets_seen_;
  // No row assembly: coefficients and payload go straight into the split
  // arenas, and a non-innovative packet's payload is never even read.
  return rref_.insert(view.coefficients.data(), view.payload.data());
}

const std::uint8_t* ProgressiveDecoder::decoded_block(std::size_t index) const {
  OMNC_ASSERT(index < params_.generation_blocks);
  const std::uint8_t* coeffs = rref_.coefficients_for_pivot(index);
  if (coeffs == nullptr) return nullptr;
  // The block is decoded when its row's coefficient part is the unit vector:
  // pivot normalized to 1 and every other coefficient zero.  Only then is
  // the deferred payload elimination for this row worth running.
  for (std::size_t c = 0; c < params_.generation_blocks; ++c) {
    const std::uint8_t expected = (c == index) ? 1 : 0;
    if (coeffs[c] != expected) return nullptr;
  }
  return rref_.payload_for_pivot(index);
}

std::vector<std::uint8_t> ProgressiveDecoder::recover() const {
  std::vector<std::uint8_t> out(params_.generation_bytes());
  recover_into(std::span<std::uint8_t>(out));
  return out;
}

void ProgressiveDecoder::recover_into(std::span<std::uint8_t> out) const {
  OMNC_ASSERT_MSG(complete(), "recover() before the generation is decodable");
  OMNC_ASSERT(out.size() == params_.generation_bytes());
  // In a complete basis every row's coefficient part is a unit vector, so
  // the row with pivot b is exactly block b: one blocked elimination pass
  // writes the whole generation in place, skipping the materialization
  // cache and the per-block unit-vector scans of the decoded_block path.
  rref_.materialize_into(out.data());
}

void ProgressiveDecoder::reset(std::uint32_t generation_id) {
  generation_id_ = generation_id;
  rref_.clear();
  packets_seen_ = 0;
}

}  // namespace omnc::coding

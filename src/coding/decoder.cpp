#include "coding/decoder.h"

#include "common/assert.h"
#include "obs/registry.h"

namespace omnc::coding {

ProgressiveDecoder::ProgressiveDecoder(const CodingParams& params,
                                       std::uint32_t generation_id)
    : params_(params),
      generation_id_(generation_id),
      rref_(params.generation_blocks,
            static_cast<std::size_t>(params.generation_blocks) +
                params.block_bytes) {}

bool ProgressiveDecoder::offer(const CodedPacket& packet) {
  OMNC_SCOPED_TIMER("coding/decode");
  if (packet.generation_id != generation_id_) return false;
  if (!packet.dimensions_match(params_)) return false;
  ++packets_seen_;
  std::vector<std::uint8_t> row;
  row.reserve(rref_.row_bytes());
  row.insert(row.end(), packet.coefficients.begin(), packet.coefficients.end());
  row.insert(row.end(), packet.payload.begin(), packet.payload.end());
  return rref_.insert(std::move(row));
}

const std::uint8_t* ProgressiveDecoder::decoded_block(std::size_t index) const {
  OMNC_ASSERT(index < params_.generation_blocks);
  const std::uint8_t* row = rref_.row_for_pivot(index);
  if (row == nullptr) return nullptr;
  // The block is decoded when its row's coefficient part is the unit vector:
  // pivot normalized to 1 and every other coefficient zero.
  for (std::size_t c = 0; c < params_.generation_blocks; ++c) {
    const std::uint8_t expected = (c == index) ? 1 : 0;
    if (row[c] != expected) return nullptr;
  }
  return row + params_.generation_blocks;
}

std::vector<std::uint8_t> ProgressiveDecoder::recover() const {
  OMNC_ASSERT_MSG(complete(), "recover() before the generation is decodable");
  std::vector<std::uint8_t> out;
  out.reserve(params_.generation_bytes());
  for (std::size_t b = 0; b < params_.generation_blocks; ++b) {
    const std::uint8_t* block = decoded_block(b);
    OMNC_ASSERT(block != nullptr);
    out.insert(out.end(), block, block + params_.block_bytes);
  }
  return out;
}

void ProgressiveDecoder::reset(std::uint32_t generation_id) {
  generation_id_ = generation_id;
  rref_.clear();
  packets_seen_ = 0;
}

}  // namespace omnc::coding

// Progressive Gauss–Jordan decoder (Sec. 4, "Progressive decoding").
//
// The destination feeds every received packet into the decoder; the decoding
// matrix is kept in reduced row-echelon form so that independence checking
// and decoding happen on the fly.  Non-innovative packets reduce to an
// all-zero row and are discarded immediately.  Once n independent packets
// have been absorbed, the coefficient part is the identity and the payload
// part holds the original blocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_packet.h"
#include "coding/generation.h"
#include "coding/rref.h"

namespace omnc::coding {

class ProgressiveDecoder {
 public:
  ProgressiveDecoder(const CodingParams& params, std::uint32_t generation_id);

  /// Absorbs a packet.  Returns true if it was innovative.  Packets from
  /// other generations or with mismatched dimensions are rejected (false).
  bool offer(const CodedPacket& packet);

  /// Zero-copy variant: the view's spans are read in place; the payload is
  /// copied exactly once (into the RREF arena) iff the row is innovative,
  /// and never touched otherwise.  The view only needs to stay valid for
  /// the duration of the call.
  bool offer(const CodedPacketView& view);

  std::uint32_t generation_id() const { return generation_id_; }
  std::size_t rank() const { return rref_.rank(); }
  bool complete() const { return rref_.complete(); }

  /// Number of packets offered / accepted so far (for redundancy metrics).
  std::size_t packets_seen() const { return packets_seen_; }
  std::size_t packets_innovative() const { return rref_.rank(); }

  /// Pivot column claimed by the last innovative offer, -1 otherwise.
  int last_pivot() const { return rref_.last_insert_pivot(); }

  /// Block `index` if it has already been fully decoded (its row is a unit
  /// coefficient vector); nullptr otherwise.  All blocks qualify once
  /// complete() holds.
  const std::uint8_t* decoded_block(std::size_t index) const;

  /// Concatenated original generation bytes; requires complete().
  std::vector<std::uint8_t> recover() const;

  /// Byte count recover() / recover_into() produce.
  std::size_t recovered_size() const { return params_.generation_bytes(); }

  /// Allocation-free recovery: eliminates every payload straight into
  /// `out` (exactly recovered_size() bytes) in one source-blocked pass —
  /// no materialization cache bounce, no per-block unit-vector scans, no
  /// concatenation copy.  Requires complete().
  void recover_into(std::span<std::uint8_t> out) const;

  /// Drops all state and retargets a new generation.
  void reset(std::uint32_t generation_id);

 private:
  CodingParams params_;
  std::uint32_t generation_id_;
  RrefAccumulator rref_;
  std::size_t packets_seen_ = 0;
};

}  // namespace omnc::coding

#include "coding/encoder.h"

#include "common/assert.h"
#include "galois/region.h"
#include "obs/registry.h"

namespace omnc::coding {

SourceEncoder::SourceEncoder(const Generation& generation,
                             std::uint32_t session_id)
    : generation_(&generation), session_id_(session_id) {}

CodedPacket SourceEncoder::next_packet(Rng& rng) const {
  CodedPacket pkt;
  next_packet_into(rng, &pkt);
  return pkt;
}

void SourceEncoder::next_packet_into(Rng& rng, CodedPacket* out) const {
  OMNC_SCOPED_TIMER("coding/encode");
  const CodingParams& params = generation_->params();
  const std::size_t n = params.generation_blocks;
  out->session_id = session_id_;
  out->generation_id = generation_->id();
  out->generation_blocks = params.generation_blocks;
  out->block_bytes = params.block_bytes;
  out->coefficients.resize(n);
  // Pinned draw count: exactly n byte draws per packet, no retry loop.  The
  // all-zero vector (probability 256^-n) is repaired deterministically so
  // every code family consumes the same number of RNG draws per emission and
  // det-clock traces stay byte-identical across families.
  bool nonzero = false;
  for (auto& c : out->coefficients) {
    c = rng.next_byte();
    nonzero |= (c != 0);
  }
  if (!nonzero) out->coefficients[0] = 1;
  out->payload.assign(params.block_bytes, 0);
  // Fused fold over the generation's blocks: 2-4 source rows per pass over
  // the payload instead of one destination read/write per block.
  block_ptrs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) block_ptrs_[i] = generation_->block(i);
  gf::region_axpy_many(out->payload.data(), block_ptrs_.data(),
                       out->coefficients.data(), n, params.block_bytes);
}

CodedPacket SourceEncoder::packet_with_coefficients(
    const std::vector<std::uint8_t>& coefficients) const {
  const CodingParams& params = generation_->params();
  OMNC_ASSERT(coefficients.size() == params.generation_blocks);
  CodedPacket pkt;
  pkt.session_id = session_id_;
  pkt.generation_id = generation_->id();
  pkt.generation_blocks = params.generation_blocks;
  pkt.block_bytes = params.block_bytes;
  pkt.coefficients = coefficients;
  pkt.payload.assign(params.block_bytes, 0);
  // Fused fold over the generation's blocks: 2-4 source rows per pass over
  // the payload instead of one destination read/write per block.
  block_ptrs_.resize(coefficients.size());
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    block_ptrs_[i] = generation_->block(i);
  }
  gf::region_axpy_many(pkt.payload.data(), block_ptrs_.data(),
                       coefficients.data(), coefficients.size(),
                       params.block_bytes);
  return pkt;
}

}  // namespace omnc::coding

// Source-side encoder: emits random linear combinations X = R * B of the
// current generation (Sec. 3.1).
#pragma once

#include <cstdint>

#include "coding/coded_packet.h"
#include "coding/generation.h"
#include "common/rng.h"

namespace omnc::coding {

class SourceEncoder {
 public:
  /// The encoder borrows the generation; the caller keeps it alive.
  SourceEncoder(const Generation& generation, std::uint32_t session_id);

  /// Produces one coded packet with fresh random coefficients.
  CodedPacket next_packet(Rng& rng) const;

  /// Allocation-free variant: fills `out` reusing its vectors' capacity.
  /// Identical output bytes (and rng draw sequence) to next_packet().
  void next_packet_into(Rng& rng, CodedPacket* out) const;

  /// Produces a packet with the caller's coefficients (length n); used by
  /// tests and by the systematic warm-up variant.
  CodedPacket packet_with_coefficients(
      const std::vector<std::uint8_t>& coefficients) const;

  std::uint32_t generation_id() const { return generation_->id(); }

 private:
  const Generation* generation_;
  std::uint32_t session_id_;
  mutable std::vector<const std::uint8_t*> block_ptrs_;  // fold scratch
};

}  // namespace omnc::coding

#include "coding/generation.h"

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"

namespace omnc::coding {

Generation::Generation(std::uint32_t id, const CodingParams& params)
    : id_(id), params_(params), data_(params.generation_bytes(), 0) {
  OMNC_ASSERT(params.generation_blocks > 0);
  OMNC_ASSERT(params.block_bytes > 0);
}

Generation Generation::from_bytes(std::uint32_t id, const CodingParams& params,
                                  std::span<const std::uint8_t> bytes) {
  Generation gen(id, params);
  OMNC_ASSERT_MSG(bytes.size() <= gen.data_.size(),
                  "input exceeds generation capacity");
  std::copy(bytes.begin(), bytes.end(), gen.data_.begin());
  return gen;
}

Generation Generation::synthetic(std::uint32_t id, const CodingParams& params,
                                 std::uint64_t seed) {
  Generation gen(id, params);
  Rng rng(seed ^ (0xabcdef1234567890ULL + id));
  for (auto& byte : gen.data_) byte = rng.next_byte();
  return gen;
}

const std::uint8_t* Generation::block(std::size_t index) const {
  OMNC_ASSERT(index < params_.generation_blocks);
  return data_.data() + index * params_.block_bytes;
}

}  // namespace omnc::coding

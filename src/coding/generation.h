// Generation model for random linear coding (Sec. 3.1 of the paper).
//
// Source data is grouped into generations; a generation is an n x m matrix B
// whose rows are the n data blocks and whose columns are the m bytes of each
// block.  Coded packets carry linear combinations of the rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace omnc::coding {

/// Coding parameters shared by every node of a session.
struct CodingParams {
  std::uint16_t generation_blocks = 40;  // n — blocks per generation
  std::uint16_t block_bytes = 1024;      // m — bytes per block

  std::size_t generation_bytes() const {
    return static_cast<std::size_t>(generation_blocks) * block_bytes;
  }

  bool operator==(const CodingParams&) const = default;
};

/// One generation of source data (the matrix B).
class Generation {
 public:
  Generation(std::uint32_t id, const CodingParams& params);

  /// Builds a generation from raw bytes; input shorter than n*m is
  /// zero-padded, longer input is rejected by assertion.
  static Generation from_bytes(std::uint32_t id, const CodingParams& params,
                               std::span<const std::uint8_t> bytes);

  /// A generation filled with deterministic pseudo-random payload; used by
  /// simulations that only care about byte counts.
  static Generation synthetic(std::uint32_t id, const CodingParams& params,
                              std::uint64_t seed);

  std::uint32_t id() const { return id_; }
  const CodingParams& params() const { return params_; }

  const std::uint8_t* block(std::size_t index) const;
  std::span<const std::uint8_t> bytes() const { return data_; }

 private:
  std::uint32_t id_;
  CodingParams params_;
  std::vector<std::uint8_t> data_;  // row-major n x m
};

}  // namespace omnc::coding

#include "coding/recoder.h"

#include "common/assert.h"
#include "galois/region.h"
#include "obs/registry.h"

namespace omnc::coding {

Recoder::Recoder(const CodingParams& params, std::uint32_t session_id,
                 std::uint32_t generation_id)
    : params_(params),
      session_id_(session_id),
      generation_id_(generation_id),
      filter_(params.generation_blocks, params.generation_blocks) {}

bool Recoder::offer(const CodedPacket& packet) {
  if (packet.generation_id != generation_id_) return false;
  if (!packet.dimensions_match(params_)) return false;
  // Coefficient-only filter: no payload arena, no row copy.
  if (!filter_.insert(packet.coefficients.data(), nullptr)) return false;
  buffer_.push_back(packet);
  return true;
}

CodedPacket Recoder::recode(Rng& rng) const {
  OMNC_SCOPED_TIMER("coding/recode");
  OMNC_ASSERT_MSG(can_send(), "recode() with an empty buffer");
  CodedPacket out;
  out.session_id = session_id_;
  out.generation_id = generation_id_;
  out.generation_blocks = params_.generation_blocks;
  out.block_bytes = params_.block_bytes;
  out.coefficients.assign(params_.generation_blocks, 0);
  out.payload.assign(params_.block_bytes, 0);
  // Random combination over the buffer.  At least one multiplier must be
  // nonzero, otherwise the output would be the zero packet.
  std::vector<std::uint8_t> multipliers(buffer_.size());
  bool nonzero = false;
  while (!nonzero) {
    for (auto& m : multipliers) {
      m = rng.next_byte();
      nonzero |= (m != 0);
    }
  }
  // Fold the combination through the fused kernels: 2-4 buffered packets per
  // destination pass instead of re-reading the output row for each source.
  std::vector<const std::uint8_t*> coeff_srcs(buffer_.size());
  std::vector<const std::uint8_t*> payload_srcs(buffer_.size());
  for (std::size_t k = 0; k < buffer_.size(); ++k) {
    coeff_srcs[k] = buffer_[k].coefficients.data();
    payload_srcs[k] = buffer_[k].payload.data();
  }
  gf::region_axpy_many(out.coefficients.data(), coeff_srcs.data(),
                       multipliers.data(), buffer_.size(),
                       out.coefficients.size());
  gf::region_axpy_many(out.payload.data(), payload_srcs.data(),
                       multipliers.data(), buffer_.size(), out.payload.size());
  return out;
}

void Recoder::reset(std::uint32_t generation_id) {
  generation_id_ = generation_id;
  filter_.clear();
  buffer_.clear();
}

}  // namespace omnc::coding

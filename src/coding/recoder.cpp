#include "coding/recoder.h"

#include "common/assert.h"
#include "galois/region.h"
#include "obs/registry.h"

namespace omnc::coding {

Recoder::Recoder(const CodingParams& params, std::uint32_t session_id,
                 std::uint32_t generation_id)
    : params_(params),
      session_id_(session_id),
      generation_id_(generation_id),
      filter_(params.generation_blocks, params.generation_blocks) {}

bool Recoder::offer(const CodedPacket& packet) {
  return offer(packet.as_view());
}

bool Recoder::offer(const CodedPacketView& view) {
  if (view.generation_id != generation_id_) return false;
  if (!view.dimensions_match(params_)) return false;
  // Coefficient-only filter: no payload arena, no row copy.  Only when the
  // row is accepted do its bytes get copied — once — into the flat basis
  // arenas (clear() keeps the capacity, so the steady state re-fills in
  // place without allocating).
  if (!filter_.insert(view.coefficients.data(), nullptr)) return false;
  basis_coeffs_.insert(basis_coeffs_.end(), view.coefficients.begin(),
                       view.coefficients.end());
  basis_payloads_.insert(basis_payloads_.end(), view.payload.begin(),
                         view.payload.end());
  return true;
}

CodedPacket Recoder::recode(Rng& rng) const {
  CodedPacket out;
  recode_into(rng, &out);
  return out;
}

void Recoder::recode_into(Rng& rng, CodedPacket* out) const {
  OMNC_SCOPED_TIMER("coding/recode");
  OMNC_ASSERT_MSG(can_send(), "recode() with an empty basis");
  const std::size_t count = filter_.rank();
  const std::size_t n = params_.generation_blocks;
  const std::size_t m = params_.block_bytes;
  out->session_id = session_id_;
  out->generation_id = generation_id_;
  out->generation_blocks = params_.generation_blocks;
  out->block_bytes = params_.block_bytes;
  out->coefficients.assign(n, 0);
  out->payload.assign(m, 0);
  // Random combination over the basis.  At least one multiplier must be
  // nonzero, otherwise the output would be the zero packet.  The draw count
  // is pinned at exactly rank() byte draws: the old retry loop re-drew the
  // whole multiplier vector on an all-zero draw (probability 256^-rank —
  // very much reachable at rank 1), which desynchronized det-clock RNG
  // streams between runs that differed only in code family.  An all-zero
  // draw is repaired deterministically instead.
  multipliers_.resize(count);
  bool nonzero = false;
  for (auto& mult : multipliers_) {
    mult = rng.next_byte();
    nonzero |= (mult != 0);
  }
  if (!nonzero) multipliers_[0] = 1;
  // Fold the combination through the fused kernels: 2-4 basis rows per
  // destination pass instead of re-reading the output row for each source.
  coeff_srcs_.resize(count);
  payload_srcs_.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    coeff_srcs_[k] = basis_coeffs_.data() + k * n;
    payload_srcs_[k] = basis_payloads_.data() + k * m;
  }
  gf::region_axpy_many(out->coefficients.data(), coeff_srcs_.data(),
                       multipliers_.data(), count, n);
  gf::region_axpy_many(out->payload.data(), payload_srcs_.data(),
                       multipliers_.data(), count, m);
}

void Recoder::reset(std::uint32_t generation_id) {
  generation_id_ = generation_id;
  filter_.clear();
  basis_coeffs_.clear();
  basis_payloads_.clear();
}

}  // namespace omnc::coding

// Relay-side re-encoder (Sec. 3.1 and Sec. 4, "Packet and Queue
// Management").
//
// A relay accepts an incoming packet only if it is innovative with respect to
// what it already holds; innovative packets are buffered, and outgoing
// packets are fresh random linear combinations of the buffer, which replaces
// the coding coefficients with a new random set exactly as re-encoding is
// defined in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_packet.h"
#include "coding/generation.h"
#include "coding/rref.h"
#include "common/rng.h"

namespace omnc::coding {

class Recoder {
 public:
  Recoder(const CodingParams& params, std::uint32_t session_id,
          std::uint32_t generation_id);

  /// Considers an incoming packet: returns true (and buffers it) iff it is
  /// innovative for this relay.  Packets from other generations or with
  /// mismatched dimensions are rejected.
  bool offer(const CodedPacket& packet);

  /// True if this relay can emit packets (holds at least one innovative
  /// packet of the current generation).
  bool can_send() const { return !buffer_.empty(); }

  std::size_t rank() const { return filter_.rank(); }
  bool is_full() const { return filter_.complete(); }
  std::uint32_t generation_id() const { return generation_id_; }

  /// Emits a re-encoded packet: a random combination of the buffered
  /// innovative packets.  Requires can_send().
  CodedPacket recode(Rng& rng) const;

  /// Discards buffered packets and moves to a new generation (triggered by an
  /// ACK or by overhearing a higher generation ID).
  void reset(std::uint32_t generation_id);

 private:
  CodingParams params_;
  std::uint32_t session_id_;
  std::uint32_t generation_id_;
  // Coefficient-only innovation filter; payload stays untouched in buffer_.
  RrefAccumulator filter_;
  std::vector<CodedPacket> buffer_;
};

}  // namespace omnc::coding

// Relay-side re-encoder (Sec. 3.1 and Sec. 4, "Packet and Queue
// Management").
//
// A relay accepts an incoming packet only if it is innovative with respect to
// what it already holds; innovative packets join the relay's basis, and
// outgoing packets are fresh random linear combinations of that basis, which
// replaces the coding coefficients with a new random set exactly as
// re-encoding is defined in the paper.
//
// Storage is two flat insertion-order arenas (coefficients and payloads of
// the accepted packets) beside the coefficient-only RREF innovation filter —
// no ring of owning CodedPackets.  offer() takes a CodedPacketView, so on
// the zero-copy receive path an innovative packet's bytes are copied exactly
// once (into the arenas) and a non-innovative packet's payload is never
// read.  recode_into() re-encodes straight from the arenas into a reused
// output packet: the steady-state relay path allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_packet.h"
#include "coding/generation.h"
#include "coding/rref.h"
#include "common/rng.h"

namespace omnc::coding {

class Recoder {
 public:
  Recoder(const CodingParams& params, std::uint32_t session_id,
          std::uint32_t generation_id);

  /// Considers an incoming packet: returns true (and absorbs it into the
  /// basis arenas) iff it is innovative for this relay.  Packets from other
  /// generations or with mismatched dimensions are rejected.
  bool offer(const CodedPacket& packet);

  /// Zero-copy variant: reads the view in place; an innovative packet's
  /// coefficients and payload are copied once into the arenas, a
  /// non-innovative packet's payload is never read.
  bool offer(const CodedPacketView& view);

  /// True if this relay can emit packets (holds at least one innovative
  /// packet of the current generation).
  bool can_send() const { return filter_.rank() > 0; }

  std::size_t rank() const { return filter_.rank(); }
  bool is_full() const { return filter_.complete(); }
  std::uint32_t generation_id() const { return generation_id_; }

  /// Emits a re-encoded packet: a random combination of the basis.
  /// Requires can_send().
  CodedPacket recode(Rng& rng) const;

  /// Allocation-free variant: re-encodes straight from the basis arenas
  /// into `out`, reusing its vectors' capacity.  Identical output bytes to
  /// recode() for the same rng state.
  void recode_into(Rng& rng, CodedPacket* out) const;

  /// Discards the basis and moves to a new generation (triggered by an
  /// ACK or by overhearing a higher generation ID).
  void reset(std::uint32_t generation_id);

 private:
  CodingParams params_;
  std::uint32_t session_id_;
  std::uint32_t generation_id_;
  // Coefficient-only innovation filter; the original (unreduced) rows live
  // in the flat arenas below, in insertion order.
  RrefAccumulator filter_;
  std::vector<std::uint8_t> basis_coeffs_;    // rank x n, as received
  std::vector<std::uint8_t> basis_payloads_;  // rank x m, as received
  mutable std::vector<std::uint8_t> multipliers_;
  mutable std::vector<const std::uint8_t*> coeff_srcs_;
  mutable std::vector<const std::uint8_t*> payload_srcs_;
};

}  // namespace omnc::coding

#include "coding/rref.h"

#include <algorithm>

#include "common/assert.h"
#include "galois/gf256.h"
#include "galois/region.h"
#include "obs/registry.h"

namespace omnc::coding {

RrefAccumulator::RrefAccumulator(std::size_t pivot_cols, std::size_t row_bytes)
    : pivot_cols_(pivot_cols),
      row_bytes_(row_bytes),
      pivot_to_row_(pivot_cols, -1) {
  OMNC_ASSERT(pivot_cols > 0);
  OMNC_ASSERT(row_bytes >= pivot_cols);
}

bool RrefAccumulator::insert(std::vector<std::uint8_t> row) {
  OMNC_SCOPED_TIMER("coding/rref_insert");
  OMNC_ASSERT(row.size() == row_bytes_);
  // Forward elimination against the existing basis.
  for (const BasisRow& basis : rows_) {
    const std::uint8_t factor = row[basis.pivot];
    if (factor != 0) {
      gf::region_axpy(row.data(), data_[basis.index].data(), factor,
                      row_bytes_);
    }
  }
  // Locate the pivot of the residual.
  std::size_t pivot = pivot_cols_;
  for (std::size_t c = 0; c < pivot_cols_; ++c) {
    if (row[c] != 0) {
      pivot = c;
      break;
    }
  }
  if (pivot == pivot_cols_) return false;  // linearly dependent
  // Normalize so the pivot entry is 1.
  const std::uint8_t pivot_value = row[pivot];
  if (pivot_value != 1) {
    gf::region_mul(row.data(), row.data(), gf::inv(pivot_value), row_bytes_);
  }
  // Back-substitute the new pivot out of existing rows.
  for (const BasisRow& basis : rows_) {
    std::uint8_t* existing = data_[basis.index].data();
    const std::uint8_t factor = existing[pivot];
    if (factor != 0) gf::region_axpy(existing, row.data(), factor, row_bytes_);
  }
  // Install the row, keeping rows_ sorted by pivot.
  data_.push_back(std::move(row));
  const BasisRow entry{pivot, data_.size() - 1};
  const auto pos = std::lower_bound(
      rows_.begin(), rows_.end(), entry,
      [](const BasisRow& a, const BasisRow& b) { return a.pivot < b.pivot; });
  rows_.insert(pos, entry);
  pivot_to_row_[pivot] = static_cast<int>(data_.size() - 1);
  return true;
}

bool RrefAccumulator::would_be_innovative(
    const std::uint8_t* coefficients) const {
  std::vector<std::uint8_t> scratch(coefficients, coefficients + pivot_cols_);
  for (const BasisRow& basis : rows_) {
    const std::uint8_t factor = scratch[basis.pivot];
    if (factor != 0) {
      gf::region_axpy(scratch.data(), data_[basis.index].data(), factor,
                      pivot_cols_);
    }
  }
  return std::any_of(scratch.begin(), scratch.end(),
                     [](std::uint8_t b) { return b != 0; });
}

const std::uint8_t* RrefAccumulator::row_for_pivot(std::size_t pivot) const {
  OMNC_ASSERT(pivot < pivot_cols_);
  const int index = pivot_to_row_[pivot];
  if (index < 0) return nullptr;
  return data_[static_cast<std::size_t>(index)].data();
}

void RrefAccumulator::clear() {
  rows_.clear();
  data_.clear();
  std::fill(pivot_to_row_.begin(), pivot_to_row_.end(), -1);
}

}  // namespace omnc::coding

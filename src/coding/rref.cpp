#include "coding/rref.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"
#include "galois/gf256.h"
#include "galois/region.h"
#include "obs/registry.h"

namespace omnc::coding {

RrefAccumulator::RrefAccumulator(std::size_t pivot_cols, std::size_t row_bytes)
    : pivot_cols_(pivot_cols),
      payload_bytes_(row_bytes - pivot_cols),
      stride_(payload_bytes_ > 0 ? 2 * pivot_cols : pivot_cols),
      pivot_to_row_(pivot_cols, -1),
      scratch_(stride_) {
  OMNC_ASSERT(pivot_cols > 0);
  OMNC_ASSERT(row_bytes >= pivot_cols);
}

bool RrefAccumulator::insert(const std::uint8_t* coefficients,
                             const std::uint8_t* payload) {
  OMNC_SCOPED_TIMER("coding/rref_insert");
  OMNC_ASSERT(payload_bytes_ == 0 || payload != nullptr);
  if (complete()) {
    last_insert_pivot_ = -1;
    return false;  // the basis already spans the whole space
  }
  const bool track_payload = payload_bytes_ > 0;
  // Elimination acts on [coefficients | transform] as one contiguous row.
  // Live transform entries stop at column rank_ (the incoming row adds one
  // at rank_ itself), so the kernels only need to cover pivot_cols_ +
  // rank_ + 1 columns.  That span is rounded up to a 64-byte multiple —
  // full SIMD blocks, no per-call scalar tails — and capped at the stride;
  // the padding beyond the live region is zero on every row and stays zero
  // under axpy, so trimming never changes a byte of the result.  Early in a
  // generation this cuts the swept width nearly in half versus running the
  // full [coefficients | transform] stride each time.
  const std::size_t width =
      track_payload
          ? pivot_cols_ +
                std::min(pivot_cols_, (rank_ + 1 + std::size_t{63}) & ~std::size_t{63})
          : pivot_cols_;
  std::uint8_t* sc = scratch_.data();
  std::memcpy(sc, coefficients, pivot_cols_);
  if (track_payload) {
    // The incoming row starts as "1 x its own raw payload", which will live
    // in slot rank_ if the row is accepted.  Existing transform rows only
    // reference slots < rank_, so elimination never touches this entry.
    std::memset(sc + pivot_cols_, 0, pivot_cols_);
    sc[pivot_cols_ + rank_] = 1;
  }
  // Forward elimination against the existing basis — coefficients and
  // transform only; the payload is not read at all on this path.  The basis
  // is in reduced form, so every stored row has zeros in the other rows'
  // pivot columns: the elimination factors can all be read up front and the
  // whole sweep batched through the fused kernels.
  elim_srcs_.resize(rank_);
  elim_factors_.resize(rank_);
  std::size_t active = 0;
  for (const BasisRow& basis : rows_) {
    const std::uint8_t factor = sc[basis.pivot];
    if (factor != 0) {
      elim_srcs_[active] = basis_row(basis.index);
      elim_factors_[active] = factor;
      ++active;
    }
  }
  if (active > 0) {
    gf::region_axpy_many(sc, elim_srcs_.data(), elim_factors_.data(), active,
                         width);
  }
  // Locate the pivot of the residual.
  std::size_t pivot = pivot_cols_;
  for (std::size_t c = 0; c < pivot_cols_; ++c) {
    if (sc[c] != 0) {
      pivot = c;
      break;
    }
  }
  if (pivot == pivot_cols_) {
    last_insert_pivot_ = -1;
    return false;  // linearly dependent
  }
  // Normalize so the pivot entry is 1.
  const std::uint8_t pivot_value = sc[pivot];
  if (pivot_value != 1) {
    gf::region_mul(sc, sc, gf::inv(pivot_value), width);
  }
  // Back-substitute the new pivot out of existing rows (coefficients and
  // transforms; payload elimination is deferred, so any cached
  // materialization of a touched row goes stale).  One source into many
  // short destinations is the scatter kernel's shape — a single call
  // instead of rank_ per-row axpys.
  elim_dsts_.clear();
  elim_factors_.clear();
  for (const BasisRow& basis : rows_) {
    std::uint8_t* existing = basis_row(basis.index);
    const std::uint8_t factor = existing[pivot];
    if (factor != 0) {
      elim_dsts_.push_back(existing);
      elim_factors_.push_back(factor);
      if (track_payload) cache_valid_[basis.index] = 0;
    }
  }
  if (!elim_dsts_.empty()) {
    gf::region_axpy_scatter(elim_dsts_.data(), elim_factors_.data(),
                            elim_dsts_.size(), sc, width);
  }
  // Install the row in the arenas, keeping rows_ sorted by pivot.
  const std::size_t slot = rank_;
  basis_.resize(basis_.size() + stride_);  // zero-filled beyond `width`
  std::memcpy(basis_.data() + slot * stride_, sc, width);
  if (track_payload) {
    raw_.insert(raw_.end(), payload, payload + payload_bytes_);
    cache_.resize(cache_.size() + payload_bytes_);
    cache_valid_.push_back(0);
  }
  const BasisRow entry{pivot, slot};
  const auto pos = std::lower_bound(
      rows_.begin(), rows_.end(), entry,
      [](const BasisRow& a, const BasisRow& b) { return a.pivot < b.pivot; });
  rows_.insert(pos, entry);
  pivot_to_row_[pivot] = static_cast<int>(slot);
  ++rank_;
  last_insert_pivot_ = static_cast<int>(pivot);
  return true;
}

bool RrefAccumulator::insert(const std::vector<std::uint8_t>& row) {
  OMNC_ASSERT(row.size() == row_bytes());
  return insert(row.data(), payload_bytes_ > 0 ? row.data() + pivot_cols_
                                               : nullptr);
}

bool RrefAccumulator::would_be_innovative(
    const std::uint8_t* coefficients) const {
  std::uint8_t* sc = scratch_.data();
  std::memcpy(sc, coefficients, pivot_cols_);
  // Same order-independence argument as in insert: gather the factors, then
  // one batched sweep over the coefficient blocks only.
  elim_srcs_.resize(rank_);
  elim_factors_.resize(rank_);
  std::size_t active = 0;
  for (const BasisRow& basis : rows_) {
    const std::uint8_t factor = sc[basis.pivot];
    if (factor != 0) {
      elim_srcs_[active] = basis_row(basis.index);
      elim_factors_[active] = factor;
      ++active;
    }
  }
  if (active > 0) {
    gf::region_axpy_many(sc, elim_srcs_.data(), elim_factors_.data(), active,
                         pivot_cols_);
  }
  return std::any_of(sc, sc + pivot_cols_,
                     [](std::uint8_t b) { return b != 0; });
}

const std::uint8_t* RrefAccumulator::coefficients_for_pivot(
    std::size_t pivot) const {
  OMNC_ASSERT(pivot < pivot_cols_);
  const int index = pivot_to_row_[pivot];
  if (index < 0) return nullptr;
  return basis_row(static_cast<std::size_t>(index));
}

const std::uint8_t* RrefAccumulator::payload_for_pivot(
    std::size_t pivot) const {
  OMNC_ASSERT(pivot < pivot_cols_);
  if (payload_bytes_ == 0) return nullptr;
  const int index = pivot_to_row_[pivot];
  if (index < 0) return nullptr;
  return materialize(static_cast<std::size_t>(index));
}

void RrefAccumulator::materialize_payloads() const {
  if (payload_bytes_ == 0) return;
  bool any_stale = false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (!cache_valid_[i]) {
      any_stale = true;
      std::memset(cache_.data() + i * payload_bytes_, 0, payload_bytes_);
    }
  }
  if (!any_stale) return;
  OMNC_SCOPED_TIMER("coding/rref_materialize");
  src_ptrs_.resize(rank_);
  for (std::size_t k = 0; k < rank_; ++k) src_ptrs_[k] = raw_row(k);
  // Source-blocked sweep: each group of <=4 raw payloads is applied to every
  // stale destination row before moving on, so the group stays resident in
  // cache for rank_ destination passes (the per-row path instead re-streams
  // the entire raw arena for each destination).
  for (std::size_t k = 0; k < rank_; k += 4) {
    const std::size_t group = std::min<std::size_t>(4, rank_ - k);
    for (std::size_t i = 0; i < rank_; ++i) {
      if (cache_valid_[i]) continue;
      const std::uint8_t* u = basis_row(i) + pivot_cols_ + k;
      gf::region_axpy_many(cache_.data() + i * payload_bytes_,
                           src_ptrs_.data() + k, u, group, payload_bytes_);
    }
  }
  for (std::size_t i = 0; i < rank_; ++i) cache_valid_[i] = 1;
}

void RrefAccumulator::materialize_into(std::uint8_t* out) const {
  OMNC_ASSERT(payload_bytes_ > 0);
  OMNC_ASSERT(complete());
  OMNC_SCOPED_TIMER("coding/rref_materialize");
  std::memset(out, 0, pivot_cols_ * payload_bytes_);
  src_ptrs_.resize(rank_);
  for (std::size_t k = 0; k < rank_; ++k) src_ptrs_[k] = raw_row(k);
  // Same source-blocked sweep as materialize_payloads, but the destination
  // for pivot p is out + p * payload_bytes_ instead of the cache row — the
  // caller gets the concatenated generation without a second copy.  The
  // cache is left untouched (rows already materialized stay valid).
  for (std::size_t k = 0; k < rank_; k += 4) {
    const std::size_t group = std::min<std::size_t>(4, rank_ - k);
    for (std::size_t p = 0; p < pivot_cols_; ++p) {
      const std::size_t slot =
          static_cast<std::size_t>(pivot_to_row_[p]);
      const std::uint8_t* u = basis_row(slot) + pivot_cols_ + k;
      gf::region_axpy_many(out + p * payload_bytes_, src_ptrs_.data() + k, u,
                           group, payload_bytes_);
    }
  }
}

const std::uint8_t* RrefAccumulator::materialize(std::size_t index) const {
  std::uint8_t* dst = cache_.data() + index * payload_bytes_;
  if (cache_valid_[index]) return dst;
  OMNC_SCOPED_TIMER("coding/rref_materialize");
  // The deferred elimination, batched: the row's payload is the transform's
  // combination of raw payloads, folded 4 (then 2) sources per destination
  // pass by the fused kernels.  raw_ may have been reallocated by later
  // inserts, so refresh the source pointer list every time (rank_ entries,
  // trivial next to the payload work).
  const std::uint8_t* u = basis_row(index) + pivot_cols_;
  std::memset(dst, 0, payload_bytes_);
  src_ptrs_.resize(rank_);
  for (std::size_t k = 0; k < rank_; ++k) src_ptrs_[k] = raw_row(k);
  gf::region_axpy_many(dst, src_ptrs_.data(), u, rank_, payload_bytes_);
  cache_valid_[index] = 1;
  return dst;
}

void RrefAccumulator::clear() {
  rank_ = 0;
  last_insert_pivot_ = -1;
  rows_.clear();
  std::fill(pivot_to_row_.begin(), pivot_to_row_.end(), -1);
  basis_.clear();
  raw_.clear();
  cache_.clear();
  cache_valid_.clear();
}

}  // namespace omnc::coding

// Incremental reduced-row-echelon-form accumulator — the engine behind both
// the destination's progressive Gauss–Jordan decoder and the relays'
// innovation filter (Sec. 4, "Progressive decoding").
//
// A row is `pivot_cols` coding coefficients optionally followed by payload
// bytes.  Only the coefficient block is kept in reduced form eagerly: every
// insert forward-eliminates, normalizes, and back-substitutes coefficients,
// so rank/innovation decisions are always exact.  Payloads are stored raw in
// a flat arena, exactly as received, and the accumulator instead maintains a
// transform row per basis row — the GF(256) combination of raw payloads that
// the eliminated payload *would* be.  The expensive payload-width
// back-substitution is deferred until a decoded payload is actually read
// (payload_for_pivot / the decoder's decoded_block / recover), where it runs
// as one batched elimination through the fused region_axpy2/4 kernels.
//
// Why this wins: rejecting a non-innovative row touches coefficients only
// (never the payload), insert cost drops from O(rank * row_bytes) to
// O(rank * pivot_cols) bytes, and the one-time materialization pass streams
// 2-4 source rows per destination pass instead of re-reading the destination
// for every axpy.  Decoded bytes are bit-identical to the eager scheme — GF
// arithmetic is exact and the decoded blocks are unique.
//
// Storage is two contiguous arenas plus a lazily filled materialization
// cache; no per-row std::vector.  The basis arena packs each row as
// [coefficients | transform] so one fused axpy drives both during
// elimination; the payload arena holds raw payloads in insertion order.
// Because the basis is kept in reduced form, each stored row has zeros in
// every other row's pivot column, so the forward-elimination factors are
// order-independent — the whole sweep is gathered up front and batched
// through region_axpy_many (4, then 2, sources per destination pass).
// Not thread-safe: the mutable scratch and cache assume one caller at a
// time, which matches the per-node simulation model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace omnc::coding {

class RrefAccumulator {
 public:
  /// pivot_cols: number of coefficient columns (pivots only arise there).
  /// row_bytes: full row length, >= pivot_cols; the difference is payload.
  RrefAccumulator(std::size_t pivot_cols, std::size_t row_bytes);

  std::size_t pivot_cols() const { return pivot_cols_; }
  std::size_t row_bytes() const { return pivot_cols_ + payload_bytes_; }
  std::size_t payload_bytes() const { return payload_bytes_; }
  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == pivot_cols_; }

  /// Reduces the row [coefficients | payload] against the basis.  Returns
  /// true if it is innovative (the row joins the basis; the payload is
  /// copied into the raw arena untouched); false if it reduced to zero — in
  /// that case the payload is never even read.  `payload` may be nullptr
  /// when payload_bytes() == 0 (the coefficient-only innovation filter).
  bool insert(const std::uint8_t* coefficients, const std::uint8_t* payload);

  /// Convenience overload over a packed [coefficients | payload] row of
  /// row_bytes() bytes.
  bool insert(const std::vector<std::uint8_t>& row);

  /// Checks innovation without mutating the basis: reduces a scratch copy of
  /// just the coefficient part (no allocation; reuses a member buffer).
  bool would_be_innovative(const std::uint8_t* coefficients) const;

  /// Pivot column claimed by the most recent successful insert(), or -1 if
  /// no insert has succeeded since construction/clear() or the last offer
  /// was rejected.  Feeds the per-packet "pv" trace field.
  int last_insert_pivot() const { return last_insert_pivot_; }

  /// Coefficient block (pivot_cols bytes, reduced form) of the basis row
  /// whose pivot is `pivot`, or nullptr if absent.
  const std::uint8_t* coefficients_for_pivot(std::size_t pivot) const;

  /// Eliminated payload (payload_bytes bytes) of that basis row, or nullptr
  /// if the row is absent or payload_bytes() == 0.  Materializes the row on
  /// demand (cached until a later insert touches the row); logically const.
  const std::uint8_t* payload_for_pivot(std::size_t pivot) const;

  /// Materializes every stale row in one source-blocked pass: the raw
  /// payloads are walked in groups of up to four that stay cache-hot across
  /// all destination rows, instead of streaming the whole raw arena once per
  /// row.  Bulk readers (the decoder's recover) call this before reading;
  /// results are identical to per-row materialization.  Logically const.
  void materialize_payloads() const;

  /// Full-rank bulk read: eliminates every payload directly into `out`
  /// (pivot_cols() * payload_bytes() bytes, pivot-major), bypassing the
  /// per-row cache entirely.  In a complete basis the row with pivot p *is*
  /// decoded block p, so this writes the recovered generation in one
  /// source-blocked sweep with no intermediate copy and no allocation.
  /// Requires complete() and payload_bytes() > 0.
  void materialize_into(std::uint8_t* out) const;

  void clear();

 private:
  struct BasisRow {
    std::size_t pivot;
    std::size_t index;  // row slot in the arenas, in insertion order
  };

  /// A basis-arena row: pivot_cols coefficient bytes, then (when payloads
  /// are tracked) pivot_cols transform bytes.
  std::uint8_t* basis_row(std::size_t index) {
    return basis_.data() + index * stride_;
  }
  const std::uint8_t* basis_row(std::size_t index) const {
    return basis_.data() + index * stride_;
  }
  const std::uint8_t* raw_row(std::size_t index) const {
    return raw_.data() + index * payload_bytes_;
  }

  /// Runs the deferred payload elimination for one basis row.
  const std::uint8_t* materialize(std::size_t index) const;

  std::size_t pivot_cols_;
  std::size_t payload_bytes_;
  std::size_t stride_;             // bytes per basis-arena row
  std::size_t rank_ = 0;
  int last_insert_pivot_ = -1;
  std::vector<BasisRow> rows_;     // sorted by pivot
  std::vector<int> pivot_to_row_;  // pivot -> arena row slot, -1 when absent
  std::vector<std::uint8_t> basis_;  // rank x stride, coefficients reduced
  std::vector<std::uint8_t> raw_;    // rank x payload_bytes, as received
  mutable std::vector<std::uint8_t> cache_;        // rank x payload_bytes
  mutable std::vector<std::uint8_t> cache_valid_;  // per row slot, 0/1
  mutable std::vector<std::uint8_t> scratch_;      // one basis-arena row
  mutable std::vector<const std::uint8_t*> elim_srcs_;   // batched sweep srcs
  mutable std::vector<std::uint8_t> elim_factors_;       // batched sweep factors
  mutable std::vector<std::uint8_t*> elim_dsts_;         // back-subst targets
  mutable std::vector<const std::uint8_t*> src_ptrs_;    // raw-row pointers
};

}  // namespace omnc::coding

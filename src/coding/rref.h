// Incremental reduced-row-echelon-form accumulator — the engine behind both
// the destination's progressive Gauss–Jordan decoder and the relays'
// innovation filter (Sec. 4, "Progressive decoding").
//
// Rows are byte vectors whose first `pivot_cols` entries are coding
// coefficients; the remainder (if any) is payload that undergoes the same row
// operations.  Inserting a row reduces it against the current basis: a
// linearly dependent row reduces to all-zero coefficients and is rejected,
// an innovative row is normalized, back-substituted into the existing rows,
// and joins the basis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace omnc::coding {

class RrefAccumulator {
 public:
  /// pivot_cols: number of coefficient columns (pivots only arise there).
  /// row_bytes: full row length, >= pivot_cols.
  RrefAccumulator(std::size_t pivot_cols, std::size_t row_bytes);

  std::size_t pivot_cols() const { return pivot_cols_; }
  std::size_t row_bytes() const { return row_bytes_; }
  std::size_t rank() const { return rows_.size(); }
  bool complete() const { return rank() == pivot_cols_; }

  /// Reduces `row` (length row_bytes) in place against the basis.  Returns
  /// true and takes ownership of the (now normalized) row if it is
  /// innovative; returns false if it reduced to zero.
  bool insert(std::vector<std::uint8_t> row);

  /// Checks innovation without mutating the accumulator: reduces a scratch
  /// copy of just the coefficient part.
  bool would_be_innovative(const std::uint8_t* coefficients) const;

  /// Basis row whose pivot is `pivot` column, or nullptr if absent.
  const std::uint8_t* row_for_pivot(std::size_t pivot) const;

  /// Rows in pivot order.
  const std::vector<std::vector<std::uint8_t>>& rows() const { return data_; }

  void clear();

 private:
  struct BasisRow {
    std::size_t pivot;
    std::size_t index;  // into data_
  };

  std::size_t pivot_cols_;
  std::size_t row_bytes_;
  std::vector<BasisRow> rows_;                 // sorted by pivot
  std::vector<std::vector<std::uint8_t>> data_;
  std::vector<int> pivot_to_row_;              // pivot -> index into rows_, -1
};

}  // namespace omnc::coding

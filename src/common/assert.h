// Assertion macros used across the OMNC libraries.
//
// OMNC_ASSERT checks an invariant in every build type (the simulation
// correctness depends on them and the cost is negligible next to the
// Galois-field work).  OMNC_DCHECK compiles out in NDEBUG builds and is
// reserved for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace omnc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "OMNC assertion failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace omnc

#define OMNC_ASSERT(expr)                                      \
  do {                                                         \
    if (!(expr)) ::omnc::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define OMNC_ASSERT_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::omnc::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define OMNC_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define OMNC_DCHECK(expr) OMNC_ASSERT(expr)
#endif

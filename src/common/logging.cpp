#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace omnc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;

  // Wall-clock timestamp, millisecond resolution.
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&seconds, &tm);

  // Format the whole line into one buffer and emit it with a single stdio
  // call under a lock: run_all's thread-pool workers log concurrently and
  // piecewise fprintf would interleave their fragments.
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  static std::mutex log_mutex;
  const std::lock_guard<std::mutex> lock(log_mutex);
  std::fprintf(stderr, "[%02d:%02d:%02d.%03d %s] %s\n", tm.tm_hour, tm.tm_min,
               tm.tm_sec, static_cast<int>(millis), level_name(level), body);
  std::fflush(stderr);
}

}  // namespace omnc

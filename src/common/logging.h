// Minimal leveled logger.
//
// The simulator and protocols log through this interface so that tests can
// silence output and benches can enable per-iteration traces selectively.
#pragma once

#include <cstdarg>
#include <string>

namespace omnc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging entry point.  Prefer the OMNC_LOG_* macros.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace omnc

#define OMNC_LOG_TRACE(...) ::omnc::log_message(::omnc::LogLevel::kTrace, __VA_ARGS__)
#define OMNC_LOG_DEBUG(...) ::omnc::log_message(::omnc::LogLevel::kDebug, __VA_ARGS__)
#define OMNC_LOG_INFO(...) ::omnc::log_message(::omnc::LogLevel::kInfo, __VA_ARGS__)
#define OMNC_LOG_WARN(...) ::omnc::log_message(::omnc::LogLevel::kWarn, __VA_ARGS__)
#define OMNC_LOG_ERROR(...) ::omnc::log_message(::omnc::LogLevel::kError, __VA_ARGS__)

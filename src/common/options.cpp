#include "common/options.h"

#include <cstdlib>

#include "common/assert.h"

namespace omnc {
namespace {

std::string env_name(const std::string& name) {
  std::string out = "OMNC_";
  for (char c : name) {
    if (c == '-') {
      out.push_back('_');
    } else {
      out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Options::lookup(const std::string& name, std::string* out) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it != values_.end()) {
    *out = it->second;
    return true;
  }
  if (const char* env = std::getenv(env_name(name).c_str())) {
    *out = env;
    return true;
  }
  return false;
}

bool Options::has(const std::string& name) const {
  std::string unused_value;
  return lookup(name, &unused_value);
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  std::string value;
  return lookup(name, &value) ? value : fallback;
}

long Options::get_int(const std::string& name, long fallback) const {
  std::string value;
  if (!lookup(name, &value)) return fallback;
  return std::strtol(value.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double fallback) const {
  std::string value;
  if (!lookup(name, &value)) return fallback;
  return std::strtod(value.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  std::string value;
  if (!lookup(name, &value)) return fallback;
  return value == "true" || value == "1" || value == "yes" || value == "on";
}

std::uint64_t Options::get_seed(const std::string& name,
                                std::uint64_t fallback) const {
  std::string value;
  if (!lookup(name, &value)) return fallback;
  return std::strtoull(value.c_str(), nullptr, 0);
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace omnc

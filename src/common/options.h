// Tiny command-line / environment option parser used by benches and examples.
//
// Supported syntax: --name=value, --name value, and boolean --flag.  Every
// option can also be supplied through the environment as OMNC_<NAME> (upper
// case, '-' replaced by '_'), which the bench harness uses to scale runs
// without editing the command lines baked into scripts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace omnc {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t fallback) const;

  /// Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were parsed from argv but never queried; used to warn about
  /// typos in bench invocations.
  std::vector<std::string> unused() const;

 private:
  /// Returns the raw value: argv beats environment.
  bool lookup(const std::string& name, std::string* out) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace omnc

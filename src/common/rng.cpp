#include "common/rng.h"

#include <cmath>

namespace omnc {

double Rng::normal() {
  // Box–Muller; u1 is bounded away from 0 so log() is finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace omnc

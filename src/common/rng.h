// Deterministic random number generation.
//
// Everything random in the library — node deployment, link shadowing, packet
// losses, coding coefficients, workload choices — flows from an explicit Rng
// seeded by the caller, so that every experiment is reproducible bit-for-bit.
//
// The generator is xoshiro256** seeded through splitmix64, which is fast,
// high-quality, and trivially portable (no <random> engine state-size or
// distribution portability concerns).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace omnc {

/// splitmix64 step; used to expand seeds and derive sub-stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    OMNC_ASSERT(bound > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    OMNC_DCHECK(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    OMNC_ASSERT(lo <= hi);
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state simple).
  double normal();

  /// Uniform byte; used for Galois coding coefficients.
  std::uint8_t next_byte() { return static_cast<std::uint8_t>(next_u64()); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent sub-stream for a named component, so parallel
  /// sessions stay deterministic regardless of scheduling order.
  Rng fork(std::uint64_t stream_id) {
    std::uint64_t sm = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^
                       rotl(state_[2], 13);
    return Rng(splitmix64(sm));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace omnc

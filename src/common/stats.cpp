#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace omnc {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Cdf::Cdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  OMNC_ASSERT(!samples_.empty());
  OMNC_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  // Linear interpolation between order statistics.
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= samples_.size()) return samples_.back();
  const double frac = pos - static_cast<double>(idx);
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Cdf::min() const {
  OMNC_ASSERT(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double Cdf::max() const {
  OMNC_ASSERT(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t num) const {
  OMNC_ASSERT(num >= 2);
  std::vector<std::pair<double, double>> points;
  if (samples_.empty()) return points;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  points.reserve(num);
  for (std::size_t i = 0; i < num; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(num - 1);
    points.emplace_back(x, at(x));
  }
  return points;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OMNC_ASSERT(hi > lo);
  OMNC_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto bin = static_cast<long>((x - lo_) / span *
                               static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  OMNC_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

void TimeAverage::advance_to(double t, double value) {
  if (!started_) {
    started_ = true;
    first_t_ = last_t_ = t;
    return;
  }
  OMNC_ASSERT(t >= last_t_);
  weighted_sum_ += value * (t - last_t_);
  last_t_ = t;
}

double TimeAverage::average() const {
  const double span = last_t_ - first_t_;
  if (span <= 0.0) return 0.0;
  return weighted_sum_ / span;
}

}  // namespace omnc

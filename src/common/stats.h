// Statistics helpers shared by the experiment harness and the benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace omnc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x.
  double at(double x) const;
  /// Inverse CDF; q in [0,1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double mean() const;
  double min() const;
  double max() const;

  /// Evenly spaced (x, F(x)) points suitable for plotting, num >= 2.
  std::vector<std::pair<double, double>> curve(std::size_t num) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram on [lo, hi); out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. a queue size
/// sampled at irregular event times.
class TimeAverage {
 public:
  /// Records that the signal had `value` from the previous timestamp to `t`.
  void advance_to(double t, double value);

  double average() const;
  double elapsed() const { return last_t_ - first_t_; }
  bool started() const { return started_; }

 private:
  bool started_ = false;
  double first_t_ = 0.0;
  double last_t_ = 0.0;
  double weighted_sum_ = 0.0;
};

}  // namespace omnc

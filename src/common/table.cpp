#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace omnc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OMNC_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string render_cdf_chart(
    const std::vector<std::pair<std::string, const Cdf*>>& series,
    double x_min, double x_max, int width, int height) {
  OMNC_ASSERT(width > 4 && height > 2);
  OMNC_ASSERT(x_max > x_min);
  static const char kMarks[] = {'o', '+', 'x', '*', '#', '@'};
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const Cdf* cdf = series[s].second;
    if (cdf == nullptr || cdf->empty()) continue;
    const char mark = kMarks[s % sizeof(kMarks)];
    for (int col = 0; col < width; ++col) {
      const double x = x_min + (x_max - x_min) * col / (width - 1);
      const double f = cdf->at(x);
      int row = static_cast<int>((1.0 - f) * (height - 1) + 0.5);
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }
  std::ostringstream out;
  for (int row = 0; row < height; ++row) {
    const double f = 1.0 - static_cast<double>(row) / (height - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", f);
    out << label << grid[static_cast<std::size_t>(row)] << "\n";
  }
  out << "     +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  char axis[128];
  std::snprintf(axis, sizeof(axis), "      %-10.3g%*s%.3g\n", x_min,
                width - 14, "", x_max);
  out << axis;
  out << "      legend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out << "  " << kMarks[s % sizeof(kMarks)] << "=" << series[s].first;
  }
  out << "\n";
  return out.str();
}

std::string render_cdf_data(
    const std::vector<std::pair<std::string, const Cdf*>>& series,
    double x_min, double x_max, int points) {
  OMNC_ASSERT(points >= 2);
  std::ostringstream out;
  out << "# x";
  for (const auto& [name, cdf] : series) {
    (void)cdf;
    out << " " << name;
  }
  out << "\n";
  for (int i = 0; i < points; ++i) {
    const double x = x_min + (x_max - x_min) * i / (points - 1);
    out << TextTable::fmt(x, 4);
    for (const auto& [name, cdf] : series) {
      (void)name;
      out << " " << TextTable::fmt(cdf != nullptr && !cdf->empty() ? cdf->at(x) : 0.0, 4);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace omnc

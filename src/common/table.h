// ASCII output helpers: aligned tables and CDF plots for the bench binaries.
//
// The benches reproduce the paper's figures as terminal output: each figure
// becomes a table of (x, F(x)) series plus a coarse ASCII plot, and each
// headline number becomes a paper-vs-measured row.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"

namespace omnc {

/// A simple right-padded text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with column alignment; every row is clipped/padded to header
  /// width count.
  std::string render() const;

  static std::string fmt(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders several named CDFs as one ASCII chart (x axis = value, y = F).
std::string render_cdf_chart(
    const std::vector<std::pair<std::string, const Cdf*>>& series,
    double x_min, double x_max, int width = 64, int height = 16);

/// Emits "x f1 f2 ..." rows for the given CDFs over a shared x grid, in a
/// machine-readable block (for replotting outside the terminal).
std::string render_cdf_data(
    const std::vector<std::pair<std::string, const Cdf*>>& series,
    double x_min, double x_max, int points = 25);

}  // namespace omnc

#include "common/thread_pool.h"

#include <algorithm>

#include "common/assert.h"

namespace omnc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OMNC_ASSERT_MSG(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for_each(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_error_ = nullptr;
  }
  for (std::size_t i = 0; i < count; ++i) {
    submit([this, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    });
  }
  wait_idle();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace omnc

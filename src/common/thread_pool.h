// A fixed-size thread pool used to run independent experiment sessions in
// parallel.  Tasks are opaque closures; parallel_for_each distributes an
// index range and rethrows the first task exception on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omnc {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; tasks must not block on each other.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits; rethrows the
  /// first exception thrown by any task.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace omnc

#include "emu/emu_harness.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "emu/fault_transport.h"

namespace omnc::emu {
namespace {

/// Serializes metric events from node threads and the transport observer
/// into one sink, stamping transport events with the run clock's virtual
/// time — the same clock the nodes and fault schedules read, so harness and
/// injector timestamps can never skew apart.
class EventTap final : public TransportObserver {
 public:
  EventTap(const routing::SessionGraph& graph, const vtime::Clock& clock,
           std::function<void(const protocols::MetricEvent&)> sink,
           std::function<void(const obs::SpanEvent&)> span_sink,
           std::uint32_t session_id)
      : graph_(graph),
        clock_(clock),
        sink_(std::move(sink)),
        span_sink_(std::move(span_sink)),
        session_id_(session_id) {}

  /// Thread-safe forwarding for EmuNode events (already carry their time).
  void forward(const protocols::MetricEvent& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_) sink_(event);
  }

  /// Thread-safe forwarding for EmuNode span events, sharing the metric
  /// mutex so the two streams interleave in one total order.
  void forward_span(const obs::SpanEvent& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (span_sink_) span_sink_(event);
  }

  void on_send(int from, std::size_t bytes) override {
    emit(protocols::MetricEvent::Type::kEmuSend, from, -1, bytes);
  }
  void on_drop(int from, int to,
               std::span<const std::uint8_t> frame) override {
    emit(protocols::MetricEvent::Type::kEmuDrop, from, to, frame.size());
    span_drop(from, to, frame, clock_.now());
  }
  void on_deliver(int from, int to, std::size_t bytes) override {
    emit(protocols::MetricEvent::Type::kEmuDeliver, from, to, bytes);
  }
  void on_fault(const FaultRecord& record) override {
    // Fault records carry the injector's own virtual timestamp.
    protocols::MetricEvent event = fault_metric_event(record, session_id_);
    const int acting = record.to >= 0 ? record.to : record.from;
    if (acting >= 0 && acting < graph_.size()) {
      event.node = graph_.node_id(acting);
    }
    forward(event);
    // Only fault kinds that destroy the copy close its span; reorder and
    // duplicate leave the packet in flight (the eventual delivery — or a
    // later drop — ends the story).
    if (record.kind == FaultRecord::Kind::kLoss ||
        record.kind == FaultRecord::Kind::kPartition ||
        record.kind == FaultRecord::Kind::kBlackout) {
      span_drop(record.from, record.to, record.frame, record.time);
    }
  }
  void on_truncated(int from, int to, std::size_t claimed_bytes) override {
    // Truncated datagrams share the parse-error family with a distinct
    // reason code (generation = 1; parser rejections use 0).
    protocols::MetricEvent event;
    event.type = protocols::MetricEvent::Type::kEmuParseError;
    event.time = clock_.now();
    event.session = session_id_;
    if (to >= 0 && to < graph_.size()) event.node = graph_.node_id(to);
    event.tx_local = from;
    event.rx_local = to;
    event.generation = 1;
    event.value = static_cast<double>(claimed_bytes);
    forward(event);
  }

 private:
  void emit(protocols::MetricEvent::Type type, int from, int to,
            std::size_t bytes) {
    protocols::MetricEvent event;
    event.type = type;
    event.time = clock_.now();
    event.session = session_id_;
    // The acting node: the receiver for drop/deliver, the sender for send.
    const int acting = to >= 0 ? to : from;
    if (acting >= 0 && acting < graph_.size()) {
      event.node = graph_.node_id(acting);
    }
    event.tx_local = from;
    event.rx_local = to;
    event.value = static_cast<double>(bytes);
    forward(event);
  }

  /// Closes the span of a killed coded-data copy by peeking its wire trace
  /// tag.  Untraced frames (control traffic, v1 peers, foreign sessions)
  /// are skipped silently; the metric-side kEmuDrop already counted them.
  void span_drop(int from, int to, std::span<const std::uint8_t> frame,
                 double time) {
    if (!span_sink_ || frame.empty()) return;
    std::uint16_t origin = 0;
    std::uint32_t seq = 0;
    if (!wire::peek_trace(frame, &origin, &seq)) return;
    const obs::SpanId span{origin, seq};
    if (!span.valid()) return;
    std::uint32_t session = 0;
    if (!wire::peek_session(frame, &session) || session != session_id_) return;
    std::uint32_t generation = 0;
    if (!wire::peek_generation(frame, &generation)) return;
    obs::SpanEvent event;
    event.kind = obs::SpanEvent::Kind::kDrop;
    event.time = time;
    event.session = session_id_;
    event.generation = generation;
    event.node = to;
    event.peer = from;
    event.span = span;
    forward_span(event);
  }

  const routing::SessionGraph& graph_;
  const vtime::Clock& clock_;
  std::function<void(const protocols::MetricEvent&)> sink_;
  std::function<void(const obs::SpanEvent&)> span_sink_;
  std::uint32_t session_id_;
  std::mutex mutex_;
};

}  // namespace

EmuHarness::EmuHarness(const routing::SessionGraph& graph,
                       Transport& transport, const EmuConfig& config)
    : graph_(graph), transport_(transport), config_(config) {
  OMNC_ASSERT(transport_.nodes() == graph_.size());
  for (int local = 0; local < graph_.size(); ++local) {
    nodes_.push_back(
        std::make_unique<EmuNode>(graph_, local, transport_, config_.node));
  }
}

void EmuHarness::install_rates(const std::vector<double>& rates_bytes_per_s) {
  OMNC_ASSERT(rates_bytes_per_s.size() == nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->install_rate(rates_bytes_per_s[i]);
  }
}

void EmuHarness::install_price_table(std::vector<double> rates_bytes_per_s,
                                     std::vector<double> lambda,
                                     std::vector<double> beta,
                                     int iterations) {
  nodes_[static_cast<std::size_t>(graph_.source)]->set_price_table(
      std::move(rates_bytes_per_s), std::move(lambda), std::move(beta),
      iterations);
}

void EmuHarness::set_metric_sink(
    std::function<void(const protocols::MetricEvent&)> sink) {
  sink_ = std::move(sink);
}

void EmuHarness::set_span_sink(
    std::function<void(const obs::SpanEvent&)> sink) {
  span_sink_ = std::move(sink);
}

bool EmuHarness::run_threaded(vtime::Clock& clock, double tick,
                              double horizon) {
  // Every node thread plus the completion watcher (this thread) joins the
  // clock; under kWarp all of them must sleep or leave for time to advance.
  clock.start(static_cast<int>(nodes_.size()) + 1);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (auto& node : nodes_) {
    threads.emplace_back([&, raw = node.get()] {
      double next = tick;
      while (!stop.load(std::memory_order_relaxed)) {
        raw->step(clock.now());
        clock.sleep_until(next);
        next += tick;
      }
      // One final drain so late frames still reach the node's counters.
      raw->step(clock.now());
      clock.leave();
    });
  }

  EmuNode& source = *nodes_[static_cast<std::size_t>(graph_.source)];
  bool completed = false;
  double next = tick;
  while (clock.now() < horizon) {
    if (source.completed_generations() >= config_.node.max_generations) {
      completed = true;
      break;
    }
    clock.sleep_until(next);
    next += tick;
  }
  stop.store(true, std::memory_order_relaxed);
  // The watcher departs first so sleeping node threads keep advancing to
  // their next tick, observe `stop`, and drain out.
  clock.leave();
  for (std::thread& thread : threads) thread.join();
  return completed;
}

bool EmuHarness::run_deterministic(vtime::DeterministicClock& clock,
                                   double tick, double horizon) {
  clock.start(1);
  EmuNode& source = *nodes_[static_cast<std::size_t>(graph_.source)];
  bool completed = false;
  while (clock.now() < horizon) {
    if (source.completed_generations() >= config_.node.max_generations) {
      completed = true;
      break;
    }
    clock.advance_to(clock.now() + tick);
    // Fixed round-robin order: together with the cooperative clock this
    // makes the whole run a pure function of the configured seeds.
    for (auto& node : nodes_) node->step(clock.now());
  }
  for (auto& node : nodes_) node->step(clock.now());
  return completed;
}

EmuRunResult EmuHarness::run() {
  std::unique_ptr<vtime::Clock> clock =
      vtime::make_clock(config_.clock_mode, config_.speedup);
  EventTap tap(graph_, *clock, sink_, span_sink_, config_.node.session_id);
  if (sink_ || span_sink_) {
    transport_.set_observer(&tap);
  }
  if (sink_) {
    for (auto& node : nodes_) {
      node->set_metric_sink(
          [&tap](const protocols::MetricEvent& event) { tap.forward(event); });
    }
  }
  if (span_sink_) {
    for (auto& node : nodes_) {
      node->set_span_sink(
          [&tap](const obs::SpanEvent& event) { tap.forward_span(event); });
    }
  }
  transport_.bind_clock(clock.get());

  // One node scheduling round per `tick` virtual seconds; the horizon is
  // the same virtual cutoff the old wall timeout imposed under kReal.
  const double tick =
      static_cast<double>(config_.poll_sleep_us) * 1e-6 * config_.speedup;
  const double horizon = config_.virtual_timeout_s > 0.0
                             ? config_.virtual_timeout_s
                             : config_.wall_timeout_s * config_.speedup;
  OMNC_ASSERT_MSG(tick > 0.0, "poll_sleep_us and speedup must be positive");

  bool completed = false;
  if (config_.clock_mode == vtime::ClockMode::kDeterministic) {
    completed = run_deterministic(
        static_cast<vtime::DeterministicClock&>(*clock), tick, horizon);
  } else {
    completed = run_threaded(*clock, tick, horizon);
  }
  const double virtual_elapsed = clock->now();
  transport_.set_observer(nullptr);
  transport_.bind_clock(nullptr);

  EmuRunResult result;
  result.completed = completed;
  result.virtual_elapsed = virtual_elapsed;
  result.transport = transport_.stats();

  EmuNode& source = *nodes_[static_cast<std::size_t>(graph_.source)];
  const EmuNode::Stats& src = source.stats();
  result.generations_completed = src.generations_completed;
  result.last_ack_time = src.last_ack_time;
  result.ack_latencies = src.ack_latencies;
  if (!src.ack_latencies.empty()) {
    double sum = 0.0;
    for (const double latency : src.ack_latencies) sum += latency;
    result.mean_ack_latency = sum / static_cast<double>(src.ack_latencies.size());
  }
  if (src.last_ack_time > 0.0) {
    result.goodput_bytes_per_s =
        static_cast<double>(src.generations_completed) *
        static_cast<double>(config_.node.coding.generation_bytes()) /
        src.last_ack_time;
  }

  result.data_ok = true;
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen_reports;
  for (const auto& node : nodes_) {
    const EmuNode::Stats& stats = node->stats();
    if (!stats.data_ok) result.data_ok = false;
    result.parse_errors += stats.parse_errors;
    result.data_packets_sent += stats.data_packets_sent;
    result.stall_boosts += stats.stall_boosts;
    result.ack_keepalives += stats.ack_keepalives;
    result.resync_requests += stats.resync_requests;
    result.resync_replies += stats.resync_replies;
    result.price_decays += stats.price_decays;
    for (const wire::ProbeReport& report : stats.probe_reports) {
      if (seen_reports
              .insert({report.reporter_local, report.probed_local})
              .second) {
        result.probe_reports.push_back(report);
      }
    }
  }
  // A run that decoded nothing has no data to vouch for.
  if (result.generations_completed == 0) result.data_ok = false;
  return result;
}

}  // namespace omnc::emu

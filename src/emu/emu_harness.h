// Runs one OMNC session as a fleet of threads exchanging serialized frames.
//
// Every session node gets its own EmuNode and its own thread; the only
// shared state is the Transport (and an optional, internally serialized
// metric sink).  Virtual time is wall time times `speedup`, shared by all
// nodes through one steady_clock origin, so a 60-virtual-second session
// finishes in a few wall seconds.  The run stops when the source has
// retired `max_generations` generations or the wall timeout expires.
//
// Determinism caveat (DESIGN.md §10): coding coefficients and loopback
// losses are seed-deterministic, but *timing* — and therefore exact packet
// counts and goodput — varies with OS scheduling.  Cross-checks against the
// slot simulator use tolerances, while decoded-data integrity is exact.
#pragma once

#include <functional>
#include <vector>

#include "emu/emu_node.h"
#include "emu/transport.h"
#include "protocols/metrics_bus.h"
#include "routing/node_selection.h"
#include "wire/frame.h"

namespace omnc::emu {

struct EmuConfig {
  EmuNodeConfig node;

  /// Virtual seconds per wall second.
  double speedup = 20.0;

  /// Wall-clock budget; a run that has not finished by then is cut off and
  /// reported with completed = false.
  double wall_timeout_s = 60.0;

  /// Wall-clock sleep between node scheduling rounds.
  int poll_sleep_us = 200;
};

struct EmuRunResult {
  bool completed = false;  // the source retired max_generations
  bool data_ok = false;    // every decoded generation matched the source
  int generations_completed = 0;
  double goodput_bytes_per_s = 0.0;  // decoded bytes / last ACK (session s)
  double last_ack_time = 0.0;        // session seconds
  double mean_ack_latency = 0.0;     // session seconds
  std::vector<double> ack_latencies;
  std::size_t parse_errors = 0;      // summed over nodes
  std::size_t data_packets_sent = 0;
  // Recovery-path activity, summed over nodes (see EmuNode::Stats).
  std::size_t stall_boosts = 0;
  std::size_t ack_keepalives = 0;
  std::size_t resync_requests = 0;
  std::size_t resync_replies = 0;
  std::size_t price_decays = 0;
  double virtual_elapsed = 0.0;      // virtual seconds the run took
  TransportStats transport;
  std::vector<wire::ProbeReport> probe_reports;  // deduped (reporter, probed)
};

class EmuHarness {
 public:
  /// `transport.nodes()` must equal `graph.size()`.
  EmuHarness(const routing::SessionGraph& graph, Transport& transport,
             const EmuConfig& config);

  /// Installs one transmit rate per local node directly (oracle mode).
  void install_rates(const std::vector<double>& rates_bytes_per_s);

  /// Hands the rate-control outcome to the source for in-band price
  /// flooding (distributed mode); see EmuNode::set_price_table.
  void install_price_table(std::vector<double> rates_bytes_per_s,
                           std::vector<double> lambda,
                           std::vector<double> beta, int iterations);

  /// Observes protocol + transport events (kGenerationAck, kEmu*).  The
  /// harness serializes calls; the sink itself need not be thread-safe.
  /// Events carry virtual time.
  void set_metric_sink(std::function<void(const protocols::MetricEvent&)> sink);

  /// Blocks until the session finishes or times out.
  EmuRunResult run();

  EmuNode& node(int local) { return *nodes_[static_cast<std::size_t>(local)]; }

 private:
  const routing::SessionGraph& graph_;
  Transport& transport_;
  EmuConfig config_;
  std::vector<std::unique_ptr<EmuNode>> nodes_;
  std::function<void(const protocols::MetricEvent&)> sink_;
};

}  // namespace omnc::emu

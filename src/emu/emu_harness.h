// Runs one OMNC session as a fleet of EmuNodes exchanging serialized frames.
//
// All timing flows through one vtime::Clock (DESIGN.md §12) that the
// harness creates per run and binds to the transport, so nodes, delay
// queues, fault schedules, and event timestamps share a single origin.
// The clock mode picks the execution strategy:
//
//   * kReal — thread per node; virtual time is wall time times `speedup`,
//     so a 60-virtual-second session finishes in a few wall seconds.
//   * kWarp — thread per node; virtual time jumps tick to tick as fast as
//     the threads can step, so the same session finishes in milliseconds.
//   * kDeterministic — no threads; nodes step round-robin on a cooperative
//     clock, making the whole run (packet counts, goodput, traces) a pure
//     function of the seeds.
//
// The run stops when the source has retired `max_generations` generations
// or the timeout expires.
//
// Determinism (DESIGN.md §10/§12): coding coefficients and loopback losses
// are seed-deterministic in every mode; under kReal/kWarp *timing* — and
// therefore exact packet counts and goodput — still varies with thread
// scheduling, so cross-checks use tolerances there.  Under kDeterministic
// same-seed runs are byte-identical end to end and comparisons can demand
// exact equality.
#pragma once

#include <functional>
#include <vector>

#include "emu/emu_node.h"
#include "emu/transport.h"
#include "obs/span.h"
#include "protocols/metrics_bus.h"
#include "routing/node_selection.h"
#include "time/clock.h"
#include "wire/frame.h"

namespace omnc::emu {

struct EmuConfig {
  EmuNodeConfig node;

  /// How virtual time advances; see the header comment.
  vtime::ClockMode clock_mode = vtime::ClockMode::kReal;

  /// Virtual seconds per wall second (RealClock only).
  double speedup = 20.0;

  /// Wall-clock budget under kReal; a run that has not finished by then is
  /// cut off and reported with completed = false.
  double wall_timeout_s = 60.0;

  /// Virtual-seconds budget.  0 means wall_timeout_s * speedup, which keeps
  /// the three clock modes cutting off at the same *virtual* horizon.
  double virtual_timeout_s = 0.0;

  /// Node scheduling period: each node steps every poll_sleep_us * speedup
  /// microseconds of virtual time (under kReal that is a wall sleep of
  /// poll_sleep_us between rounds, matching the pre-seam behaviour).
  int poll_sleep_us = 200;
};

struct EmuRunResult {
  bool completed = false;  // the source retired max_generations
  bool data_ok = false;    // every decoded generation matched the source
  int generations_completed = 0;
  double goodput_bytes_per_s = 0.0;  // decoded bytes / last ACK (session s)
  double last_ack_time = 0.0;        // session seconds
  double mean_ack_latency = 0.0;     // session seconds
  std::vector<double> ack_latencies;
  std::size_t parse_errors = 0;      // summed over nodes
  std::size_t data_packets_sent = 0;
  // Recovery-path activity, summed over nodes (see EmuNode::Stats).
  std::size_t stall_boosts = 0;
  std::size_t ack_keepalives = 0;
  std::size_t resync_requests = 0;
  std::size_t resync_replies = 0;
  std::size_t price_decays = 0;
  double virtual_elapsed = 0.0;      // virtual seconds the run took
  TransportStats transport;
  std::vector<wire::ProbeReport> probe_reports;  // deduped (reporter, probed)
};

class EmuHarness {
 public:
  /// `transport.nodes()` must equal `graph.size()`.
  EmuHarness(const routing::SessionGraph& graph, Transport& transport,
             const EmuConfig& config);

  /// Installs one transmit rate per local node directly (oracle mode).
  void install_rates(const std::vector<double>& rates_bytes_per_s);

  /// Hands the rate-control outcome to the source for in-band price
  /// flooding (distributed mode); see EmuNode::set_price_table.
  void install_price_table(std::vector<double> rates_bytes_per_s,
                           std::vector<double> lambda,
                           std::vector<double> beta, int iterations);

  /// Observes protocol + transport events (kGenerationAck, kEmu*).  The
  /// harness serializes calls; the sink itself need not be thread-safe.
  /// Events carry virtual time.
  void set_metric_sink(std::function<void(const protocols::MetricEvent&)> sink);

  /// Observes packet-lifecycle span events (enqueue/tx/rx/drop/innovate/
  /// decode; see obs/span.h).  The harness serializes calls across node
  /// threads and the transport observer, so the sink itself need not be
  /// thread-safe.  Drop spans are synthesized here by peeking the wire trace
  /// tag of each killed copy.  When unset, span instrumentation is fully
  /// disabled and adds no work to the data path.
  void set_span_sink(std::function<void(const obs::SpanEvent&)> sink);

  /// Blocks until the session finishes or times out.
  EmuRunResult run();

  EmuNode& node(int local) { return *nodes_[static_cast<std::size_t>(local)]; }

 private:
  /// Thread-per-node run loop shared by kReal and kWarp.
  bool run_threaded(vtime::Clock& clock, double tick, double horizon);
  /// Single-threaded round-robin loop for kDeterministic.
  bool run_deterministic(vtime::DeterministicClock& clock, double tick,
                         double horizon);

  const routing::SessionGraph& graph_;
  Transport& transport_;
  EmuConfig config_;
  std::vector<std::unique_ptr<EmuNode>> nodes_;
  std::function<void(const protocols::MetricEvent&)> sink_;
  std::function<void(const obs::SpanEvent&)> span_sink_;
};

}  // namespace omnc::emu

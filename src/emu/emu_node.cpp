#include "emu/emu_node.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "coding/generation.h"
#include "common/assert.h"

namespace omnc::emu {
namespace {

protocols::NodeRuntime make_runtime(const routing::SessionGraph& graph,
                                    int local, const EmuNodeConfig& config) {
  if (local == graph.source) {
    return protocols::NodeRuntime::source(config.coding, config.session_id,
                                          config.data_seed, config.code);
  }
  if (local == graph.destination) {
    return protocols::NodeRuntime::destination(config.coding, config.code);
  }
  return protocols::NodeRuntime::relay(config.coding, config.session_id,
                                       config.code);
}

}  // namespace

EmuNode::EmuNode(const routing::SessionGraph& graph, int local,
                 Transport& transport, const EmuNodeConfig& config)
    : graph_(graph),
      local_(local),
      transport_(transport),
      config_(config),
      runtime_(make_runtime(graph, local, config)),
      rng_(Rng(config.rng_seed).fork(7000 + static_cast<std::uint64_t>(local))),
      packet_air_bytes_(static_cast<double>(coding::CodedPacket::kHeaderBytes +
                                            config.coding.generation_blocks +
                                            config.coding.block_bytes)) {
  OMNC_ASSERT(local_ >= 0 && local_ < graph_.size());
  const std::size_t n = static_cast<std::size_t>(graph_.size());
  forwarded_acks_.resize(n);
  last_price_forward_.assign(n, -std::numeric_limits<double>::infinity());
  forwarded_price_iter_.assign(n, 0);
  beacons_heard_.assign(n, 0);
  stall_deadline_ = std::numeric_limits<double>::infinity();
  resync_wait_s_ = config_.resync_silence_s;
  last_resync_send_ = -std::numeric_limits<double>::infinity();
  last_resync_reply_ = -std::numeric_limits<double>::infinity();
  last_resync_forward_.assign(n, -std::numeric_limits<double>::infinity());
}

void EmuNode::install_rate(double rate_bytes_per_s) {
  rate_bytes_per_s_ = std::max(0.0, rate_bytes_per_s);
  stats_.rate_installed = true;
}

void EmuNode::set_price_table(std::vector<double> rates_bytes_per_s,
                              std::vector<double> lambda,
                              std::vector<double> beta, int iterations) {
  OMNC_ASSERT(runtime_.role() == protocols::NodeRuntime::Role::kSource);
  OMNC_ASSERT(rates_bytes_per_s.size() ==
              static_cast<std::size_t>(graph_.size()));
  OMNC_ASSERT(lambda.size() == graph_.edges.size());
  OMNC_ASSERT(beta.size() == static_cast<std::size_t>(graph_.size()));
  is_price_origin_ = true;
  price_frames_.clear();
  const auto iteration = static_cast<std::uint32_t>(std::max(1, iterations));
  for (int node = 0; node < graph_.size(); ++node) {
    wire::PriceUpdate price;
    price.node_local = static_cast<std::uint16_t>(node);
    price.iteration = iteration;
    price.beta = beta[static_cast<std::size_t>(node)];
    price.rate_bytes_per_s = rates_bytes_per_s[static_cast<std::size_t>(node)];
    for (const int edge : graph_.out_edges_of(node)) {
      price.lambdas.push_back(wire::PriceUpdate::Lambda{
          static_cast<std::uint16_t>(
              graph_.edges[static_cast<std::size_t>(edge)].to),
          lambda[static_cast<std::size_t>(edge)]});
    }
    price_frames_.push_back(
        wire::make_price(config_.session_id, std::move(price)));
  }
  source_price_iteration_ = iteration;
  install_rate(rates_bytes_per_s[static_cast<std::size_t>(local_)]);
}

void EmuNode::set_metric_sink(
    std::function<void(const protocols::MetricEvent&)> sink) {
  sink_ = std::move(sink);
}

void EmuNode::set_span_sink(std::function<void(const obs::SpanEvent&)> sink) {
  span_sink_ = std::move(sink);
}

void EmuNode::broadcast(const wire::Frame& frame) {
  frame.serialize_into(&tx_bytes_);
  transport_.send(local_, tx_bytes_);
}

void EmuNode::emit_span(obs::SpanEvent::Kind kind, double now,
                        std::uint32_t generation, obs::SpanId span, int peer,
                        std::size_t rank, std::vector<obs::SpanId> parents,
                        int pivot, bool uncoded) {
  if (!span_sink_) return;
  obs::SpanEvent event;
  event.kind = kind;
  event.time = now;
  event.session = config_.session_id;
  event.generation = generation;
  event.node = local_;
  event.peer = peer;
  event.span = span;
  event.rank = rank;
  event.pivot = pivot;
  event.uncoded = uncoded;
  event.parents = std::move(parents);
  span_sink_(event);
}

void EmuNode::step(double now) {
  transport_.poll(local_, [&](int from, std::span<const std::uint8_t> bytes) {
    on_frame(now, from, bytes);
  });
  step_local(now);
}

void EmuNode::deliver(double now, int from,
                      std::span<const std::uint8_t> bytes) {
  on_frame(now, from, bytes);
}

void EmuNode::step_local(double now) {
  if (config_.probe_window_s > 0.0) run_probe(now);
  switch (runtime_.role()) {
    case protocols::NodeRuntime::Role::kSource:
      run_source(now);
      break;
    case protocols::NodeRuntime::Role::kDestination:
      run_destination(now);
      break;
    case protocols::NodeRuntime::Role::kRelay:
      break;
  }
  run_recovery(now);
  pace(now);
}

void EmuNode::run_recovery(double now) {
  // Silence-triggered resync: only non-source nodes re-request state (the
  // source *is* the session's state of record).
  if (config_.resync_silence_s <= 0.0) return;
  if (runtime_.role() == protocols::NodeRuntime::Role::kSource) return;
  if (!frame_clock_started_) {
    frame_clock_started_ = true;
    last_frame_time_ = now;
    return;
  }
  if (now - last_frame_time_ < resync_wait_s_) return;
  if (now - last_resync_send_ < resync_wait_s_) return;
  wire::ResyncRequest request;
  request.origin_local = static_cast<std::uint16_t>(local_);
  request.last_seen_generation =
      std::max(live_generation_, runtime_.generation_id());
  broadcast(wire::make_resync_request(config_.session_id, request));
  ++stats_.resync_requests;
  if (sink_) {
    protocols::MetricEvent event;
    event.type = protocols::MetricEvent::Type::kEmuResync;
    event.time = now;
    event.session = config_.session_id;
    event.node = graph_.node_id(local_);
    event.tx_local = local_;
    event.generation = request.last_seen_generation;
    sink_(event);
  }
  last_resync_send_ = now;
  resync_wait_s_ = std::min(resync_wait_s_ * 2.0, config_.resync_backoff_max_s);
}

void EmuNode::run_probe(double now) {
  const double window = config_.probe_window_s;
  const int count = std::max(1, config_.probe_beacons);
  const double interval = window / static_cast<double>(count);
  while (beacons_sent_ < count &&
         now >= static_cast<double>(beacons_sent_) * interval) {
    wire::ProbeBeacon beacon;
    beacon.origin_local = static_cast<std::uint16_t>(local_);
    beacon.sequence = static_cast<std::uint32_t>(beacons_sent_);
    broadcast(wire::make_beacon(config_.session_id, beacon));
    ++beacons_sent_;
  }
  if (!reports_sent_ && now >= window) {
    for (int origin = 0; origin < graph_.size(); ++origin) {
      if (origin == local_) continue;
      wire::ProbeReport report;
      report.reporter_local = static_cast<std::uint16_t>(local_);
      report.probed_local = static_cast<std::uint16_t>(origin);
      report.beacons_heard = beacons_heard_[static_cast<std::size_t>(origin)];
      report.window = static_cast<std::uint32_t>(count);
      stats_.probe_reports.push_back(report);
      broadcast(wire::make_report(config_.session_id, report));
    }
    reports_sent_ = true;
  }
}

void EmuNode::run_source(double now) {
  if (is_price_origin_) flood_prices(now);
  const double st = session_time(now);
  if (st < 0.0) return;
  if (!runtime_.generation_active()) {
    if (runtime_.maybe_start_generation(st, config_.cbr_bytes_per_s,
                                        config_.max_generations)) {
      stall_timeout_cur_ = config_.stall_timeout_s;
      stall_deadline_ = now + stall_timeout_cur_;
      redundancy_boost_ = 1.0;
    }
  }
  // Stall detection: a generation outliving its ACK deadline earns a bounded
  // redundancy boost (doubling rate multiplier and timer), so sustained
  // reverse-path loss is answered with more forward coded packets instead of
  // an idle source waiting for an ACK that keeps dying.
  if (config_.stall_timeout_s > 0.0 && runtime_.generation_active() &&
      now >= stall_deadline_) {
    redundancy_boost_ =
        std::min(redundancy_boost_ * 2.0, config_.redundancy_boost_max);
    stall_timeout_cur_ =
        std::min(stall_timeout_cur_ * 2.0, config_.stall_backoff_max_s);
    stall_deadline_ = now + stall_timeout_cur_;
    ++stats_.stall_boosts;
    if (sink_) {
      protocols::MetricEvent event;
      event.type = protocols::MetricEvent::Type::kEmuStall;
      event.time = now;
      event.session = config_.session_id;
      event.node = graph_.node_id(local_);
      event.tx_local = local_;
      event.generation = runtime_.generation_id();
      event.value = redundancy_boost_;
      sink_(event);
    }
  }
}

void EmuNode::flood_prices(double now) {
  if (price_flooded_once_ && now - last_price_flood_ < config_.price_repeat_s) {
    return;
  }
  for (const wire::Frame& frame : price_frames_) broadcast(frame);
  price_flooded_once_ = true;
  last_price_flood_ = now;
}

void EmuNode::run_destination(double now) {
  if (!have_ack_ || source_moved_on_) return;
  if (ack_resends_ >= config_.ack_repeat_limit) {
    // Repeat budget exhausted under sustained reverse-path loss: never go
    // mute (a silent destination deadlocks the source forever), drop to a
    // slow keepalive cadence until the source provably moves on.
    if (now - last_ack_send_ < config_.ack_keepalive_s) return;
    ++last_ack_.ack_seq;
    ++stats_.ack_keepalives;
    send_ack(now);
    return;
  }
  if (now - last_ack_send_ < config_.ack_repeat_s) return;
  ++last_ack_.ack_seq;
  ++ack_resends_;
  send_ack(now);
}

void EmuNode::send_ack(double now) {
  broadcast(wire::make_ack(config_.session_id, last_ack_));
  last_ack_send_ = now;
}

double EmuNode::effective_rate(double now) {
  if (runtime_.role() == protocols::NodeRuntime::Role::kSource) {
    return rate_bytes_per_s_ * redundancy_boost_ * config_.source_redundancy;
  }
  double rate = rate_bytes_per_s_;
  if (rate_from_price_ && config_.price_stale_s > 0.0) {
    const double stale = now - last_price_time_ - config_.price_stale_s;
    if (stale > 0.0) {
      if (!price_stale_) {
        price_stale_ = true;
        ++stats_.price_decays;
      }
      rate *= std::max(config_.price_decay_floor,
                       std::exp(-stale / config_.price_decay_tau_s));
    } else {
      price_stale_ = false;
    }
  }
  return rate;
}

void EmuNode::pace(double now) {
  if (!pace_started_) {
    last_pace_time_ = now;
    pace_started_ = true;
    return;
  }
  const double dt = std::max(0.0, now - last_pace_time_);
  last_pace_time_ = now;
  if (rate_bytes_per_s_ <= 0.0) return;
  tokens_ = std::min(config_.burst_packets * packet_air_bytes_,
                     tokens_ + effective_rate(now) * dt);
  if (runtime_.role() == protocols::NodeRuntime::Role::kDestination) return;
  if (session_time(now) < 0.0) return;
  const std::uint32_t live =
      runtime_.role() == protocols::NodeRuntime::Role::kSource
          ? runtime_.generation_id()
          : live_generation_;
  while (tokens_ >= packet_air_bytes_ && runtime_.can_send(live)) {
    // Steady-state transmit: the frame's packet vectors and the serialize
    // buffer are node members, so emitting a packet allocates nothing once
    // their capacity is warm.
    runtime_.next_packet_into(rng_, &tx_frame_.packet, &tx_structure_);
    // Structured packets (systematic originals, banded windows) ride the
    // compact frame, whose coefficient header is an index or a window slice
    // instead of n dense bytes; dense packets keep the pre-family frame and
    // its exact bytes.  The token bucket is charged the frame's actual air
    // size, so the compressed header converts directly into send budget.
    tx_frame_.type = tx_structure_.dense() ? wire::FrameType::kCodedData
                                           : wire::FrameType::kCodedDataCompact;
    tx_frame_.structure = tx_structure_;
    tx_frame_.session_id = tx_frame_.packet.session_id;
    // Every coded-data frame gets a span id on the wire (stamped whether or
    // not anything listens, so traced and untraced runs exchange
    // byte-identical traffic).  A recoded packet's causal parents are the
    // spans of the relay's buffered innovative packets; source packets are
    // DAG roots.
    tx_frame_.trace_origin = static_cast<std::uint16_t>(local_);
    tx_frame_.trace_seq = ++span_seq_;
    const obs::SpanId span{tx_frame_.trace_origin, tx_frame_.trace_seq};
    const std::uint32_t gen = tx_frame_.packet.generation_id;
    emit_span(obs::SpanEvent::Kind::kEnqueue, now, gen, span, -1, 0,
              basis_spans_);
    broadcast(tx_frame_);
    emit_span(obs::SpanEvent::Kind::kTransmit, now, gen, span, -1, 0);
    tokens_ -= tx_structure_.dense()
                   ? packet_air_bytes_
                   : static_cast<double>(coding::compact_wire_size(
                         tx_structure_, config_.coding.block_bytes));
    ++stats_.data_packets_sent;
  }
}

void EmuNode::on_frame(double now, int from,
                       std::span<const std::uint8_t> bytes) {
  ++stats_.frames_received;
  // Zero-copy fast path for the dominant frame type: a kCodedData frame
  // parses to a view whose spans alias the datagram buffer (full header
  // validation included); the coding layer copies the payload out only if
  // the packet is innovative.  Anything else — control frames, corruption —
  // falls through to the owning parse.
  wire::DataFrameView data;
  if (wire::DataFrameView::parse(bytes, &data)) {
    if (data.session_id != config_.session_id) {
      ++stats_.foreign_session_frames;
      return;
    }
    frame_clock_started_ = true;
    last_frame_time_ = now;
    resync_wait_s_ = config_.resync_silence_s;
    handle_data(now, from, data);
    return;
  }
  wire::Frame frame;
  if (!wire::Frame::parse(bytes, &frame)) {
    ++stats_.parse_errors;
    if (sink_) {
      protocols::MetricEvent event;
      event.type = protocols::MetricEvent::Type::kEmuParseError;
      event.time = now;
      event.session = config_.session_id;
      event.node = graph_.node_id(local_);
      event.rx_local = local_;
      event.value = static_cast<double>(bytes.size());
      sink_(event);
    }
    return;
  }
  if (frame.session_id != config_.session_id) {
    ++stats_.foreign_session_frames;
    return;
  }
  // Any valid frame of our session proves the channel is alive: reset the
  // resync silence clock and its backoff.
  frame_clock_started_ = true;
  last_frame_time_ = now;
  resync_wait_s_ = config_.resync_silence_s;
  switch (frame.type) {
    case wire::FrameType::kCodedData:
    case wire::FrameType::kCodedDataCompact:
      break;  // unreachable: data frames took the view fast path above
    case wire::FrameType::kGenerationAck:
      handle_ack(now, frame.ack);
      break;
    case wire::FrameType::kProbeBeacon:
      if (frame.beacon.origin_local < beacons_heard_.size()) {
        ++beacons_heard_[frame.beacon.origin_local];
      }
      break;
    case wire::FrameType::kProbeReport:
      stats_.probe_reports.push_back(frame.report);
      break;
    case wire::FrameType::kPriceUpdate:
      handle_price(now, frame.price);
      break;
    case wire::FrameType::kResyncRequest:
      handle_resync_request(now, frame.resync_request);
      break;
    case wire::FrameType::kResyncInfo:
      handle_resync_info(now, frame.resync_info);
      break;
  }
}

void EmuNode::handle_data(double now, int from,
                          const wire::DataFrameView& frame) {
  const coding::CodedPacketView& packet = frame.packet;
  const std::uint32_t gen = packet.generation_id;
  const obs::SpanId span{frame.trace_origin, frame.trace_seq};
  switch (runtime_.role()) {
    case protocols::NodeRuntime::Role::kSource:
      break;  // echo of the session's own traffic
    case protocols::NodeRuntime::Role::kRelay: {
      live_generation_ = std::max(live_generation_, gen);
      if (gen > runtime_.generation_id()) {
        if (runtime_.flush_to(gen)) basis_spans_.clear();
      }
      if (gen == runtime_.generation_id()) {
        const auto outcome = runtime_.receive(packet, frame.structure);
        emit_span(obs::SpanEvent::Kind::kReceive, now, gen, span, from,
                  runtime_.rank());
        if (outcome.innovative) {
          ++stats_.innovative_received;
          if (span.valid()) basis_spans_.push_back(span);
          emit_span(obs::SpanEvent::Kind::kInnovate, now, gen, span, from,
                    runtime_.rank());
        }
      }
      break;
    }
    case protocols::NodeRuntime::Role::kDestination: {
      if (have_ack_ && gen > last_ack_.generation_id) {
        // Fresh-generation data means the source heard our ACK; stop
        // repeating it.
        source_moved_on_ = true;
      }
      if (gen != runtime_.generation_id()) break;  // stale (already decoded)
      const auto outcome = runtime_.receive(packet, frame.structure);
      emit_span(obs::SpanEvent::Kind::kReceive, now, gen, span, from,
                runtime_.rank());
      if (outcome.innovative) {
        ++stats_.innovative_received;
        if (span.valid()) basis_spans_.push_back(span);
        emit_span(obs::SpanEvent::Kind::kInnovate, now, gen, span, from,
                  runtime_.rank(), {}, outcome.pivot, outcome.uncoded);
      }
      if (!outcome.generation_complete) break;
      // Decode finished: verify the plaintext against the source's
      // deterministic payload, then start the ACK flood.  recover_into
      // reuses the node's scratch buffer (its capacity persists across
      // generations — the geometry is fixed per session).
      recover_buf_.resize(runtime_.recovered_size());
      runtime_.recover_into(std::span<std::uint8_t>(recover_buf_));
      const coding::Generation expected = coding::Generation::synthetic(
          gen, config_.coding, config_.data_seed);
      const std::span<const std::uint8_t> want = expected.bytes();
      if (recover_buf_.size() != want.size() ||
          !std::equal(recover_buf_.begin(), recover_buf_.end(),
                      want.begin())) {
        stats_.data_ok = false;
      }
      ++stats_.generations_completed;
      completed_.store(stats_.generations_completed,
                       std::memory_order_relaxed);
      // The decode span's parents are every innovative packet that entered
      // the decoding basis — the DAG edge set trace_inspect walks back to
      // the source roots.
      emit_span(obs::SpanEvent::Kind::kDecode, now, gen, span, from,
                basis_spans_.size(), basis_spans_);
      runtime_.advance_generation();
      basis_spans_.clear();
      last_ack_ = wire::GenerationAck{gen,
                                      static_cast<std::uint16_t>(local_), 0};
      have_ack_ = true;
      source_moved_on_ = false;
      ack_resends_ = 0;
      send_ack(now);
      break;
    }
  }
}

void EmuNode::handle_ack(double now, const wire::GenerationAck& ack) {
  switch (runtime_.role()) {
    case protocols::NodeRuntime::Role::kSource: {
      if (!runtime_.generation_active() ||
          ack.generation_id != runtime_.generation_id()) {
        break;  // duplicate of an already-retired generation
      }
      const double latency =
          session_time(now) - runtime_.generation_start_time();
      runtime_.complete_generation();
      // The reverse path works again: stand the redundancy boost down until
      // the next generation's stall timer re-arms it.
      redundancy_boost_ = 1.0;
      stall_deadline_ = std::numeric_limits<double>::infinity();
      stats_.ack_latencies.push_back(latency);
      stats_.last_ack_time = session_time(now);
      ++stats_.generations_completed;
      completed_.store(stats_.generations_completed,
                       std::memory_order_relaxed);
      if (sink_) {
        protocols::MetricEvent event;
        event.type = protocols::MetricEvent::Type::kGenerationAck;
        event.time = session_time(now);
        event.session = config_.session_id;
        event.node = graph_.node_id(local_);
        event.generation = ack.generation_id;
        event.value = latency;
        sink_(event);
      }
      break;
    }
    case protocols::NodeRuntime::Role::kRelay: {
      // The ACK retires generation `id`; retarget the buffer and stay quiet
      // until data of the next generation arrives.
      live_generation_ = std::max(live_generation_, ack.generation_id + 1);
      if (ack.generation_id >= runtime_.generation_id()) {
        if (runtime_.flush_to(ack.generation_id + 1)) basis_spans_.clear();
      }
      // Flood forwarding with (generation, seq) dedup per origin.
      if (ack.origin_local < forwarded_acks_.size()) {
        AckKey& key = forwarded_acks_[ack.origin_local];
        const bool newer =
            !key.seen || ack.generation_id > key.generation ||
            (ack.generation_id == key.generation && ack.ack_seq > key.seq);
        if (newer) {
          key = AckKey{ack.generation_id, ack.ack_seq, true};
          broadcast(wire::make_ack(config_.session_id, ack));
        }
      }
      break;
    }
    case protocols::NodeRuntime::Role::kDestination:
      break;  // its own flood, reflected back
  }
  (void)now;
}

void EmuNode::handle_price(double now, const wire::PriceUpdate& price) {
  if (is_price_origin_) return;  // the source originates, never re-installs
  if (price.node_local == static_cast<std::uint16_t>(local_) &&
      (!stats_.rate_installed ||
       price.iteration >= installed_price_iteration_)) {
    installed_price_iteration_ = price.iteration;
    install_rate(price.rate_bytes_per_s);
    // Freshness for the staleness decay: even a same-iteration repeat proves
    // the price plane still reaches us.
    rate_from_price_ = true;
    price_stale_ = false;
    last_price_time_ = now;
  }
  // Re-flood: once per new iteration, and at most once per
  // price_forward_min_gap_s per advertised node otherwise (so repeated
  // source floods still propagate to nodes the first wave missed).
  const std::size_t index = price.node_local;
  if (index >= last_price_forward_.size()) return;
  const bool new_iteration = price.iteration > forwarded_price_iter_[index];
  const bool gap_elapsed =
      now - last_price_forward_[index] >= config_.price_forward_min_gap_s;
  if (new_iteration || gap_elapsed) {
    forwarded_price_iter_[index] = price.iteration;
    last_price_forward_[index] = now;
    wire::PriceUpdate copy = price;
    broadcast(wire::make_price(config_.session_id, std::move(copy)));
  }
}

void EmuNode::handle_resync_request(double now,
                                    const wire::ResyncRequest& request) {
  if (runtime_.role() == protocols::NodeRuntime::Role::kSource) {
    if (now - last_resync_reply_ < config_.resync_reply_min_gap_s) return;
    last_resync_reply_ = now;
    wire::ResyncInfo info;
    info.generation_id = runtime_.generation_id();
    info.price_iteration = source_price_iteration_;
    broadcast(wire::make_resync_info(config_.session_id, info));
    ++stats_.resync_replies;
    // The requester likely missed price floods too; reflood immediately
    // instead of waiting out the periodic timer.
    if (is_price_origin_) price_flooded_once_ = false;
    return;
  }
  if (request.origin_local == static_cast<std::uint16_t>(local_)) {
    return;  // own request, reflected back
  }
  // Forward toward the source, one copy per origin per reply gap (the same
  // storm guard the source's reply uses).
  if (request.origin_local >= last_resync_forward_.size()) return;
  if (now - last_resync_forward_[request.origin_local] <
      config_.resync_reply_min_gap_s) {
    return;
  }
  last_resync_forward_[request.origin_local] = now;
  broadcast(wire::make_resync_request(config_.session_id, request));
}

void EmuNode::handle_resync_info(double now, const wire::ResyncInfo& info) {
  if (runtime_.role() == protocols::NodeRuntime::Role::kSource) {
    return;  // its own answer, reflected back
  }
  const std::uint32_t gen = info.generation_id;
  live_generation_ = std::max(live_generation_, gen);
  if (runtime_.role() == protocols::NodeRuntime::Role::kRelay &&
      gen > runtime_.generation_id()) {
    // Fast-forward the recode buffer to the live generation instead of
    // waiting for fresh data to reveal it.
    if (runtime_.flush_to(gen)) basis_spans_.clear();
  }
  if (runtime_.role() == protocols::NodeRuntime::Role::kDestination &&
      have_ack_ && gen > last_ack_.generation_id) {
    source_moved_on_ = true;  // the source provably heard our ACK
  }
  // Re-flood each newly learned live generation once, so the answer reaches
  // requesters the source's broadcast missed.
  if (static_cast<std::int64_t>(gen) > forwarded_resync_info_gen_) {
    forwarded_resync_info_gen_ = static_cast<std::int64_t>(gen);
    broadcast(wire::make_resync_info(config_.session_id, info));
  }
  (void)now;
}

}  // namespace omnc::emu

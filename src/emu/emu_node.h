// One emulated network node: today's NodeRuntime behind a time-paced step
// loop, speaking only serialized wire frames through a Transport.
//
// The slot simulator advances all nodes in lockstep and hands packets around
// as C++ objects; an EmuNode instead observes a monotonically increasing
// *virtual clock* (the harness's vtime::Clock — wall-scaled, warped, or
// deterministic; DESIGN.md §12) and reacts to whatever bytes its transport
// delivers.  step(now) is pure in `now`: the node never reads time itself,
// which is what lets the same node code run under all three clock modes.  The
// protocol state machine is the very same NodeRuntime the simulator uses —
// the point of the emulation runtime is that nothing protocol-level changes
// when the process boundary appears.
//
// Control plane (everything except coded data) is event-driven and unpaced:
//   * ACK flooding — the destination broadcasts a GenerationAck on decode
//     and repeats it (ack_seq increments) until it hears data of a newer
//     generation; relays re-broadcast each unseen (generation, seq) once.
//     This replaces the simulator's out-of-band "ACK reaches the source at
//     the end of the slot" shortcut with an in-band, loss-tolerant flood.
//   * Price flooding — the source periodically floods one PriceUpdate per
//     session node (λ/β duals + recovered rate b̄_i from the sUnicast
//     decomposition); nodes install their own rate on receipt, and relays
//     re-flood with a per-node rate limit.
//   * Link probing (optional) — during [0, probe_window_s) every node
//     broadcasts evenly spaced beacons, then reports p̂ = heard/window per
//     origin.
//   * Resync — a non-source node that has heard nothing for a while
//     (blackout restart, healed partition) broadcasts a ResyncRequest with
//     exponential backoff; the source floods back ResyncInfo (live
//     generation id + price iteration) and refloods prices, letting the
//     laggard fast-forward instead of waiting out the silence.
// Recovery hardening on top (see DESIGN.md §11): the source boosts its
// redundancy with bounded exponential backoff while ACKs go missing, the
// destination's ACK flood degrades to a slow keepalive instead of going
// mute, and relay rates installed from old PriceUpdates decay once stale.
// Data plane: coded packets are paced by a token bucket charged in air
// bytes (CodedPacket header + n + m), the same accounting as the
// simulator's slot_bytes, so rates mean the same thing in both worlds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "codes/code_spec.h"
#include "common/rng.h"
#include "emu/transport.h"
#include "obs/span.h"
#include "protocols/metrics_bus.h"
#include "protocols/node_runtime.h"
#include "routing/node_selection.h"
#include "wire/frame.h"

namespace omnc::emu {

struct EmuNodeConfig {
  coding::CodingParams coding;
  /// Code family every node in the session runs (DESIGN.md §15).  The dense
  /// default reproduces the pre-family emulation byte-for-byte; systematic
  /// and banded emissions ride kCodedDataCompact frames whose smaller air
  /// size is charged against the same token bucket.
  codes::CodeSpec code;
  /// Extra source send budget as a rate multiplier (>= 1): the finite-length
  /// auto-tuner raises this with the loss rate so short generations still
  /// decode without waiting out a stall boost.
  double source_redundancy = 1.0;
  std::uint32_t session_id = 1;
  std::uint64_t data_seed = 1;  // shared: destination re-derives source data
  std::uint64_t rng_seed = 1;   // coding-coefficient RNG (forked per node)

  double cbr_bytes_per_s = 1e4;
  int max_generations = 8;
  double burst_packets = 8.0;  // token-bucket burst cap, in packets

  // Virtual time (seconds) when the data phase opens; the CBR gate and all
  // reported latencies/throughputs run on "session time" = now - data_start,
  // which keeps them comparable with the slot simulator's t = 0 start.
  double data_start_s = 0.5;

  // ACK flood tuning (virtual seconds).  After ack_repeat_limit fast
  // repeats the destination falls back to a slow keepalive cadence — it
  // must never go mute, or a lossy reverse path deadlocks the source.
  double ack_repeat_s = 0.05;
  int ack_repeat_limit = 400;
  double ack_keepalive_s = 0.5;

  // Source stall detection (virtual seconds): a generation active with no
  // ACK for stall_timeout_s doubles the source's redundancy boost (token
  // refill multiplier, capped at redundancy_boost_max) and the timer itself
  // (capped at stall_backoff_max_s), so reverse-path loss is answered with
  // bounded extra forward redundancy instead of an idle wait.  0 disables.
  double stall_timeout_s = 0.75;
  double stall_backoff_max_s = 6.0;
  double redundancy_boost_max = 4.0;

  // Price staleness (non-source nodes): a rate installed from a PriceUpdate
  // older than price_stale_s decays exponentially with time constant
  // price_decay_tau_s toward price_decay_floor x installed, so a partitioned
  // node's λ/β prices cannot pin its transmit rate forever.  0 disables.
  double price_stale_s = 2.0;
  double price_decay_tau_s = 2.0;
  double price_decay_floor = 0.1;

  // Resync (non-source nodes): silence longer than the current wait (starts
  // at resync_silence_s, doubling per attempt up to resync_backoff_max_s,
  // reset by any valid frame) triggers a ResyncRequest broadcast; the source
  // answers with ResyncInfo + a price reflood, rate-limited to one reply per
  // resync_reply_min_gap_s.  0 disables.
  double resync_silence_s = 1.5;
  double resync_backoff_max_s = 12.0;
  double resync_reply_min_gap_s = 0.2;

  // Price flood tuning (virtual seconds).  The forward gap sits just under
  // the reflood period so each periodic reflood propagates once — a smaller
  // gap lets forwarded copies re-trigger each other into a control storm.
  double price_repeat_s = 0.5;
  double price_forward_min_gap_s = 0.45;

  // Link-probe phase: 0 disables.  Beacons are evenly spaced in
  // [0, probe_window_s); reports go out once the window closes.
  double probe_window_s = 0.0;
  int probe_beacons = 50;
};

class EmuNode {
 public:
  EmuNode(const routing::SessionGraph& graph, int local, Transport& transport,
          const EmuNodeConfig& config);

  protocols::NodeRuntime::Role role() const { return runtime_.role(); }
  int local() const { return local_; }

  /// Directly installs this node's transmit rate (air bytes/s).  Tests and
  /// "oracle" runs use this; distributed runs install via price frames.
  void install_rate(double rate_bytes_per_s);

  /// Source only: the rate-control outcome to flood.  `rates_bytes_per_s`
  /// is per local node (already rescaled to feasibility), `lambda` per
  /// graph edge, `beta` per node — both in the rate controller's normalized
  /// units.  The source installs its own rate immediately.
  void set_price_table(std::vector<double> rates_bytes_per_s,
                       std::vector<double> lambda, std::vector<double> beta,
                       int iterations);

  /// Thread-safe event hook (the harness serializes).  Receives
  /// kGenerationAck (at the source, value = session-time latency),
  /// kEmuParseError, and the recovery family (kEmuResync / kEmuStall).
  void set_metric_sink(std::function<void(const protocols::MetricEvent&)> sink);

  /// Packet-lifecycle hook (the harness serializes alongside metric events).
  /// When set, the node emits a SpanEvent at every enqueue / transmit /
  /// receive / innovate / decode of a coded packet; drops are emitted by the
  /// harness's transport tap.  Data frames carry their span id on the wire
  /// whether or not a sink is installed, so traced and untraced runs
  /// exchange byte-identical traffic.
  void set_span_sink(std::function<void(const obs::SpanEvent&)> sink);

  /// One scheduling round at virtual time `now`: drains the transport, runs
  /// the control-plane timers, and paces data transmissions.  Must be
  /// called from a single thread with non-decreasing `now`.
  void step(double now);

  /// Hands the node one received frame directly, bypassing its own transport
  /// poll.  The session mux drains a *shared* socket once per node and
  /// demultiplexes frames to the per-session runtimes itself, so mux-managed
  /// nodes receive through deliver() and advance through step_local() —
  /// together those equal step() exactly.  Same threading contract as
  /// step(): one thread per node, non-decreasing `now`.
  void deliver(double now, int from, std::span<const std::uint8_t> bytes);

  /// The timer/pacing half of step(): control-plane timers, recovery, and
  /// data pacing — everything except the transport poll.
  void step_local(double now);

  /// Generations the source has retired; readable from any thread while the
  /// node is running (the harness's stop condition).
  int completed_generations() const {
    return completed_.load(std::memory_order_relaxed);
  }

  struct Stats {
    int generations_completed = 0;
    double last_ack_time = 0.0;            // session seconds (source)
    std::vector<double> ack_latencies;     // session seconds (source)
    std::size_t frames_received = 0;
    std::size_t parse_errors = 0;
    std::size_t foreign_session_frames = 0;
    std::size_t data_packets_sent = 0;
    std::size_t innovative_received = 0;
    std::size_t stall_boosts = 0;     // source redundancy escalations
    std::size_t ack_keepalives = 0;   // destination slow-cadence ACKs
    std::size_t resync_requests = 0;  // ResyncRequests this node originated
    std::size_t resync_replies = 0;   // ResyncInfo answers (source only)
    std::size_t price_decays = 0;     // staleness episodes entered
    bool rate_installed = false;
    /// Destination: every decoded generation matched the synthetic source
    /// payload byte-for-byte.  Stays true on nodes that decode nothing.
    bool data_ok = true;
    std::vector<wire::ProbeReport> probe_reports;  // own + received
  };

  /// Snapshot of the node's counters; call only after the node's thread has
  /// stopped (the harness joins before reading).
  const Stats& stats() const { return stats_; }

 private:
  void on_frame(double now, int from, std::span<const std::uint8_t> bytes);
  void handle_data(double now, int from, const wire::DataFrameView& frame);
  void handle_ack(double now, const wire::GenerationAck& ack);
  void handle_price(double now, const wire::PriceUpdate& price);
  void handle_resync_request(double now, const wire::ResyncRequest& request);
  void handle_resync_info(double now, const wire::ResyncInfo& info);
  void run_probe(double now);
  void run_source(double now);
  void run_destination(double now);
  void run_recovery(double now);
  void pace(double now);
  void broadcast(const wire::Frame& frame);
  void emit_span(obs::SpanEvent::Kind kind, double now,
                 std::uint32_t generation, obs::SpanId span, int peer,
                 std::size_t rank, std::vector<obs::SpanId> parents = {},
                 int pivot = -1, bool uncoded = false);
  void send_ack(double now);
  void flood_prices(double now);
  double effective_rate(double now);
  double session_time(double now) const { return now - config_.data_start_s; }

  const routing::SessionGraph& graph_;
  int local_;
  Transport& transport_;
  EmuNodeConfig config_;
  protocols::NodeRuntime runtime_;
  Rng rng_;
  double packet_air_bytes_;

  std::function<void(const protocols::MetricEvent&)> sink_;
  std::function<void(const obs::SpanEvent&)> span_sink_;

  // Span plane: per-origin packet counter (seq 0 = untraced, so counting
  // starts at 1) and the spans of the innovative packets currently buffered
  // — a recoded transmission's causal parents.  Cleared whenever the buffer
  // flushes to a new generation.
  std::uint32_t span_seq_ = 0;
  std::vector<obs::SpanId> basis_spans_;

  // Pacing.
  double rate_bytes_per_s_ = 0.0;
  double tokens_ = 0.0;
  double last_pace_time_ = 0.0;
  bool pace_started_ = false;

  // Relay view of the live generation (max id seen in data/ACK traffic).
  std::uint32_t live_generation_ = 0;

  // Destination ACK retransmission state.
  bool have_ack_ = false;
  wire::GenerationAck last_ack_;
  double last_ack_send_ = 0.0;
  int ack_resends_ = 0;
  bool source_moved_on_ = false;

  // Flood dedup: per origin, the newest (generation, ack_seq) forwarded.
  struct AckKey {
    std::uint32_t generation = 0;
    std::uint32_t seq = 0;
    bool seen = false;
  };
  std::vector<AckKey> forwarded_acks_;  // by origin_local

  // Price state.
  bool is_price_origin_ = false;
  std::vector<wire::Frame> price_frames_;  // one per local node (source)
  double last_price_flood_ = 0.0;
  bool price_flooded_once_ = false;
  std::uint32_t installed_price_iteration_ = 0;
  std::vector<double> last_price_forward_;   // by node_local; -inf = never
  std::vector<std::uint32_t> forwarded_price_iter_;

  // Source stall detection / redundancy boost.
  double redundancy_boost_ = 1.0;
  double stall_timeout_cur_ = 0.0;
  double stall_deadline_ = 0.0;  // +inf while no generation is active

  // Price freshness (non-source).
  bool rate_from_price_ = false;
  bool price_stale_ = false;
  double last_price_time_ = 0.0;

  // Resync: silence clock, request backoff, and flood forwarding state.
  bool frame_clock_started_ = false;
  double last_frame_time_ = 0.0;
  double resync_wait_s_ = 0.0;
  double last_resync_send_ = 0.0;
  double last_resync_reply_ = 0.0;                // source rate limit
  std::uint32_t source_price_iteration_ = 0;      // newest flooded iteration
  std::vector<double> last_resync_forward_;       // by origin_local
  std::int64_t forwarded_resync_info_gen_ = -1;   // newest info re-flooded

  // Probe state.
  int beacons_sent_ = 0;
  bool reports_sent_ = false;
  std::vector<std::uint32_t> beacons_heard_;  // by origin_local

  // Steady-state scratch (allocation-free data path): the transmit frame's
  // packet and the serialization buffer keep their capacity across sends,
  // and the destination recovers each generation into the same buffer.
  wire::Frame tx_frame_;
  coding::CodedStructure tx_structure_;
  std::vector<std::uint8_t> tx_bytes_;
  std::vector<std::uint8_t> recover_buf_;

  std::atomic<int> completed_{0};
  Stats stats_;
};

}  // namespace omnc::emu

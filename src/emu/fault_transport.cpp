#include "emu/fault_transport.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/assert.h"

namespace omnc::emu {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

/// "*" -> -1 (wildcard), otherwise a non-negative node index.
bool parse_endpoint(const std::string& s, int* out) {
  if (s == "*") {
    *out = -1;
    return true;
  }
  return parse_int(s, out) && *out >= 0;
}

/// LINK := '*' | from '-' to
bool parse_link(const std::string& s, int* from, int* to) {
  if (s == "*") {
    *from = *to = -1;
    return true;
  }
  const std::size_t dash = s.find('-');
  if (dash == std::string::npos) return false;
  return parse_endpoint(s.substr(0, dash), from) &&
         parse_endpoint(s.substr(dash + 1), to);
}

/// start '-' end, both seconds.
bool parse_window(const std::string& s, double* start, double* end) {
  const std::size_t dash = s.find('-');
  if (dash == std::string::npos) return false;
  return parse_double(s.substr(0, dash), start) &&
         parse_double(s.substr(dash + 1), end) && *start <= *end;
}

/// Finds the plan entry with exactly this pattern (so directives on the same
/// link compose into one entry), appending a fresh one if none exists.
LinkFault* link_entry(FaultPlan* plan, int from, int to) {
  for (LinkFault& fault : plan->links) {
    if (fault.from == from && fault.to == to) return &fault;
  }
  plan->links.push_back(LinkFault{});
  plan->links.back().from = from;
  plan->links.back().to = to;
  return &plan->links.back();
}

const char* preset_spec(const std::string& name) {
  // The shipped soak scenarios.  All stay inside the acceptance envelope:
  // burst loss <= 30% mean, partitions <= 2 s, single-node blackouts.
  if (name == "burst") return "ge=*:0.1,0.3,0.02,0.85";
  if (name == "jitter") return "jitter=*:0.02; reorder=*:0.25,0.05; dup=*:0.05";
  if (name == "partition") return "partition=2.0-4.0:1";
  if (name == "blackout") return "blackout=1:2.5-4.5";
  if (name == "chaos") {
    return "ge=*:0.08,0.35,0.01,0.8; dup=*:0.05; jitter=*:0.01; "
           "reorder=*:0.1,0.03; blackout=1:2.0-3.0";
  }
  return nullptr;
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string link_str(int from, int to) {
  std::string out = from < 0 ? "*" : std::to_string(from);
  out += '-';
  out += to < 0 ? "*" : std::to_string(to);
  return out;
}

}  // namespace

double GilbertElliott::mean_loss() const {
  const double denom = p_good_bad + p_bad_good;
  const double pi_bad = denom > 0.0 ? p_good_bad / denom : 0.0;
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

std::vector<std::string> FaultPlan::preset_names() {
  return {"burst", "jitter", "partition", "blackout", "chaos"};
}

bool FaultPlan::parse(const std::string& spec, FaultPlan* out,
                      std::string* error) {
  FaultPlan plan;
  const std::string trimmed = trim(spec);
  const char* preset = preset_spec(trimmed);
  const std::string source = preset != nullptr ? preset : trimmed;
  for (const std::string& directive : split(source, ';')) {
    if (directive.empty()) continue;
    const std::size_t eq = directive.find('=');
    if (eq == std::string::npos) {
      if (error) *error = "missing '=' in directive '" + directive + "'";
      return false;
    }
    const std::string key = trim(directive.substr(0, eq));
    const std::string value = trim(directive.substr(eq + 1));
    bool ok = false;
    if (key == "seed") {
      int seed = 0;
      ok = parse_int(value, &seed) && seed >= 0;
      if (ok) plan.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "ge" || key == "loss" || key == "dup" ||
               key == "reorder" || key == "jitter") {
      const std::size_t colon = value.find(':');
      int from = -1, to = -1;
      if (colon == std::string::npos ||
          !parse_link(value.substr(0, colon), &from, &to)) {
        if (error) *error = "bad link in directive '" + directive + "'";
        return false;
      }
      const std::vector<std::string> args =
          split(value.substr(colon + 1), ',');
      LinkFault* fault = link_entry(&plan, from, to);
      if (key == "ge") {
        ok = args.size() == 4 && parse_double(args[0], &fault->ge.p_good_bad) &&
             parse_double(args[1], &fault->ge.p_bad_good) &&
             parse_double(args[2], &fault->ge.loss_good) &&
             parse_double(args[3], &fault->ge.loss_bad);
      } else if (key == "loss") {
        double p = 0.0;
        ok = args.size() == 1 && parse_double(args[0], &p);
        if (ok) fault->ge = GilbertElliott{0.0, 1.0, p, 0.0};
      } else if (key == "dup") {
        ok = args.size() == 1 && parse_double(args[0], &fault->duplicate_p);
      } else if (key == "reorder") {
        ok = args.size() == 2 && parse_double(args[0], &fault->reorder_p) &&
             parse_double(args[1], &fault->reorder_hold_s);
      } else {  // jitter
        ok = args.size() == 1 && parse_double(args[0], &fault->jitter_s);
      }
    } else if (key == "partition") {
      const std::size_t colon = value.find(':');
      Partition partition;
      ok = colon != std::string::npos &&
           parse_window(value.substr(0, colon), &partition.start_s,
                        &partition.end_s);
      if (ok) {
        for (const std::string& node : split(value.substr(colon + 1), ',')) {
          int index = -1;
          if (!parse_int(node, &index) || index < 0) {
            ok = false;
            break;
          }
          partition.isolated.push_back(index);
        }
        ok = ok && !partition.isolated.empty();
      }
      if (ok) plan.partitions.push_back(std::move(partition));
    } else if (key == "blackout") {
      const std::size_t colon = value.find(':');
      Blackout blackout;
      ok = colon != std::string::npos &&
           parse_int(value.substr(0, colon), &blackout.node) &&
           blackout.node >= 0 &&
           parse_window(value.substr(colon + 1), &blackout.start_s,
                        &blackout.end_s);
      if (ok) plan.blackouts.push_back(blackout);
    } else {
      if (error) *error = "unknown directive '" + key + "'";
      return false;
    }
    if (!ok) {
      if (error) *error = "bad arguments in directive '" + directive + "'";
      return false;
    }
  }
  *out = std::move(plan);
  return true;
}

std::string FaultPlan::describe() const {
  std::string out;
  append_fmt(out, "seed=%llu", static_cast<unsigned long long>(seed));
  for (const LinkFault& fault : links) {
    const std::string link = link_str(fault.from, fault.to);
    if (fault.ge.enabled()) {
      append_fmt(out, " ge[%s: %g,%g,%g,%g mean=%.0f%%]", link.c_str(),
                 fault.ge.p_good_bad, fault.ge.p_bad_good, fault.ge.loss_good,
                 fault.ge.loss_bad, 100.0 * fault.ge.mean_loss());
    }
    if (fault.duplicate_p > 0.0) {
      append_fmt(out, " dup[%s: %g]", link.c_str(), fault.duplicate_p);
    }
    if (fault.reorder_p > 0.0) {
      append_fmt(out, " reorder[%s: %g,%gs]", link.c_str(), fault.reorder_p,
                 fault.reorder_hold_s);
    }
    if (fault.jitter_s > 0.0) {
      append_fmt(out, " jitter[%s: %gs]", link.c_str(), fault.jitter_s);
    }
  }
  for (const Partition& partition : partitions) {
    append_fmt(out, " partition[%g-%gs:", partition.start_s, partition.end_s);
    for (std::size_t i = 0; i < partition.isolated.size(); ++i) {
      append_fmt(out, "%s%d", i > 0 ? "," : " ", partition.isolated[i]);
    }
    out += ']';
  }
  for (const Blackout& blackout : blackouts) {
    append_fmt(out, " blackout[%d: %g-%gs]", blackout.node, blackout.start_s,
               blackout.end_s);
  }
  return out;
}

protocols::MetricEvent fault_metric_event(const FaultRecord& record,
                                          std::uint32_t session_id) {
  protocols::MetricEvent event;
  switch (record.kind) {
    case FaultRecord::Kind::kLoss:
      event.type = protocols::MetricEvent::Type::kEmuFaultLoss;
      break;
    case FaultRecord::Kind::kReorder:
      event.type = protocols::MetricEvent::Type::kEmuFaultReorder;
      break;
    case FaultRecord::Kind::kDuplicate:
      event.type = protocols::MetricEvent::Type::kEmuFaultDup;
      break;
    case FaultRecord::Kind::kPartition:
      event.type = protocols::MetricEvent::Type::kEmuFaultPartition;
      break;
    case FaultRecord::Kind::kBlackout:
      event.type = protocols::MetricEvent::Type::kEmuFaultBlackout;
      break;
  }
  event.time = record.time;
  event.session = session_id;
  event.tx_local = record.from;
  event.rx_local = record.to;
  event.generation = static_cast<std::uint32_t>(record.link_copy);
  event.value = static_cast<double>(record.bytes);
  return event;
}

FaultTransport::FaultTransport(Transport& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {
  const int n = inner_.nodes();
  OMNC_ASSERT(n > 0);
  links_.resize(static_cast<std::size_t>(n) * n);
  held_.resize(static_cast<std::size_t>(n));
  Rng master(plan_.seed);
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      const std::size_t index = static_cast<std::size_t>(from) * n + to;
      LinkState& state = links_[index];
      state.rng = master.fork(5000 + index);
      for (const LinkFault& fault : plan_.links) {
        if ((fault.from >= 0 && fault.from != from) ||
            (fault.to >= 0 && fault.to != to)) {
          continue;
        }
        state.configured = true;
        if (fault.ge.enabled()) state.fault.ge = fault.ge;
        if (fault.duplicate_p > 0.0) state.fault.duplicate_p = fault.duplicate_p;
        if (fault.reorder_p > 0.0) {
          state.fault.reorder_p = fault.reorder_p;
          state.fault.reorder_hold_s = fault.reorder_hold_s;
        }
        if (fault.jitter_s > 0.0) state.fault.jitter_s = fault.jitter_s;
      }
    }
  }
  inner_.set_observer(this);
}

FaultTransport::~FaultTransport() { inner_.set_observer(nullptr); }

void FaultTransport::bind_clock(const vtime::Clock* clock) {
  Transport::bind_clock(clock);
  inner_.bind_clock(clock);
}

void FaultTransport::set_time_source(std::function<double()> now) {
  time_source_ = std::move(now);
}

double FaultTransport::now() const {
  if (time_source_) return time_source_();
  return clock_now();
}

bool FaultTransport::in_blackout(int node, double t) const {
  for (const Blackout& blackout : plan_.blackouts) {
    if (blackout.node == node && t >= blackout.start_s && t < blackout.end_s) {
      return true;
    }
  }
  return false;
}

bool FaultTransport::partition_cuts(int from, int to, double t) const {
  for (const Partition& partition : plan_.partitions) {
    if (t < partition.start_s || t >= partition.end_s) continue;
    const bool from_isolated =
        std::find(partition.isolated.begin(), partition.isolated.end(),
                  from) != partition.isolated.end();
    const bool to_isolated =
        std::find(partition.isolated.begin(), partition.isolated.end(), to) !=
        partition.isolated.end();
    if (from_isolated != to_isolated) return true;
  }
  return false;
}

void FaultTransport::emit_fault(FaultRecord::Kind kind, int from, int to,
                                std::span<const std::uint8_t> frame,
                                std::uint64_t link_copy, double t) {
  if (observer_ == nullptr) return;
  FaultRecord record;
  record.kind = kind;
  record.from = from;
  record.to = to;
  record.bytes = frame.size();
  record.link_copy = link_copy;
  record.time = t;
  record.frame = frame;  // valid for the callback only
  observer_->on_fault(record);
}

void FaultTransport::deliver(int from, int to,
                             std::span<const std::uint8_t> bytes,
                             const Handler& handler) {
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (observer_ != nullptr) observer_->on_deliver(from, to, bytes.size());
  handler(from, bytes);
}

void FaultTransport::send(int from, std::span<const std::uint8_t> frame) {
  const double t = now();
  if (in_blackout(from, t)) {
    // A crashed node transmits nothing; the frame is never offered to the
    // channel, so frames_sent does not count it.
    blackout_tx_suppressed_.fetch_add(1, std::memory_order_relaxed);
    emit_fault(FaultRecord::Kind::kBlackout, from, -1, frame, 0, t);
    return;
  }
  inner_.send(from, frame);
}

std::size_t FaultTransport::poll(int to, const Handler& handler) {
  const double t = now();
  const int n = inner_.nodes();
  const bool rx_dead = in_blackout(to, t);
  std::size_t count = 0;
  inner_.poll(to, [&](int from, std::span<const std::uint8_t> bytes) {
    LinkState& link = links_[static_cast<std::size_t>(from) * n + to];
    const std::uint64_t copy = link.copies++;
    // Fixed draw order per copy (GE transition, GE loss, duplicate, reorder,
    // jitter), so the stream position depends only on (seed, link, copy) —
    // time-windowed outcomes below never shift it.
    bool ge_loss = false;
    bool dup = false;
    bool reorder = false;
    double delay = 0.0;
    if (link.configured) {
      const LinkFault& fault = link.fault;
      if (fault.ge.enabled()) {
        const double flip =
            link.bad ? fault.ge.p_bad_good : fault.ge.p_good_bad;
        if (link.rng.chance(flip)) link.bad = !link.bad;
        ge_loss =
            link.rng.chance(link.bad ? fault.ge.loss_bad : fault.ge.loss_good);
      }
      if (fault.duplicate_p > 0.0) dup = link.rng.chance(fault.duplicate_p);
      if (fault.reorder_p > 0.0) reorder = link.rng.chance(fault.reorder_p);
      if (fault.jitter_s > 0.0) delay = link.rng.uniform(0.0, fault.jitter_s);
      if (reorder) delay += fault.reorder_hold_s;
    }
    if (rx_dead) {
      blackout_rx_drops_.fetch_add(1, std::memory_order_relaxed);
      emit_fault(FaultRecord::Kind::kBlackout, from, to, bytes, copy, t);
      return;
    }
    if (partition_cuts(from, to, t)) {
      partition_drops_.fetch_add(1, std::memory_order_relaxed);
      emit_fault(FaultRecord::Kind::kPartition, from, to, bytes, copy, t);
      return;
    }
    if (ge_loss) {
      lost_.fetch_add(1, std::memory_order_relaxed);
      emit_fault(FaultRecord::Kind::kLoss, from, to, bytes, copy, t);
      return;
    }
    if (dup) {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      emit_fault(FaultRecord::Kind::kDuplicate, from, to, bytes, copy, t);
      deliver(from, to, bytes, handler);
      ++count;
    }
    if (reorder) {
      reordered_.fetch_add(1, std::memory_order_relaxed);
      emit_fault(FaultRecord::Kind::kReorder, from, to, bytes, copy, t);
    }
    if (delay > 0.0) {
      Held held;
      held.due = t + delay;
      held.from = from;
      held.link_copy = copy;
      held.bytes.assign(bytes.begin(), bytes.end());
      std::vector<Held>& queue = held_[static_cast<std::size_t>(to)];
      const auto position = std::upper_bound(
          queue.begin(), queue.end(), held.due,
          [](double due, const Held& other) { return due < other.due; });
      queue.insert(position, std::move(held));
      return;
    }
    deliver(from, to, bytes, handler);
    ++count;
  });
  // Release copies whose jitter/reorder hold expired; a copy due during the
  // receiver's blackout dies with it.
  std::vector<Held>& queue = held_[static_cast<std::size_t>(to)];
  while (!queue.empty() && queue.front().due <= t) {
    Held held = std::move(queue.front());
    queue.erase(queue.begin());
    if (rx_dead) {
      blackout_rx_drops_.fetch_add(1, std::memory_order_relaxed);
      emit_fault(FaultRecord::Kind::kBlackout, held.from, to, held.bytes,
                 held.link_copy, t);
      continue;
    }
    deliver(held.from, to, held.bytes, handler);
    ++count;
  }
  return count;
}

TransportStats FaultTransport::stats() const {
  TransportStats stats = inner_.stats();
  stats.copies_dropped += lost_.load(std::memory_order_relaxed) +
                          partition_drops_.load(std::memory_order_relaxed) +
                          blackout_rx_drops_.load(std::memory_order_relaxed);
  // Post-filter deliveries (includes duplicates; excludes injector kills
  // counted by the inner transport as delivered-to-the-decorator).
  stats.copies_delivered = delivered_.load(std::memory_order_relaxed);
  return stats;
}

FaultStats FaultTransport::fault_stats() const {
  FaultStats stats;
  stats.lost = lost_.load(std::memory_order_relaxed);
  stats.duplicated = duplicated_.load(std::memory_order_relaxed);
  stats.reordered = reordered_.load(std::memory_order_relaxed);
  stats.partition_drops = partition_drops_.load(std::memory_order_relaxed);
  stats.blackout_rx_drops =
      blackout_rx_drops_.load(std::memory_order_relaxed);
  stats.blackout_tx_suppressed =
      blackout_tx_suppressed_.load(std::memory_order_relaxed);
  stats.delivered = delivered_.load(std::memory_order_relaxed);
  return stats;
}

// Inner-transport observer taps ---------------------------------------------

void FaultTransport::on_send(int from, std::size_t bytes) {
  if (observer_ != nullptr) observer_->on_send(from, bytes);
}

void FaultTransport::on_drop(int from, int to,
                             std::span<const std::uint8_t> frame) {
  if (observer_ != nullptr) observer_->on_drop(from, to, frame);
}

void FaultTransport::on_deliver(int from, int to, std::size_t bytes) {
  // Swallowed: the inner transport delivered the copy to the injector, not
  // to the node; poll() re-emits on_deliver for copies that survive.
  (void)from;
  (void)to;
  (void)bytes;
}

void FaultTransport::on_truncated(int from, int to, std::size_t claimed_bytes) {
  if (observer_ != nullptr) observer_->on_truncated(from, to, claimed_bytes);
}

}  // namespace omnc::emu

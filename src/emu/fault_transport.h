// Deterministic fault injection for the emulation runtime.
//
// FaultTransport decorates any Transport backend and subjects every
// per-receiver copy to a scripted adversary: Gilbert–Elliott burst loss,
// reordering, duplication, latency jitter, scheduled link partitions, and
// node blackouts (crash/restart windows).  The paper's Drift testbed — and
// the redundancy study of Ploumidis et al. (arXiv:1309.7881) — break
// protocols with exactly these conditions, not with the benign i.i.d. loss
// the loopback transport models.
//
// Determinism: every random decision flows from one plan seed through a
// forked per-directed-link Rng stream, and the per-copy draw order is fixed
// (GE transition, GE loss, duplicate, reorder, jitter — skipping only
// features the plan leaves disabled for that link).  The fate of the k-th
// copy arriving on link (i, j) is therefore a pure function of
// (seed, i, j, k), independent of wall-clock interleaving.  Time-windowed
// faults (partitions, blackouts) consume no randomness at all.  Fault
// decisions are emitted as FaultRecords through TransportObserver::on_fault
// and become the emu_fault_* trace family (floss / freord / fdup / fpart /
// fblack).
//
// Interception happens on the receive path (inside poll), so the injector
// works identically over the in-memory loopback and real UDP sockets; only
// sender-side blackouts act inside send().  Threading follows the Transport
// contract: per-receiver state (GE chains, hold queues) is only touched from
// that receiver's thread, counters are atomic, and handlers run lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "emu/transport.h"
#include "protocols/metrics_bus.h"

namespace omnc::emu {

/// Two-state Markov (Gilbert–Elliott) loss channel.  The chain starts in the
/// good state and advances once per arriving copy.
struct GilbertElliott {
  double p_good_bad = 0.0;  // P(good -> bad) per copy
  double p_bad_good = 1.0;  // P(bad -> good) per copy
  double loss_good = 0.0;   // loss probability while good
  double loss_bad = 1.0;    // loss probability while bad

  bool enabled() const { return p_good_bad > 0.0 || loss_good > 0.0; }

  /// Stationary mean loss rate pi_g * loss_g + pi_b * loss_b.
  double mean_loss() const;
};

/// Fault configuration for one directed link pattern; from/to may be -1
/// (wildcard).  Later entries in FaultPlan::links override earlier ones for
/// the links they match.
struct LinkFault {
  int from = -1;
  int to = -1;
  GilbertElliott ge;
  double duplicate_p = 0.0;     // deliver an extra immediate copy
  double reorder_p = 0.0;       // hold the copy back by reorder_hold_s
  double reorder_hold_s = 0.05;  // virtual seconds a reordered copy waits
  double jitter_s = 0.0;         // extra uniform delay in [0, jitter_s)
};

/// All links with exactly one endpoint in `isolated` are cut during
/// [start_s, end_s) of injector time.
struct Partition {
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<int> isolated;
};

/// Node crash window: during [start_s, end_s) the node neither sends nor
/// receives (its protocol state survives; catching up afterwards is the
/// resync path's job).
struct Blackout {
  int node = -1;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// A complete fault scenario.  Scriptable from a one-line spec:
///
///   spec      := directive (';' directive)*   |   preset-name
///   directive := 'seed=' N
///              | 'ge=' LINK ':' pgb ',' pbg ',' loss_g ',' loss_b
///              | 'loss=' LINK ':' p              (i.i.d. shorthand)
///              | 'dup=' LINK ':' p
///              | 'reorder=' LINK ':' p ',' hold_s
///              | 'jitter=' LINK ':' seconds
///              | 'partition=' start '-' end ':' node (',' node)*
///              | 'blackout=' node ':' start '-' end
///   LINK      := '*' | from '-' to              (from/to: index or '*')
///
/// Example: "seed=7; ge=*:0.1,0.3,0.02,0.85; blackout=1:2.5-4.5".
/// Presets: "burst", "jitter", "partition", "blackout", "chaos" — the
/// scenarios the chaos soak sweeps (see preset_names()).
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<LinkFault> links;
  std::vector<Partition> partitions;
  std::vector<Blackout> blackouts;

  bool empty() const {
    return links.empty() && partitions.empty() && blackouts.empty();
  }

  /// One-line human-readable summary.
  std::string describe() const;

  /// Parses a spec (or a preset name) into *out; on failure returns false
  /// and leaves a diagnostic in *error.
  static bool parse(const std::string& spec, FaultPlan* out,
                    std::string* error);

  /// The shipped scenario names, in soak-sweep order.
  static std::vector<std::string> preset_names();
};

/// Injector counters, one per fault family plus the post-filter delivery
/// count (which includes duplicates, so delivered + dropped can exceed the
/// copies the inner transport offered).
struct FaultStats {
  std::size_t lost = 0;                    // GE channel kills
  std::size_t duplicated = 0;              // extra copies delivered
  std::size_t reordered = 0;               // copies held back
  std::size_t partition_drops = 0;         // cut by a scheduled partition
  std::size_t blackout_rx_drops = 0;       // receiver was crashed
  std::size_t blackout_tx_suppressed = 0;  // sender was crashed
  std::size_t delivered = 0;               // copies handed to handlers

  std::size_t total_faults() const {
    return lost + duplicated + reordered + partition_drops +
           blackout_rx_drops + blackout_tx_suppressed;
  }
};

/// Maps one fault decision onto the trace event vocabulary (kEmuFault*).
/// `node` is left unset; the harness tap fills the acting node in.
protocols::MetricEvent fault_metric_event(const FaultRecord& record,
                                          std::uint32_t session_id);

class FaultTransport final : public Transport, private TransportObserver {
 public:
  /// `inner` must outlive the decorator.  The decorator installs itself as
  /// the inner transport's observer (restored to nullptr on destruction);
  /// callers observe the decorator, never the inner transport directly.
  FaultTransport(Transport& inner, FaultPlan plan);
  ~FaultTransport() override;

  FaultTransport(const FaultTransport&) = delete;
  FaultTransport& operator=(const FaultTransport&) = delete;

  int nodes() const override { return inner_.nodes(); }
  void send(int from, std::span<const std::uint8_t> frame) override;
  std::size_t poll(int to, const Handler& handler) override;
  TransportStats stats() const override;

  /// Forwards the run clock to the inner transport as well, so both layers
  /// read the *same* time origin (partitions, blackouts, and delay queues
  /// can never disagree by a scheduling-jitter epsilon).
  void bind_clock(const vtime::Clock* clock) override;

  /// Tests override the clock entirely; the function must be callable from
  /// any node thread and return non-decreasing virtual seconds.
  void set_time_source(std::function<double()> now);

  const FaultPlan& plan() const { return plan_; }
  FaultStats fault_stats() const;

 private:
  /// A copy delayed by jitter/reordering, waiting in the receiver's queue.
  struct Held {
    double due = 0.0;
    int from = -1;
    std::uint64_t link_copy = 0;
    std::vector<std::uint8_t> bytes;
  };

  /// Per-directed-link injector state; touched only from the receiver's
  /// thread.  `fault` is the overlay of every matching plan entry, in plan
  /// order (later entries override the features they configure).
  struct LinkState {
    LinkFault fault;
    bool configured = false;
    bool bad = false;         // GE chain state
    std::uint64_t copies = 0;  // arrivals so far (the k coordinate)
    Rng rng;
  };

  // Inner-transport observer taps: send/drop/truncation pass through,
  // deliveries are swallowed here and re-emitted post-filter from poll().
  void on_send(int from, std::size_t bytes) override;
  void on_drop(int from, int to, std::span<const std::uint8_t> frame) override;
  void on_deliver(int from, int to, std::size_t bytes) override;
  void on_truncated(int from, int to, std::size_t claimed_bytes) override;

  double now() const;
  bool in_blackout(int node, double t) const;
  bool partition_cuts(int from, int to, double t) const;
  void emit_fault(FaultRecord::Kind kind, int from, int to,
                  std::span<const std::uint8_t> frame, std::uint64_t link_copy,
                  double t);
  void deliver(int from, int to, std::span<const std::uint8_t> bytes,
               const Handler& handler);

  Transport& inner_;
  FaultPlan plan_;
  std::vector<LinkState> links_;      // n*n, row-major [from * n + to]
  std::vector<std::vector<Held>> held_;  // per receiver, sorted by due

  std::function<double()> time_source_;

  std::atomic<std::size_t> lost_{0};
  std::atomic<std::size_t> duplicated_{0};
  std::atomic<std::size_t> reordered_{0};
  std::atomic<std::size_t> partition_drops_{0};
  std::atomic<std::size_t> blackout_rx_drops_{0};
  std::atomic<std::size_t> blackout_tx_suppressed_{0};
  std::atomic<std::size_t> delivered_{0};
};

}  // namespace omnc::emu

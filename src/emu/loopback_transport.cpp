#include "emu/loopback_transport.h"

#include <cmath>

#include "common/assert.h"

namespace omnc::emu {

std::vector<double> link_matrix_from_graph(const routing::SessionGraph& graph) {
  const int n = graph.size();
  std::vector<double> link_p(static_cast<std::size_t>(n) * n, 0.0);
  for (const routing::SessionGraph::Edge& edge : graph.edges) {
    // The DAG edge is directed downstream, but the radio channel is
    // reciprocal: ACK and price floods must be able to travel upstream.
    // Links are assumed symmetric (true for every link-matrix topology in
    // this repo); use link_matrix_from_topology when they are not.
    link_p[static_cast<std::size_t>(edge.from) * n + edge.to] = edge.p;
    link_p[static_cast<std::size_t>(edge.to) * n + edge.from] = edge.p;
  }
  return link_p;
}

std::vector<double> link_matrix_from_topology(
    const net::Topology& topology, const routing::SessionGraph& graph) {
  const int n = graph.size();
  std::vector<double> link_p(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      link_p[static_cast<std::size_t>(i) * n + j] =
          topology.prob(graph.node_id(i), graph.node_id(j));
    }
  }
  return link_p;
}

std::vector<double> link_matrix_from_phy(
    const std::vector<std::pair<double, double>>& positions_m,
    const net::PhyModel& phy) {
  const std::size_t n = positions_m.size();
  std::vector<double> link_p(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = positions_m[i].first - positions_m[j].first;
      const double dy = positions_m[i].second - positions_m[j].second;
      link_p[i * n + j] =
          phy.reception_probability(std::sqrt(dx * dx + dy * dy));
    }
  }
  return link_p;
}

LoopbackTransport::LoopbackTransport(int nodes, std::vector<double> link_p,
                                     LoopbackConfig config)
    : n_(nodes), link_p_(std::move(link_p)), config_(config) {
  OMNC_ASSERT(n_ > 0);
  OMNC_ASSERT(link_p_.size() == static_cast<std::size_t>(n_) * n_);
  Rng master(config_.seed);
  link_rng_.reserve(link_p_.size());
  for (std::size_t link = 0; link < link_p_.size(); ++link) {
    link_rng_.push_back(master.fork(1000 + link));
  }
  inbox_.resize(static_cast<std::size_t>(n_));
  poll_scratch_.resize(static_cast<std::size_t>(n_));
}

std::vector<std::uint8_t> LoopbackTransport::take_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buffer = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buffer;
}

void LoopbackTransport::send(int from, std::span<const std::uint8_t> frame) {
  OMNC_ASSERT(from >= 0 && from < n_);
  // With no clock bound (direct unit-test traffic) time stands still at 0,
  // so a nonzero delay would hold frames forever; deliver immediately.
  const double due = clock_ ? clock_now() + config_.delay_s : 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (observer_ != nullptr) observer_->on_send(from, frame.size());
  for (int to = 0; to < n_; ++to) {
    if (to == from) continue;
    const std::size_t link = static_cast<std::size_t>(from) * n_ + to;
    const double p = link_p_[link];
    // Draw even for p == 0 links?  No: a zero link draws nothing, so adding
    // or removing unreachable pairs does not shift other links' streams.
    if (p <= 0.0) continue;
    const bool heard = link_rng_[link].chance(p);
    if (!heard || inbox_[static_cast<std::size_t>(to)].size() >=
                      config_.max_inbox) {
      ++stats_.copies_dropped;
      if (observer_ != nullptr) observer_->on_drop(from, to, frame);
      continue;
    }
    std::vector<std::uint8_t> bytes = take_buffer();
    bytes.assign(frame.begin(), frame.end());
    inbox_[static_cast<std::size_t>(to)].push_back(
        Delivery{from, due, std::move(bytes)});
  }
}

std::size_t LoopbackTransport::poll(int to, const Handler& handler) {
  OMNC_ASSERT(to >= 0 && to < n_);
  const double now = clock_now();
  std::vector<Delivery>& due = poll_scratch_[static_cast<std::size_t>(to)];
  due.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::deque<Delivery>& inbox = inbox_[static_cast<std::size_t>(to)];
    while (!inbox.empty() && inbox.front().due <= now) {
      due.push_back(std::move(inbox.front()));
      inbox.pop_front();
    }
    stats_.copies_delivered += due.size();
    if (observer_ != nullptr) {
      for (const Delivery& delivery : due) {
        observer_->on_deliver(delivery.from, to, delivery.bytes.size());
      }
    }
  }
  // The handler runs outside the lock: it may forward (send) or park frames.
  for (const Delivery& delivery : due) {
    handler(delivery.from, delivery.bytes);
  }
  const std::size_t delivered = due.size();
  if (delivered > 0) {
    // Recycle the drained byte buffers for future sends.
    std::lock_guard<std::mutex> lock(mutex_);
    for (Delivery& delivery : due) {
      delivery.bytes.clear();
      buffer_pool_.push_back(std::move(delivery.bytes));
    }
  }
  due.clear();
  return delivered;
}

TransportStats LoopbackTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace omnc::emu

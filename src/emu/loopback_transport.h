// In-memory broadcast channel with per-link Bernoulli loss and delay.
//
// Each directed link (i, j) carries its own reception probability and its
// own forked RNG stream, so the loss pattern a link applies to its sender's
// k-th broadcast is a pure function of (seed, i, j, k) — independent of how
// the node threads interleave.  That is what makes loopback emulation runs
// reproducible under a seed even though they execute on wall-clock threads
// (the *timing* still varies with scheduling; see DESIGN.md §10 — under the
// DeterministicClock it does not, see §12).
#pragma once

#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "emu/transport.h"
#include "net/phy_model.h"
#include "net/topology.h"
#include "routing/node_selection.h"

namespace omnc::emu {

struct LoopbackConfig {
  std::uint64_t seed = 1;

  /// Fixed one-way propagation/processing delay, in *virtual* seconds (read
  /// against the clock the harness binds; instantaneous when unbound).
  double delay_s = 0.0;

  /// Per-receiver inbox bound; a full inbox drops the incoming copy (the
  /// emulated analogue of a full MAC queue).
  std::size_t max_inbox = 4096;
};

/// Builds the n*n row-major link matrix (probability of j hearing i at
/// [i*n+j]) from a session graph's directed edges, symmetrized — the DAG
/// points downstream but the radio is reciprocal, and the ACK/price floods
/// need the upstream direction.  Pairs with no DAG edge are 0.
std::vector<double> link_matrix_from_graph(const routing::SessionGraph& graph);

/// Builds the link matrix for the graph's nodes from the full topology's
/// reception probabilities (the general, possibly asymmetric case).
std::vector<double> link_matrix_from_topology(
    const net::Topology& topology, const routing::SessionGraph& graph);

/// Builds the link matrix from node positions and a PHY model, exactly as
/// the slot simulator's topology construction does: p(i->j) =
/// phy.reception_probability(distance(i, j)).
std::vector<double> link_matrix_from_phy(
    const std::vector<std::pair<double, double>>& positions_m,
    const net::PhyModel& phy);

class LoopbackTransport final : public Transport {
 public:
  /// `link_p` is the n*n row-major matrix of one-way reception
  /// probabilities; the diagonal is ignored (nodes do not hear themselves).
  LoopbackTransport(int nodes, std::vector<double> link_p,
                    LoopbackConfig config = {});

  int nodes() const override { return n_; }
  void send(int from, std::span<const std::uint8_t> frame) override;
  std::size_t poll(int to, const Handler& handler) override;
  TransportStats stats() const override;

 private:
  struct Delivery {
    int from = 0;
    double due = 0.0;  // virtual seconds
    std::vector<std::uint8_t> bytes;
  };

  /// Pops a recycled byte buffer (empty vector when the pool is dry).
  /// Caller must hold mutex_.
  std::vector<std::uint8_t> take_buffer();

  int n_;
  std::vector<double> link_p_;  // n*n row-major
  LoopbackConfig config_;
  std::vector<Rng> link_rng_;   // one stream per directed link

  mutable std::mutex mutex_;
  std::vector<std::deque<Delivery>> inbox_;  // per receiver
  /// Free-list of delivery byte buffers (mutex_-guarded): a copy's vector is
  /// recycled once its receiver has polled it, so steady-state traffic stops
  /// hitting the allocator per delivered copy.  Bounded by the number of
  /// copies in flight (≤ n * max_inbox).
  std::vector<std::vector<std::uint8_t>> buffer_pool_;
  /// Per-receiver drain scratch; poll(i) only runs on node i's thread
  /// (Transport contract), so each slot is single-threaded by construction.
  std::vector<std::vector<Delivery>> poll_scratch_;
  TransportStats stats_;
};

}  // namespace omnc::emu

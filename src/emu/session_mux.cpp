#include "emu/session_mux.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "emu/fault_transport.h"
#include "wire/frame.h"

namespace omnc::emu {

/// Serializes metric + span events from worker threads and the transport
/// observer into the caller's sinks — the session-aware sibling of
/// EmuHarness's EventTap.  Per-session protocol events arrive from the
/// EmuNodes already stamped with their session id; transport-level events
/// are attributed by peeking the frame bytes when they are available
/// (drops, faults) and carry session 0 when only a byte count exists
/// (send/deliver) — a size names no session.
class SessionMux::MuxTap final : public TransportObserver {
 public:
  MuxTap(const routing::SessionGraph& graph, const vtime::Clock& clock,
         std::function<void(const protocols::MetricEvent&)> sink,
         std::function<void(const obs::SpanEvent&)> span_sink,
         const std::unordered_map<std::uint32_t, int>& sessions)
      : graph_(graph),
        clock_(clock),
        sink_(std::move(sink)),
        span_sink_(std::move(span_sink)),
        sessions_(sessions) {}

  void forward(const protocols::MetricEvent& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_) sink_(event);
  }

  void forward_span(const obs::SpanEvent& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (span_sink_) span_sink_(event);
  }

  void on_send(int from, std::size_t bytes) override {
    emit(protocols::MetricEvent::Type::kEmuSend, from, -1, bytes, 0);
  }
  void on_drop(int from, int to,
               std::span<const std::uint8_t> frame) override {
    emit(protocols::MetricEvent::Type::kEmuDrop, from, to, frame.size(),
         session_of(frame));
    span_drop(from, to, frame, clock_.now());
  }
  void on_deliver(int from, int to, std::size_t bytes) override {
    emit(protocols::MetricEvent::Type::kEmuDeliver, from, to, bytes, 0);
  }
  void on_fault(const FaultRecord& record) override {
    // Fault records carry the injector's own virtual timestamp.
    protocols::MetricEvent event =
        fault_metric_event(record, session_of(record.frame));
    const int acting = record.to >= 0 ? record.to : record.from;
    if (acting >= 0 && acting < graph_.size()) {
      event.node = graph_.node_id(acting);
    }
    forward(event);
    // Only fault kinds that destroy the copy close its span; reorder and
    // duplicate leave the packet in flight.
    if (record.kind == FaultRecord::Kind::kLoss ||
        record.kind == FaultRecord::Kind::kPartition ||
        record.kind == FaultRecord::Kind::kBlackout) {
      span_drop(record.from, record.to, record.frame, record.time);
    }
  }
  void on_truncated(int from, int to, std::size_t claimed_bytes) override {
    protocols::MetricEvent event;
    event.type = protocols::MetricEvent::Type::kEmuParseError;
    event.time = clock_.now();
    event.session = 0;  // a truncated buffer demuxes nowhere
    if (to >= 0 && to < graph_.size()) event.node = graph_.node_id(to);
    event.tx_local = from;
    event.rx_local = to;
    event.generation = 1;
    event.value = static_cast<double>(claimed_bytes);
    forward(event);
  }

 private:
  void emit(protocols::MetricEvent::Type type, int from, int to,
            std::size_t bytes, std::uint32_t session) {
    protocols::MetricEvent event;
    event.type = type;
    event.time = clock_.now();
    event.session = session;
    const int acting = to >= 0 ? to : from;
    if (acting >= 0 && acting < graph_.size()) {
      event.node = graph_.node_id(acting);
    }
    event.tx_local = from;
    event.rx_local = to;
    event.value = static_cast<double>(bytes);
    forward(event);
  }

  /// The frame's header session id when it is readable and belongs to one
  /// of the mux's sessions; 0 (unattributed) otherwise.
  std::uint32_t session_of(std::span<const std::uint8_t> frame) const {
    if (frame.empty()) return 0;
    std::uint32_t session = 0;
    if (!wire::peek_session(frame, &session)) return 0;
    return sessions_.count(session) != 0 ? session : 0;
  }

  /// Closes the span of a killed coded-data copy by peeking its wire trace
  /// tag, attributed to the session the frame names.
  void span_drop(int from, int to, std::span<const std::uint8_t> frame,
                 double time) {
    if (!span_sink_ || frame.empty()) return;
    std::uint16_t origin = 0;
    std::uint32_t seq = 0;
    if (!wire::peek_trace(frame, &origin, &seq)) return;
    const obs::SpanId span{origin, seq};
    if (!span.valid()) return;
    const std::uint32_t session = session_of(frame);
    if (session == 0) return;
    std::uint32_t generation = 0;
    if (!wire::peek_generation(frame, &generation)) return;
    obs::SpanEvent event;
    event.kind = obs::SpanEvent::Kind::kDrop;
    event.time = time;
    event.session = session;
    event.generation = generation;
    event.node = to;
    event.peer = from;
    event.span = span;
    forward_span(event);
  }

  const routing::SessionGraph& graph_;
  const vtime::Clock& clock_;
  std::function<void(const protocols::MetricEvent&)> sink_;
  std::function<void(const obs::SpanEvent&)> span_sink_;
  const std::unordered_map<std::uint32_t, int>& sessions_;
  std::mutex mutex_;
};

SessionMux::SessionMux(const routing::SessionGraph& graph,
                       Transport& transport, const MuxConfig& config)
    : graph_(graph), transport_(transport), config_(config) {
  OMNC_ASSERT(transport_.nodes() == graph_.size());
  OMNC_ASSERT(config_.sessions > 0);
  nodes_.resize(static_cast<std::size_t>(config_.sessions));
  for (int s = 0; s < config_.sessions; ++s) {
    EmuNodeConfig node_config = config_.emu.node;
    node_config.session_id = session_id_of(s);
    node_config.data_seed =
        config_.emu.node.data_seed + static_cast<std::uint64_t>(s);
    node_config.rng_seed =
        config_.emu.node.rng_seed + static_cast<std::uint64_t>(s);
    const bool inserted =
        session_index_.emplace(node_config.session_id, s).second;
    OMNC_ASSERT_MSG(inserted, "session ids must be distinct");
    auto& session_nodes = nodes_[static_cast<std::size_t>(s)];
    for (int local = 0; local < graph_.size(); ++local) {
      session_nodes.push_back(
          std::make_unique<EmuNode>(graph_, local, transport_, node_config));
    }
  }
}

std::uint32_t SessionMux::session_id_of(int session) const {
  OMNC_ASSERT(session >= 0 && session < config_.sessions);
  return config_.emu.node.session_id + static_cast<std::uint32_t>(session);
}

EmuNode& SessionMux::node(int session, int local) {
  OMNC_ASSERT(session >= 0 && session < config_.sessions);
  return *nodes_[static_cast<std::size_t>(session)]
              [static_cast<std::size_t>(local)];
}

void SessionMux::install_rates(const std::vector<double>& rates_bytes_per_s) {
  OMNC_ASSERT(static_cast<int>(rates_bytes_per_s.size()) == graph_.size());
  for (auto& session_nodes : nodes_) {
    for (std::size_t i = 0; i < session_nodes.size(); ++i) {
      session_nodes[i]->install_rate(rates_bytes_per_s[i]);
    }
  }
}

void SessionMux::install_price_table(std::vector<double> rates_bytes_per_s,
                                     std::vector<double> lambda,
                                     std::vector<double> beta,
                                     int iterations) {
  for (auto& session_nodes : nodes_) {
    session_nodes[static_cast<std::size_t>(graph_.source)]->set_price_table(
        rates_bytes_per_s, lambda, beta, iterations);
  }
}

void SessionMux::set_metric_sink(
    std::function<void(const protocols::MetricEvent&)> sink) {
  sink_ = std::move(sink);
}

void SessionMux::set_span_sink(
    std::function<void(const obs::SpanEvent&)> sink) {
  span_sink_ = std::move(sink);
}

SessionMux::DemuxDecision SessionMux::classify(
    std::span<const std::uint8_t> bytes, std::uint32_t* session) {
  // A frame whose header cannot be peeked (truncated, bad magic/version,
  // length disagreement) names no session and must be charged to none.
  if (!wire::peek_session(bytes, session)) return DemuxDecision::kUnroutable;
  wire::FrameType type = wire::FrameType::kCodedData;
  if (!wire::peek_type(bytes, &type)) return DemuxDecision::kUnroutable;
  if (type == wire::FrameType::kCodedData ||
      type == wire::FrameType::kCodedDataCompact) {
    // Cross-check the embedded coded-packet session id against the header
    // before any runtime sees the frame: a disagreement is corruption or
    // forgery, and routing it by either id would leak it across sessions.
    std::uint32_t embedded = 0;
    if (!wire::peek_data_session(bytes, &embedded)) {
      return DemuxDecision::kUnroutable;  // body too short to verify
    }
    if (embedded != *session) return DemuxDecision::kSessionMismatch;
  }
  return DemuxDecision::kDeliver;
}

void SessionMux::dispatch(double now, int node, int from,
                          std::span<const std::uint8_t> bytes) {
  std::uint32_t session = 0;
  switch (classify(bytes, &session)) {
    case DemuxDecision::kUnroutable:
      demux_unroutable_.fetch_add(1, std::memory_order_relaxed);
      return;
    case DemuxDecision::kSessionMismatch:
      demux_session_mismatch_.fetch_add(1, std::memory_order_relaxed);
      return;
    case DemuxDecision::kDeliver:
      break;
  }
  const auto it = session_index_.find(session);
  if (it == session_index_.end()) {
    demux_unknown_session_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  nodes_[static_cast<std::size_t>(it->second)][static_cast<std::size_t>(node)]
      ->deliver(now, from, bytes);
}

void SessionMux::drain_and_step(double now, int node, bool drain) {
  if (drain) {
    transport_.poll(node,
                    [&](int from, std::span<const std::uint8_t> bytes) {
                      dispatch(now, node, from, bytes);
                    });
  }
  for (auto& session_nodes : nodes_) {
    session_nodes[static_cast<std::size_t>(node)]->step_local(now);
  }
}

bool SessionMux::all_completed() const {
  for (const auto& session_nodes : nodes_) {
    if (session_nodes[static_cast<std::size_t>(graph_.source)]
            ->completed_generations() < config_.emu.node.max_generations) {
      return false;
    }
  }
  return true;
}

bool SessionMux::run_threaded(vtime::Clock& clock, double tick, double horizon,
                              int shards) {
  // Every shard worker plus the completion watcher (this thread) joins the
  // clock; under kWarp all of them must sleep or leave for time to advance.
  clock.start(shards + 1);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(shards));
  for (int shard = 0; shard < shards; ++shard) {
    workers.emplace_back([&, shard] {
      // This worker owns the node indices congruent to its shard id: it is
      // "node i's thread" in the Transport contract for every owned i, and
      // every session's runtime at those nodes steps here too — the socket
      // is the serialization domain.
      std::vector<int> owned;
      for (int node = shard; node < graph_.size(); node += shards) {
        owned.push_back(node);
      }
      const std::unique_ptr<TransportReadiness> readiness =
          transport_.make_readiness(owned);
      std::vector<int> ready;
      std::vector<char> pending(static_cast<std::size_t>(graph_.size()), 0);
      double next = tick;
      while (!stop.load(std::memory_order_relaxed)) {
        const double now = clock.now();
        bool have_ready = false;
        if (readiness != nullptr) {
          ready.clear();
          have_ready = readiness->poll_ready(&ready);
          for (const int node : ready) {
            pending[static_cast<std::size_t>(node)] = 1;
          }
        }
        for (const int node : owned) {
          // Without a readiness signal every socket is polled (always
          // correct); with one, idle sockets cost nothing this tick.
          const bool drain =
              !have_ready || pending[static_cast<std::size_t>(node)] != 0;
          drain_and_step(now, node, drain);
        }
        for (const int node : ready) {
          pending[static_cast<std::size_t>(node)] = 0;
        }
        clock.sleep_until(next);
        next += tick;
      }
      // One final unconditional drain so late frames still reach counters.
      const double now = clock.now();
      for (const int node : owned) drain_and_step(now, node, true);
      clock.leave();
    });
  }

  bool completed = false;
  double next = tick;
  while (clock.now() < horizon) {
    if (all_completed()) {
      completed = true;
      break;
    }
    clock.sleep_until(next);
    next += tick;
  }
  stop.store(true, std::memory_order_relaxed);
  // The watcher departs first so sleeping workers keep advancing to their
  // next tick, observe `stop`, and drain out.
  clock.leave();
  for (std::thread& worker : workers) worker.join();
  return completed;
}

bool SessionMux::run_deterministic(vtime::DeterministicClock& clock,
                                   double tick, double horizon) {
  clock.start(1);
  bool completed = false;
  while (clock.now() < horizon) {
    if (all_completed()) {
      completed = true;
      break;
    }
    clock.advance_to(clock.now() + tick);
    // Node-major, then session order: with sessions = 1 this is exactly
    // EmuHarness's deterministic schedule, and the whole run is a pure
    // function of the configured seeds.
    const double now = clock.now();
    for (int node = 0; node < graph_.size(); ++node) {
      drain_and_step(now, node, true);
    }
  }
  const double now = clock.now();
  for (int node = 0; node < graph_.size(); ++node) {
    drain_and_step(now, node, true);
  }
  return completed;
}

EmuRunResult SessionMux::session_result(int session,
                                        double virtual_elapsed) const {
  const auto& session_nodes = nodes_[static_cast<std::size_t>(session)];
  EmuRunResult result;
  result.virtual_elapsed = virtual_elapsed;

  const EmuNode::Stats& src =
      session_nodes[static_cast<std::size_t>(graph_.source)]->stats();
  result.completed =
      src.generations_completed >= config_.emu.node.max_generations;
  result.generations_completed = src.generations_completed;
  result.last_ack_time = src.last_ack_time;
  result.ack_latencies = src.ack_latencies;
  if (!src.ack_latencies.empty()) {
    double sum = 0.0;
    for (const double latency : src.ack_latencies) sum += latency;
    result.mean_ack_latency =
        sum / static_cast<double>(src.ack_latencies.size());
  }
  if (src.last_ack_time > 0.0) {
    result.goodput_bytes_per_s =
        static_cast<double>(src.generations_completed) *
        static_cast<double>(config_.emu.node.coding.generation_bytes()) /
        src.last_ack_time;
  }

  result.data_ok = true;
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen_reports;
  for (const auto& node : session_nodes) {
    const EmuNode::Stats& stats = node->stats();
    if (!stats.data_ok) result.data_ok = false;
    result.parse_errors += stats.parse_errors;
    result.data_packets_sent += stats.data_packets_sent;
    result.stall_boosts += stats.stall_boosts;
    result.ack_keepalives += stats.ack_keepalives;
    result.resync_requests += stats.resync_requests;
    result.resync_replies += stats.resync_replies;
    result.price_decays += stats.price_decays;
    for (const wire::ProbeReport& report : stats.probe_reports) {
      if (seen_reports.insert({report.reporter_local, report.probed_local})
              .second) {
        result.probe_reports.push_back(report);
      }
    }
  }
  if (result.generations_completed == 0) result.data_ok = false;
  return result;
}

MuxRunResult SessionMux::run() {
  std::unique_ptr<vtime::Clock> clock =
      vtime::make_clock(config_.emu.clock_mode, config_.emu.speedup);
  MuxTap tap(graph_, *clock, sink_, span_sink_, session_index_);
  if (sink_ || span_sink_) {
    transport_.set_observer(&tap);
  }
  for (auto& session_nodes : nodes_) {
    for (auto& node : session_nodes) {
      if (sink_) {
        node->set_metric_sink([&tap](const protocols::MetricEvent& event) {
          tap.forward(event);
        });
      }
      if (span_sink_) {
        node->set_span_sink([&tap](const obs::SpanEvent& event) {
          tap.forward_span(event);
        });
      }
    }
  }
  transport_.bind_clock(clock.get());

  const double tick = static_cast<double>(config_.emu.poll_sleep_us) * 1e-6 *
                      config_.emu.speedup;
  const double horizon = config_.emu.virtual_timeout_s > 0.0
                             ? config_.emu.virtual_timeout_s
                             : config_.emu.wall_timeout_s * config_.emu.speedup;
  OMNC_ASSERT_MSG(tick > 0.0, "poll_sleep_us and speedup must be positive");

  bool completed = false;
  if (config_.emu.clock_mode == vtime::ClockMode::kDeterministic) {
    completed = run_deterministic(
        static_cast<vtime::DeterministicClock&>(*clock), tick, horizon);
  } else {
    int shards = config_.shards > 0
                     ? config_.shards
                     : static_cast<int>(std::thread::hardware_concurrency());
    shards = std::clamp(shards, 1, graph_.size());
    completed = run_threaded(*clock, tick, horizon, shards);
  }
  const double virtual_elapsed = clock->now();
  transport_.set_observer(nullptr);
  transport_.bind_clock(nullptr);

  MuxRunResult result;
  result.virtual_elapsed = virtual_elapsed;
  result.transport = transport_.stats();
  result.demux_unroutable =
      demux_unroutable_.load(std::memory_order_relaxed);
  result.demux_session_mismatch =
      demux_session_mismatch_.load(std::memory_order_relaxed);
  result.demux_unknown_session =
      demux_unknown_session_.load(std::memory_order_relaxed);
  result.sessions.reserve(static_cast<std::size_t>(config_.sessions));
  // The watcher's verdict and the per-session counters agree by
  // construction (all_completed() reads the same atomics); re-derive from
  // the per-session results so the aggregate can never contradict them.
  (void)completed;
  result.data_ok = true;
  result.completed = true;
  for (int s = 0; s < config_.sessions; ++s) {
    result.sessions.push_back(session_result(s, virtual_elapsed));
    const EmuRunResult& session = result.sessions.back();
    if (!session.completed) result.completed = false;
    if (!session.data_ok) result.data_ok = false;
  }
  return result;
}

}  // namespace omnc::emu

// Session-multiplexed emulation runtime: many concurrent unicast sessions
// over ONE shared transport (DESIGN.md §16).
//
// EmuHarness runs a single session with the transport polled from one
// thread per node.  The paper's setting — and the ROADMAP's "millions of
// users" item — is many unicasts sharing the same lossy substrate, which is
// also the prerequisite for inter-session coding (reverse carpooling,
// COPE-style XOR).  SessionMux owns one EmuNode per (session, node) and
// demultiplexes every received frame by the wire-header session id, so S
// sessions cost N sockets (one per *physical node*), not S x N.
//
// Sharding model — the socket is the serialization domain.  The Transport
// contract says send(i)/poll(i) run only on node i's thread; with sessions
// sharing node i's socket, every runtime collocated at node i must live on
// the same thread.  So the mux shards by physical node, not by session: K
// worker threads each own a slice of node indices, and per tick a worker
// drains each owned node's socket once (recvmmsg-batched on UDP), routes
// each frame to the right session's runtime at that node, then steps every
// session's runtime there.  Thread count is K, independent of S — replacing
// thread-per-session (S x N threads) scaling.  Workers ask the transport
// for a TransportReadiness set (epoll on UDP) so idle sockets cost nothing.
//
// Demux hygiene: a frame reaches a session's runtime only after
// (a) peek_session succeeds (malformed/truncated headers are unroutable —
// they cannot be charged to any session's parse-error count), and (b) for
// data frames, the embedded coded-packet session id agrees with the header
// (a disagreement is corruption or forgery and must not leak across
// sessions).  Rejections are counted per reason in MuxRunResult.
//
// Determinism: under ClockMode::kDeterministic the mux runs single-threaded
// round-robin (node-major, then session order), making the whole run — all
// S per-session traces — a pure function of the seeds.  With sessions = 1
// the schedule is exactly EmuHarness's, byte for byte.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "emu/emu_harness.h"
#include "emu/emu_node.h"
#include "emu/transport.h"
#include "obs/span.h"
#include "protocols/metrics_bus.h"
#include "routing/node_selection.h"
#include "time/clock.h"

namespace omnc::emu {

struct MuxConfig {
  /// Per-node template plus clock/timeout/tick settings.  Session s
  /// (0-based) derives its identity from the template:
  ///   session_id = emu.node.session_id + s
  ///   data_seed  = emu.node.data_seed + s
  ///   rng_seed   = emu.node.rng_seed + s
  /// so session 0 reproduces the template exactly and every session is an
  /// independent seed-deterministic unicast.
  EmuConfig emu;

  /// Concurrent unicast sessions over the shared transport.
  int sessions = 1;

  /// Worker threads under kReal/kWarp; each owns the node indices congruent
  /// to its shard id.  0 picks min(nodes, hardware threads).  Ignored under
  /// kDeterministic (single-threaded by definition).  Clamped to [1, nodes].
  int shards = 0;
};

struct MuxRunResult {
  bool completed = false;  // every session retired max_generations
  bool data_ok = false;    // every session's decoded data checked out
  /// One EmuRunResult per session, index = session ordinal.  The shared
  /// channel cannot be split per session, so each entry's `transport` is
  /// zero — read the aggregate below.
  std::vector<EmuRunResult> sessions;
  double virtual_elapsed = 0.0;
  TransportStats transport;
  // Demux rejections, counted before any runtime is involved (a rejected
  // frame is attributed to *no* session).
  std::size_t demux_unroutable = 0;        // header peek failed
  std::size_t demux_session_mismatch = 0;  // embedded id != header id
  std::size_t demux_unknown_session = 0;   // no runtime for that session id
};

class SessionMux {
 public:
  /// `transport.nodes()` must equal `graph.size()`; every session runs the
  /// same session graph (same source/destination/forwarder set).
  SessionMux(const routing::SessionGraph& graph, Transport& transport,
             const MuxConfig& config);

  /// Installs one transmit rate per local node, identically in every
  /// session (oracle mode; the emulated channel is not capacity-coupled
  /// across sessions — see DESIGN.md §16).
  void install_rates(const std::vector<double>& rates_bytes_per_s);

  /// Hands the rate-control outcome to every session's source for in-band
  /// price flooding (distributed mode).
  void install_price_table(std::vector<double> rates_bytes_per_s,
                           std::vector<double> lambda,
                           std::vector<double> beta, int iterations);

  /// Observes protocol + transport events across all sessions; per-session
  /// events carry their session id, transport-level events (send/deliver)
  /// carry session 0 because a byte count alone names no session.  The mux
  /// serializes calls; the sink itself need not be thread-safe.
  void set_metric_sink(std::function<void(const protocols::MetricEvent&)> sink);

  /// Observes packet-lifecycle spans across all sessions (each event
  /// carries its session id).  Serialized like the metric sink.
  void set_span_sink(std::function<void(const obs::SpanEvent&)> sink);

  /// Blocks until every session finishes or the horizon expires.
  MuxRunResult run();

  /// The wire session id session ordinal `session` runs under.
  std::uint32_t session_id_of(int session) const;

  EmuNode& node(int session, int local);

  /// Demux verdict for one received buffer, exposed for tests (fuzzable
  /// without sockets).  kDeliver fills `session` with the header session id;
  /// the caller still maps it to a runtime (or counts unknown-session).
  enum class DemuxDecision { kDeliver, kUnroutable, kSessionMismatch };
  static DemuxDecision classify(std::span<const std::uint8_t> bytes,
                                std::uint32_t* session);

 private:
  class MuxTap;

  /// Routes one received frame on node `node` to the owning session's
  /// runtime; called from the worker thread that owns the node.
  void dispatch(double now, int node, int from,
                std::span<const std::uint8_t> bytes);
  /// Drains node `node`'s transport queue, then advances every session's
  /// runtime at that node — the mux analogue of EmuNode::step.
  void drain_and_step(double now, int node, bool drain);
  bool all_completed() const;
  bool run_threaded(vtime::Clock& clock, double tick, double horizon,
                    int shards);
  bool run_deterministic(vtime::DeterministicClock& clock, double tick,
                         double horizon);
  EmuRunResult session_result(int session, double virtual_elapsed) const;

  const routing::SessionGraph& graph_;
  Transport& transport_;
  MuxConfig config_;
  /// nodes_[session][local].
  std::vector<std::vector<std::unique_ptr<EmuNode>>> nodes_;
  std::unordered_map<std::uint32_t, int> session_index_;  // wire id -> ordinal
  std::function<void(const protocols::MetricEvent&)> sink_;
  std::function<void(const obs::SpanEvent&)> span_sink_;

  std::atomic<std::size_t> demux_unroutable_{0};
  std::atomic<std::size_t> demux_session_mismatch_{0};
  std::atomic<std::size_t> demux_unknown_session_{0};
};

}  // namespace omnc::emu

// Transport seam of the Drift-substitute emulation runtime.
//
// The slot simulator calls protocol methods in-process; the emulation layer
// instead moves *serialized wire frames* (src/wire) between nodes through a
// Transport.  A Transport is a broadcast channel: send(from, bytes) offers
// one frame to every other node, and each copy independently survives or
// dies (Bernoulli loss on the loopback backend, real socket behaviour on
// UDP).  Receivers drain their inbox with poll(); the transport never
// interprets frame contents.
//
// Threading contract: send(i, ...) and poll(i, ...) are called only from
// node i's thread, but different nodes call concurrently; implementations
// must be safe under that interleaving.  Observer callbacks may fire on any
// node's thread — observers serialize internally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "time/clock.h"

namespace omnc::emu {

/// Channel-level counters, aggregated over all nodes.
struct TransportStats {
  std::size_t frames_sent = 0;       // broadcasts offered to the channel
  std::size_t bytes_sent = 0;        // serialized bytes of those broadcasts
  std::size_t copies_dropped = 0;    // per-receiver copies lost in transit
  std::size_t copies_delivered = 0;  // per-receiver copies handed to poll()
  std::size_t datagrams_truncated = 0;  // UDP: frame larger than recv buffer
  std::size_t socket_errors = 0;        // UDP: unexpected recvfrom failures
  std::size_t eintr_retries = 0;        // UDP: recv/send retried after EINTR
  std::size_t rcvbuf_effective_bytes = 0;  // UDP: granted SO_RCVBUF (min
                                           // across sockets); 0 elsewhere
};

/// One fault-injection decision, as emitted by FaultTransport.  `link_copy`
/// is the 0-based arrival index on the directed link (from, to) the decision
/// applied to — a seed-deterministic coordinate, unlike wall time.
struct FaultRecord {
  enum class Kind : std::uint8_t {
    kLoss,       // Gilbert–Elliott channel killed the copy
    kReorder,    // the copy was held back past later arrivals
    kDuplicate,  // an extra copy was delivered
    kPartition,  // the copy crossed a scheduled partition and was cut
    kBlackout,   // the copy touched a blacked-out (crashed) node
  };
  Kind kind = Kind::kLoss;
  int from = -1;
  int to = -1;
  std::size_t bytes = 0;
  std::uint64_t link_copy = 0;
  double time = 0.0;  // injector virtual seconds since run start
  /// The affected frame's bytes, when the injector still holds them (valid
  /// only for the duration of the observer callback; may be empty).  Lets
  /// the obs layer peek the trace tag of a killed copy and close its span.
  std::span<const std::uint8_t> frame;
};

/// Taps every channel event; used to route transport activity into the obs
/// layer (trace families emu_send / emu_drop / emu_deliver and the
/// emu_fault_* family from FaultTransport).  Callbacks may arrive
/// concurrently from different node threads.
class TransportObserver {
 public:
  virtual ~TransportObserver() = default;
  virtual void on_send(int from, std::size_t bytes) = 0;
  /// A per-receiver copy died in transit.  `frame` is the copy's bytes,
  /// valid only for the duration of the callback — observers peek (e.g. the
  /// wire trace tag, to emit a span drop event) but must not keep the span.
  virtual void on_drop(int from, int to,
                       std::span<const std::uint8_t> frame) = 0;
  virtual void on_deliver(int from, int to, std::size_t bytes) = 0;
  /// A fault injector made a decision (loss/reorder/dup/partition/blackout).
  virtual void on_fault(const FaultRecord& record) { (void)record; }
  /// A datagram arrived larger than the receive buffer and was discarded
  /// whole instead of being fed to the parser as a sheared prefix.
  virtual void on_truncated(int from, int to, std::size_t claimed_bytes) {
    (void)from;
    (void)to;
    (void)claimed_bytes;
  }
};

/// Non-blocking readiness set over a subset of a transport's nodes, created
/// by Transport::make_readiness.  A sharded run loop (the session mux) owns
/// one readiness object per worker thread and asks it each tick which of the
/// shard's sockets have data pending, skipping the poll syscall on idle ones
/// — with hundreds of nodes the per-tick cost becomes one epoll_wait instead
/// of one recv per socket.  Purely an optimization: polling every node
/// without a readiness object is always correct.
class TransportReadiness {
 public:
  virtual ~TransportReadiness() = default;

  /// Appends the watched node ids that currently have data pending to
  /// `ready` (without clearing it) and returns true.  Returns false when
  /// readiness could not be determined this round — the caller must then
  /// poll every watched node.  Never blocks.
  virtual bool poll_ready(std::vector<int>* ready) = 0;
};

class Transport {
 public:
  /// Receives one delivered frame; `from` is the sender's node index.
  using Handler =
      std::function<void(int from, std::span<const std::uint8_t> bytes)>;

  virtual ~Transport() = default;

  virtual int nodes() const = 0;

  /// Broadcasts one serialized frame from node `from` to every other node.
  virtual void send(int from, std::span<const std::uint8_t> frame) = 0;

  /// Delivers every frame currently due for node `to`, in arrival order.
  /// Returns the number delivered.  The handler may call send() (frame
  /// forwarding) — implementations must not hold locks across it.
  virtual std::size_t poll(int to, const Handler& handler) = 0;

  virtual TransportStats stats() const = 0;

  /// Attaches the run's virtual clock (the harness calls this before any
  /// traffic; nullptr detaches).  All time-dependent transport behaviour —
  /// delay queues, fault schedules, event timestamps — reads this clock, so
  /// every layer of a run agrees on "now".  Decorators forward to the
  /// transport they wrap.
  virtual void bind_clock(const vtime::Clock* clock) { clock_ = clock; }

  /// Builds a readiness set watching `nodes` (each owned by the calling
  /// shard), or nullptr when the transport has no cheap readiness signal —
  /// the base implementation — in which case callers poll every node each
  /// tick.  The returned object is only used from the creating thread and
  /// must not outlive the transport.
  virtual std::unique_ptr<TransportReadiness> make_readiness(
      std::span<const int> nodes) {
    (void)nodes;
    return nullptr;
  }

  /// `observer` must outlive the transport (or be reset to nullptr first).
  void set_observer(TransportObserver* observer) { observer_ = observer; }

 protected:
  /// Virtual seconds since run start; 0.0 when no clock is bound (traffic
  /// outside a harness run, e.g. direct transport unit tests).
  double clock_now() const { return clock_ ? clock_->now() : 0.0; }

  TransportObserver* observer_ = nullptr;
  const vtime::Clock* clock_ = nullptr;
};

}  // namespace omnc::emu

#include "emu/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/assert.h"
#include "common/logging.h"
#include "wire/frame.h"

namespace omnc::emu {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(int nodes, UdpConfig config)
    : n_(nodes), config_(config) {
  OMNC_ASSERT(n_ > 0);
  fds_.resize(static_cast<std::size_t>(n_), -1);
  ports_.resize(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw std::runtime_error("UdpTransport: socket() failed");
    fds_[static_cast<std::size_t>(i)] = fd;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      throw std::runtime_error("UdpTransport: O_NONBLOCK failed");
    }
    const int set_rc =
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config_.recv_buffer_bytes,
                     sizeof(config_.recv_buffer_bytes));
    // Verify what was actually granted: the kernel clamps silently (and
    // Linux reports the doubled bookkeeping value), so receive-drop
    // mysteries need the effective size, not the request.
    int granted = 0;
    socklen_t granted_len = sizeof(granted);
    if (::getsockopt(fd, SOL_SOCKET, SO_RCVBUF, &granted, &granted_len) != 0) {
      granted = 0;
    }
    if (set_rc != 0 || granted < config_.recv_buffer_bytes) {
      OMNC_LOG_WARN("UdpTransport: SO_RCVBUF request %d granted %d on node %d",
                    config_.recv_buffer_bytes, granted, i);
    }
    const std::size_t effective =
        granted > 0 ? static_cast<std::size_t>(granted) : 0;
    rcvbuf_effective_ = i == 0 ? effective
                               : std::min(rcvbuf_effective_, effective);
    sockaddr_in addr = loopback_addr(0);  // ephemeral: the kernel picks
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw std::runtime_error("UdpTransport: bind(127.0.0.1:0) failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      throw std::runtime_error("UdpTransport: getsockname failed");
    }
    ports_[static_cast<std::size_t>(i)] = ntohs(bound.sin_port);
    port_to_node_[ports_[static_cast<std::size_t>(i)]] = i;
  }
  recv_buffers_.resize(static_cast<std::size_t>(n_));
  for (auto& buffer : recv_buffers_) buffer.resize(config_.recv_chunk_bytes);
}

UdpTransport::~UdpTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::uint16_t UdpTransport::port_of(int node) const {
  OMNC_ASSERT(node >= 0 && node < n_);
  return ports_[static_cast<std::size_t>(node)];
}

void UdpTransport::send(int from, std::span<const std::uint8_t> frame) {
  OMNC_ASSERT(from >= 0 && from < n_);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (observer_ != nullptr) observer_->on_send(from, frame.size());
  const int fd = fds_[static_cast<std::size_t>(from)];
  for (int to = 0; to < n_; ++to) {
    if (to == from) continue;
    const sockaddr_in addr =
        loopback_addr(ports_[static_cast<std::size_t>(to)]);
    const ssize_t sent =
        ::sendto(fd, frame.data(), frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (sent < 0 || static_cast<std::size_t>(sent) != frame.size()) {
      // EWOULDBLOCK / ENOBUFS on a saturated loopback: the copy is lost,
      // which is the same contract a lossy channel gives the protocol.
      copies_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) observer_->on_drop(from, to, frame);
    }
  }
}

std::size_t UdpTransport::poll(int to, const Handler& handler) {
  OMNC_ASSERT(to >= 0 && to < n_);
  const int fd = fds_[static_cast<std::size_t>(to)];
  // One datagram = one frame; wire::kMaxFrameBytes bounds the sender side,
  // but a UDP datagram cannot exceed 64 KiB anyway.  MSG_TRUNC makes
  // recvfrom report the datagram's *full* length even when it exceeds the
  // buffer, so oversized datagrams are detectable instead of silently
  // arriving as a sheared prefix that happens to parse as garbage.  The
  // buffer is this node's persistent one — no allocation per poll.
  std::vector<std::uint8_t>& buffer = recv_buffers_[static_cast<std::size_t>(to)];
  std::size_t delivered = 0;
  for (;;) {
    sockaddr_in src{};
    socklen_t len = sizeof(src);
    const ssize_t got =
        ::recvfrom(fd, buffer.data(), buffer.size(), MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&src), &len);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      // Unexpected socket error: count it and log at most once per
      // error_log_interval_s of *virtual* time, so a dead socket is visible
      // rather than indistinguishable from silence.  The window runs on the
      // bound vtime::Clock — under warp/det clocks a wall-time window would
      // either flood (warp compresses hours into seconds) or never reopen.
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      const double now = clock_now();
      double window = next_error_log_.load(std::memory_order_relaxed);
      if (now >= window &&
          next_error_log_.compare_exchange_strong(
              window, now + config_.error_log_interval_s,
              std::memory_order_relaxed)) {
        OMNC_LOG_WARN(
            "UdpTransport: recvfrom failed on node %d: %s "
            "(rate-limited; further errors counted in stats)",
            to, std::strerror(errno));
      }
      break;  // stop draining this round, keep running
    }
    const auto it = port_to_node_.find(ntohs(src.sin_port));
    const int from = it != port_to_node_.end() ? it->second : -1;
    if (static_cast<std::size_t>(got) > buffer.size()) {
      // Truncated datagram: the kernel kept only buffer.size() bytes.  Feed
      // nothing to the parser — a sheared prefix is indistinguishable from
      // corruption — and count it as its own failure reason.
      datagrams_truncated_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) {
        observer_->on_truncated(from, to, static_cast<std::size_t>(got));
      }
      continue;
    }
    if (from < 0) {
      // A stray datagram from outside the harness; drop it.
      copies_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) {
        observer_->on_drop(-1, to,
                           std::span<const std::uint8_t>(
                               buffer.data(), static_cast<std::size_t>(got)));
      }
      continue;
    }
    copies_delivered_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) {
      observer_->on_deliver(from, to, static_cast<std::size_t>(got));
    }
    ++delivered;
    handler(from,
            std::span<const std::uint8_t>(buffer.data(),
                                          static_cast<std::size_t>(got)));
  }
  return delivered;
}

TransportStats UdpTransport::stats() const {
  TransportStats stats;
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.copies_dropped = copies_dropped_.load(std::memory_order_relaxed);
  stats.copies_delivered = copies_delivered_.load(std::memory_order_relaxed);
  stats.datagrams_truncated =
      datagrams_truncated_.load(std::memory_order_relaxed);
  stats.socket_errors = socket_errors_.load(std::memory_order_relaxed);
  stats.rcvbuf_effective_bytes = rcvbuf_effective_;
  return stats;
}

}  // namespace omnc::emu

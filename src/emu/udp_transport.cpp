// recvmmsg/sendmmsg need _GNU_SOURCE on glibc; g++ predefines it, but the
// build runs with extensions off, so be explicit for other toolchains.
#if defined(__linux__) && !defined(_GNU_SOURCE)
#define _GNU_SOURCE
#endif

#include "emu/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/assert.h"
#include "common/logging.h"
#include "wire/frame.h"

namespace omnc::emu {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

#if defined(__linux__)

/// Epoll readiness over a shard's sockets (level-triggered, zero-timeout
/// waits): a socket with queued datagrams is reported every round until its
/// poll() drains it, so a partial drain can never strand data invisibly.
class EpollReadiness final : public TransportReadiness {
 public:
  EpollReadiness(int epfd, std::size_t watched)
      : epfd_(epfd), events_(std::max<std::size_t>(watched, 1)) {}
  ~EpollReadiness() override { ::close(epfd_); }

  EpollReadiness(const EpollReadiness&) = delete;
  EpollReadiness& operator=(const EpollReadiness&) = delete;

  bool poll_ready(std::vector<int>* ready) override {
    for (;;) {
      const int got = ::epoll_wait(epfd_, events_.data(),
                                   static_cast<int>(events_.size()), 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return false;  // caller falls back to polling every node
      }
      for (int i = 0; i < got; ++i) {
        ready->push_back(static_cast<int>(events_[static_cast<std::size_t>(i)]
                                              .data.u32));
      }
      return true;
    }
  }

 private:
  int epfd_;
  std::vector<epoll_event> events_;
};

#endif  // defined(__linux__)

}  // namespace

#if defined(__linux__)

struct UdpTransport::RecvBatch {
  std::vector<std::uint8_t> storage;  // batch_datagrams x recv_chunk_bytes
  std::vector<mmsghdr> headers;
  std::vector<iovec> iovs;
  std::vector<sockaddr_in> sources;

  void init(int batch, std::size_t chunk_bytes) {
    const std::size_t n = static_cast<std::size_t>(batch);
    storage.resize(n * chunk_bytes);
    headers.resize(n);
    iovs.resize(n);
    sources.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = storage.data() + i * chunk_bytes;
      iovs[i].iov_len = chunk_bytes;
      headers[i] = mmsghdr{};
      headers[i].msg_hdr.msg_name = &sources[i];
      headers[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      headers[i].msg_hdr.msg_iov = &iovs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
    }
  }

  /// recvmmsg overwrites namelen/flags per call; restore before reuse.
  void rearm() {
    for (std::size_t i = 0; i < headers.size(); ++i) {
      headers[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      headers[i].msg_hdr.msg_flags = 0;
      headers[i].msg_len = 0;
    }
  }
};

struct UdpTransport::SendBatch {
  std::vector<mmsghdr> headers;  // one per peer, sharing the frame iovec
  std::vector<iovec> iovs;
  std::vector<sockaddr_in> dests;
  std::vector<int> peers;  // node id per slot, for drop attribution

  void init(int peers_max) {
    const std::size_t n = static_cast<std::size_t>(peers_max);
    headers.resize(n);
    iovs.resize(n);
    dests.resize(n);
    peers.resize(n);
  }
};

#else

struct UdpTransport::RecvBatch {};
struct UdpTransport::SendBatch {};

#endif  // defined(__linux__)

UdpTransport::UdpTransport(int nodes, UdpConfig config)
    : n_(nodes), config_(config) {
  OMNC_ASSERT(n_ > 0);
  OMNC_ASSERT(config_.batch_datagrams > 0);
  fds_.resize(static_cast<std::size_t>(n_), -1);
  ports_.resize(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw std::runtime_error("UdpTransport: socket() failed");
    fds_[static_cast<std::size_t>(i)] = fd;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      throw std::runtime_error("UdpTransport: O_NONBLOCK failed");
    }
    const int set_rc =
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config_.recv_buffer_bytes,
                     sizeof(config_.recv_buffer_bytes));
    // Verify what was actually granted: the kernel clamps silently (and
    // Linux reports the doubled bookkeeping value), so receive-drop
    // mysteries need the effective size, not the request.
    int granted = 0;
    socklen_t granted_len = sizeof(granted);
    if (::getsockopt(fd, SOL_SOCKET, SO_RCVBUF, &granted, &granted_len) != 0) {
      granted = 0;
    }
    if (set_rc != 0 || granted < config_.recv_buffer_bytes) {
      OMNC_LOG_WARN("UdpTransport: SO_RCVBUF request %d granted %d on node %d",
                    config_.recv_buffer_bytes, granted, i);
    }
    const std::size_t effective =
        granted > 0 ? static_cast<std::size_t>(granted) : 0;
    rcvbuf_effective_ = i == 0 ? effective
                               : std::min(rcvbuf_effective_, effective);
    sockaddr_in addr = loopback_addr(0);  // ephemeral: the kernel picks
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw std::runtime_error("UdpTransport: bind(127.0.0.1:0) failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      throw std::runtime_error("UdpTransport: getsockname failed");
    }
    ports_[static_cast<std::size_t>(i)] = ntohs(bound.sin_port);
    port_to_node_[ports_[static_cast<std::size_t>(i)]] = i;
  }
#if defined(__linux__)
  recv_batches_.resize(static_cast<std::size_t>(n_));
  send_batches_.resize(static_cast<std::size_t>(n_));
  for (auto& batch : recv_batches_) {
    batch.init(config_.batch_datagrams, config_.recv_chunk_bytes);
  }
  for (auto& batch : send_batches_) batch.init(std::max(n_ - 1, 1));
#else
  recv_buffers_.resize(static_cast<std::size_t>(n_));
  for (auto& buffer : recv_buffers_) buffer.resize(config_.recv_chunk_bytes);
#endif
}

UdpTransport::~UdpTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::uint16_t UdpTransport::port_of(int node) const {
  OMNC_ASSERT(node >= 0 && node < n_);
  return ports_[static_cast<std::size_t>(node)];
}

std::unique_ptr<TransportReadiness> UdpTransport::make_readiness(
    std::span<const int> nodes) {
#if defined(__linux__)
  const int epfd = ::epoll_create1(0);
  if (epfd < 0) return nullptr;
  for (const int node : nodes) {
    OMNC_ASSERT(node >= 0 && node < n_);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u32 = static_cast<std::uint32_t>(node);
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fds_[static_cast<std::size_t>(node)],
                    &event) != 0) {
      ::close(epfd);
      return nullptr;
    }
  }
  return std::make_unique<EpollReadiness>(epfd, nodes.size());
#else
  (void)nodes;
  return nullptr;
#endif
}

void UdpTransport::send(int from, std::span<const std::uint8_t> frame) {
  OMNC_ASSERT(from >= 0 && from < n_);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (observer_ != nullptr) observer_->on_send(from, frame.size());
  const int fd = fds_[static_cast<std::size_t>(from)];
#if defined(__linux__)
  // One sendmmsg per broadcast: every peer's copy shares the frame bytes as
  // its single iovec, so a fan-out to n-1 neighbours is one syscall instead
  // of n-1.  send(from) runs only on node `from`'s thread (Transport
  // contract), so the per-node scratch needs no lock.
  SendBatch& batch = send_batches_[static_cast<std::size_t>(from)];
  int targets = 0;
  for (int to = 0; to < n_; ++to) {
    if (to == from) continue;
    const std::size_t slot = static_cast<std::size_t>(targets);
    batch.dests[slot] = loopback_addr(ports_[static_cast<std::size_t>(to)]);
    batch.peers[slot] = to;
    batch.iovs[slot].iov_base = const_cast<std::uint8_t*>(frame.data());
    batch.iovs[slot].iov_len = frame.size();
    batch.headers[slot] = mmsghdr{};
    batch.headers[slot].msg_hdr.msg_name = &batch.dests[slot];
    batch.headers[slot].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    batch.headers[slot].msg_hdr.msg_iov = &batch.iovs[slot];
    batch.headers[slot].msg_hdr.msg_iovlen = 1;
    ++targets;
  }
  int done = 0;
  while (done < targets) {
    const int sent =
        ::sendmmsg(fd, batch.headers.data() + done, targets - done, 0);
    if (sent < 0 && errno == EINTR) {
      eintr_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (sent <= 0) {
      // The kernel refused the rest of the batch (ENOBUFS / EWOULDBLOCK on
      // a saturated loopback): those copies are lost, which is the same
      // contract a lossy channel gives the protocol.
      for (int i = done; i < targets; ++i) {
        copies_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (observer_ != nullptr) {
          observer_->on_drop(from, batch.peers[static_cast<std::size_t>(i)],
                             frame);
        }
      }
      return;
    }
    for (int i = done; i < done + sent; ++i) {
      const std::size_t slot = static_cast<std::size_t>(i);
      if (batch.headers[slot].msg_len != frame.size()) {
        copies_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (observer_ != nullptr) {
          observer_->on_drop(from, batch.peers[slot], frame);
        }
      }
    }
    done += sent;
  }
#else
  for (int to = 0; to < n_; ++to) {
    if (to == from) continue;
    const sockaddr_in addr =
        loopback_addr(ports_[static_cast<std::size_t>(to)]);
    ssize_t sent = -1;
    for (;;) {
      sent = ::sendto(fd, frame.data(), frame.size(), 0,
                      reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      if (sent < 0 && errno == EINTR) {
        eintr_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      break;
    }
    if (sent < 0 || static_cast<std::size_t>(sent) != frame.size()) {
      // EWOULDBLOCK / ENOBUFS on a saturated loopback: the copy is lost,
      // which is the same contract a lossy channel gives the protocol.
      copies_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) observer_->on_drop(from, to, frame);
    }
  }
#endif
}

void UdpTransport::accept_datagram(int to, std::uint16_t src_port,
                                   std::size_t claimed,
                                   std::span<const std::uint8_t> bytes,
                                   const Handler& handler,
                                   std::size_t* delivered) {
  const auto it = port_to_node_.find(src_port);
  const int from = it != port_to_node_.end() ? it->second : -1;
  if (claimed > bytes.size()) {
    // Truncated datagram: the kernel kept only bytes.size() of it.  Feed
    // nothing to the parser — a sheared prefix is indistinguishable from
    // corruption — and count it as its own failure reason.
    datagrams_truncated_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) observer_->on_truncated(from, to, claimed);
    return;
  }
  if (from < 0) {
    // A stray datagram from outside the harness; drop it.
    copies_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) {
      observer_->on_drop(-1, to, bytes.first(claimed));
    }
    return;
  }
  copies_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (observer_ != nullptr) observer_->on_deliver(from, to, claimed);
  ++*delivered;
  handler(from, bytes.first(claimed));
}

void UdpTransport::record_recv_error(int to, int err) {
  // Count it and log at most once per error_log_interval_s of *virtual*
  // time, so a dead socket is visible rather than indistinguishable from
  // silence.  The window runs on the bound vtime::Clock — under warp/det
  // clocks a wall-time window would either flood (warp compresses hours
  // into seconds) or never reopen.
  socket_errors_.fetch_add(1, std::memory_order_relaxed);
  const double now = clock_now();
  double window = next_error_log_.load(std::memory_order_relaxed);
  if (now >= window &&
      next_error_log_.compare_exchange_strong(
          window, now + config_.error_log_interval_s,
          std::memory_order_relaxed)) {
    OMNC_LOG_WARN(
        "UdpTransport: recv failed on node %d: %s "
        "(rate-limited; further errors counted in stats)",
        to, std::strerror(err));
  }
}

bool UdpTransport::inject_eintr() {
  if (config_.debug_eintr_every <= 0) return false;
  const std::uint64_t attempt =
      recv_attempts_.fetch_add(1, std::memory_order_relaxed) + 1;
  return attempt % static_cast<std::uint64_t>(config_.debug_eintr_every) == 0;
}

std::size_t UdpTransport::poll(int to, const Handler& handler) {
  OMNC_ASSERT(to >= 0 && to < n_);
  const int fd = fds_[static_cast<std::size_t>(to)];
  std::size_t delivered = 0;
#if defined(__linux__)
  // Batched drain: one recvmmsg moves up to batch_datagrams frames out of
  // the kernel per syscall.  MSG_TRUNC makes each msg_len report the
  // datagram's *full* length even when it exceeds its buffer slice, so
  // oversized datagrams are detectable instead of silently arriving as a
  // sheared prefix that happens to parse as garbage.  The scratch is this
  // node's persistent batch — no allocation per poll.
  RecvBatch& batch = recv_batches_[static_cast<std::size_t>(to)];
  const unsigned vlen = static_cast<unsigned>(batch.headers.size());
  for (;;) {
    int got = -1;
    if (inject_eintr()) {
      errno = EINTR;
    } else {
      batch.rearm();
      got = ::recvmmsg(fd, batch.headers.data(), vlen, MSG_TRUNC, nullptr);
    }
    if (got < 0) {
      // Capture errno before any other call can clobber it — clock_now()
      // and the logging CAS below both run library code.
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) break;
      if (err == EINTR) {
        // A signal interrupted the drain; the queued datagrams are still
        // there.  Treating this as "drain complete" would strand them until
        // the next tick — retry instead.
        eintr_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      record_recv_error(to, err);
      break;  // stop draining this round, keep running
    }
    for (int i = 0; i < got; ++i) {
      const std::size_t slot = static_cast<std::size_t>(i);
      accept_datagram(
          to, ntohs(batch.sources[slot].sin_port),
          static_cast<std::size_t>(batch.headers[slot].msg_len),
          std::span<const std::uint8_t>(
              static_cast<const std::uint8_t*>(batch.iovs[slot].iov_base),
              batch.iovs[slot].iov_len),
          handler, &delivered);
    }
    // A short batch means the queue was empty when recvmmsg returned; a
    // full one may have more behind it.
    if (static_cast<unsigned>(got) < vlen) break;
  }
#else
  // Portable fallback: one datagram per recvfrom.
  std::vector<std::uint8_t>& buffer =
      recv_buffers_[static_cast<std::size_t>(to)];
  for (;;) {
    sockaddr_in src{};
    socklen_t len = sizeof(src);
    ssize_t got = -1;
    if (inject_eintr()) {
      errno = EINTR;
    } else {
      got = ::recvfrom(fd, buffer.data(), buffer.size(), MSG_TRUNC,
                       reinterpret_cast<sockaddr*>(&src), &len);
    }
    if (got < 0) {
      const int err = errno;  // capture before clock_now()/CAS can clobber
      if (err == EAGAIN || err == EWOULDBLOCK) break;
      if (err == EINTR) {
        eintr_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      record_recv_error(to, err);
      break;  // stop draining this round, keep running
    }
    accept_datagram(to, ntohs(src.sin_port), static_cast<std::size_t>(got),
                    std::span<const std::uint8_t>(buffer.data(), buffer.size()),
                    handler, &delivered);
  }
#endif
  return delivered;
}

TransportStats UdpTransport::stats() const {
  TransportStats stats;
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.copies_dropped = copies_dropped_.load(std::memory_order_relaxed);
  stats.copies_delivered = copies_delivered_.load(std::memory_order_relaxed);
  stats.datagrams_truncated =
      datagrams_truncated_.load(std::memory_order_relaxed);
  stats.socket_errors = socket_errors_.load(std::memory_order_relaxed);
  stats.eintr_retries = eintr_retries_.load(std::memory_order_relaxed);
  stats.rcvbuf_effective_bytes = rcvbuf_effective_;
  return stats;
}

}  // namespace omnc::emu

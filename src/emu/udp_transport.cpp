#include "emu/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "common/assert.h"
#include "wire/frame.h"

namespace omnc::emu {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(int nodes, UdpConfig config)
    : n_(nodes), config_(config) {
  OMNC_ASSERT(n_ > 0);
  fds_.resize(static_cast<std::size_t>(n_), -1);
  ports_.resize(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw std::runtime_error("UdpTransport: socket() failed");
    fds_[static_cast<std::size_t>(i)] = fd;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      throw std::runtime_error("UdpTransport: O_NONBLOCK failed");
    }
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config_.recv_buffer_bytes,
                 sizeof(config_.recv_buffer_bytes));
    sockaddr_in addr = loopback_addr(0);  // ephemeral: the kernel picks
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw std::runtime_error("UdpTransport: bind(127.0.0.1:0) failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      throw std::runtime_error("UdpTransport: getsockname failed");
    }
    ports_[static_cast<std::size_t>(i)] = ntohs(bound.sin_port);
    port_to_node_[ports_[static_cast<std::size_t>(i)]] = i;
  }
}

UdpTransport::~UdpTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::uint16_t UdpTransport::port_of(int node) const {
  OMNC_ASSERT(node >= 0 && node < n_);
  return ports_[static_cast<std::size_t>(node)];
}

void UdpTransport::send(int from, std::span<const std::uint8_t> frame) {
  OMNC_ASSERT(from >= 0 && from < n_);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (observer_ != nullptr) observer_->on_send(from, frame.size());
  const int fd = fds_[static_cast<std::size_t>(from)];
  for (int to = 0; to < n_; ++to) {
    if (to == from) continue;
    const sockaddr_in addr =
        loopback_addr(ports_[static_cast<std::size_t>(to)]);
    const ssize_t sent =
        ::sendto(fd, frame.data(), frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (sent < 0 || static_cast<std::size_t>(sent) != frame.size()) {
      // EWOULDBLOCK / ENOBUFS on a saturated loopback: the copy is lost,
      // which is the same contract a lossy channel gives the protocol.
      copies_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) observer_->on_drop(from, to, frame.size());
    }
  }
}

std::size_t UdpTransport::poll(int to, const Handler& handler) {
  OMNC_ASSERT(to >= 0 && to < n_);
  const int fd = fds_[static_cast<std::size_t>(to)];
  // One datagram = one frame; wire::kMaxFrameBytes bounds the sender side,
  // but a UDP datagram cannot exceed 64 KiB anyway.
  std::vector<std::uint8_t> buffer(65536);
  std::size_t delivered = 0;
  for (;;) {
    sockaddr_in src{};
    socklen_t len = sizeof(src);
    const ssize_t got =
        ::recvfrom(fd, buffer.data(), buffer.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &len);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      break;  // unexpected socket error: stop draining, keep running
    }
    const auto it = port_to_node_.find(ntohs(src.sin_port));
    if (it == port_to_node_.end()) {
      // A stray datagram from outside the harness; drop it.
      copies_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) {
        observer_->on_drop(-1, to, static_cast<std::size_t>(got));
      }
      continue;
    }
    copies_delivered_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) {
      observer_->on_deliver(it->second, to, static_cast<std::size_t>(got));
    }
    ++delivered;
    handler(it->second,
            std::span<const std::uint8_t>(buffer.data(),
                                          static_cast<std::size_t>(got)));
  }
  return delivered;
}

TransportStats UdpTransport::stats() const {
  TransportStats stats;
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.copies_dropped = copies_dropped_.load(std::memory_order_relaxed);
  stats.copies_delivered = copies_delivered_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace omnc::emu

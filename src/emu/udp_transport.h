// Real-socket transport: every node owns a non-blocking UDP socket bound to
// an ephemeral port on 127.0.0.1, and a broadcast is one batched sendmmsg()
// (one sendto() per peer on non-Linux hosts).
//
// Ephemeral ports (bind to port 0, read the assignment back) keep parallel
// test runs from colliding — `ctest -j` safe by construction.  Senders are
// identified by their bound source port, so receivers need no framing beyond
// the wire header itself.  Loss on loopback is rare but real (socket-buffer
// overflow); overflow shows up as a drop, exactly like a full inbox on the
// loopback transport.
//
// Sockets are per *node*, never per session: the session mux (DESIGN.md §16)
// runs many sessions' runtimes behind each socket, so the receive path
// drains whole batches per syscall (recvmmsg on Linux) and make_readiness()
// hands sharded run loops an epoll set that skips idle sockets entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "emu/transport.h"

namespace omnc::emu {

struct UdpConfig {
  /// SO_RCVBUF request per socket; loopback bursts of coded packets
  /// overflow the default on some kernels.  The granted size is read back
  /// with getsockopt and surfaced in stats().rcvbuf_effective_bytes (a
  /// shortfall is logged once), so receive-drop mysteries are diagnosable.
  int recv_buffer_bytes = 1 << 20;

  /// Per-datagram receive buffer for poll().  A datagram larger than this
  /// is detected via MSG_TRUNC and discarded whole (counted in
  /// stats().datagrams_truncated and reported through
  /// TransportObserver::on_truncated) instead of feeding a sheared prefix
  /// to the frame parser.  The default covers the largest UDP datagram;
  /// tests shrink it to exercise the truncation path.
  std::size_t recv_chunk_bytes = 65536;

  /// Datagrams moved per recvmmsg()/sendmmsg() syscall on Linux (the
  /// portable fallback moves one at a time regardless).  Each node's
  /// receive scratch holds batch_datagrams x recv_chunk_bytes bytes.
  int batch_datagrams = 32;

  /// Minimum virtual seconds between recvfrom-error log lines (the count in
  /// stats().socket_errors is always exact; only the logging is limited).
  double error_log_interval_s = 5.0;

  /// Test-only fault seam: when > 0, every debug_eintr_every-th receive
  /// syscall attempt fails with EINTR *instead of* touching the socket.
  /// Real signal delivery mid-drain is timing-dependent and unforceable in
  /// a unit test; this makes the retry path (a signal must not strand
  /// queued datagrams until the next tick) deterministic.  0 disables.
  int debug_eintr_every = 0;
};

class UdpTransport final : public Transport {
 public:
  /// Opens one bound socket per node; throws std::runtime_error when the
  /// loopback sockets cannot be created (no such environment is expected in
  /// CI, but the failure must be clean).
  explicit UdpTransport(int nodes, UdpConfig config = {});
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  int nodes() const override { return n_; }
  void send(int from, std::span<const std::uint8_t> frame) override;
  std::size_t poll(int to, const Handler& handler) override;
  TransportStats stats() const override;

  /// Epoll-backed readiness over `nodes` on Linux; nullptr elsewhere
  /// (callers fall back to polling every node — always correct).
  std::unique_ptr<TransportReadiness> make_readiness(
      std::span<const int> nodes) override;

  /// The ephemeral port node `node` is bound to (diagnostics / tests).
  std::uint16_t port_of(int node) const;

 private:
  /// Per-node batched-receive scratch (Linux): batch_datagrams slices of one
  /// contiguous buffer plus the mmsghdr/iovec/sockaddr arrays recvmmsg
  /// fills.  Built once at construction; poll(i) runs only on node i's
  /// thread (Transport contract), so no locking and no per-poll allocation.
  struct RecvBatch;
  /// Per-node batched-send scratch (Linux): one mmsghdr per peer, all
  /// sharing the frame's bytes as their single iovec.
  struct SendBatch;

  /// Common per-datagram accounting + delivery for both receive paths.
  void accept_datagram(int to, std::uint16_t src_port, std::size_t claimed,
                       std::span<const std::uint8_t> bytes,
                       const Handler& handler, std::size_t* delivered);
  /// Counts + rate-limit-logs an unexpected receive failure.  `err` is the
  /// errno captured immediately after the failed syscall — later calls in
  /// here (clock_now, CAS) may clobber the global.
  void record_recv_error(int to, int err);
  /// Test seam: true when this receive attempt should fail with EINTR.
  bool inject_eintr();

  int n_;
  UdpConfig config_;
  std::vector<int> fds_;
  std::vector<std::uint16_t> ports_;
  std::unordered_map<std::uint16_t, int> port_to_node_;
  /// Per-node datagram buffer for the portable (non-batched) receive path,
  /// allocated once at construction.
  std::vector<std::vector<std::uint8_t>> recv_buffers_;
  std::vector<RecvBatch> recv_batches_;
  std::vector<SendBatch> send_batches_;

  std::atomic<std::size_t> frames_sent_{0};
  std::atomic<std::size_t> bytes_sent_{0};
  std::atomic<std::size_t> copies_dropped_{0};
  std::atomic<std::size_t> copies_delivered_{0};
  std::atomic<std::size_t> datagrams_truncated_{0};
  std::atomic<std::size_t> socket_errors_{0};
  std::atomic<std::size_t> eintr_retries_{0};
  std::atomic<std::uint64_t> recv_attempts_{0};  // drives the EINTR injector
  /// Virtual time (bound clock) when the next recvfrom-error line may log.
  std::atomic<double> next_error_log_{0.0};
  std::size_t rcvbuf_effective_ = 0;  // min granted SO_RCVBUF across sockets
};

}  // namespace omnc::emu

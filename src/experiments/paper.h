// The numbers the paper reports, kept in one place so every bench can print
// paper-vs-measured rows (EXPERIMENTS.md records the comparison).
#pragma once

namespace omnc::experiments::paper {

// Sec. 5 / Fig. 2 (left): average throughput gains over ETX routing in the
// lossy network (mean link reception probability ~0.58).
inline constexpr double kLossyGainOmnc = 2.45;
inline constexpr double kLossyGainMore = 1.67;
inline constexpr double kLossyGainOldMore = 1.12;

// Fig. 2 (right): high link quality (mean reception probability ~0.91).
inline constexpr double kHighQualityGainOmnc = 1.12;
// MORE and oldMORE "actually perform worse than the ETX routing" (< 1).

// Fig. 3: overall average of per-node time-averaged queue sizes.
inline constexpr double kQueueOmnc = 0.63;
inline constexpr double kQueueMore = 22.0;

// Sec. 5: average number of rate-control iterations until convergence.
inline constexpr double kAvgIterations = 91.0;

// Sec. 4: accelerated coding speedup over the lookup-table baseline.
inline constexpr double kCodingSpeedupLow = 3.0;
inline constexpr double kCodingSpeedupHigh = 5.0;

// Experiment setup constants.
inline constexpr int kNodes = 300;
inline constexpr double kDensity = 6.0;
inline constexpr double kMeanLinkQualityLossy = 0.58;
inline constexpr double kMeanLinkQualityHigh = 0.91;
inline constexpr int kGenerationBlocks = 40;
inline constexpr int kBlockBytes = 1024;
inline constexpr int kMinHops = 4;
inline constexpr int kMaxHops = 10;
inline constexpr int kPaperSessions = 300;
inline constexpr double kPaperSessionSeconds = 800.0;
// Sec. 5 says the CBR rate (10^4 B/s) is half the channel capacity, while
// Fig. 1 quotes a 10^5 B/s capacity; we follow the CBR statement for the
// network experiments (C = 2 * 10^4) and Fig. 1's capacity for E1.
inline constexpr double kCbrBytesPerSecond = 1e4;
inline constexpr double kCapacityBytesPerSecond = 2e4;
inline constexpr double kFig1CapacityBytesPerSecond = 1e5;

}  // namespace omnc::experiments::paper

#include "experiments/probed.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace omnc::experiments {

ProbedSession probe_session(const SessionSpec& spec,
                            const ProbeModeConfig& config) {
  OMNC_ASSERT(spec.topology != nullptr);
  OMNC_ASSERT(spec.graph.size() >= 2);

  // Participants: the selected nodes of this session.
  const std::vector<net::NodeId>& participants = spec.graph.nodes;
  routing::ProbeConfig probe_config;
  probe_config.probes_per_node = config.probes_per_node;
  probe_config.mac = config.mac;
  const routing::ProbeReport report = routing::measure_link_qualities(
      *spec.topology, participants, probe_config, Rng(spec.seed ^ 0x9b0b));

  ProbedSession out;
  out.spec = spec;
  out.probe_seconds = report.duration_s;

  // Replace edge probabilities with the estimates; keep a floor so edges
  // whose probes all died stay usable (a deployment would re-probe).
  double error_sum = 0.0;
  std::size_t error_count = 0;
  auto index_of = [&](int local) {
    const net::NodeId id = spec.graph.node_id(local);
    for (std::size_t i = 0; i < participants.size(); ++i) {
      if (participants[i] == id) return i;
    }
    OMNC_ASSERT_MSG(false, "participant lookup failed");
    return std::size_t{0};
  };
  for (auto& edge : out.spec.graph.edges) {
    const std::size_t from = index_of(edge.from);
    const std::size_t to = index_of(edge.to);
    const double measured = report.estimate[from][to];
    error_sum += std::abs(measured - edge.p);
    ++error_count;
    edge.p = std::max(measured, 0.02);
  }
  out.mean_abs_error =
      error_count > 0 ? error_sum / static_cast<double>(error_count) : 0.0;
  return out;
}

}  // namespace omnc::experiments

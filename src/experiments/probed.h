// Honest-measurement mode: instead of handing protocols the PHY's true
// reception probabilities, run a probing campaign (Sec. 4 of the paper: "the
// reception probability p_ij is measured by broadcasting probing packets")
// over the session's selected nodes and rebuild the session graph from the
// estimates.  Rate control, MORE credits and the min-cost program then plan
// on noisy inputs exactly as a deployment would, while the simulation's
// losses still follow the true PHY.
#pragma once

#include "experiments/workload.h"
#include "routing/link_prober.h"

namespace omnc::experiments {

struct ProbeModeConfig {
  int probes_per_node = 200;
  net::MacConfig mac;  // channel the probes ride on
};

struct ProbedSession {
  /// The session with `graph` rebuilt from measured probabilities (same
  /// node set and edges; edge p replaced by the estimate, floored so no
  /// selected edge vanishes).
  SessionSpec spec;
  /// Virtual seconds the probing campaign took (protocol overhead).
  double probe_seconds = 0.0;
  /// Mean absolute estimation error over the session's directed links.
  double mean_abs_error = 0.0;
};

/// Probes the session's selected nodes and rebuilds its graph from the
/// estimates.
ProbedSession probe_session(const SessionSpec& spec,
                            const ProbeModeConfig& config);

}  // namespace omnc::experiments

#include "experiments/runner.h"

#include <atomic>
#include <mutex>

#include "common/assert.h"
#include "opt/sunicast.h"
#include "protocols/etx_routing.h"
#include "protocols/more.h"
#include "protocols/oldmore.h"
#include "protocols/omnc.h"

namespace omnc::experiments {
namespace {

double safe_gain(const protocols::SessionResult& coded,
                 const protocols::SessionResult& baseline) {
  if (baseline.throughput_bytes_per_s <= 0.0) return 0.0;
  return coded.throughput_per_generation / baseline.throughput_bytes_per_s;
}

}  // namespace

ComparisonResult run_comparison(const SessionSpec& spec,
                                const RunConfig& config) {
  OMNC_ASSERT(spec.topology != nullptr);
  ComparisonResult out;
  out.spec_summary = spec;
  out.spec_summary.topology.reset();

  protocols::ProtocolConfig base = config.protocol;
  base.seed = spec.seed;

  if (config.run_etx) {
    protocols::EtxRoutingProtocol etx(*spec.topology, spec.src, spec.dst,
                                      base);
    out.etx = etx.run();
  }
  if (config.run_omnc) {
    protocols::ProtocolConfig pc = base;
    pc.seed = spec.seed ^ 0x01;
    protocols::OmncProtocol omnc(*spec.topology, spec.graph, pc,
                                 protocols::OmncConfig{});
    out.omnc = omnc.run();
    out.gain_omnc = safe_gain(out.omnc, out.etx);
  }
  if (config.run_more) {
    protocols::ProtocolConfig pc = base;
    pc.seed = spec.seed ^ 0x02;
    protocols::MoreProtocol more(*spec.topology, spec.graph, pc,
                                 protocols::MoreConfig{});
    out.more = more.run();
    out.gain_more = safe_gain(out.more, out.etx);
  }
  if (config.run_oldmore) {
    protocols::ProtocolConfig pc = base;
    pc.seed = spec.seed ^ 0x03;
    protocols::OldMoreProtocol oldmore(*spec.topology, spec.graph, pc,
                                       protocols::OldMoreConfig{});
    out.oldmore = oldmore.run();
    out.gain_oldmore = safe_gain(out.oldmore, out.etx);
  }
  if (config.solve_lp) {
    const opt::SUnicastSolution lp = opt::solve_sunicast(
        spec.graph, config.protocol.mac.capacity_bytes_per_s);
    out.lp_gamma = lp.feasible ? lp.gamma : 0.0;
  }
  return out;
}

std::vector<ComparisonResult> run_all(
    const std::vector<SessionSpec>& sessions, const RunConfig& config,
    ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::vector<ComparisonResult> results(sessions.size());
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  auto run_one = [&](std::size_t i) {
    results[i] = run_comparison(sessions[i], config);
    const std::size_t finished = ++done;
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(finished, sessions.size());
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->parallel_for_each(sessions.size(), run_one);
  } else {
    for (std::size_t i = 0; i < sessions.size(); ++i) run_one(i);
  }
  return results;
}

}  // namespace omnc::experiments

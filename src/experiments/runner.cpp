#include "experiments/runner.h"

#include <atomic>
#include <mutex>

#include "common/assert.h"
#include "opt/sunicast.h"
#include "protocols/etx_routing.h"
#include "protocols/more.h"
#include "protocols/oldmore.h"
#include "protocols/omnc.h"

namespace omnc::experiments {
namespace {

double safe_gain(const protocols::SessionResult& coded,
                 const protocols::SessionResult& baseline) {
  if (baseline.throughput_bytes_per_s <= 0.0) return 0.0;
  return coded.throughput_per_generation / baseline.throughput_bytes_per_s;
}

obs::RunContext run_context(const char* protocol, const SessionSpec& spec,
                            const protocols::ProtocolConfig& config) {
  obs::RunContext context;
  context.protocol = protocol;
  context.seed = config.seed;
  context.topology_nodes = spec.topology->node_count();
  context.generation_blocks = config.coding.generation_blocks;
  context.block_bytes = config.coding.block_bytes;
  context.capacity_bytes_per_s = config.mac.capacity_bytes_per_s;
  context.cbr_bytes_per_s = config.cbr_bytes_per_s;
  context.sim_seconds = config.max_sim_seconds;
  return context;
}

/// Frames one coded-protocol run in the trace: begin_run before, the event
/// stream during, opt iterations and the assembled result after.
template <typename Protocol>
protocols::SessionResult traced_run(
    Protocol& protocol, const char* name, const SessionSpec& spec,
    const protocols::ProtocolConfig& config, obs::TraceRecorder* trace,
    const opt::IterationTrace* iterations = nullptr) {
  if (trace == nullptr) return protocol.run();
  const int run = trace->begin_run(run_context(name, spec, config),
                                   {&spec.graph});
  obs::RunSink sink(trace, run);
  protocol.set_trace_sink(sink.sink_or_null());
  protocols::SessionResult result = protocol.run();
  if (iterations != nullptr) {
    for (std::size_t t = 0; t < iterations->gamma.size(); ++t) {
      trace->record_opt_iteration(run, static_cast<int>(t),
                                  iterations->gamma[t], iterations->b[t]);
    }
  }
  trace->end_run(run, {result}, {protocol.edge_innovative_deliveries()});
  return result;
}

}  // namespace

ComparisonResult run_comparison(const SessionSpec& spec,
                                const RunConfig& config) {
  OMNC_ASSERT(spec.topology != nullptr);
  ComparisonResult out;
  out.spec_summary = spec;
  out.spec_summary.topology.reset();

  protocols::ProtocolConfig base = config.protocol;
  base.seed = spec.seed;

  if (config.run_etx) {
    protocols::EtxRoutingProtocol etx(*spec.topology, spec.src, spec.dst,
                                      base);
    out.etx = etx.run();
    if (config.trace != nullptr) {
      // The uncoded baseline has no engine/bus; record its result only so
      // the trace still carries every per-session throughput.
      const int run =
          config.trace->begin_run(run_context("etx", spec, base), {});
      config.trace->end_run(run, {out.etx}, {});
    }
  }
  if (config.run_omnc) {
    protocols::ProtocolConfig pc = base;
    pc.seed = spec.seed ^ 0x01;
    protocols::OmncConfig oc;
    opt::IterationTrace iterations;
    if (config.trace != nullptr) oc.iteration_trace = &iterations;
    protocols::OmncProtocol omnc(*spec.topology, spec.graph, pc, oc);
    out.omnc = traced_run(omnc, "omnc", spec, pc, config.trace, &iterations);
    out.gain_omnc = safe_gain(out.omnc, out.etx);
  }
  if (config.run_more) {
    protocols::ProtocolConfig pc = base;
    pc.seed = spec.seed ^ 0x02;
    protocols::MoreProtocol more(*spec.topology, spec.graph, pc,
                                 protocols::MoreConfig{});
    out.more = traced_run(more, "more", spec, pc, config.trace);
    out.gain_more = safe_gain(out.more, out.etx);
  }
  if (config.run_oldmore) {
    protocols::ProtocolConfig pc = base;
    pc.seed = spec.seed ^ 0x03;
    protocols::OldMoreProtocol oldmore(*spec.topology, spec.graph, pc,
                                       protocols::OldMoreConfig{});
    out.oldmore = traced_run(oldmore, "oldmore", spec, pc, config.trace);
    out.gain_oldmore = safe_gain(out.oldmore, out.etx);
  }
  if (config.solve_lp) {
    const opt::SUnicastSolution lp = opt::solve_sunicast(
        spec.graph, config.protocol.mac.capacity_bytes_per_s);
    out.lp_gamma = lp.feasible ? lp.gamma : 0.0;
  }
  return out;
}

std::vector<ComparisonResult> run_all(
    const std::vector<SessionSpec>& sessions, const RunConfig& config,
    ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::vector<ComparisonResult> results(sessions.size());
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  auto run_one = [&](std::size_t i) {
    results[i] = run_comparison(sessions[i], config);
    const std::size_t finished = ++done;
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(finished, sessions.size());
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->parallel_for_each(sessions.size(), run_one);
  } else {
    for (std::size_t i = 0; i < sessions.size(); ++i) run_one(i);
  }
  return results;
}

}  // namespace omnc::experiments

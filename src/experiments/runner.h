// Runs the four protocols on a session and aggregates results for the
// figure benches.
#pragma once

#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "experiments/workload.h"
#include "obs/trace.h"
#include "protocols/metrics.h"

namespace omnc::experiments {

struct RunConfig {
  protocols::ProtocolConfig protocol;
  bool run_omnc = true;
  bool run_more = true;
  bool run_oldmore = true;
  bool run_etx = true;
  /// Also solve the centralized sUnicast LP (for the LP-gap table).
  bool solve_lp = false;
  /// When set, every protocol run becomes a traced run: its full event
  /// stream, OMNC's rate-control iterations, and the assembled results are
  /// serialized (non-owning; thread-safe, so run_all may share one recorder
  /// across workers).  Tracing never perturbs the simulation.
  obs::TraceRecorder* trace = nullptr;
};

struct ComparisonResult {
  SessionSpec spec_summary;  // topology pointer cleared; src/dst/hops kept
  protocols::SessionResult etx;
  protocols::SessionResult omnc;
  protocols::SessionResult more;
  protocols::SessionResult oldmore;
  /// Throughput gains versus ETX routing (the Fig. 2 metric); 0 when the
  /// ETX baseline delivered nothing.
  double gain_omnc = 0.0;
  double gain_more = 0.0;
  double gain_oldmore = 0.0;
  /// Centralized sUnicast optimum (bytes/s); only set when solve_lp.
  double lp_gamma = 0.0;
};

/// Runs the configured protocols on one session.
ComparisonResult run_comparison(const SessionSpec& spec,
                                const RunConfig& config);

/// Runs every session, optionally in parallel; `progress` (if set) is called
/// after each finished session with (done, total).
std::vector<ComparisonResult> run_all(
    const std::vector<SessionSpec>& sessions, const RunConfig& config,
    ThreadPool* pool = nullptr,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace omnc::experiments

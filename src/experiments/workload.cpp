#include "experiments/workload.h"

#include "common/assert.h"
#include "common/logging.h"
#include "routing/etx.h"

namespace omnc::experiments {

std::vector<SessionSpec> generate_workload(const WorkloadConfig& config) {
  OMNC_ASSERT(config.sessions > 0);
  OMNC_ASSERT(config.topologies > 0);
  OMNC_ASSERT(config.min_hops >= 1 && config.max_hops >= config.min_hops);

  Rng master(config.seed);
  std::vector<SessionSpec> sessions;
  sessions.reserve(static_cast<std::size_t>(config.sessions));

  std::vector<std::shared_ptr<const net::Topology>> topologies;
  for (int t = 0; t < config.topologies; ++t) {
    Rng topo_rng = master.fork(0x7000 + static_cast<std::uint64_t>(t));
    topologies.push_back(std::make_shared<const net::Topology>(
        net::Topology::random_deployment(config.deployment, topo_rng)));
    OMNC_LOG_INFO(
        "workload topology %d: %d nodes, %zu links, mean p=%.3f, mean "
        "neighbors=%.2f",
        t, topologies.back()->node_count(), topologies.back()->link_count(),
        topologies.back()->mean_link_probability(),
        topologies.back()->mean_neighbor_count());
  }

  Rng pick = master.fork(0x9999);
  for (int s = 0; s < config.sessions; ++s) {
    const auto& topology =
        topologies[static_cast<std::size_t>(s % config.topologies)];
    SessionSpec spec;
    bool found = false;
    for (int attempt = 0; attempt < config.max_draws_per_session; ++attempt) {
      const net::NodeId src = pick.uniform_int(0, topology->node_count() - 1);
      const net::NodeId dst = pick.uniform_int(0, topology->node_count() - 1);
      if (src == dst) continue;
      const int hops = routing::etx_hop_count(*topology, src, dst);
      if (hops < config.min_hops || hops > config.max_hops) continue;
      routing::SessionGraph graph = routing::select_nodes(*topology, src, dst);
      if (graph.size() < 2 || graph.edges.empty()) continue;
      spec.topology = topology;
      spec.src = src;
      spec.dst = dst;
      spec.hops = hops;
      spec.graph = std::move(graph);
      spec.seed = master.fork(0x5e55 + static_cast<std::uint64_t>(s)).next_u64();
      found = true;
      break;
    }
    OMNC_ASSERT_MSG(found, "could not draw a session within the hop bounds");
    sessions.push_back(std::move(spec));
  }
  return sessions;
}

}  // namespace omnc::experiments

// Workload generation for the evaluation: random 300-node deployments and
// unicast sessions with the paper's 4-10 hop path-length constraint.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.h"
#include "routing/node_selection.h"

namespace omnc::experiments {

struct WorkloadConfig {
  net::DeploymentConfig deployment;
  int sessions = 60;
  /// Sessions share this many random topologies (the paper deploys one
  /// 300-node topology and runs 300 sessions on it).
  int topologies = 1;
  int min_hops = 4;
  int max_hops = 10;
  std::uint64_t seed = 42;
  /// Give up on a topology after this many endpoint draws without a valid
  /// session.
  int max_draws_per_session = 2000;
};

struct SessionSpec {
  std::shared_ptr<const net::Topology> topology;
  net::NodeId src = -1;
  net::NodeId dst = -1;
  int hops = 0;                       // min-ETX route hop count
  routing::SessionGraph graph;        // selected forwarder subgraph
  std::uint64_t seed = 0;             // per-session RNG stream
};

/// Generates `config.sessions` sessions across `config.topologies` random
/// deployments.  Every returned session has a connected graph and a route
/// within the hop bounds.
std::vector<SessionSpec> generate_workload(const WorkloadConfig& config);

}  // namespace omnc::experiments

#include "galois/gf256.h"

#include <array>

#include "common/assert.h"

namespace omnc::gf {
namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled so exp[log a + log b] works
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 256> inv{};
  std::array<std::array<std::uint8_t, 256>, 256> mul{};
};

constexpr Tables make_tables() {
  Tables t{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = mul_slow(x, 3);  // 3 generates the multiplicative group of GF(256)
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<std::size_t>(i)] = t.exp[static_cast<std::size_t>(i - 255)];
  }
  t.inv[0] = 0;
  for (int a = 1; a < 256; ++a) {
    t.inv[static_cast<std::size_t>(a)] =
        t.exp[255 - t.log[static_cast<std::size_t>(a)]];
  }
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      t.mul[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          mul_slow(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
    }
  }
  return t;
}

// ~66 KB of compile-time tables; lives in .rodata.
constexpr Tables kTables = make_tables();

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) { return kTables.mul[a][b]; }

std::uint8_t inv(std::uint8_t a) { return kTables.inv[a]; }

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  OMNC_DCHECK(b != 0);
  if (a == 0) return 0;
  return kTables.exp[255 + kTables.log[a] - kTables.log[b]];
}

std::uint8_t exp_g(std::uint8_t e) { return kTables.exp[e]; }

std::uint8_t log_g(std::uint8_t a) {
  OMNC_DCHECK(a != 0);
  return kTables.log[a];
}

const std::uint8_t* mul_row(std::uint8_t c) { return kTables.mul[c].data(); }

}  // namespace omnc::gf

// GF(2^8) arithmetic over the Rijndael polynomial x^8 + x^4 + x^3 + x + 1
// (0x11B), the field the paper uses for random linear coding ("loop based
// approach in Rijndael's finite field", Sec. 4).
//
// Scalar operations go through precomputed tables; bulk (region) operations
// live in region.h with SIMD backends.
#pragma once

#include <cstdint>

namespace omnc::gf {

/// The reduction polynomial, without the x^8 term.
inline constexpr std::uint8_t kPoly = 0x1b;

/// Addition and subtraction coincide: bytewise XOR.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

/// Multiply by x (the "xtime" primitive); constexpr so tables can be built at
/// compile time.
constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? kPoly : 0));
}

/// Bitwise (slow) multiply; reference implementation for table generation and
/// property tests.
constexpr std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b) {
  std::uint8_t product = 0;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & 1) product = static_cast<std::uint8_t>(product ^ a);
    b = static_cast<std::uint8_t>(b >> 1);
    a = xtime(a);
  }
  return product;
}

/// Table-based multiply.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; inv(0) is defined as 0 (never meaningful, but
/// keeps lookups total).
std::uint8_t inv(std::uint8_t a);

/// a / b; b must be nonzero.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Discrete exponential/logarithm with generator 3.  log(0) is undefined and
/// asserts in debug builds.
std::uint8_t exp_g(std::uint8_t e);
std::uint8_t log_g(std::uint8_t a);

/// The 256-entry row MUL[c][*] of the full multiplication table; this is the
/// "traditional lookup-table approach" the paper benchmarks against and is
/// also used to build the SSSE3 nibble tables.
const std::uint8_t* mul_row(std::uint8_t c);

}  // namespace omnc::gf

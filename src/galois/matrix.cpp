#include "galois/matrix.h"

#include "common/assert.h"
#include "galois/gf256.h"
#include "galois/region.h"

namespace omnc::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

std::uint8_t& Matrix::at(std::size_t r, std::size_t c) {
  OMNC_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::uint8_t Matrix::at(std::size_t r, std::size_t c) const {
  OMNC_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::uint8_t* Matrix::row(std::size_t r) {
  OMNC_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

const std::uint8_t* Matrix::row(std::size_t r) const {
  OMNC_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, omnc::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& byte : m.data_) byte = rng.next_byte();
  return m;
}

Matrix Matrix::mul(const Matrix& other) const {
  OMNC_ASSERT(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t coeff = at(r, k);
      if (coeff == 0) continue;
      region_axpy(out.row(r), other.row(k), coeff, other.cols_);
    }
  }
  return out;
}

std::size_t Matrix::rank() const {
  Matrix copy = *this;
  return copy.reduce_to_rref();
}

std::size_t Matrix::reduce_to_rref() {
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
    // Find a row with a nonzero entry in this column.
    std::size_t found = rows_;
    for (std::size_t r = pivot_row; r < rows_; ++r) {
      if (at(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == rows_) continue;
    if (found != pivot_row) {
      for (std::size_t c = 0; c < cols_; ++c) {
        std::swap(at(found, c), at(pivot_row, c));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t pivot = at(pivot_row, col);
    if (pivot != 1) {
      region_mul(row(pivot_row), row(pivot_row), inv(pivot), cols_);
    }
    // Eliminate the column everywhere else (reduced form).
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const std::uint8_t factor = at(r, col);
      if (factor != 0) region_axpy(row(r), row(pivot_row), factor, cols_);
    }
    ++pivot_row;
  }
  return pivot_row;
}

bool Matrix::invert(Matrix* out) const {
  OMNC_ASSERT(rows_ == cols_);
  OMNC_ASSERT(out != nullptr);
  // Augment with the identity and reduce.
  Matrix work(rows_, cols_ * 2);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) work.at(r, c) = at(r, c);
    work.at(r, cols_ + r) = 1;
  }
  work.reduce_to_rref();
  // Invertible iff the left block reduced to the identity: pivots may also
  // appear in the augmented columns, so the combined rank is not sufficient.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (work.at(r, c) != (r == c ? 1 : 0)) return false;
    }
  }
  *out = Matrix(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out->at(r, c) = work.at(r, cols_ + c);
    }
  }
  return true;
}

}  // namespace omnc::gf

// Dense matrix over GF(2^8).
//
// Used for coding ground truth (block decode via inverse), rank/innovation
// reasoning in tests, and as the reference implementation the progressive
// decoder is validated against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace omnc::gf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c);
  std::uint8_t at(std::size_t r, std::size_t c) const;

  std::uint8_t* row(std::size_t r);
  const std::uint8_t* row(std::size_t r) const;

  static Matrix identity(std::size_t n);
  static Matrix random(std::size_t rows, std::size_t cols, omnc::Rng& rng);

  /// this * other; dimensions must agree.
  Matrix mul(const Matrix& other) const;

  /// Gaussian-elimination rank (non-destructive).
  std::size_t rank() const;

  /// In-place reduction to reduced row-echelon form; returns the rank.
  std::size_t reduce_to_rref();

  /// Inverse of a square full-rank matrix; returns false if singular.
  bool invert(Matrix* out) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;  // row-major
};

}  // namespace omnc::gf

#include "galois/region.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define OMNC_X86 1
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define OMNC_NEON 1
#endif

#include "common/assert.h"
#include "galois/gf256.h"

namespace omnc::gf {
namespace {

// ---------------------------------------------------------------------------
// Scalar lookup-table backend (the baseline the paper compares against).
// The c==0 / c==1 fast paths mirror the SIMD backends so the scalar
// reference is not pessimized into table walks for trivial constants.
// ---------------------------------------------------------------------------

void scalar_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void scalar_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  // Word-at-a-time XOR; memcpy keeps it alias/alignment safe.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void scalar_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                 std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    scalar_xor(dst, src, n);
    return;
  }
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

// Fused folds: one pass over dst regardless of the source count.  Zero
// constants resolve through mul_row(0) (the all-zero row), so the kernels
// stay total; the dispatch wrappers strip zeros before getting here when it
// matters for speed.

void scalar_axpy2(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                  const std::uint8_t* src1, std::uint8_t c1, std::size_t n) {
  const std::uint8_t* r0 = mul_row(c0);
  const std::uint8_t* r1 = mul_row(c1);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ r0[src0[i]] ^ r1[src1[i]]);
  }
}

void scalar_axpy4(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                  const std::uint8_t* src1, std::uint8_t c1,
                  const std::uint8_t* src2, std::uint8_t c2,
                  const std::uint8_t* src3, std::uint8_t c3, std::size_t n) {
  const std::uint8_t* r0 = mul_row(c0);
  const std::uint8_t* r1 = mul_row(c1);
  const std::uint8_t* r2 = mul_row(c2);
  const std::uint8_t* r3 = mul_row(c3);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ r0[src0[i]] ^ r1[src1[i]] ^
                                       r2[src2[i]] ^ r3[src3[i]]);
  }
}

// ---------------------------------------------------------------------------
// Portable SWAR backend: the SSE2 double-and-add scheme carried out on
// plain uint64 lanes — eight field bytes per machine word with no intrinsic
// in sight.  xtime() shifts every byte left once and folds the reduction
// polynomial back in wherever a high bit fell out; the constant multiply is
// Horner form over the bits of c, exactly like sse2_mul_const.  This is the
// vector-unit-free fallback for targets with neither x86 nor NEON, and the
// backend x86 CI forces (OMNC_GF_BACKEND=portable) to keep that path green.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSwarHighBits = 0x8080808080808080ull;
constexpr std::uint64_t kSwarLowSeven = 0x7f7f7f7f7f7f7f7full;

inline std::uint64_t swar_xtime(std::uint64_t v) {
  const std::uint64_t high = v & kSwarHighBits;
  const std::uint64_t shifted = (v & kSwarLowSeven) << 1;
  // Bytes whose high bit was set pick up the low half of the reduction
  // polynomial (0x11B & 0xFF = 0x1B); (high >> 7) leaves 0x01 in exactly
  // those bytes, and * 0x1B stays carry-free because 0x1B < 0x100.
  return shifted ^ ((high >> 7) * 0x1b);
}

inline std::uint64_t swar_mul_const(std::uint64_t v, std::uint8_t c) {
  std::uint64_t product = 0;
  int top = 7;
  while (top > 0 && !((c >> top) & 1)) --top;
  for (int bit = top; bit >= 0; --bit) {
    if (bit != top) product = swar_xtime(product);
    if ((c >> bit) & 1) product ^= v;
  }
  return product;
}

inline std::uint64_t swar_load(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void swar_store(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, 8);
}

void portable_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    swar_store(dst + i, swar_mul_const(swar_load(src + i), c));
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

void portable_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                   std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    scalar_xor(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    swar_store(dst + i,
               swar_load(dst + i) ^ swar_mul_const(swar_load(src + i), c));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

void portable_axpy2(std::uint8_t* dst, const std::uint8_t* src0,
                    std::uint8_t c0, const std::uint8_t* src1, std::uint8_t c1,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t p = swar_mul_const(swar_load(src0 + i), c0) ^
                            swar_mul_const(swar_load(src1 + i), c1);
    swar_store(dst + i, swar_load(dst + i) ^ p);
  }
  if (i < n) scalar_axpy2(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

void portable_axpy4(std::uint8_t* dst, const std::uint8_t* src0,
                    std::uint8_t c0, const std::uint8_t* src1, std::uint8_t c1,
                    const std::uint8_t* src2, std::uint8_t c2,
                    const std::uint8_t* src3, std::uint8_t c3, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t p01 = swar_mul_const(swar_load(src0 + i), c0) ^
                              swar_mul_const(swar_load(src1 + i), c1);
    const std::uint64_t p23 = swar_mul_const(swar_load(src2 + i), c2) ^
                              swar_mul_const(swar_load(src3 + i), c3);
    swar_store(dst + i, swar_load(dst + i) ^ p01 ^ p23);
  }
  if (i < n) {
    scalar_axpy4(dst + i, src0 + i, c0, src1 + i, c1, src2 + i, c2, src3 + i,
                 c3, n - i);
  }
}

#if defined(OMNC_X86) || defined(OMNC_NEON)

// ---------------------------------------------------------------------------
// Nibble split tables shared by the shuffle backends (SSSE3/AVX2 on x86,
// vqtbl1q on NEON): each byte is split into nibbles and each nibble resolved
// through a 16-entry table derived from the full multiplication table.
//
// All 256 lo/hi table pairs are precomputed once (8 KiB, cache-resident for
// hot constants): loading a constant's tables is two aligned loads instead
// of 32 scalar lookups, which matters enormously for the short coefficient
// rows the RREF elimination sweeps through.
// ---------------------------------------------------------------------------

struct NibbleTables {
  alignas(64) std::uint8_t lo[256][16];
  alignas(64) std::uint8_t hi[256][16];
  NibbleTables() {
    for (int c = 0; c < 256; ++c) {
      const std::uint8_t* row = mul_row(static_cast<std::uint8_t>(c));
      for (int i = 0; i < 16; ++i) {
        lo[c][i] = row[i];
        hi[c][i] = row[i << 4];
      }
    }
  }
};

const NibbleTables& nibble_tables() {
  static const NibbleTables tables;
  return tables;
}

#endif  // OMNC_X86 || OMNC_NEON

#ifdef OMNC_NEON

// ---------------------------------------------------------------------------
// NEON backend (aarch64): the nibble-table scheme on 16-byte registers.
// vqtbl1q_u8 is the PSHUFB analogue — a 16-entry in-register table lookup —
// so the kernels mirror the SSSE3 shapes byte for byte.  NEON is part of
// the aarch64 baseline, so there is no runtime feature probe to do.
// ---------------------------------------------------------------------------

inline void neon_load_tables(std::uint8_t c, uint8x16_t* lo_table,
                             uint8x16_t* hi_table) {
  const NibbleTables& t = nibble_tables();
  *lo_table = vld1q_u8(t.lo[c]);
  *hi_table = vld1q_u8(t.hi[c]);
}

inline uint8x16_t neon_product(uint8x16_t v, uint8x16_t lo_table,
                               uint8x16_t hi_table) {
  const uint8x16_t lo = vandq_u8(v, vdupq_n_u8(0x0f));
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  return veorq_u8(vqtbl1q_u8(lo_table, lo), vqtbl1q_u8(hi_table, hi));
}

void neon_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void neon_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
              std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  uint8x16_t lo_table;
  uint8x16_t hi_table;
  neon_load_tables(c, &lo_table, &hi_table);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, neon_product(vld1q_u8(src + i), lo_table, hi_table));
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

void neon_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
               std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    neon_xor(dst, src, n);
    return;
  }
  uint8x16_t lo_table;
  uint8x16_t hi_table;
  neon_load_tables(c, &lo_table, &hi_table);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t p = neon_product(vld1q_u8(src + i), lo_table, hi_table);
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), p));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

void neon_axpy2(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                const std::uint8_t* src1, std::uint8_t c1, std::size_t n) {
  uint8x16_t lo0, hi0, lo1, hi1;
  neon_load_tables(c0, &lo0, &hi0);
  neon_load_tables(c1, &lo1, &hi1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t p = veorq_u8(neon_product(vld1q_u8(src0 + i), lo0, hi0),
                                  neon_product(vld1q_u8(src1 + i), lo1, hi1));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), p));
  }
  if (i < n) scalar_axpy2(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

void neon_axpy4(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                const std::uint8_t* src1, std::uint8_t c1,
                const std::uint8_t* src2, std::uint8_t c2,
                const std::uint8_t* src3, std::uint8_t c3, std::size_t n) {
  uint8x16_t lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3;
  neon_load_tables(c0, &lo0, &hi0);
  neon_load_tables(c1, &lo1, &hi1);
  neon_load_tables(c2, &lo2, &hi2);
  neon_load_tables(c3, &lo3, &hi3);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t p01 =
        veorq_u8(neon_product(vld1q_u8(src0 + i), lo0, hi0),
                 neon_product(vld1q_u8(src1 + i), lo1, hi1));
    const uint8x16_t p23 =
        veorq_u8(neon_product(vld1q_u8(src2 + i), lo2, hi2),
                 neon_product(vld1q_u8(src3 + i), lo3, hi3));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), veorq_u8(p01, p23)));
  }
  if (i < n) {
    scalar_axpy4(dst + i, src0 + i, c0, src1 + i, c1, src2 + i, c2, src3 + i,
                 c3, n - i);
  }
}

void neon_axpy_scatter(std::uint8_t* const* dsts, const std::uint8_t* coeffs,
                       std::size_t count, const std::uint8_t* src,
                       std::size_t n) {
  const NibbleTables& t = nibble_tables();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(src + i);
    const uint8x16_t vlo = vandq_u8(v, vdupq_n_u8(0x0f));
    const uint8x16_t vhi = vshrq_n_u8(v, 4);
    for (std::size_t r = 0; r < count; ++r) {
      const uint8x16_t lo = vld1q_u8(t.lo[coeffs[r]]);
      const uint8x16_t hi = vld1q_u8(t.hi[coeffs[r]]);
      const uint8x16_t p =
          veorq_u8(vqtbl1q_u8(lo, vlo), vqtbl1q_u8(hi, vhi));
      std::uint8_t* d = dsts[r] + i;
      vst1q_u8(d, veorq_u8(vld1q_u8(d), p));
    }
  }
  if (i < n) {
    for (std::size_t r = 0; r < count; ++r) {
      scalar_axpy(dsts[r] + i, src + i, coeffs[r], n - i);
    }
  }
}

#endif  // OMNC_NEON

#ifdef OMNC_X86

// ---------------------------------------------------------------------------
// SSE2 backend: loop-based (double-and-add) multiplication, per the paper's
// accelerated coding framework.  Each of the (at most) 8 rounds doubles the
// running product in the field — shift left bytewise, conditionally XOR the
// reduction polynomial where the high bit was set — and adds src when the
// corresponding bit of the constant is set.  Rounds above the constant's top
// bit are skipped.
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) inline __m128i sse2_xtime(__m128i v) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i poly = _mm_set1_epi8(static_cast<char>(kPoly));
  const __m128i high = _mm_cmpgt_epi8(zero, v);  // 0xFF where sign bit set
  __m128i shifted = _mm_add_epi8(v, v);          // bytewise << 1
  return _mm_xor_si128(shifted, _mm_and_si128(high, poly));
}

__attribute__((target("sse2"))) inline __m128i sse2_mul_const(__m128i v,
                                                              std::uint8_t c) {
  __m128i product = _mm_setzero_si128();
  // Horner form over the bits of c, most significant first.
  int top = 7;
  while (top > 0 && !((c >> top) & 1)) --top;
  for (int bit = top; bit >= 0; --bit) {
    if (bit != top) product = sse2_xtime(product);
    if ((c >> bit) & 1) product = _mm_xor_si128(product, v);
  }
  return product;
}

__attribute__((target("sse2"))) void sse2_xor(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t n);

// Two independent double-and-add chains per iteration hide the xtime
// dependency latency on superscalar cores.
__attribute__((target("sse2"))) inline void sse2_mul_const2(
    __m128i v0, __m128i v1, std::uint8_t c, __m128i* out0, __m128i* out1) {
  __m128i p0 = _mm_setzero_si128();
  __m128i p1 = _mm_setzero_si128();
  int top = 7;
  while (top > 0 && !((c >> top) & 1)) --top;
  for (int bit = top; bit >= 0; --bit) {
    if (bit != top) {
      p0 = sse2_xtime(p0);
      p1 = sse2_xtime(p1);
    }
    if ((c >> bit) & 1) {
      p0 = _mm_xor_si128(p0, v0);
      p1 = _mm_xor_si128(p1, v1);
    }
  }
  *out0 = p0;
  *out1 = p1;
}

__attribute__((target("sse2"))) void sse2_mul(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::uint8_t c, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    __m128i p0;
    __m128i p1;
    sse2_mul_const2(v0, v1, c, &p0, &p1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), p1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), sse2_mul_const(v, c));
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

__attribute__((target("sse2"))) void sse2_axpy(std::uint8_t* dst,
                                               const std::uint8_t* src,
                                               std::uint8_t c, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    sse2_xor(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    __m128i p0;
    __m128i p1;
    sse2_mul_const2(v0, v1, c, &p0, &p1);
    const __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i d1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d0, p0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(d1, p1));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, sse2_mul_const(v, c)));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

__attribute__((target("sse2"))) void sse2_xor(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, v));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("sse2"))) void sse2_axpy2(std::uint8_t* dst,
                                                const std::uint8_t* src0,
                                                std::uint8_t c0,
                                                const std::uint8_t* src1,
                                                std::uint8_t c1,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src0 + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src1 + i));
    const __m128i p =
        _mm_xor_si128(sse2_mul_const(v0, c0), sse2_mul_const(v1, c1));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, p));
  }
  if (i < n) scalar_axpy2(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

__attribute__((target("sse2"))) void sse2_axpy4(
    std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
    const std::uint8_t* src1, std::uint8_t c1, const std::uint8_t* src2,
    std::uint8_t c2, const std::uint8_t* src3, std::uint8_t c3,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src0 + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src1 + i));
    const __m128i v2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src2 + i));
    const __m128i v3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src3 + i));
    const __m128i p01 =
        _mm_xor_si128(sse2_mul_const(v0, c0), sse2_mul_const(v1, c1));
    const __m128i p23 =
        _mm_xor_si128(sse2_mul_const(v2, c2), sse2_mul_const(v3, c3));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(p01, p23)));
  }
  if (i < n) {
    scalar_axpy4(dst + i, src0 + i, c0, src1 + i, c1, src2 + i, c2, src3 + i,
                 c3, n - i);
  }
}

// ---------------------------------------------------------------------------
// SSSE3 backend: the shared nibble tables resolved through PSHUFB.
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) inline void ssse3_tables(std::uint8_t c,
                                                          __m128i* lo_table,
                                                          __m128i* hi_table) {
  const NibbleTables& t = nibble_tables();
  *lo_table = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  *hi_table = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
}

__attribute__((target("ssse3"))) inline __m128i ssse3_product(
    __m128i v, __m128i lo_table, __m128i hi_table, __m128i mask) {
  const __m128i lo = _mm_and_si128(v, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo_table, lo),
                       _mm_shuffle_epi8(hi_table, hi));
}

__attribute__((target("ssse3"))) void ssse3_mul(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::uint8_t c, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  __m128i lo_table;
  __m128i hi_table;
  ssse3_tables(c, &lo_table, &hi_table);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     ssse3_product(v, lo_table, hi_table, mask));
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

__attribute__((target("ssse3"))) void ssse3_axpy(std::uint8_t* dst,
                                                 const std::uint8_t* src,
                                                 std::uint8_t c,
                                                 std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    sse2_xor(dst, src, n);
    return;
  }
  __m128i lo_table;
  __m128i hi_table;
  ssse3_tables(c, &lo_table, &hi_table);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_xor_si128(d, ssse3_product(v, lo_table, hi_table, mask)));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

__attribute__((target("ssse3"))) void ssse3_axpy2(std::uint8_t* dst,
                                                  const std::uint8_t* src0,
                                                  std::uint8_t c0,
                                                  const std::uint8_t* src1,
                                                  std::uint8_t c1,
                                                  std::size_t n) {
  __m128i lo0;
  __m128i hi0;
  __m128i lo1;
  __m128i hi1;
  ssse3_tables(c0, &lo0, &hi0);
  ssse3_tables(c1, &lo1, &hi1);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src0 + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src1 + i));
    const __m128i p = _mm_xor_si128(ssse3_product(v0, lo0, hi0, mask),
                                    ssse3_product(v1, lo1, hi1, mask));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, p));
  }
  if (i < n) scalar_axpy2(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

__attribute__((target("ssse3"))) void ssse3_axpy4(
    std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
    const std::uint8_t* src1, std::uint8_t c1, const std::uint8_t* src2,
    std::uint8_t c2, const std::uint8_t* src3, std::uint8_t c3,
    std::size_t n) {
  __m128i lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3;
  ssse3_tables(c0, &lo0, &hi0);
  ssse3_tables(c1, &lo1, &hi1);
  ssse3_tables(c2, &lo2, &hi2);
  ssse3_tables(c3, &lo3, &hi3);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src0 + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src1 + i));
    const __m128i v2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src2 + i));
    const __m128i v3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src3 + i));
    const __m128i p01 = _mm_xor_si128(ssse3_product(v0, lo0, hi0, mask),
                                      ssse3_product(v1, lo1, hi1, mask));
    const __m128i p23 = _mm_xor_si128(ssse3_product(v2, lo2, hi2, mask),
                                      ssse3_product(v3, lo3, hi3, mask));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(p01, p23)));
  }
  if (i < n) {
    scalar_axpy4(dst + i, src0 + i, c0, src1 + i, c1, src2 + i, c2, src3 + i,
                 c3, n - i);
  }
}

// ---------------------------------------------------------------------------
// AVX2 backend: the SSSE3 nibble scheme widened to 32-byte registers.  Each
// 16-entry table is broadcast into both 128-bit lanes; VPSHUFB shuffles
// within lanes, which is exactly what the nibble lookup needs.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline void avx2_tables(std::uint8_t c,
                                                        __m256i* lo_table,
                                                        __m256i* hi_table) {
  const NibbleTables& t = nibble_tables();
  *lo_table = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  *hi_table = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
}

__attribute__((target("avx2"))) inline __m256i avx2_product(__m256i v,
                                                            __m256i lo_table,
                                                            __m256i hi_table,
                                                            __m256i mask) {
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo_table, lo),
                          _mm256_shuffle_epi8(hi_table, hi));
}

__attribute__((target("avx2"))) void avx2_mul(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::uint8_t c, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  __m256i lo_table;
  __m256i hi_table;
  avx2_tables(c, &lo_table, &hi_table);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        avx2_product(v0, lo_table, hi_table, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        avx2_product(v1, lo_table, hi_table, mask));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        avx2_product(v, lo_table, hi_table, mask));
  }
  if (i < n) ssse3_mul(dst + i, src + i, c, n - i);
}

__attribute__((target("avx2"))) void avx2_axpy(std::uint8_t* dst,
                                               const std::uint8_t* src,
                                               std::uint8_t c, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    region_xor(dst, src, n);
    return;
  }
  __m256i lo_table;
  __m256i hi_table;
  avx2_tables(c, &lo_table, &hi_table);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, avx2_product(v, lo_table, hi_table, mask)));
  }
  if (i < n) ssse3_axpy(dst + i, src + i, c, n - i);
}

__attribute__((target("avx2"))) void avx2_axpy2(std::uint8_t* dst,
                                                const std::uint8_t* src0,
                                                std::uint8_t c0,
                                                const std::uint8_t* src1,
                                                std::uint8_t c1,
                                                std::size_t n) {
  __m256i lo0;
  __m256i hi0;
  __m256i lo1;
  __m256i hi1;
  avx2_tables(c0, &lo0, &hi0);
  avx2_tables(c1, &lo1, &hi1);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i));
    const __m256i p = _mm256_xor_si256(avx2_product(v0, lo0, hi0, mask),
                                       avx2_product(v1, lo1, hi1, mask));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  if (i < n) ssse3_axpy2(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

__attribute__((target("avx2"))) void avx2_axpy4(
    std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
    const std::uint8_t* src1, std::uint8_t c1, const std::uint8_t* src2,
    std::uint8_t c2, const std::uint8_t* src3, std::uint8_t c3,
    std::size_t n) {
  __m256i lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3;
  avx2_tables(c0, &lo0, &hi0);
  avx2_tables(c1, &lo1, &hi1);
  avx2_tables(c2, &lo2, &hi2);
  avx2_tables(c3, &lo3, &hi3);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i));
    const __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src2 + i));
    const __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src3 + i));
    const __m256i p01 = _mm256_xor_si256(avx2_product(v0, lo0, hi0, mask),
                                         avx2_product(v1, lo1, hi1, mask));
    const __m256i p23 = _mm256_xor_si256(avx2_product(v2, lo2, hi2, mask),
                                         avx2_product(v3, lo3, hi3, mask));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(p01, p23)));
  }
  if (i < n) {
    ssse3_axpy4(dst + i, src0 + i, c0, src1 + i, c1, src2 + i, c2, src3 + i,
                c3, n - i);
  }
}

// ---------------------------------------------------------------------------
// GFNI backend: GF2P8MULB multiplies byte vectors in GF(2^8) modulo the AES
// polynomial x^8+x^4+x^3+x+1 (0x11B) — exactly this codebase's field — so a
// constant multiply is a single instruction against the broadcast constant.
// (GF2P8AFFINEQB could express the same constant multiply as an 8x8 bit
// matrix; MULB needs no matrix setup and has the same throughput here.)
// We use the VEX-256 forms, so the backend requires GFNI and AVX2.
// ---------------------------------------------------------------------------

__attribute__((target("gfni,avx2"))) void gfni_mul(std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::uint8_t c,
                                                   std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const __m256i cv = _mm256_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8mul_epi8(v0, cv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_gf2p8mul_epi8(v1, cv));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8mul_epi8(v, cv));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_gf2p8mul_epi8(v, _mm256_castsi256_si128(cv)));
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

__attribute__((target("gfni,avx2"))) void gfni_axpy(std::uint8_t* dst,
                                                    const std::uint8_t* src,
                                                    std::uint8_t c,
                                                    std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    region_xor(dst, src, n);
    return;
  }
  const __m256i cv = _mm256_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_gf2p8mul_epi8(v, cv)));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_xor_si128(d, _mm_gf2p8mul_epi8(v, _mm256_castsi256_si128(cv))));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

__attribute__((target("gfni,avx2"))) void gfni_axpy2(std::uint8_t* dst,
                                                     const std::uint8_t* src0,
                                                     std::uint8_t c0,
                                                     const std::uint8_t* src1,
                                                     std::uint8_t c1,
                                                     std::size_t n) {
  const __m256i cv0 = _mm256_set1_epi8(static_cast<char>(c0));
  const __m256i cv1 = _mm256_set1_epi8(static_cast<char>(c1));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i));
    const __m256i p = _mm256_xor_si256(_mm256_gf2p8mul_epi8(v0, cv0),
                                       _mm256_gf2p8mul_epi8(v1, cv1));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  if (i < n) scalar_axpy2(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

__attribute__((target("gfni,avx2"))) void gfni_axpy4(
    std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
    const std::uint8_t* src1, std::uint8_t c1, const std::uint8_t* src2,
    std::uint8_t c2, const std::uint8_t* src3, std::uint8_t c3,
    std::size_t n) {
  const __m256i cv0 = _mm256_set1_epi8(static_cast<char>(c0));
  const __m256i cv1 = _mm256_set1_epi8(static_cast<char>(c1));
  const __m256i cv2 = _mm256_set1_epi8(static_cast<char>(c2));
  const __m256i cv3 = _mm256_set1_epi8(static_cast<char>(c3));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i));
    const __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src2 + i));
    const __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src3 + i));
    const __m256i p01 = _mm256_xor_si256(_mm256_gf2p8mul_epi8(v0, cv0),
                                         _mm256_gf2p8mul_epi8(v1, cv1));
    const __m256i p23 = _mm256_xor_si256(_mm256_gf2p8mul_epi8(v2, cv2),
                                         _mm256_gf2p8mul_epi8(v3, cv3));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(p01, p23)));
  }
  if (i < n) {
    scalar_axpy4(dst + i, src0 + i, c0, src1 + i, c1, src2 + i, c2, src3 + i,
                 c3, n - i);
  }
}

// ---------------------------------------------------------------------------
// Scatter kernels: one source into many destinations, the back-substitution
// shape.  The source chunk — and for the shuffle backends its nibble split —
// is computed once per register width and reused across every destination,
// so the per-destination inner loop is just table loads, shuffles, and the
// read-modify-write.  A zero coefficient multiplies through the all-zero
// table row and degenerates to a no-op, so callers need not filter.
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) void ssse3_axpy_scatter(
    std::uint8_t* const* dsts, const std::uint8_t* coeffs, std::size_t count,
    const std::uint8_t* src, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i vlo = _mm_and_si128(v, mask);
    const __m128i vhi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    for (std::size_t r = 0; r < count; ++r) {
      const __m128i lo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeffs[r]]));
      const __m128i hi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeffs[r]]));
      const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo, vlo),
                                      _mm_shuffle_epi8(hi, vhi));
      std::uint8_t* d = dsts[r] + i;
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(d),
          _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(d)),
                        p));
    }
  }
  if (i < n) {
    for (std::size_t r = 0; r < count; ++r) {
      scalar_axpy(dsts[r] + i, src + i, coeffs[r], n - i);
    }
  }
}

__attribute__((target("avx2"))) void avx2_axpy_scatter(
    std::uint8_t* const* dsts, const std::uint8_t* coeffs, std::size_t count,
    const std::uint8_t* src, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i vlo = _mm256_and_si256(v, mask);
    const __m256i vhi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    for (std::size_t r = 0; r < count; ++r) {
      const __m256i lo = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeffs[r]])));
      const __m256i hi = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeffs[r]])));
      const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, vlo),
                                         _mm256_shuffle_epi8(hi, vhi));
      std::uint8_t* d = dsts[r] + i;
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(d),
          _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d)), p));
    }
  }
  if (i < n) {
    for (std::size_t r = 0; r < count; ++r) {
      ssse3_axpy(dsts[r] + i, src + i, coeffs[r], n - i);
    }
  }
}

__attribute__((target("gfni,avx2"))) void gfni_axpy_scatter(
    std::uint8_t* const* dsts, const std::uint8_t* coeffs, std::size_t count,
    const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    for (std::size_t r = 0; r < count; ++r) {
      const __m256i cv = _mm256_set1_epi8(static_cast<char>(coeffs[r]));
      std::uint8_t* d = dsts[r] + i;
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(d),
          _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d)),
              _mm256_gf2p8mul_epi8(v, cv)));
    }
  }
  if (i < n) {
    for (std::size_t r = 0; r < count; ++r) {
      scalar_axpy(dsts[r] + i, src + i, coeffs[r], n - i);
    }
  }
}

// ---------------------------------------------------------------------------
// CPU feature detection: CPUID leaf 1 (SSSE3, OSXSAVE, AVX), leaf 7
// subleaf 0 (AVX2, GFNI), plus XGETBV to confirm the OS actually saves and
// restores the YMM state — AVX2/GFNI dispatch is unsafe without it.
// ---------------------------------------------------------------------------

#if defined(__x86_64__)
void cpuid_count(unsigned leaf, unsigned subleaf, unsigned* a, unsigned* b,
                 unsigned* c, unsigned* d) {
  __asm__ volatile("cpuid"
                   : "=a"(*a), "=b"(*b), "=c"(*c), "=d"(*d)
                   : "a"(leaf), "c"(subleaf));
}

bool os_saves_ymm() {
  unsigned a, b, c, d;
  cpuid_count(1, 0, &a, &b, &c, &d);
  if (!(c & (1u << 27))) return false;  // OSXSAVE
  if (!(c & (1u << 28))) return false;  // AVX
  unsigned xcr0_lo, xcr0_hi;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  return (xcr0_lo & 0x6) == 0x6;  // XMM and YMM state enabled
}
#endif

bool cpu_has(const char* feature) {
#if defined(__x86_64__)
  if (std::strcmp(feature, "sse2") == 0) return true;  // baseline on x86-64
  unsigned a, b, c, d;
  cpuid_count(0, 0, &a, &b, &c, &d);
  const unsigned max_leaf = a;
  if (std::strcmp(feature, "ssse3") == 0) {
    cpuid_count(1, 0, &a, &b, &c, &d);
    return (c & (1u << 9)) != 0;
  }
  if (max_leaf < 7) return false;
  cpuid_count(7, 0, &a, &b, &c, &d);
  if (std::strcmp(feature, "avx2") == 0) {
    return (b & (1u << 5)) != 0 && os_saves_ymm();
  }
  if (std::strcmp(feature, "gfni") == 0) {
    // We only emit the VEX-256 GFNI forms, so AVX2 must be usable too.
    return (c & (1u << 8)) != 0 && (b & (1u << 5)) != 0 && os_saves_ymm();
  }
  return false;
#else
  (void)feature;
  return false;
#endif
}

#endif  // OMNC_X86

bool hw_backend_usable(Backend backend) {
  switch (backend) {
    case Backend::kScalarTable:
    case Backend::kPortable:
      return true;
#ifdef OMNC_X86
    case Backend::kSse2:
      return cpu_has("sse2");
    case Backend::kSsse3:
      return cpu_has("ssse3");
    case Backend::kAvx2:
      return cpu_has("avx2");
    case Backend::kGfni:
      return cpu_has("gfni");
#endif
#ifdef OMNC_NEON
    case Backend::kNeon:
      return true;  // NEON is part of the aarch64 baseline.
#endif
    default:
      return false;
  }
}

Backend detect_default_backend() {
  if (const char* env = std::getenv("OMNC_GF_BACKEND")) {
    struct NamedBackend {
      const char* name;
      Backend backend;
    };
    static constexpr NamedBackend kByName[] = {
        {"scalar", Backend::kScalarTable}, {"sse2", Backend::kSse2},
        {"ssse3", Backend::kSsse3},        {"avx2", Backend::kAvx2},
        {"gfni", Backend::kGfni},          {"neon", Backend::kNeon},
        {"portable", Backend::kPortable},
    };
    for (const NamedBackend& entry : kByName) {
      if (std::strcmp(env, entry.name) == 0 &&
          hw_backend_usable(entry.backend)) {
        return entry.backend;
      }
    }
  }
#ifdef OMNC_X86
  if (cpu_has("gfni")) return Backend::kGfni;
  if (cpu_has("avx2")) return Backend::kAvx2;
  if (cpu_has("ssse3")) return Backend::kSsse3;
  return Backend::kSse2;
#elif defined(OMNC_NEON)
  return Backend::kNeon;
#else
  return Backend::kScalarTable;
#endif
}

std::atomic<Backend> g_backend{detect_default_backend()};

}  // namespace

bool backend_supported(Backend backend) { return hw_backend_usable(backend); }

void set_backend(Backend backend) {
  OMNC_ASSERT_MSG(backend_supported(backend), "backend not supported on CPU");
  g_backend.store(backend);
}

Backend active_backend() { return g_backend.load(std::memory_order_relaxed); }

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalarTable: return "scalar-table";
    case Backend::kSse2: return "sse2-loop";
    case Backend::kSsse3: return "ssse3-shuffle";
    case Backend::kAvx2: return "avx2-shuffle";
    case Backend::kGfni: return "gfni-mulb";
    case Backend::kNeon: return "neon-shuffle";
    case Backend::kPortable: return "portable-swar";
  }
  return "?";
}

void region_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  const Backend backend = active_backend();
#ifdef OMNC_X86
  if (backend != Backend::kScalarTable && backend != Backend::kPortable) {
    sse2_xor(dst, src, n);
    return;
  }
#endif
#ifdef OMNC_NEON
  if (backend == Backend::kNeon) {
    neon_xor(dst, src, n);
    return;
  }
#endif
  (void)backend;
  scalar_xor(dst, src, n);
}

void region_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n) {
  region_mul_backend(active_backend(), dst, src, c, n);
}

void region_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                 std::size_t n) {
  region_axpy_backend(active_backend(), dst, src, c, n);
}

void region_axpy2(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                  const std::uint8_t* src1, std::uint8_t c1, std::size_t n) {
  region_axpy2_backend(active_backend(), dst, src0, c0, src1, c1, n);
}

void region_axpy4(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                  const std::uint8_t* src1, std::uint8_t c1,
                  const std::uint8_t* src2, std::uint8_t c2,
                  const std::uint8_t* src3, std::uint8_t c3, std::size_t n) {
  region_axpy4_backend(active_backend(), dst, src0, c0, src1, c1, src2, c2,
                       src3, c3, n);
}

void region_axpy_many(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      const std::uint8_t* coeffs, std::size_t count,
                      std::size_t n) {
  const Backend backend = active_backend();
  const std::uint8_t* pending_src[4];
  std::uint8_t pending_c[4];
  std::size_t pending = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (coeffs[k] == 0) continue;
    pending_src[pending] = srcs[k];
    pending_c[pending] = coeffs[k];
    if (++pending == 4) {
      region_axpy4_backend(backend, dst, pending_src[0], pending_c[0],
                           pending_src[1], pending_c[1], pending_src[2],
                           pending_c[2], pending_src[3], pending_c[3], n);
      pending = 0;
    }
  }
  switch (pending) {
    case 3:
      region_axpy2_backend(backend, dst, pending_src[0], pending_c[0],
                           pending_src[1], pending_c[1], n);
      region_axpy_backend(backend, dst, pending_src[2], pending_c[2], n);
      break;
    case 2:
      region_axpy2_backend(backend, dst, pending_src[0], pending_c[0],
                           pending_src[1], pending_c[1], n);
      break;
    case 1:
      region_axpy_backend(backend, dst, pending_src[0], pending_c[0], n);
      break;
    default:
      break;
  }
}

void region_axpy_scatter(std::uint8_t* const* dsts, const std::uint8_t* coeffs,
                         std::size_t count, const std::uint8_t* src,
                         std::size_t n) {
  region_axpy_scatter_backend(active_backend(), dsts, coeffs, count, src, n);
}

namespace {
// Thread-local so the emulation's per-node threads never contend; the code
// family tests drive a single-threaded decoder and read their own counters.
thread_local KernelStats g_kernel_stats;

inline void count_mul(std::uint64_t calls, std::uint64_t bytes) {
  g_kernel_stats.mul_calls += calls;
  g_kernel_stats.mul_bytes += bytes;
}
}  // namespace

KernelStats kernel_stats() { return g_kernel_stats; }

void reset_kernel_stats() { g_kernel_stats = KernelStats{}; }

void region_mul_backend(Backend backend, std::uint8_t* dst,
                        const std::uint8_t* src, std::uint8_t c,
                        std::size_t n) {
  count_mul(1, n);
  switch (backend) {
    case Backend::kScalarTable:
      scalar_mul(dst, src, c, n);
      return;
    case Backend::kPortable:
      portable_mul(dst, src, c, n);
      return;
#ifdef OMNC_X86
    case Backend::kSse2:
      sse2_mul(dst, src, c, n);
      return;
    case Backend::kSsse3:
      ssse3_mul(dst, src, c, n);
      return;
    case Backend::kAvx2:
      avx2_mul(dst, src, c, n);
      return;
    case Backend::kGfni:
      gfni_mul(dst, src, c, n);
      return;
#endif
#ifdef OMNC_NEON
    case Backend::kNeon:
      neon_mul(dst, src, c, n);
      return;
#endif
    default:
      scalar_mul(dst, src, c, n);
      return;
  }
}

void region_axpy_backend(Backend backend, std::uint8_t* dst,
                         const std::uint8_t* src, std::uint8_t c,
                         std::size_t n) {
  count_mul(1, n);
  switch (backend) {
    case Backend::kScalarTable:
      scalar_axpy(dst, src, c, n);
      return;
    case Backend::kPortable:
      portable_axpy(dst, src, c, n);
      return;
#ifdef OMNC_X86
    case Backend::kSse2:
      sse2_axpy(dst, src, c, n);
      return;
    case Backend::kSsse3:
      ssse3_axpy(dst, src, c, n);
      return;
    case Backend::kAvx2:
      avx2_axpy(dst, src, c, n);
      return;
    case Backend::kGfni:
      gfni_axpy(dst, src, c, n);
      return;
#endif
#ifdef OMNC_NEON
    case Backend::kNeon:
      neon_axpy(dst, src, c, n);
      return;
#endif
    default:
      scalar_axpy(dst, src, c, n);
      return;
  }
}

void region_axpy2_backend(Backend backend, std::uint8_t* dst,
                          const std::uint8_t* src0, std::uint8_t c0,
                          const std::uint8_t* src1, std::uint8_t c1,
                          std::size_t n) {
  count_mul(1, 2 * n);
  switch (backend) {
    case Backend::kScalarTable:
      scalar_axpy2(dst, src0, c0, src1, c1, n);
      return;
    case Backend::kPortable:
      portable_axpy2(dst, src0, c0, src1, c1, n);
      return;
#ifdef OMNC_X86
    case Backend::kSse2:
      sse2_axpy2(dst, src0, c0, src1, c1, n);
      return;
    case Backend::kSsse3:
      ssse3_axpy2(dst, src0, c0, src1, c1, n);
      return;
    case Backend::kAvx2:
      avx2_axpy2(dst, src0, c0, src1, c1, n);
      return;
    case Backend::kGfni:
      gfni_axpy2(dst, src0, c0, src1, c1, n);
      return;
#endif
#ifdef OMNC_NEON
    case Backend::kNeon:
      neon_axpy2(dst, src0, c0, src1, c1, n);
      return;
#endif
    default:
      scalar_axpy2(dst, src0, c0, src1, c1, n);
      return;
  }
}

void region_axpy4_backend(Backend backend, std::uint8_t* dst,
                          const std::uint8_t* src0, std::uint8_t c0,
                          const std::uint8_t* src1, std::uint8_t c1,
                          const std::uint8_t* src2, std::uint8_t c2,
                          const std::uint8_t* src3, std::uint8_t c3,
                          std::size_t n) {
  count_mul(1, 4 * n);
  switch (backend) {
    case Backend::kScalarTable:
      scalar_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
    case Backend::kPortable:
      portable_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
#ifdef OMNC_X86
    case Backend::kSse2:
      sse2_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
    case Backend::kSsse3:
      ssse3_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
    case Backend::kAvx2:
      avx2_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
    case Backend::kGfni:
      gfni_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
#endif
#ifdef OMNC_NEON
    case Backend::kNeon:
      neon_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
#endif
    default:
      scalar_axpy4(dst, src0, c0, src1, c1, src2, c2, src3, c3, n);
      return;
  }
}

void region_axpy_scatter_backend(Backend backend, std::uint8_t* const* dsts,
                                 const std::uint8_t* coeffs, std::size_t count,
                                 const std::uint8_t* src, std::size_t n) {
  switch (backend) {
    // The fused scatter paths count here; the default path delegates to
    // region_axpy_backend per destination and is counted there.
#ifdef OMNC_X86
    case Backend::kSsse3:
      count_mul(1, count * n);
      ssse3_axpy_scatter(dsts, coeffs, count, src, n);
      return;
    case Backend::kAvx2:
      count_mul(1, count * n);
      avx2_axpy_scatter(dsts, coeffs, count, src, n);
      return;
    case Backend::kGfni:
      count_mul(1, count * n);
      gfni_axpy_scatter(dsts, coeffs, count, src, n);
      return;
#endif
#ifdef OMNC_NEON
    case Backend::kNeon:
      count_mul(1, count * n);
      neon_axpy_scatter(dsts, coeffs, count, src, n);
      return;
#endif
    default:
      // Scalar, SSE2 and the SWAR fallback gain nothing from hoisting the
      // source, so the scatter form is just the per-destination loop.
      for (std::size_t r = 0; r < count; ++r) {
        region_axpy_backend(backend, dsts[r], src, coeffs[r], n);
      }
      return;
  }
}

}  // namespace omnc::gf

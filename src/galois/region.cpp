#include "galois/region.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define OMNC_X86 1
#endif

#include "common/assert.h"
#include "galois/gf256.h"

namespace omnc::gf {
namespace {

// ---------------------------------------------------------------------------
// Scalar lookup-table backend (the baseline the paper compares against).
// ---------------------------------------------------------------------------

void scalar_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n) {
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void scalar_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                 std::size_t n) {
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void scalar_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  // Word-at-a-time XOR; memcpy keeps it alias/alignment safe.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

#ifdef OMNC_X86

// ---------------------------------------------------------------------------
// SSE2 backend: loop-based (double-and-add) multiplication, per the paper's
// accelerated coding framework.  Each of the (at most) 8 rounds doubles the
// running product in the field — shift left bytewise, conditionally XOR the
// reduction polynomial where the high bit was set — and adds src when the
// corresponding bit of the constant is set.  Rounds above the constant's top
// bit are skipped.
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) inline __m128i sse2_xtime(__m128i v) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i poly = _mm_set1_epi8(static_cast<char>(kPoly));
  const __m128i high = _mm_cmpgt_epi8(zero, v);  // 0xFF where sign bit set
  __m128i shifted = _mm_add_epi8(v, v);          // bytewise << 1
  return _mm_xor_si128(shifted, _mm_and_si128(high, poly));
}

__attribute__((target("sse2"))) inline __m128i sse2_mul_const(__m128i v,
                                                              std::uint8_t c) {
  __m128i product = _mm_setzero_si128();
  // Horner form over the bits of c, most significant first.
  int top = 7;
  while (top > 0 && !((c >> top) & 1)) --top;
  for (int bit = top; bit >= 0; --bit) {
    if (bit != top) product = sse2_xtime(product);
    if ((c >> bit) & 1) product = _mm_xor_si128(product, v);
  }
  return product;
}

__attribute__((target("sse2"))) void sse2_xor(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t n);

// Two independent double-and-add chains per iteration hide the xtime
// dependency latency on superscalar cores.
__attribute__((target("sse2"))) inline void sse2_mul_const2(
    __m128i v0, __m128i v1, std::uint8_t c, __m128i* out0, __m128i* out1) {
  __m128i p0 = _mm_setzero_si128();
  __m128i p1 = _mm_setzero_si128();
  int top = 7;
  while (top > 0 && !((c >> top) & 1)) --top;
  for (int bit = top; bit >= 0; --bit) {
    if (bit != top) {
      p0 = sse2_xtime(p0);
      p1 = sse2_xtime(p1);
    }
    if ((c >> bit) & 1) {
      p0 = _mm_xor_si128(p0, v0);
      p1 = _mm_xor_si128(p1, v1);
    }
  }
  *out0 = p0;
  *out1 = p1;
}

__attribute__((target("sse2"))) void sse2_mul(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::uint8_t c, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    __m128i p0;
    __m128i p1;
    sse2_mul_const2(v0, v1, c, &p0, &p1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), p1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), sse2_mul_const(v, c));
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

__attribute__((target("sse2"))) void sse2_axpy(std::uint8_t* dst,
                                               const std::uint8_t* src,
                                               std::uint8_t c, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    sse2_xor(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    __m128i p0;
    __m128i p1;
    sse2_mul_const2(v0, v1, c, &p0, &p1);
    const __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i d1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d0, p0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(d1, p1));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, sse2_mul_const(v, c)));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

__attribute__((target("sse2"))) void sse2_xor(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, v));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// ---------------------------------------------------------------------------
// SSSE3 backend: split the byte into nibbles and resolve each through a
// 16-entry PSHUFB table derived from the full multiplication table.
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) void ssse3_tables(std::uint8_t c,
                                                   __m128i* lo_table,
                                                   __m128i* hi_table) {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
  const std::uint8_t* row = mul_row(c);
  for (int i = 0; i < 16; ++i) {
    lo[i] = row[i];
    hi[i] = row[i << 4];
  }
  *lo_table = _mm_load_si128(reinterpret_cast<const __m128i*>(lo));
  *hi_table = _mm_load_si128(reinterpret_cast<const __m128i*>(hi));
}

__attribute__((target("ssse3"))) void ssse3_mul(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::uint8_t c, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  __m128i lo_table;
  __m128i hi_table;
  ssse3_tables(c, &lo_table, &hi_table);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i product = _mm_xor_si128(_mm_shuffle_epi8(lo_table, lo),
                                          _mm_shuffle_epi8(hi_table, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), product);
  }
  if (i < n) scalar_mul(dst + i, src + i, c, n - i);
}

__attribute__((target("ssse3"))) void ssse3_axpy(std::uint8_t* dst,
                                                 const std::uint8_t* src,
                                                 std::uint8_t c,
                                                 std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    sse2_xor(dst, src, n);
    return;
  }
  __m128i lo_table;
  __m128i hi_table;
  ssse3_tables(c, &lo_table, &hi_table);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i product = _mm_xor_si128(_mm_shuffle_epi8(lo_table, lo),
                                          _mm_shuffle_epi8(hi_table, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, product));
  }
  if (i < n) scalar_axpy(dst + i, src + i, c, n - i);
}

bool cpu_has(const char* feature) {
#if defined(__x86_64__)
  if (std::strcmp(feature, "sse2") == 0) return true;  // baseline on x86-64
  unsigned eax = 1, ebx = 0, ecx = 0, edx = 0;
  __asm__ volatile("cpuid"
                   : "+a"(eax), "=b"(ebx), "+c"(ecx), "=d"(edx));
  if (std::strcmp(feature, "ssse3") == 0) return (ecx & (1u << 9)) != 0;
  return false;
#else
  (void)feature;
  return false;
#endif
}

#endif  // OMNC_X86

Backend detect_default_backend() {
#ifdef OMNC_X86
  if (const char* env = std::getenv("OMNC_GF_BACKEND")) {
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalarTable;
    if (std::strcmp(env, "sse2") == 0) return Backend::kSse2;
    if (std::strcmp(env, "ssse3") == 0 && cpu_has("ssse3")) {
      return Backend::kSsse3;
    }
  }
  if (cpu_has("ssse3")) return Backend::kSsse3;
  return Backend::kSse2;
#else
  return Backend::kScalarTable;
#endif
}

std::atomic<Backend> g_backend{detect_default_backend()};

}  // namespace

bool backend_supported(Backend backend) {
  switch (backend) {
    case Backend::kScalarTable:
      return true;
    case Backend::kSse2:
#ifdef OMNC_X86
      return cpu_has("sse2");
#else
      return false;
#endif
    case Backend::kSsse3:
#ifdef OMNC_X86
      return cpu_has("ssse3");
#else
      return false;
#endif
  }
  return false;
}

void set_backend(Backend backend) {
  OMNC_ASSERT_MSG(backend_supported(backend), "backend not supported on CPU");
  g_backend.store(backend);
}

Backend active_backend() { return g_backend.load(std::memory_order_relaxed); }

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalarTable: return "scalar-table";
    case Backend::kSse2: return "sse2-loop";
    case Backend::kSsse3: return "ssse3-shuffle";
  }
  return "?";
}

void region_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
#ifdef OMNC_X86
  if (active_backend() != Backend::kScalarTable) {
    sse2_xor(dst, src, n);
    return;
  }
#endif
  scalar_xor(dst, src, n);
}

void region_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n) {
  region_mul_backend(active_backend(), dst, src, c, n);
}

void region_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                 std::size_t n) {
  region_axpy_backend(active_backend(), dst, src, c, n);
}

void region_mul_backend(Backend backend, std::uint8_t* dst,
                        const std::uint8_t* src, std::uint8_t c,
                        std::size_t n) {
  switch (backend) {
    case Backend::kScalarTable:
      scalar_mul(dst, src, c, n);
      return;
#ifdef OMNC_X86
    case Backend::kSse2:
      sse2_mul(dst, src, c, n);
      return;
    case Backend::kSsse3:
      ssse3_mul(dst, src, c, n);
      return;
#else
    default:
      scalar_mul(dst, src, c, n);
      return;
#endif
  }
}

void region_axpy_backend(Backend backend, std::uint8_t* dst,
                         const std::uint8_t* src, std::uint8_t c,
                         std::size_t n) {
  switch (backend) {
    case Backend::kScalarTable:
      scalar_axpy(dst, src, c, n);
      return;
#ifdef OMNC_X86
    case Backend::kSse2:
      sse2_axpy(dst, src, c, n);
      return;
    case Backend::kSsse3:
      ssse3_axpy(dst, src, c, n);
      return;
#else
    default:
      scalar_axpy(dst, src, c, n);
      return;
#endif
  }
}

}  // namespace omnc::gf

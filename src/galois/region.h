// Bulk GF(2^8) region kernels — the hot path of network coding.
//
// Five backends implement the same contract:
//   * kScalarTable — per-byte full multiplication table lookups, the
//     "traditional lookup-table approach" (MORE-style) the paper compares
//     against;
//   * kSse2 — the paper's accelerated scheme: a loop-based (double-and-add)
//     multiply over Rijndael's field carried out on 16-byte SSE2 registers,
//     no per-byte table lookups;
//   * kSsse3 — nibble split tables with PSHUFB, the fastest portable x86
//     variant; included to show the acceleration headroom beyond SSE2;
//   * kAvx2 — the same nibble-table scheme widened to 32-byte VPSHUFB
//     registers (both 128-bit lanes carry the same 16-entry table);
//   * kGfni — GF2P8MULB computes the product in GF(2^8) over the AES
//     polynomial 0x11B directly — exactly this codebase's field — one
//     instruction per 32 bytes, no tables at all;
//   * kNeon — the nibble-table scheme on 16-byte NEON registers via
//     vqtbl1q_u8 (aarch64 only), sharing the precomputed lo/hi tables with
//     the x86 shuffle backends;
//   * kPortable — a plain-C 64-bit SWAR double-and-add multiply (the SSE2
//     scheme on uint64 lanes), the fallback for targets with neither x86
//     nor NEON vector units.  Compiled and selectable everywhere, so x86 CI
//     can force it to keep non-x86 code paths green.
//
// On top of the single-source kernels, the fused variants region_axpy2 /
// region_axpy4 fold two or four source rows into one destination pass; the
// destination is read and written once instead of per source, roughly
// halving (or quartering) memory traffic during Gaussian elimination and
// re-encoding.  region_axpy_many drives them over an arbitrary source list.
//
// The active backend is chosen at startup from CPUID (leaf 1, leaf 7 and
// XGETBV for the OS-enabled AVX state; NEON is implied by the aarch64
// baseline) and can be overridden programmatically (set_backend) or with
// OMNC_GF_BACKEND=scalar|sse2|ssse3|avx2|gfni|neon|portable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omnc::gf {

enum class Backend {
  kScalarTable,
  kSse2,
  kSsse3,
  kAvx2,
  kGfni,
  kNeon,
  kPortable,
};

/// True if the instruction set for `backend` is available on this CPU.
bool backend_supported(Backend backend);

/// Selects the region-kernel backend; asserts that it is supported.
void set_backend(Backend backend);

/// Currently active backend.
Backend active_backend();

const char* backend_name(Backend backend);

/// Thread-local accounting of GF *multiply* kernel work (region_mul and the
/// axpy family; region_xor is multiply-free and deliberately not counted).
/// Every dispatch funnels through the region_*_backend functions, so the
/// counters see all multiply traffic regardless of backend or fusing.  Used
/// by the code-family tests to prove structural claims — e.g. that a
/// systematic decode of a lossless generation performs zero multiplies.
struct KernelStats {
  std::uint64_t mul_calls = 0;  // multiply-kernel invocations
  std::uint64_t mul_bytes = 0;  // source bytes folded through multiplies
};

/// Snapshot of this thread's counters since the last reset.
KernelStats kernel_stats();

/// Zeroes this thread's counters.
void reset_kernel_stats();

/// dst[i] ^= src[i]
void region_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[i] = c * src[i]; in-place (dst == src) is allowed.
void region_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n);

/// dst[i] ^= c * src[i]; the encode/decode workhorse.  dst and src must not
/// alias unless equal... they must be either identical or disjoint.
void region_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                 std::size_t n);

/// dst[i] ^= c0 * src0[i] ^ c1 * src1[i]; one destination read/write pass
/// for two sources.  dst must not alias either source.
void region_axpy2(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                  const std::uint8_t* src1, std::uint8_t c1, std::size_t n);

/// Four-source fold; dst must not alias any source.
void region_axpy4(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                  const std::uint8_t* src1, std::uint8_t c1,
                  const std::uint8_t* src2, std::uint8_t c2,
                  const std::uint8_t* src3, std::uint8_t c3, std::size_t n);

/// dst[i] ^= sum_k coeffs[k] * srcs[k][i] over `count` sources.  Skips zero
/// coefficients and consumes the fused kernels four (then two) sources at a
/// time; the workhorse of batched payload elimination and re-encoding.
void region_axpy_many(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      const std::uint8_t* coeffs, std::size_t count,
                      std::size_t n);

/// The scatter dual of region_axpy_many: dsts[k][i] ^= coeffs[k] * src[i]
/// for every k.  One source applied to `count` destinations in a single
/// call — the source block (and, for the shuffle backends, its nibble
/// split) is loaded once per register-width chunk instead of once per
/// destination.  This is the back-substitution shape in Gaussian
/// elimination, where per-call setup would otherwise dominate the short
/// rows.  No dsts[k] may alias src or another destination.
void region_axpy_scatter(std::uint8_t* const* dsts, const std::uint8_t* coeffs,
                         std::size_t count, const std::uint8_t* src,
                         std::size_t n);

// Direct entry points for a specific backend, used by the coding-speed bench
// and the backend-equivalence tests to exercise each variant regardless of
// the global selection.
void region_mul_backend(Backend backend, std::uint8_t* dst,
                        const std::uint8_t* src, std::uint8_t c, std::size_t n);
void region_axpy_backend(Backend backend, std::uint8_t* dst,
                         const std::uint8_t* src, std::uint8_t c, std::size_t n);
void region_axpy2_backend(Backend backend, std::uint8_t* dst,
                          const std::uint8_t* src0, std::uint8_t c0,
                          const std::uint8_t* src1, std::uint8_t c1,
                          std::size_t n);
void region_axpy4_backend(Backend backend, std::uint8_t* dst,
                          const std::uint8_t* src0, std::uint8_t c0,
                          const std::uint8_t* src1, std::uint8_t c1,
                          const std::uint8_t* src2, std::uint8_t c2,
                          const std::uint8_t* src3, std::uint8_t c3,
                          std::size_t n);
void region_axpy_scatter_backend(Backend backend, std::uint8_t* const* dsts,
                                 const std::uint8_t* coeffs, std::size_t count,
                                 const std::uint8_t* src, std::size_t n);

}  // namespace omnc::gf

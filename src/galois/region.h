// Bulk GF(2^8) region kernels — the hot path of network coding.
//
// Three backends implement the same contract:
//   * kScalarTable — per-byte full multiplication table lookups, the
//     "traditional lookup-table approach" (MORE-style) the paper compares
//     against;
//   * kSse2 — the paper's accelerated scheme: a loop-based (double-and-add)
//     multiply over Rijndael's field carried out on 16-byte SSE2 registers,
//     no per-byte table lookups;
//   * kSsse3 — nibble split tables with PSHUFB, the fastest portable x86
//     variant; included to show the acceleration headroom beyond SSE2.
//
// The active backend is chosen at startup from CPUID and can be overridden
// programmatically (set_backend) or with OMNC_GF_BACKEND=scalar|sse2|ssse3.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omnc::gf {

enum class Backend { kScalarTable, kSse2, kSsse3 };

/// True if the instruction set for `backend` is available on this CPU.
bool backend_supported(Backend backend);

/// Selects the region-kernel backend; asserts that it is supported.
void set_backend(Backend backend);

/// Currently active backend.
Backend active_backend();

const char* backend_name(Backend backend);

/// dst[i] ^= src[i]
void region_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[i] = c * src[i]; in-place (dst == src) is allowed.
void region_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n);

/// dst[i] ^= c * src[i]; the encode/decode workhorse.  dst and src must not
/// alias unless equal... they must be either identical or disjoint.
void region_axpy(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                 std::size_t n);

// Direct entry points for a specific backend, used by the coding-speed bench
// to measure each variant regardless of the global selection.
void region_mul_backend(Backend backend, std::uint8_t* dst,
                        const std::uint8_t* src, std::uint8_t c, std::size_t n);
void region_axpy_backend(Backend backend, std::uint8_t* dst,
                         const std::uint8_t* src, std::uint8_t c, std::size_t n);

}  // namespace omnc::gf

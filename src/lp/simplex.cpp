#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "obs/registry.h"

namespace omnc::lp {
namespace {

constexpr double kEps = 1e-9;

/// Classic dense tableau.  Row 0 is the objective row holding z_j - c_j;
/// rows 1..m are the constraints; the last column is the RHS.  Maximization:
/// optimal when every objective-row entry is >= -kEps.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    OMNC_SCOPED_TIMER("lp/simplex_pivot");
    const double pivot_value = at(pivot_row, pivot_col);
    OMNC_ASSERT(std::abs(pivot_value) > kEps);
    const double inverse = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols_; ++c) at(pivot_row, c) *= inverse;
    at(pivot_row, pivot_col) = 1.0;  // exact
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (std::abs(factor) < kEps) {
        at(r, pivot_col) = 0.0;
        continue;
      }
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
      at(r, pivot_col) = 0.0;  // exact
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

struct SimplexState {
  Tableau tableau;
  std::vector<std::size_t> basis;       // basis[r-1] = column basic in row r
  std::vector<bool> allowed;            // columns eligible to enter
};

/// Runs primal simplex iterations on the prepared tableau until optimality
/// or unboundedness.  Uses Dantzig pricing normally, switching to Bland's
/// rule when the objective has stalled for a while.
Status iterate(SimplexState& state) {
  Tableau& tab = state.tableau;
  const std::size_t rhs_col = tab.cols() - 1;
  const std::size_t m = tab.rows() - 1;
  double last_objective = -std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  const std::size_t stall_limit = 50 + 4 * m;
  // Generous global bound; cycling is prevented by Bland's rule after stall.
  const std::size_t max_iterations = 2000 + 200 * m;

  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    const bool use_bland = stall > stall_limit;
    // Entering column: objective-row entry < -kEps.
    std::size_t entering = tab.cols();
    double best = -kEps;
    for (std::size_t c = 0; c + 1 < tab.cols(); ++c) {
      if (!state.allowed[c]) continue;
      const double reduced = tab.at(0, c);
      if (reduced < -kEps) {
        if (use_bland) {
          entering = c;
          break;
        }
        if (reduced < best) {
          best = reduced;
          entering = c;
        }
      }
    }
    if (entering == tab.cols()) return Status::kOptimal;

    // Ratio test; ties resolved by smallest basis column (lexicographic
    // enough in combination with Bland's entering rule).
    std::size_t leaving_row = 0;
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_basis_col = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = 1; r <= m; ++r) {
      const double column_entry = tab.at(r, entering);
      if (column_entry <= kEps) continue;
      const double ratio = tab.at(r, rhs_col) / column_entry;
      if (ratio < best_ratio - kEps ||
          (ratio < best_ratio + kEps && state.basis[r - 1] < best_basis_col)) {
        best_ratio = ratio;
        leaving_row = r;
        best_basis_col = state.basis[r - 1];
      }
    }
    if (leaving_row == 0) return Status::kUnbounded;

    tab.pivot(leaving_row, entering);
    state.basis[leaving_row - 1] = entering;

    // With row 0 seeded as -c, the RHS of row 0 accumulates +z.
    const double objective = tab.at(0, rhs_col);
    if (objective > last_objective + kEps) {
      last_objective = objective;
      stall = 0;
    } else {
      ++stall;
    }
  }
  OMNC_ASSERT_MSG(false, "simplex iteration limit exceeded");
  return Status::kInfeasible;  // unreachable
}

}  // namespace

void Problem::add_le(std::vector<double> coefficients, double rhs) {
  OMNC_ASSERT(coefficients.size() == num_variables());
  constraints.push_back({std::move(coefficients), Relation::kLessEqual, rhs});
}

void Problem::add_ge(std::vector<double> coefficients, double rhs) {
  OMNC_ASSERT(coefficients.size() == num_variables());
  constraints.push_back({std::move(coefficients), Relation::kGreaterEqual, rhs});
}

void Problem::add_eq(std::vector<double> coefficients, double rhs) {
  OMNC_ASSERT(coefficients.size() == num_variables());
  constraints.push_back({std::move(coefficients), Relation::kEqual, rhs});
}

Solution solve(const Problem& problem) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.constraints.size();
  OMNC_ASSERT(n > 0);

  // Column layout: [structural | slacks/surplus | artificials | rhs].
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  for (const Constraint& row : problem.constraints) {
    OMNC_ASSERT(row.coefficients.size() == n);
    if (row.relation != Relation::kEqual) ++slack_count;
    // Artificials are added per-row below only where needed.
    (void)artificial_count;
  }

  // First pass: normalize rows to nonnegative rhs and decide which rows need
  // artificial variables (>= rows and = rows; <= rows start basic on their
  // slack).
  struct RowPlan {
    std::vector<double> coefficients;
    Relation relation;
    double rhs;
    std::size_t slack_col = 0;       // 0 = none (offset by base below)
    bool has_slack = false;
    bool slack_is_basic = false;
    bool needs_artificial = false;
  };
  std::vector<RowPlan> plan(m);
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& row = problem.constraints[r];
    plan[r].coefficients = row.coefficients;
    plan[r].relation = row.relation;
    plan[r].rhs = row.rhs;
    if (plan[r].rhs < 0.0) {
      for (double& v : plan[r].coefficients) v = -v;
      plan[r].rhs = -plan[r].rhs;
      switch (plan[r].relation) {
        case Relation::kLessEqual:
          plan[r].relation = Relation::kGreaterEqual;
          break;
        case Relation::kGreaterEqual:
          plan[r].relation = Relation::kLessEqual;
          break;
        case Relation::kEqual:
          break;
      }
    }
    switch (plan[r].relation) {
      case Relation::kLessEqual:
        plan[r].has_slack = true;
        plan[r].slack_is_basic = true;
        break;
      case Relation::kGreaterEqual:
        plan[r].has_slack = true;  // surplus
        plan[r].needs_artificial = true;
        break;
      case Relation::kEqual:
        plan[r].needs_artificial = true;
        break;
    }
  }
  slack_count = 0;
  artificial_count = 0;
  for (RowPlan& row : plan) {
    if (row.has_slack) row.slack_col = slack_count++;
    if (row.needs_artificial) ++artificial_count;
  }

  const std::size_t total_cols = n + slack_count + artificial_count + 1;
  const std::size_t rhs_col = total_cols - 1;
  const std::size_t artificial_base = n + slack_count;

  SimplexState state{Tableau(m + 1, total_cols), {}, {}};
  state.basis.resize(m);
  state.allowed.assign(total_cols - 1, true);
  Tableau& tab = state.tableau;

  std::size_t next_artificial = artificial_base;
  for (std::size_t r = 0; r < m; ++r) {
    const RowPlan& row = plan[r];
    for (std::size_t c = 0; c < n; ++c) tab.at(r + 1, c) = row.coefficients[c];
    tab.at(r + 1, rhs_col) = row.rhs;
    if (row.has_slack) {
      const double sign =
          (row.relation == Relation::kLessEqual) ? 1.0 : -1.0;  // surplus
      tab.at(r + 1, n + row.slack_col) = sign;
    }
    if (row.needs_artificial) {
      tab.at(r + 1, next_artificial) = 1.0;
      state.basis[r] = next_artificial;
      ++next_artificial;
    } else {
      state.basis[r] = n + row.slack_col;
    }
  }

  // ---- Phase 1: maximize -(sum of artificials). ----
  if (artificial_count > 0) {
    // Objective row: z_j - c_j with c = -1 on artificials.  Start from c_B
    // contributions: artificials are basic, so subtract their rows.
    for (std::size_t c = 0; c < total_cols; ++c) tab.at(0, c) = 0.0;
    for (std::size_t a = artificial_base; a < artificial_base + artificial_count;
         ++a) {
      tab.at(0, a) = 1.0;  // -c_j with c_j = -1
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (state.basis[r] >= artificial_base) {
        for (std::size_t c = 0; c < total_cols; ++c) {
          tab.at(0, c) -= tab.at(r + 1, c);
        }
      }
    }
    const Status phase1 = iterate(state);
    OMNC_ASSERT_MSG(phase1 == Status::kOptimal,
                    "phase 1 cannot be unbounded");
    // Phase-1 objective z = -(sum of artificials); the problem is feasible
    // iff that sum is (numerically) zero.
    const double sum_artificials = -tab.at(0, rhs_col);
    if (sum_artificials > 1e-6) {
      return Solution{Status::kInfeasible, 0.0, {}};
    }
    // Drive any artificial still basic (at zero) out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (state.basis[r] < artificial_base) continue;
      std::size_t entering = total_cols;
      for (std::size_t c = 0; c < artificial_base; ++c) {
        if (std::abs(tab.at(r + 1, c)) > kEps) {
          entering = c;
          break;
        }
      }
      if (entering < total_cols) {
        tab.pivot(r + 1, entering);
        state.basis[r] = entering;
      }
      // Otherwise the row is redundant (all-zero); it stays with a zero
      // artificial, which can never re-enter because artificials are
      // disallowed in phase 2.
    }
    // Forbid artificial columns from now on.
    for (std::size_t a = artificial_base; a < artificial_base + artificial_count;
         ++a) {
      state.allowed[a] = false;
    }
  }

  // ---- Phase 2: the real objective. ----
  for (std::size_t c = 0; c < total_cols; ++c) tab.at(0, c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) tab.at(0, c) = -problem.objective[c];
  // Make the objective row consistent with the current basis: reduced cost
  // of every basic column must be zero.
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t basic = state.basis[r];
    const double coefficient = tab.at(0, basic);
    if (std::abs(coefficient) > kEps) {
      for (std::size_t c = 0; c < total_cols; ++c) {
        tab.at(0, c) -= coefficient * tab.at(r + 1, c);
      }
      tab.at(0, basic) = 0.0;
    }
  }
  const Status phase2 = iterate(state);
  if (phase2 == Status::kUnbounded) {
    return Solution{Status::kUnbounded, 0.0, {}};
  }

  Solution solution;
  solution.status = Status::kOptimal;
  solution.objective = tab.at(0, rhs_col);
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (state.basis[r] < n) {
      solution.x[state.basis[r]] = tab.at(r + 1, rhs_col);
    }
  }
  return solution;
}

}  // namespace omnc::lp

// Dense two-phase primal simplex solver.
//
// Solves   maximize c^T x   subject to   A_i x {<=,=,>=} b_i,  x >= 0.
//
// This is the centralized ground truth for the paper's sUnicast linear
// program ("the sUnicast problem is a linear program ... solved in
// polynomial time") and the solver behind the oldMORE min-cost baseline.
// Problem sizes here are a few hundred variables/rows, so a dense tableau
// with Dantzig pricing (falling back to Bland's rule when the objective
// stalls, for anti-cycling) is both simple and fast enough.
#pragma once

#include <cstddef>
#include <vector>

namespace omnc::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

enum class Status { kOptimal, kInfeasible, kUnbounded };

struct Constraint {
  std::vector<double> coefficients;  // length = variable count
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

struct Problem {
  /// Objective coefficients (maximization); length defines the variable
  /// count.
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  std::size_t num_variables() const { return objective.size(); }

  /// Convenience builders.
  void add_le(std::vector<double> coefficients, double rhs);
  void add_ge(std::vector<double> coefficients, double rhs);
  void add_eq(std::vector<double> coefficients, double rhs);
};

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the problem; `x` is meaningful only when status == kOptimal.
Solution solve(const Problem& problem);

}  // namespace omnc::lp

#include "net/mac.h"

#include <algorithm>
#include <deque>

#include "common/assert.h"

namespace omnc::net {

SlottedMac::SlottedMac(sim::Simulator& simulator, const Topology& topology,
                       std::vector<NodeId> participants,
                       const MacConfig& config, Rng rng)
    : simulator_(simulator),
      topology_(topology),
      participants_(std::move(participants)),
      config_(config),
      rng_(rng) {
  OMNC_ASSERT(!participants_.empty());
  OMNC_ASSERT(config_.capacity_bytes_per_s > 0.0);
  OMNC_ASSERT(config_.slot_bytes > 0);
  node_to_index_.assign(static_cast<std::size_t>(topology_.node_count()), -1);
  states_.resize(participants_.size());
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    const NodeId id = participants_[i];
    OMNC_ASSERT(id >= 0 && id < topology_.node_count());
    OMNC_ASSERT_MSG(node_to_index_[static_cast<std::size_t>(id)] == -1,
                    "duplicate participant");
    node_to_index_[static_cast<std::size_t>(id)] = static_cast<int>(i);
  }
  // Transmitters serialize iff they can hear each other (carrier sense over
  // the interference range).  Hidden-terminal collisions — two mutually
  // inaudible transmitters covering a common receiver — are resolved per
  // slot at the receiver, not forbidden in the schedule (unless
  // protect_receivers idealizes them away).
  const std::size_t n = participants_.size();
  conflict_.assign(n * n, 0);
  auto hears = [&](NodeId a, NodeId b) { return topology_.interferes(a, b); };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      bool clash = hears(participants_[a], participants_[b]);
      if (config_.protect_receivers) {
        for (std::size_t v = 0; !clash && v < n; ++v) {
          if (v == a || v == b) continue;
          clash = hears(participants_[a], participants_[v]) &&
                  hears(participants_[b], participants_[v]);
        }
      }
      conflict_[a * n + b] = clash ? 1 : 0;
      conflict_[b * n + a] = clash ? 1 : 0;
    }
  }

  // Per-link Gilbert-Elliott fading, mean-preserving: the long-run average
  // reception probability of every link equals the topology's p_ij.
  effective_p_.assign(n * n, 0.0);
  const FadingConfig& fading = config_.fading;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const double p = topology_.prob(participants_[a], participants_[b]);
      if (p <= 0.0) continue;
      effective_p_[a * n + b] = p;
      if (!fading.enabled) continue;
      const double pi_bad = fading.bad_fraction;
      double p_good = p * (1.0 - pi_bad * fading.bad_scale) / (1.0 - pi_bad);
      double p_bad = p * fading.bad_scale;
      if (p_good > 0.98) {
        // Strong links saturate; rebalance the fade depth to keep the mean.
        p_good = 0.98;
        p_bad = (p - (1.0 - pi_bad) * p_good) / pi_bad;
        if (p_bad < 0.0) p_bad = 0.0;
      }
      LinkFade link{a, b, p_good, p_bad, rng_.chance(pi_bad)};
      effective_p_[a * n + b] = link.bad ? p_bad : p_good;
      fades_.push_back(link);
    }
  }
}

void SlottedMac::advance_fading() {
  const FadingConfig& fading = config_.fading;
  if (!fading.enabled) return;
  const std::size_t n = participants_.size();
  const double leave_bad = 1.0 / fading.mean_bad_slots;
  const double enter_bad = fading.bad_fraction / (1.0 - fading.bad_fraction) /
                           fading.mean_bad_slots;
  for (LinkFade& link : fades_) {
    if (link.bad) {
      if (rng_.chance(leave_bad)) link.bad = false;
    } else {
      if (rng_.chance(enter_bad)) link.bad = true;
    }
    effective_p_[link.tx_index * n + link.rx_index] =
        link.bad ? link.p_bad : link.p_good;
  }
}

int SlottedMac::index_of(NodeId node) const {
  OMNC_ASSERT(node >= 0 && node < topology_.node_count());
  const int index = node_to_index_[static_cast<std::size_t>(node)];
  OMNC_ASSERT_MSG(index >= 0, "node is not a MAC participant");
  return index;
}

void SlottedMac::set_receive_handler(ReceiveHandler handler) {
  receive_handler_ = std::move(handler);
}

void SlottedMac::add_slot_hook(SlotHook hook) {
  slot_hooks_.push_back(std::move(hook));
}

bool SlottedMac::enqueue(Frame frame) {
  NodeState& state = states_[static_cast<std::size_t>(index_of(frame.from))];
  if (state.queue.size() >= config_.max_queue) {
    ++drops_;
    if (observer_ != nullptr) observer_->on_drop(simulator_.now(), frame.from);
    return false;
  }
  OMNC_ASSERT(frame.bytes != nullptr);
  if (frame.to != kBroadcast) {
    OMNC_ASSERT(frame.to >= 0 && frame.to < topology_.node_count());
  }
  state.queue.push_back(std::move(frame));
  return true;
}

std::size_t SlottedMac::queue_size(NodeId node) const {
  return states_[static_cast<std::size_t>(index_of(node))].queue.size();
}

void SlottedMac::purge_queue(
    NodeId node, const std::function<bool(const Frame&)>& predicate) {
  auto& queue = states_[static_cast<std::size_t>(index_of(node))].queue;
  queue.erase(std::remove_if(queue.begin(), queue.end(), predicate),
              queue.end());
}

void SlottedMac::start() {
  if (running_) return;
  running_ = true;
  simulator_.schedule_in(slot_duration(), [this] { run_slot(); });
}

void SlottedMac::stop() { running_ = false; }

void SlottedMac::run_slot() {
  if (!running_) return;
  const sim::Time now = simulator_.now();
  advance_fading();
  for (const SlotHook& hook : slot_hooks_) hook(now);

  const std::size_t n = participants_.size();
  // Nodes finishing a multi-slot unicast attempt keep the channel busy: they
  // count as transmitting (interference + cannot receive) but send nothing
  // new and are not re-admitted.
  std::vector<std::uint8_t> transmitting(n, 0);
  std::vector<std::size_t> phantoms;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].cooldown > 0) {
      --states_[i].cooldown;
      transmitting[i] = 1;
      phantoms.push_back(i);
    }
  }

  std::vector<std::size_t> backlogged;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (transmitting[i] == 0 && !states_[i].queue.empty()) {
      backlogged.push_back(i);
    }
  }

  std::vector<std::size_t> admitted;
  if (config_.mode == MacMode::kIdealScheduling) {
    // Greedy maximal conflict-free schedule in uniformly random priority
    // order: an idealized randomized TDMA.  (Queue-length priority would let
    // a saturated source starve its own downstream relays forever.)
    rng_.shuffle(backlogged);
    for (std::size_t candidate : backlogged) {
      bool blocked = false;
      for (std::size_t other = 0; !blocked && other < n; ++other) {
        blocked = transmitting[other] != 0 &&
                  conflict_[candidate * n + other] != 0;
      }
      if (!blocked) {
        admitted.push_back(candidate);
        transmitting[candidate] = 1;
      }
    }
  } else {
    // p-persistent CSMA: attempt with probability 1 / (1 + backlogged
    // in-range competitors).  Attempts are independent; nothing prevents two
    // in-range nodes from firing together — that is what collisions are.
    // Carrier sensing defers to in-range nodes already mid-attempt.
    std::vector<std::uint8_t> is_backlogged(n, 0);
    for (std::size_t i : backlogged) is_backlogged[i] = 1;
    for (std::size_t candidate : backlogged) {
      std::size_t contenders = 1;
      for (std::size_t other = 0; other < n; ++other) {
        if (other != candidate && is_backlogged[other] &&
            conflict_[candidate * n + other] != 0) {
          ++contenders;
        }
      }
      bool channel_busy = false;
      for (std::size_t phantom : phantoms) {
        if (conflict_[candidate * n + phantom] != 0) {
          channel_busy = true;
          break;
        }
      }
      if (channel_busy) {
        if (observer_ != nullptr) {
          observer_->on_contention(now, participants_[candidate],
                                   static_cast<int>(contenders), false);
        }
        continue;
      }
      const double attempt = std::min(
          1.0, config_.csma_persistence / static_cast<double>(contenders));
      const bool fired = rng_.chance(attempt);
      if (observer_ != nullptr) {
        observer_->on_contention(now, participants_[candidate],
                                 static_cast<int>(contenders), fired);
      }
      if (fired) {
        admitted.push_back(candidate);
        transmitting[candidate] = 1;
      }
    }
  }

  // Hidden-terminal collisions: a participant covered by two or more
  // concurrent transmitters (including tail slots of multi-slot unicast
  // attempts) receives nothing this slot.
  std::vector<std::uint8_t> covered(n, 0);
  auto cover_neighborhood = [&](std::size_t tx_index) {
    const NodeId tx = participants_[tx_index];
    for (NodeId nbr : topology_.interference_neighbors(tx)) {
      const int rx_index = node_to_index_[static_cast<std::size_t>(nbr)];
      if (rx_index >= 0 && covered[static_cast<std::size_t>(rx_index)] < 2) {
        ++covered[static_cast<std::size_t>(rx_index)];
      }
    }
  };
  for (std::size_t tx_index : admitted) cover_neighborhood(tx_index);
  for (std::size_t phantom : phantoms) cover_neighborhood(phantom);

  // Transmit.
  for (std::size_t tx_index : admitted) {
    NodeState& state = states_[tx_index];
    Frame& frame = state.queue.front();
    ++state.transmissions;
    if (observer_ != nullptr) observer_->on_transmit(now, participants_[tx_index]);
    if (frame.to != kBroadcast && config_.unicast_slot_cost > 1) {
      state.cooldown = config_.unicast_slot_cost - 1;
    }
    bool consumed = true;
    auto receives = [&](NodeId rx) {
      const int rx_index = node_to_index_[static_cast<std::size_t>(rx)];
      if (rx_index < 0) return false;  // not in this session
      if (transmitting[static_cast<std::size_t>(rx_index)]) return false;
      if (covered[static_cast<std::size_t>(rx_index)] >= 2) {
        if (observer_ != nullptr) observer_->on_collision(now, rx);
        return false;
      }
      return rng_.chance(
          effective_p_[tx_index * n + static_cast<std::size_t>(rx_index)]);
    };
    if (frame.to == kBroadcast) {
      for (NodeId nbr : topology_.neighbors(frame.from)) {
        if (!receives(nbr)) continue;
        ++deliveries_;
        if (receive_handler_) receive_handler_(nbr, frame);
      }
    } else {
      OMNC_ASSERT_MSG(
          node_to_index_[static_cast<std::size_t>(frame.to)] >= 0,
          "unicast target not a participant");
      if (receives(frame.to)) {
        ++deliveries_;
        if (receive_handler_) receive_handler_(frame.to, frame);
      } else if (frame.reliable) {
        ++state.head_attempts;
        if (config_.unicast_retry_limit > 0 &&
            state.head_attempts >= config_.unicast_retry_limit) {
          ++retry_failures_;  // 802.11 gives up on the frame
        } else {
          consumed = false;  // ARQ: stays at the head for retransmission
        }
      }
    }
    if (consumed) {
      state.queue.pop_front();
      state.head_attempts = 0;
    }
  }

  // Sample queue sizes for the Fig. 3 metric.
  for (std::size_t i = 0; i < states_.size(); ++i) {
    NodeState& state = states_[i];
    state.queue_average.advance_to(now, static_cast<double>(state.queue.size()));
    if (observer_ != nullptr) {
      observer_->on_queue_sample(now, participants_[i], state.queue.size());
    }
  }

  if (running_) {
    simulator_.schedule_in(slot_duration(), [this] { run_slot(); });
  }
}

std::size_t SlottedMac::transmissions(NodeId node) const {
  return states_[static_cast<std::size_t>(index_of(node))].transmissions;
}

std::size_t SlottedMac::total_transmissions() const {
  std::size_t total = 0;
  for (const NodeState& state : states_) total += state.transmissions;
  return total;
}

std::size_t SlottedMac::total_deliveries() const { return deliveries_; }

double SlottedMac::queue_time_average(NodeId node) const {
  return states_[static_cast<std::size_t>(index_of(node))]
      .queue_average.average();
}

bool SlottedMac::conflicts(NodeId a, NodeId b) const {
  const std::size_t n = participants_.size();
  return conflict_[static_cast<std::size_t>(index_of(a)) * n +
                   static_cast<std::size_t>(index_of(b))] != 0;
}

}  // namespace omnc::net

// Ideal slotted MAC of the Drift-substitute testbed (Sec. 5 of the paper).
//
// The model follows the paper's description: "we adopt an ideal scheduling
// scheme in which interfering nodes (nodes within range of each other) can
// optimally multiplex the channel.  A node cannot receive packets if it
// falls in the range of an interfering node."  Concretely:
//   * time is slotted; one slot carries one packet at channel capacity C;
//   * transmitters within range of each other serialize — each slot admits a
//     maximal set of backlogged, pairwise out-of-range transmitters, drawn
//     in uniformly random priority order (randomized TDMA, no exposed-
//     terminal collisions);
//   * a node cannot transmit and receive in the same slot;
//   * a participant in range of two or more admitted transmitters receives
//     nothing that slot (hidden-terminal collision);
//   * otherwise reception succeeds with the link's one-way reception
//     probability (independent per receiver — the lossy PHY);
//   * unicast frames may be sent reliably, which models MAC-layer
//     retransmissions: the frame stays at the head of the queue until its
//     target receives it (used by the ETX-routing baseline).
//
// Broadcast frames are transmitted once; every in-range, collision-free,
// non-transmitting participant receives an independent Bernoulli copy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "coding/coded_packet.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace omnc::net {

inline constexpr NodeId kBroadcast = -1;

struct Frame {
  NodeId from = -1;
  NodeId to = kBroadcast;  // kBroadcast or a unicast target
  bool reliable = false;   // MAC-layer ARQ (unicast only)
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  /// Coded-data frames: the packet's coefficient-structure side channel
  /// (DESIGN.md §15).  The sim's in-memory bytes stay the dense wire form —
  /// slots are fixed-size, so compression buys nothing here — but the
  /// structure rides along so receiving decoders keep their systematic /
  /// banded fast paths.  Dense for control frames and pre-family callers.
  coding::CodedStructure structure;
};

/// Gilbert-Elliott two-state link fading.  The paper's PHY is driven by
/// real-world traces whose losses are bursty, not i.i.d. (its reference
/// measurement study, Reis et al. [19], documents the temporal structure);
/// each directed link independently alternates between a good state and a
/// deep-fade state whose probabilities are scaled so the long-run average
/// equals the topology's p_ij — the quantity probes measure and every
/// protocol plans with.
struct FadingConfig {
  bool enabled = true;
  /// Long-run fraction of time a link spends in the fade state.
  double bad_fraction = 0.40;
  /// Reception probability multiplier while faded (deep fade).
  double bad_scale = 0.08;
  /// Mean fade duration in slots (geometric sojourn; ~4 s at the default
  /// slot length).
  double mean_bad_slots = 80.0;
};

/// How competing transmitters share the channel.
enum class MacMode {
  /// Greedy maximal conflict-free scheduling in random priority order — an
  /// idealized randomized TDMA (upper bound on MAC efficiency).
  kIdealScheduling,
  /// p-persistent CSMA: every backlogged node independently attempts with
  /// probability 1/(1 + backlogged in-range competitors); simultaneous
  /// in-range attempts collide at doubly-covered receivers.  This models the
  /// contention behaviour of a real 802.11-style MAC, which the testbed's
  /// MAC model "captures the channel competition among neighboring nodes"
  /// with.
  kCsma,
};

struct MacConfig {
  /// Channel capacity in bytes/second (the paper's C).
  double capacity_bytes_per_s = 2e4;
  /// Air bytes per slot; slot duration = slot_bytes / capacity.
  std::size_t slot_bytes = 1076;
  /// Drop-tail bound per transmit queue.
  std::size_t max_queue = 2000;
  MacMode mode = MacMode::kCsma;
  /// CSMA aggressiveness: a backlogged node attempts with probability
  /// min(1, csma_persistence / (1 + backlogged audible competitors)).
  double csma_persistence = 1.0;
  /// MAC-layer ARQ attempts per reliable unicast frame before the frame is
  /// dropped (802.11's long-retry default is 7).  0 means retry forever —
  /// the paper's idealized "reliability is guaranteed by MAC layer
  /// re-transmissions" reading, kept for the MAC ablation bench.
  int unicast_retry_limit = 7;
  /// Slots one unicast attempt occupies.  A broadcast data frame is pure
  /// DATA airtime; a reliable 802.11 unicast spends RTS/CTS/DATA/ACK plus
  /// inter-frame spaces and contention — about twice the broadcast airtime
  /// at 1 KB payloads — so the default charges 2 slots (the transmitter and
  /// its interference footprint stay busy for the extra slots).  Set to 1
  /// for the idealized equal-airtime model (MAC ablation bench).
  int unicast_slot_cost = 2;
  /// Temporal loss structure of the PHY.
  FadingConfig fading;
  /// Conflict model.  When true (the broadcast MAC of Sec. 3.2: an "ideal
  /// broadcast MAC where competing transmitters can optimally multiplex the
  /// channel"), two transmitters also serialize when they share a potential
  /// common receiver, so every reception is collision-free — the premise of
  /// constraint (4).  When false (the unicast evaluation MAC of Sec. 5),
  /// only transmitters within range of each other serialize and a receiver
  /// covered by two concurrent transmitters loses the packet.
  bool protect_receivers = false;
};

/// Passive per-event observer of MAC activity.  Unlike the aggregate
/// counters below, an observer sees every transmission, per-slot queue
/// sample, and queue drop as it happens, which lets higher layers rebuild
/// any statistic (time-averaged queues, per-node transmission counts)
/// without the MAC accumulating it for them.
class MacObserver {
 public:
  virtual ~MacObserver() = default;
  /// `node` was admitted and sent the head of its queue this slot.
  virtual void on_transmit(sim::Time now, NodeId node) {
    (void)now;
    (void)node;
  }
  /// End-of-slot queue length sample (the Fig. 3 signal).
  virtual void on_queue_sample(sim::Time now, NodeId node,
                               std::size_t queue_len) {
    (void)now;
    (void)node;
    (void)queue_len;
  }
  /// A frame was rejected because `node`'s transmit queue was full.
  virtual void on_drop(sim::Time now, NodeId node) {
    (void)now;
    (void)node;
  }
  /// CSMA backoff outcome for a backlogged node whose channel was idle:
  /// it drew its persistence coin against `contenders` audible competitors
  /// (itself included) and either fired (`attempted`) or held off.  Nodes
  /// deferring to a busy channel report attempted = false as well.
  virtual void on_contention(sim::Time now, NodeId node, int contenders,
                             bool attempted) {
    (void)now;
    (void)node;
    (void)contenders;
    (void)attempted;
  }
  /// `rx` was covered by two or more concurrent transmitters and lost an
  /// incoming frame to the hidden-terminal collision.
  virtual void on_collision(sim::Time now, NodeId rx) {
    (void)now;
    (void)rx;
  }
};

class SlottedMac {
 public:
  /// rx receives `frame` (possibly overheard broadcast).
  using ReceiveHandler = std::function<void(NodeId rx, const Frame& frame)>;
  /// Invoked at the start of each slot, before scheduling, so protocols can
  /// refill token buckets and enqueue freshly encoded packets.
  using SlotHook = std::function<void(sim::Time now)>;

  SlottedMac(sim::Simulator& simulator, const Topology& topology,
             std::vector<NodeId> participants, const MacConfig& config,
             Rng rng);

  double slot_duration() const {
    return static_cast<double>(config_.slot_bytes) /
           config_.capacity_bytes_per_s;
  }
  const MacConfig& config() const { return config_; }
  const std::vector<NodeId>& participants() const { return participants_; }

  void set_receive_handler(ReceiveHandler handler);
  void add_slot_hook(SlotHook hook);
  /// Installs a non-owning event observer (nullptr to detach).
  void set_observer(MacObserver* observer) { observer_ = observer; }

  /// Appends a frame to `frame.from`'s transmit queue.  Returns false (and
  /// drops the frame) when the queue is full.
  bool enqueue(Frame frame);

  std::size_t queue_size(NodeId node) const;

  /// Drops every queued frame matching the predicate (e.g. packets of an
  /// expired generation).
  void purge_queue(NodeId node,
                   const std::function<bool(const Frame&)>& predicate);

  /// Begins slot processing; idempotent.
  void start();
  /// Stops scheduling further slots.
  void stop();

  // --- statistics ------------------------------------------------------

  std::size_t transmissions(NodeId node) const;
  std::size_t total_transmissions() const;
  std::size_t total_deliveries() const;
  std::size_t total_drops() const { return drops_; }
  /// Reliable unicast frames abandoned after the retry limit.
  std::size_t total_retry_failures() const { return retry_failures_; }

  /// Per-node time-averaged queue size (sampled every slot), the Fig. 3
  /// metric.
  double queue_time_average(NodeId node) const;

  /// True if the pair may not be scheduled in the same slot.
  bool conflicts(NodeId a, NodeId b) const;

 private:
  struct NodeState {
    std::deque<Frame> queue;  // FIFO
    std::size_t transmissions = 0;
    int head_attempts = 0;  // ARQ attempts for the current head frame
    /// Remaining slots this node's in-flight unicast attempt still occupies;
    /// while positive the node keeps transmitting (interference-wise) and is
    /// not re-admitted.
    int cooldown = 0;
    TimeAverage queue_average;
  };

  /// One directed participant link with Gilbert-Elliott state.
  struct LinkFade {
    std::size_t tx_index;
    std::size_t rx_index;
    double p_good;
    double p_bad;
    bool bad;
  };

  void run_slot();
  void advance_fading();
  int index_of(NodeId node) const;

  sim::Simulator& simulator_;
  const Topology& topology_;
  std::vector<NodeId> participants_;
  std::vector<int> node_to_index_;  // -1 for non-participants
  MacConfig config_;
  Rng rng_;

  std::vector<NodeState> states_;
  std::vector<std::uint8_t> conflict_;  // participants x participants
  std::vector<LinkFade> fades_;
  /// Effective per-slot reception probability, participants x participants.
  std::vector<double> effective_p_;
  ReceiveHandler receive_handler_;
  std::vector<SlotHook> slot_hooks_;
  MacObserver* observer_ = nullptr;

  bool running_ = false;
  std::size_t deliveries_ = 0;
  std::size_t drops_ = 0;
  std::size_t retry_failures_ = 0;
};

}  // namespace omnc::net

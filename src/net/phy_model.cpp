#include "net/phy_model.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace omnc::net {

double PhyModel::range_for_threshold(double threshold) const {
  OMNC_ASSERT(threshold > 0.0 && threshold < 1.0);
  // Bisection over a generous distance interval; the curves used here are
  // monotone non-increasing.
  double lo = 0.0;
  double hi = 1.0;
  while (reception_probability(hi) > threshold && hi < 1e7) hi *= 2.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (reception_probability(mid) > threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TracePhy::TracePhy(std::vector<Point> points, double power_factor)
    : points_(std::move(points)), power_factor_(power_factor) {
  OMNC_ASSERT(points_.size() >= 2);
  OMNC_ASSERT(power_factor_ > 0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    OMNC_ASSERT_MSG(points_[i].first > points_[i - 1].first,
                    "trace points must have increasing distance");
  }
}

TracePhy TracePhy::urban_mesh(double power_factor) {
  // Sigmoid-shaped control points: p(d) ~ 1 / (1 + exp((d/250 - 0.737) /
  // 0.1895)), sampled and lightly rounded.  This reproduces the published
  // urban-mesh behaviour qualitatively: near-perfect links below ~100 m, a
  // wide band of intermediate-quality links, and p = 0.2 at d = 250 m.
  return TracePhy(
      {
          {0.0, 0.98},
          {50.0, 0.95},
          {75.0, 0.92},
          {100.0, 0.87},
          {125.0, 0.79},
          {150.0, 0.68},
          {175.0, 0.55},
          {200.0, 0.42},
          {225.0, 0.30},
          {250.0, 0.20},
          {275.0, 0.12},
          {300.0, 0.07},
          {350.0, 0.02},
          {400.0, 0.0},
      },
      power_factor);
}

double TracePhy::reception_probability(double distance) const {
  const double d = std::max(0.0, distance) / power_factor_;
  if (d <= points_.front().first) return points_.front().second;
  if (d >= points_.back().first) return points_.back().second;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), d,
      [](const Point& pt, double value) { return pt.first < value; });
  const auto& [d1, p1] = *it;
  const auto& [d0, p0] = *(it - 1);
  const double frac = (d - d0) / (d1 - d0);
  return p0 + (p1 - p0) * frac;
}

}  // namespace omnc::net

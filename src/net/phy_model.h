// PHY layer of the Drift-substitute testbed.
//
// The paper replaces the unit-disk assumption with a PHY model "based on
// real-world traces from [Camp et al., MobiSys'06], which empirically maps
// link distance to the reception probability".  We do not have the
// proprietary trace data, so TracePhy carries a tabulated curve with the same
// qualitative shape — a high plateau at short range, a wide intermediate
// transition, and a long lossy tail — calibrated so that a density-6 random
// deployment has mean link reception probability ~0.58 (the paper's lossy
// operating point).  See DESIGN.md, "Substitutions".
//
// "Transmission range" follows the paper's definition: the distance at which
// the reception probability drops to a small threshold (0.2); transmission
// and interference range coincide.
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace omnc::net {

class PhyModel {
 public:
  virtual ~PhyModel() = default;

  /// One-way reception probability at the given link distance (meters).
  virtual double reception_probability(double distance) const = 0;

  /// Distance at which reception probability falls to `threshold`; defines
  /// the transmission/interference range.
  double range_for_threshold(double threshold) const;
};

/// Classic unit-disk model (perfect reception within radius); retained for
/// tests and for reproducing idealized-model comparisons.
class UnitDiskPhy final : public PhyModel {
 public:
  explicit UnitDiskPhy(double radius) : radius_(radius) {}
  double reception_probability(double distance) const override {
    return distance <= radius_ ? 1.0 : 0.0;
  }

 private:
  double radius_;
};

/// Trace-shaped empirical curve: piecewise-linear in (distance, probability)
/// control points, optionally with a transmit-power factor that scales the
/// effective distance (power_factor > 1 shortens the effective distance,
/// modelling the paper's "transmission power of each node is increased"
/// high-quality configuration).
class TracePhy final : public PhyModel {
 public:
  using Point = std::pair<double, double>;  // (distance_m, probability)

  TracePhy(std::vector<Point> points, double power_factor = 1.0);

  /// The default curve used throughout the evaluation, normalized so that
  /// p(250 m) = 0.2 (range 250 m at threshold 0.2).
  static TracePhy urban_mesh(double power_factor = 1.0);

  double reception_probability(double distance) const override;
  double power_factor() const { return power_factor_; }

 private:
  std::vector<Point> points_;  // strictly increasing distance
  double power_factor_;
};

}  // namespace omnc::net

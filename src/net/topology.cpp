#include "net/topology.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace omnc::net {
namespace {

double clamp_prob(double p) { return std::clamp(p, 0.0, 0.98); }

}  // namespace

Topology Topology::random_deployment(const DeploymentConfig& config, Rng& rng) {
  OMNC_ASSERT(config.nodes >= 2);
  OMNC_ASSERT(config.density > 1.0);
  // Choose the square side so that E[#neighbors] = density - 1:
  //   (N - 1) * pi * R^2 / L^2 = density - 1.
  const double expected_neighbors = config.density - 1.0;
  const double side =
      config.range_m * std::sqrt(static_cast<double>(config.nodes - 1) * M_PI /
                                 expected_neighbors);
  std::vector<Position> positions(static_cast<std::size_t>(config.nodes));
  for (auto& pos : positions) {
    pos.x = rng.uniform(0.0, side);
    pos.y = rng.uniform(0.0, side);
  }
  const TracePhy phy = TracePhy::urban_mesh(config.power_factor);
  // Raising transmit power stretches the audible footprint by the same
  // distance factor that improves the links.
  const double interference_range = config.range_m * config.power_factor;
  return from_positions(std::move(positions), phy, config.range_m,
                        config.shadowing_sigma, rng, interference_range);
}

Topology Topology::from_positions(std::vector<Position> positions,
                                  const PhyModel& phy, double range_m,
                                  double shadowing_sigma, Rng& rng,
                                  double interference_range_m) {
  Topology topo;
  topo.positions_ = std::move(positions);
  topo.range_ = range_m;
  topo.interference_range_ =
      std::max(range_m, interference_range_m);
  const int n = topo.node_count();
  topo.prob_.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = topo.distance(i, j);
      if (d > range_m) continue;  // links only exist within range
      double p = phy.reception_probability(d);
      if (shadowing_sigma > 0.0) {
        p += shadowing_sigma * rng.normal();  // per-direction static jitter
      }
      p = clamp_prob(p);
      // A link whose jittered probability collapses to ~0 effectively does
      // not exist even though the nodes are within interference range; keep
      // a small floor so connectivity matches the geometric neighborhood.
      if (p < 0.02) p = 0.02;
      topo.prob_[static_cast<std::size_t>(i) * n + j] = p;
    }
  }
  topo.finalize_from_probs();
  return topo;
}

Topology Topology::from_link_matrix(const std::vector<std::vector<double>>& p) {
  Topology topo;
  const int n = static_cast<int>(p.size());
  OMNC_ASSERT(n >= 2);
  topo.positions_.resize(static_cast<std::size_t>(n));
  // Synthetic positions on a line purely for distance queries; the link
  // structure below is authoritative.
  for (int i = 0; i < n; ++i) {
    topo.positions_[static_cast<std::size_t>(i)] = {static_cast<double>(i), 0.0};
  }
  topo.range_ = static_cast<double>(n);
  topo.interference_range_ = 0.0;  // audibility == link existence here
  topo.prob_.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    OMNC_ASSERT(static_cast<int>(p[static_cast<std::size_t>(i)].size()) == n);
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double pij = p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      OMNC_ASSERT(pij >= 0.0 && pij <= 1.0);
      topo.prob_[static_cast<std::size_t>(i) * n + j] = pij;
    }
  }
  topo.finalize_from_probs();
  return topo;
}

void Topology::finalize_from_probs() {
  const int n = node_count();
  neighbors_.assign(static_cast<std::size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && prob(i, j) > 0.0) {
        neighbors_[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  // Audibility: within interference range when the topology is geometric,
  // otherwise exactly the link relation.
  audible_.assign(static_cast<std::size_t>(n) * n, 0);
  interference_neighbors_.assign(static_cast<std::size_t>(n), {});
  auto linked = [&](int a, int b) {
    return prob(a, b) > 0.0 || prob(b, a) > 0.0;
  };
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      bool hears = linked(a, b);
      if (!hears && interference_range_ > 0.0) {
        hears = distance(a, b) <= interference_range_;
      }
      if (hears) {
        audible_[static_cast<std::size_t>(a) * n + b] = 1;
        interference_neighbors_[static_cast<std::size_t>(a)].push_back(b);
      }
    }
  }
  // Conflict relation: transmitters conflict when audible to each other or
  // when some third node hears both (a potential common receiver).
  conflict_.assign(static_cast<std::size_t>(n) * n, 0);
  auto hears = [&](int a, int b) {
    return audible_[static_cast<std::size_t>(a) * n + b] != 0;
  };
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      bool clash = hears(a, b);
      for (int v = 0; !clash && v < n; ++v) {
        if (v == a || v == b) continue;
        clash = hears(a, v) && hears(b, v);
      }
      conflict_[static_cast<std::size_t>(a) * n + b] = clash ? 1 : 0;
      conflict_[static_cast<std::size_t>(b) * n + a] = clash ? 1 : 0;
    }
  }
}

const Position& Topology::position(NodeId id) const {
  OMNC_ASSERT(id >= 0 && id < node_count());
  return positions_[static_cast<std::size_t>(id)];
}

double Topology::distance(NodeId a, NodeId b) const {
  const Position& pa = position(a);
  const Position& pb = position(b);
  return std::hypot(pa.x - pb.x, pa.y - pb.y);
}

double Topology::prob(NodeId from, NodeId to) const {
  OMNC_DCHECK(from >= 0 && from < node_count());
  OMNC_DCHECK(to >= 0 && to < node_count());
  return prob_[static_cast<std::size_t>(from) * node_count() + to];
}

const std::vector<NodeId>& Topology::neighbors(NodeId id) const {
  OMNC_ASSERT(id >= 0 && id < node_count());
  return neighbors_[static_cast<std::size_t>(id)];
}

bool Topology::interferes(NodeId a, NodeId b) const {
  OMNC_DCHECK(a >= 0 && a < node_count());
  OMNC_DCHECK(b >= 0 && b < node_count());
  if (a == b) return true;
  return audible_[static_cast<std::size_t>(a) * node_count() + b] != 0;
}

const std::vector<NodeId>& Topology::interference_neighbors(NodeId id) const {
  OMNC_ASSERT(id >= 0 && id < node_count());
  return interference_neighbors_[static_cast<std::size_t>(id)];
}

bool Topology::conflicts(NodeId a, NodeId b) const {
  OMNC_DCHECK(a >= 0 && a < node_count());
  OMNC_DCHECK(b >= 0 && b < node_count());
  if (a == b) return true;
  return conflict_[static_cast<std::size_t>(a) * node_count() + b] != 0;
}

double Topology::mean_link_probability() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (double p : prob_) {
    if (p > 0.0) {
      sum += p;
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

std::size_t Topology::link_count() const {
  std::size_t count = 0;
  for (double p : prob_) {
    if (p > 0.0) ++count;
  }
  return count;
}

double Topology::mean_neighbor_count() const {
  double sum = 0.0;
  for (const auto& nbrs : neighbors_) sum += static_cast<double>(nbrs.size());
  return sum / static_cast<double>(node_count());
}

}  // namespace omnc::net

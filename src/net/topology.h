// Network topology: node positions, lossy directed links, neighbor sets and
// the transmitter conflict relation used by the ideal MAC.
//
// A link (i, j) exists when j lies within the transmission range of i (the
// distance where reception probability crosses the 0.2 threshold, per the
// paper); its one-way reception probability p_ij comes from the PHY curve
// plus a static per-link, per-direction shadowing jitter, reflecting the
// paper's observation that link qualities are stable over time but far from
// uniform at a given distance.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/phy_model.h"

namespace omnc::net {

using NodeId = int;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Parameters for random deployments (the paper's 300-node, density-6
/// topologies).
struct DeploymentConfig {
  int nodes = 300;
  /// Density counts the node itself plus its expected in-range neighbors:
  /// density 6 means "each node has on average 5 neighbors within its range".
  double density = 6.0;
  double range_m = 250.0;
  /// Reception-probability threshold that defines the range.
  double range_threshold = 0.2;
  /// Std-dev of the additive per-direction shadowing jitter on p_ij.
  double shadowing_sigma = 0.10;
  /// Transmit-power factor forwarded to TracePhy (1.0 = paper's lossy
  /// setting; ~2 raises the mean link quality toward the paper's 0.91).
  /// Raising power also stretches the interference footprint by the same
  /// distance factor: links improve, spatial reuse degrades.
  double power_factor = 1.0;
};

class Topology {
 public:
  /// Builds a random uniform deployment in a square sized so that the
  /// expected neighbor count matches `config.density - 1`.
  static Topology random_deployment(const DeploymentConfig& config, Rng& rng);

  /// Builds a topology from explicit positions (used by tests and the Fig. 1
  /// sample topology).  interference_range_m >= range_m; links exist within
  /// range_m, carrier/interference extends to interference_range_m.
  static Topology from_positions(std::vector<Position> positions,
                                 const PhyModel& phy, double range_m,
                                 double shadowing_sigma, Rng& rng,
                                 double interference_range_m = 0.0);

  /// Builds a topology from an explicit link-probability matrix (entries of 0
  /// mean "no link"); positions are synthetic.  Used to tag exact reception
  /// probabilities on hand-crafted graphs.
  static Topology from_link_matrix(const std::vector<std::vector<double>>& p);

  int node_count() const { return static_cast<int>(positions_.size()); }
  const Position& position(NodeId id) const;
  double distance(NodeId a, NodeId b) const;
  double range() const { return range_; }

  /// One-way reception probability; 0 when j is out of i's range.
  double prob(NodeId from, NodeId to) const;
  bool in_range(NodeId a, NodeId b) const { return prob(a, b) > 0.0 || prob(b, a) > 0.0; }

  /// Out-neighbors of `id` (nodes with prob(id, v) > 0).
  const std::vector<NodeId>& neighbors(NodeId id) const;

  /// True if a transmission by `a` is audible at `b` (within interference
  /// range) — the carrier-sense/collision relation.  Always implied by
  /// in_range.
  bool interferes(NodeId a, NodeId b) const;
  /// Nodes within interference range of `id` (superset of neighbors).
  const std::vector<NodeId>& interference_neighbors(NodeId id) const;
  double interference_range() const { return interference_range_; }

  /// True if transmitters a and b may not transmit in the same slot: they
  /// are within range of one another or share a potential common receiver.
  bool conflicts(NodeId a, NodeId b) const;

  /// Mean reception probability over all existing links.
  double mean_link_probability() const;
  std::size_t link_count() const;
  double mean_neighbor_count() const;

 private:
  Topology() = default;

  void finalize_from_probs();

  std::vector<Position> positions_;
  double range_ = 0.0;
  double interference_range_ = 0.0;
  // Row-major probability matrix; 0 entries mean no link.
  std::vector<double> prob_;
  std::vector<std::vector<NodeId>> neighbors_;
  // Audibility (interference) relation and neighborhoods.
  std::vector<std::uint8_t> audible_;
  std::vector<std::vector<NodeId>> interference_neighbors_;
  // Conflict relation as a bit matrix.
  std::vector<std::uint8_t> conflict_;
};

}  // namespace omnc::net

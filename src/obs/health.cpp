#include "obs/health.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace omnc::obs {
namespace {

constexpr std::size_t kMaxAnomalies = 64;

enum AnomalyKind { kStallKind = 0, kResyncKind = 1, kPlateauKind = 2 };

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_counter(std::string& out, const char* key, std::uint64_t value,
                    bool first = false) {
  if (!first) out += ',';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":\"%" PRIu64 "\"", key, value);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_span_json(std::string& out, const SpanEvent& event) {
  out += "{\"k\":\"";
  out += span_kind_name(event.kind);
  out += "\",\"tm\":";
  append_double(out, event.time);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"s\":%u,\"g\":%u,\"n\":%d,\"p\":%d,\"o\":%u,\"q\":%u",
                event.session, event.generation, event.node, event.peer,
                static_cast<unsigned>(event.span.origin), event.span.seq);
  out += buf;
  if (event.rank != 0) {
    std::snprintf(buf, sizeof(buf), ",\"rk\":%zu", event.rank);
    out += buf;
  }
  if (!event.parents.empty()) {
    out += ",\"par\":[";
    for (std::size_t i = 0; i < event.parents.size(); ++i) {
      if (i > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "[%u,%u]",
                    static_cast<unsigned>(event.parents[i].origin),
                    event.parents[i].seq);
      out += buf;
    }
    out += ']';
  }
  out += '}';
}

}  // namespace

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  next_snapshot_ = config_.snapshot_interval_s;
}

void HealthMonitor::advance(double now) {
  if (now > now_) now_ = now;
  while (config_.snapshot_interval_s > 0.0 && now_ >= next_snapshot_) {
    take_snapshot(next_snapshot_);
    next_snapshot_ += config_.snapshot_interval_s;
  }
}

void HealthMonitor::on_metric(const protocols::MetricEvent& event) {
  advance(event.time);
  using Type = protocols::MetricEvent::Type;
  switch (event.type) {
    case Type::kEmuSend:
      ++sends_;
      break;
    case Type::kEmuDrop:
      ++drops_;
      break;
    case Type::kEmuDeliver:
      ++delivers_;
      break;
    case Type::kEmuParseError:
      ++parse_errors_;
      break;
    case Type::kEmuResync:
      ++resyncs_;
      resync_times_.push_back(event.time);
      break;
    case Type::kEmuStall:
      ++stall_boosts_;
      stall_wait_.record(std::max(0.0, event.time - last_progress_));
      break;
    case Type::kGenerationAck:
      ++acks_;
      decode_latency_.record(event.value);
      // kGenerationAck carries session time; progress tracking uses the
      // event's own clock consistently with the stall detector.
      last_progress_ = std::max(last_progress_, event.time);
      if (event.session != 0) {
        SessionHealth& session = sessions_[event.session];
        ++session.acks;
        session.last_ack_time = std::max(session.last_ack_time, event.time);
        session.latency_sum += event.value;
        session.latency_max = std::max(session.latency_max, event.value);
      }
      break;
    default:
      break;
  }
}

void HealthMonitor::on_span(const SpanEvent& event) {
  advance(event.time);
  ++span_events_;
  flight_ring_.push_back(event);
  while (flight_ring_.size() > config_.flight_recorder_capacity) {
    flight_ring_.pop_front();
  }
  switch (event.kind) {
    case SpanEvent::Kind::kTransmit: {
      const std::uint64_t key = event.span.key();
      if (tx_times_.emplace(key, event.time).second) {
        tx_order_.push_back(key);
        while (tx_order_.size() > config_.span_track_capacity) {
          tx_times_.erase(tx_order_.front());
          tx_order_.pop_front();
        }
      }
      break;
    }
    case SpanEvent::Kind::kReceive: {
      const auto it = tx_times_.find(event.span.key());
      if (it != tx_times_.end() && event.time >= it->second) {
        hop_delay_.record(event.time - it->second);
      }
      break;
    }
    case SpanEvent::Kind::kInnovate:
      last_progress_ = std::max(last_progress_, event.time);
      if (event.generation != last_rank_generation_) {
        last_rank_generation_ = event.generation;
        last_rank_ = 0;
      }
      last_rank_ = std::max(last_rank_, event.rank);
      break;
    case SpanEvent::Kind::kDecode:
      last_progress_ = std::max(last_progress_, event.time);
      break;
    default:
      break;
  }
}

void HealthMonitor::take_snapshot(double now) {
  // Stall: nothing made progress for longer than the threshold.
  if (config_.stall_threshold_s > 0.0 &&
      now - last_progress_ > config_.stall_threshold_s &&
      (last_anomaly_[kStallKind] < 0.0 ||
       now - last_anomaly_[kStallKind] >= config_.stall_threshold_s)) {
    last_anomaly_[kStallKind] = now;
    char detail[96];
    std::snprintf(detail, sizeof(detail), "no progress for %.3fs",
                  now - last_progress_);
    note_anomaly("stall", now, detail);
  }

  // Resync storm: too many requests inside the trailing window.
  while (!resync_times_.empty() &&
         resync_times_.front() < now - config_.resync_window_s) {
    resync_times_.pop_front();
  }
  if (config_.resync_storm_count > 0 &&
      resync_times_.size() > config_.resync_storm_count &&
      (last_anomaly_[kResyncKind] < 0.0 ||
       now - last_anomaly_[kResyncKind] >= config_.resync_window_s)) {
    last_anomaly_[kResyncKind] = now;
    char detail[96];
    std::snprintf(detail, sizeof(detail), "%zu resync requests in %.3fs",
                  resync_times_.size(), config_.resync_window_s);
    note_anomaly("resync_storm", now, detail);
  }

  // Decode-rank plateau: the highest observed rank stayed frozen across
  // consecutive snapshots with no generation completing in between.
  const bool frozen = last_rank_ > 0 &&
                      last_rank_ == rank_at_last_snapshot_ &&
                      last_rank_generation_ == gen_at_last_snapshot_ &&
                      acks_ == acks_at_last_snapshot_;
  rank_frozen_snapshots_ = frozen ? rank_frozen_snapshots_ + 1 : 0;
  if (config_.plateau_snapshots > 0 &&
      rank_frozen_snapshots_ >= config_.plateau_snapshots) {
    rank_frozen_snapshots_ = 0;
    last_anomaly_[kPlateauKind] = now;
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "generation %u rank stuck at %zu for %d snapshots",
                  last_rank_generation_, last_rank_,
                  config_.plateau_snapshots);
    note_anomaly("rank_plateau", now, detail);
  }
  rank_at_last_snapshot_ = last_rank_;
  gen_at_last_snapshot_ = last_rank_generation_;
  acks_at_last_snapshot_ = acks_;

  if (on_snapshot_) on_snapshot_(*this);
}

void HealthMonitor::note_anomaly(const std::string& kind, double time,
                                 const std::string& detail) {
  if (anomalies_.size() >= kMaxAnomalies) return;
  anomalies_.push_back(HealthAnomaly{kind, time, detail});
  // The flight recorder freezes at the first incident: the events leading up
  // to it are usually the diagnostic ones, later anomalies are downstream.
  if (flight_dump_.empty()) {
    flight_dump_.assign(flight_ring_.begin(), flight_ring_.end());
  }
}

std::string HealthMonitor::to_json() const {
  std::string out = "{\"time\":";
  append_double(out, now_);
  out += ",\"counters\":{";
  append_counter(out, "sends", sends_, /*first=*/true);
  append_counter(out, "drops", drops_);
  append_counter(out, "delivers", delivers_);
  append_counter(out, "parse_errors", parse_errors_);
  append_counter(out, "resyncs", resyncs_);
  append_counter(out, "stall_boosts", stall_boosts_);
  append_counter(out, "generations_completed", acks_);
  append_counter(out, "span_events", span_events_);
  out += "},\"sessions\":{";
  bool first_session = true;
  for (const auto& [id, session] : sessions_) {
    if (!first_session) out += ',';
    first_session = false;
    out += '"';
    out += std::to_string(id);
    out += "\":{\"acks\":\"";
    out += std::to_string(session.acks);
    out += "\",\"last_ack\":";
    append_double(out, session.last_ack_time);
    out += ",\"mean_latency\":";
    append_double(out, session.mean_latency());
    out += ",\"max_latency\":";
    append_double(out, session.latency_max);
    out += '}';
  }
  out += "},\"histograms\":{\"hop_delay\":";
  out += hop_delay_.to_json();
  out += ",\"decode_latency\":";
  out += decode_latency_.to_json();
  out += ",\"stall_wait\":";
  out += stall_wait_.to_json();
  out += "},\"anomalies\":[";
  for (std::size_t i = 0; i < anomalies_.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    append_escaped(out, anomalies_[i].kind);
    out += "\",\"time\":";
    append_double(out, anomalies_[i].time);
    out += ",\"detail\":\"";
    append_escaped(out, anomalies_[i].detail);
    out += "\"}";
  }
  out += "],\"flight_recorder\":[";
  for (std::size_t i = 0; i < flight_dump_.size(); ++i) {
    if (i > 0) out += ',';
    append_span_json(out, flight_dump_[i]);
  }
  out += "]}";
  return out;
}

std::string HealthMonitor::one_liner() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "health t=%.3f gens=%" PRIu64 " sent=%" PRIu64 " drop=%" PRIu64
      " deliver=%" PRIu64 " perr=%" PRIu64 " resync=%" PRIu64
      " stall=%" PRIu64 " hop_p50=%.6f dec_p50=%.6f anomalies=%zu",
      now_, acks_, sends_, drops_, delivers_, parse_errors_, resyncs_,
      stall_boosts_, hop_delay_.quantile(50.0), decode_latency_.quantile(50.0),
      anomalies_.size());
  std::string line(buf);
  if (sessions_.size() > 1) {
    // Mux runs: how many sessions are reporting and how far the laggard is
    // — the one number that says whether the fleet is advancing together.
    std::uint64_t min_acks = UINT64_MAX;
    for (const auto& [id, session] : sessions_) {
      min_acks = std::min(min_acks, session.acks);
    }
    std::snprintf(buf, sizeof(buf), " sessions=%zu min_gens=%" PRIu64,
                  sessions_.size(), min_acks);
    line += buf;
  }
  return line;
}

bool HealthMonitor::write_json(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) return false;
  const std::string doc = to_json();
  const bool wrote =
      std::fwrite(doc.data(), 1, doc.size(), file) == doc.size() &&
      std::fputc('\n', file) != EOF;
  if (std::fclose(file) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace omnc::obs

// Live health plane for the emulation runtime (DESIGN.md §13).
//
// A HealthMonitor sits behind the harness's serialized metric/span sinks and
// maintains, in bounded memory:
//
//   * counters — frames sent / copies dropped / delivered, parse errors,
//     resync requests, stall boosts, generations completed;
//   * latency histograms — per-hop delay (span transmit → receive),
//     end-to-end decode latency (generation start → ACK at the source), and
//     stall wait (time since last progress when a redundancy boost fires);
//   * a flight recorder — a ring buffer of the last N span events, dumped
//     into the health document when an anomaly triggers, so the packets
//     surrounding the incident are inspectable post-mortem;
//   * anomaly detectors, evaluated once per snapshot interval of virtual
//     time: a progress stall longer than the threshold, a resync storm
//     (too many requests inside the trailing window), and a decode-rank
//     plateau (destination rank frozen across consecutive snapshots while a
//     generation is still open).
//
// All time is the events' own virtual time — the monitor never reads a wall
// clock, so deterministic-clock runs produce identical health documents.
// Thread safety comes from the caller: the harness tap already serializes
// both sinks under one mutex (tools feed the monitor from those callbacks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/histogram.h"
#include "obs/span.h"
#include "protocols/metrics_bus.h"

namespace omnc::obs {

struct HealthConfig {
  /// Virtual seconds between snapshots (anomaly evaluation points).
  double snapshot_interval_s = 1.0;
  /// Progress stall: no ACK and no rank increase for longer than this.
  double stall_threshold_s = 5.0;
  /// Resync storm: more than `resync_storm_count` requests inside the
  /// trailing `resync_window_s`.
  double resync_window_s = 5.0;
  std::size_t resync_storm_count = 8;
  /// Rank plateau: highest observed rank > 0 unchanged for this many
  /// consecutive snapshots with no generation completing in between.
  int plateau_snapshots = 5;
  /// Span events kept in the flight-recorder ring.
  std::size_t flight_recorder_capacity = 256;
  /// Transmit timestamps tracked for per-hop delay (FIFO eviction).
  std::size_t span_track_capacity = 4096;
};

/// One detected anomaly; `detail` is a short human-readable diagnosis.
struct HealthAnomaly {
  std::string kind;  // "stall" | "resync_storm" | "rank_plateau"
  double time = 0.0;
  std::string detail;
};

/// Per-session decode progress, aggregated from kGenerationAck events (the
/// only metric family that both names a session and carries its decode
/// latency).  Session-mux runs (DESIGN.md §16) interleave many sessions
/// through one monitor; this keeps each one's trajectory separable.
struct SessionHealth {
  std::uint64_t acks = 0;        // generations this session completed
  double last_ack_time = 0.0;    // session seconds of the newest ACK
  double latency_sum = 0.0;      // decode latencies, for the mean
  double latency_max = 0.0;

  double mean_latency() const {
    return acks > 0 ? latency_sum / static_cast<double>(acks) : 0.0;
  }
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Feed points; call from the harness's (serialized) sink callbacks.
  void on_metric(const protocols::MetricEvent& event);
  void on_span(const SpanEvent& event);

  /// Fires right after every snapshot is taken (stderr one-liners, periodic
  /// JSON dumps).  Called from whatever thread fed the triggering event.
  void set_snapshot_callback(std::function<void(const HealthMonitor&)> cb) {
    on_snapshot_ = std::move(cb);
  }

  const Histogram& hop_delay() const { return hop_delay_; }
  const Histogram& decode_latency() const { return decode_latency_; }
  const Histogram& stall_wait() const { return stall_wait_; }
  const std::vector<HealthAnomaly>& anomalies() const { return anomalies_; }
  /// Span events surrounding the first anomaly (empty when healthy).
  const std::vector<SpanEvent>& flight_dump() const { return flight_dump_; }
  double now() const { return now_; }
  std::uint64_t generations_completed() const { return acks_; }
  /// Per-session ACK progress, keyed by wire session id (ordered, so the
  /// JSON document lists sessions deterministically).  Events with session
  /// 0 — single-session captures predating session stamping — aggregate
  /// into the monitor-wide counters only.
  const std::map<std::uint32_t, SessionHealth>& sessions() const {
    return sessions_;
  }

  /// Complete health document (counters, histogram summaries, anomalies,
  /// flight dump) as one JSON object.
  std::string to_json() const;

  /// `<prefix> t=12.0 gens=5 sent=120 drop=34 ...` — the --health-interval
  /// stderr line.
  std::string one_liner() const;

  /// Atomically replaces `path` with to_json() via tmp + rename, so a
  /// concurrent reader never sees a torn document.  Returns false on I/O
  /// failure.
  bool write_json(const std::string& path) const;

 private:
  void advance(double now);
  void take_snapshot(double now);
  void note_anomaly(const std::string& kind, double time,
                    const std::string& detail);

  HealthConfig config_;
  std::function<void(const HealthMonitor&)> on_snapshot_;

  double now_ = 0.0;
  double next_snapshot_ = 0.0;

  // Counters.
  std::uint64_t sends_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t delivers_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t stall_boosts_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t span_events_ = 0;

  // Histograms.
  Histogram hop_delay_;
  Histogram decode_latency_;
  Histogram stall_wait_;

  // Per-session ACK progress (see sessions()).
  std::map<std::uint32_t, SessionHealth> sessions_;

  // Per-hop delay: span key -> transmit time, FIFO-bounded (broadcast means
  // several receives may look up one transmit, so entries are not consumed).
  std::unordered_map<std::uint64_t, double> tx_times_;
  std::deque<std::uint64_t> tx_order_;

  // Anomaly state.
  double last_progress_ = 0.0;
  std::deque<double> resync_times_;
  std::size_t last_rank_ = 0;
  std::uint32_t last_rank_generation_ = 0;
  int rank_frozen_snapshots_ = 0;
  std::uint64_t acks_at_last_snapshot_ = 0;
  std::size_t rank_at_last_snapshot_ = 0;
  std::uint32_t gen_at_last_snapshot_ = 0;
  double last_anomaly_[3] = {-1.0, -1.0, -1.0};  // re-arm timers per kind

  std::vector<HealthAnomaly> anomalies_;
  std::deque<SpanEvent> flight_ring_;
  std::vector<SpanEvent> flight_dump_;
};

}  // namespace omnc::obs

#include "obs/histogram.h"

#include <cmath>
#include <cstdio>

namespace omnc::obs {
namespace {

void append_double(std::string& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(v));
  out += buffer;
}

}  // namespace

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

int Histogram::bucket_index(double value) {
  if (!std::isfinite(value)) return value > 0.0 ? kBucketCount - 1 : 0;
  if (!(value > 0.0)) return 0;  // zero, negative, NaN → underflow
  int exp = 0;
  const double m = std::frexp(value, &exp);  // m in [0.5, 1), value = m·2^exp
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) return kBucketCount - 1;
  // m - 0.5 is exact (Sterbenz) and the scale is a power of two, so values
  // sitting exactly on a bucket edge land in that bucket, no rounding.
  const int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_floor(int index) {
  if (index <= 0) return 0.0;
  if (index >= kBucketCount - 1) return std::ldexp(0.5, kMaxExp + 1);
  const int offset = index - 1;
  const int exp = kMinExp + offset / kSubBuckets;
  const int sub = offset % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub) / (2 * kSubBuckets), exp);
}

void Histogram::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  buckets_[static_cast<std::size_t>(bucket_index(value))] += n;
  count_ += n;
  sum_ += value * static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 100.0) return max_;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_floor(i);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\":\"";
  append_u64(out, count_);
  out += "\",\"sum\":";
  append_double(out, sum_);
  out += ",\"min\":";
  append_double(out, min());
  out += ",\"max\":";
  append_double(out, max());
  out += ",\"b\":[";
  bool first = true;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    append_u64(out, static_cast<std::uint64_t>(i));
    out += ",\"";
    append_u64(out, c);
    out += "\"]";
  }
  out += "]}";
  return out;
}

bool Histogram::assemble(std::uint64_t count, double sum, double min,
                         double max,
                         const std::vector<std::pair<int, std::uint64_t>>& buckets,
                         Histogram* out) {
  Histogram h;
  std::uint64_t total = 0;
  for (const auto& [index, c] : buckets) {
    if (index < 0 || index >= kBucketCount) return false;
    h.buckets_[static_cast<std::size_t>(index)] += c;
    total += c;
  }
  if (total != count) return false;
  h.count_ = count;
  h.sum_ = sum;
  if (count > 0) {
    h.min_ = min;
    h.max_ = max;
  }
  *out = h;
  return true;
}

}  // namespace omnc::obs

// HDR-style log-bucketed latency histogram (fixed memory, mergeable,
// exact-serializable).
//
// The common/stats scalars (min/mean/max) collapse exactly the structure the
// paper's latency claims are about — a bimodal "fast path vs. stall" decode
// distribution has a meaningless mean.  This histogram keeps the whole
// shape at bounded cost:
//
//   * Buckets are logarithmic: each power-of-two octave of the value range
//     is split into kSubBuckets linear sub-buckets, giving a fixed relative
//     width of 1/kSubBuckets (~3% for 32) across ~19 decades.  Memory is a
//     flat fixed-size array — no allocation on the record path.
//   * Bucket edges are exact dyadic rationals (ldexp of small integers), so
//     an index→lower-edge→index round trip is the identity and serialized
//     histograms reparse bit-identically.
//   * merge() adds counts bucket-wise; counts are integers, so merging is
//     associative and commutative — per-thread or per-shard histograms
//     combine without bias (the double-valued `sum` is the one field subject
//     to rounding; counts, min, max, and every quantile are exact).
//
// Serialization is sparse JSON ({"count":…,"b":[[index,count],…]}); see
// to_json() and Histogram::from parsing in trace_reader.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace omnc::obs {

class Histogram {
 public:
  /// Sub-buckets per octave; relative bucket width is 1/kSubBuckets.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Octave range: bucket coverage spans [2^(kMinExp-1), 2^kMaxExp) —
  /// roughly 1e-13 s to 8e6 s when values are seconds.  Values outside land
  /// in the underflow/overflow buckets and still count toward quantiles.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 23;
  static constexpr int kBucketCount =
      1 + (kMaxExp - kMinExp + 1) * kSubBuckets + 1;  // under + octaves + over

  Histogram();

  void record(double value) { record_n(value, 1); }
  void record_n(double value, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact extremes of the recorded values (not bucket edges); 0 when empty.
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Nearest-rank quantile, q in [0, 100].  Returns the lower edge of the
  /// bucket holding the rank (a deterministic, serialization-exact value);
  /// q <= 0 and q >= 100 return the exact min/max.
  double quantile(double q) const;

  void merge(const Histogram& other);

  /// The bucket a value lands in / the inclusive lower edge of a bucket.
  /// bucket_index(bucket_floor(i)) == i for every interior bucket.
  static int bucket_index(double value);
  static double bucket_floor(int index);

  /// Sparse JSON object: {"count":"N","sum":S,"min":m,"max":M,
  /// "b":[[index,"count"],...]} — u64 counts as decimal strings, doubles in
  /// %.17g, empty buckets omitted.  Parsed back by trace_reader.
  std::string to_json() const;

  /// Rebuilds from the parsed components of to_json() output (the reader
  /// hands over the fields; this validates indices).
  static bool assemble(std::uint64_t count, double sum, double min, double max,
                       const std::vector<std::pair<int, std::uint64_t>>& buckets,
                       Histogram* out);

  bool operator==(const Histogram&) const = default;

 private:
  std::vector<std::uint64_t> buckets_;  // kBucketCount entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace omnc::obs

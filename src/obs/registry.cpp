#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "common/assert.h"
#include "common/table.h"

namespace omnc::obs {
namespace {

std::size_t bucket_of(std::uint64_t ns) {
  if (ns <= 1) return 0;
  const std::size_t b = static_cast<std::size_t>(63 - __builtin_clzll(ns));
  return std::min(b, Timer::kBuckets - 1);
}

void atomic_min(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

std::string format_ns(double ns) {
  char buffer[32];
  if (ns >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f ns", ns);
  }
  return buffer;
}

}  // namespace

void Timer::record_ns(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Timer::min_ns() const {
  const std::uint64_t value = min_ns_.load(std::memory_order_relaxed);
  return value == ~0ull ? 0 : value;
}

double Timer::quantile_ns(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (static_cast<double>(seen) >= target) {
      // Geometric midpoint of [2^b, 2^{b+1}).
      return std::exp2(static_cast<double>(b) + 0.5);
    }
  }
  return static_cast<double>(max_ns());
}

void Timer::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(~0ull, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::atomic<bool> MetricsRegistry::enabled_{false};

struct MetricsRegistry::Impl {
  // Node-based maps keep instrument addresses stable across registrations.
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Timer>> timers;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  OMNC_ASSERT_MSG(impl_->gauges.count(name) == 0 &&
                      impl_->timers.count(name) == 0,
                  "metric name already registered as another kind");
  auto& slot = impl_->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  OMNC_ASSERT_MSG(impl_->counters.count(name) == 0 &&
                      impl_->timers.count(name) == 0,
                  "metric name already registered as another kind");
  auto& slot = impl_->gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  OMNC_ASSERT_MSG(impl_->counters.count(name) == 0 &&
                      impl_->gauges.count(name) == 0,
                  "metric name already registered as another kind");
  auto& slot = impl_->timers[name];
  if (slot == nullptr) slot = std::make_unique<Timer>();
  return *slot;
}

std::vector<MetricRow> MetricsRegistry::rows() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<MetricRow> out;
  out.reserve(impl_->counters.size() + impl_->gauges.size() +
              impl_->timers.size());
  for (const auto& [name, counter] : impl_->counters) {
    MetricRow row;
    row.name = name;
    row.kind = "counter";
    row.count = counter->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, gauge] : impl_->gauges) {
    MetricRow row;
    row.name = name;
    row.kind = "gauge";
    row.value = gauge->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, timer] : impl_->timers) {
    MetricRow row;
    row.name = name;
    row.kind = "timer";
    row.count = timer->count();
    row.value = static_cast<double>(timer->total_ns()) / 1e9;
    row.min_ns = timer->min_ns();
    row.max_ns = timer->max_ns();
    row.p50_ns = timer->quantile_ns(0.5);
    row.p99_ns = timer->quantile_ns(0.99);
    row.buckets.reserve(Timer::kBuckets);
    for (std::size_t b = 0; b < Timer::kBuckets; ++b) {
      row.buckets.push_back(timer->bucket(b));
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::summary() const {
  TextTable table({"metric", "kind", "count", "total", "mean", "p50", "p99",
                   "min", "max"});
  for (const MetricRow& row : rows()) {
    if (row.kind == "counter") {
      table.add_row({row.name, row.kind, std::to_string(row.count), "-", "-",
                     "-", "-", "-", "-"});
    } else if (row.kind == "gauge") {
      table.add_row({row.name, row.kind, "-", TextTable::fmt(row.value), "-",
                     "-", "-", "-", "-"});
    } else {
      const double total_ns = row.value * 1e9;
      const double mean_ns =
          row.count > 0 ? total_ns / static_cast<double>(row.count) : 0.0;
      table.add_row({row.name, row.kind, std::to_string(row.count),
                     format_ns(total_ns), format_ns(mean_ns),
                     format_ns(row.p50_ns), format_ns(row.p99_ns),
                     format_ns(static_cast<double>(row.min_ns)),
                     format_ns(static_cast<double>(row.max_ns))});
    }
  }
  return table.render();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, counter] : impl_->counters) counter->reset();
  for (auto& [name, gauge] : impl_->gauges) gauge->reset();
  for (auto& [name, timer] : impl_->timers) timer->reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->counters.size() + impl_->gauges.size() + impl_->timers.size();
}

}  // namespace omnc::obs

// Process-wide metrics registry: named counters, gauges, and wall-clock
// timers with fixed power-of-two latency buckets.
//
// Hot paths register an instrument once (a function-local static reference)
// and then touch it with relaxed atomics, so instrumentation is safe from
// thread_pool workers without locks.  The whole registry sits behind a
// single global enabled flag: when profiling is off (the default), a
// ScopedTimer costs one relaxed atomic load and never reads the clock, which
// keeps the encode/recode/decode/RREF/simplex probes out of the fixed-seed
// regression's way — they observe wall time only, never simulation state.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace omnc::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. a configuration knob or a final level).
class Gauge {
 public:
  void set(double value) {
    bits_.store(bit_cast_to_u64(value), std::memory_order_relaxed);
  }
  double value() const {
    return bit_cast_to_double(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  static std::uint64_t bit_cast_to_u64(double d) {
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(d));
    __builtin_memcpy(&u, &d, sizeof(u));
    return u;
  }
  static double bit_cast_to_double(std::uint64_t u) {
    double d;
    __builtin_memcpy(&d, &u, sizeof(d));
    return d;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Wall-clock duration accumulator: count / total / min / max plus a fixed
/// histogram whose bucket b counts samples in [2^b, 2^{b+1}) nanoseconds
/// (bucket 0 also absorbs sub-nanosecond readings).
class Timer {
 public:
  static constexpr std::size_t kBuckets = 40;  // up to ~18 minutes

  void record_ns(std::uint64_t ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  /// 0 when no samples were recorded.
  std::uint64_t min_ns() const;
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Approximate quantile from the log2 buckets (geometric bucket midpoint);
  /// q in [0, 1].  0 when empty.
  double quantile_ns(double q) const;

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ull};
  std::atomic<std::uint64_t> max_ns_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// One registry row, flattened for summaries and trace snapshots.
struct MetricRow {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "timer"
  std::uint64_t count = 0;     // counter value / timer sample count
  double value = 0.0;          // gauge value / timer total seconds
  std::uint64_t min_ns = 0;    // timers only
  std::uint64_t max_ns = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  std::vector<std::uint64_t> buckets;  // timers only
};

class MetricsRegistry {
 public:
  /// The process-wide registry the OMNC_SCOPED_TIMER probes report to.
  static MetricsRegistry& global();

  /// Gates every ScopedTimer in the process; off by default.
  static void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates an instrument.  Returned references stay valid for the
  /// registry's lifetime, so hot paths may cache them in statics.  A name
  /// identifies exactly one instrument; asking for it as a different kind
  /// aborts.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  /// Flattened snapshot, sorted by name.
  std::vector<MetricRow> rows() const;

  /// Human-readable summary table (common/table.h) of every instrument.
  std::string summary() const;

  /// Zeroes every instrument; registrations (and cached references) survive.
  void reset();

  std::size_t size() const;

 private:
  struct Impl;
  MetricsRegistry();
  ~MetricsRegistry();

  static std::atomic<bool> enabled_;
  Impl* impl_;
};

/// RAII wall-clock probe.  Construction with the registry disabled skips the
/// clock entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(MetricsRegistry::enabled() ? &timer : nullptr) {
    if (timer_ != nullptr) start_ = now_ns();
  }
  ~ScopedTimer() {
    if (timer_ != nullptr) timer_->record_ns(now_ns() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  Timer* timer_;
  std::uint64_t start_ = 0;
};

}  // namespace omnc::obs

// Drops a wall-clock probe on the enclosing scope.  Registration runs once
// (thread-safe function-local static); afterwards each pass costs one
// relaxed load when profiling is disabled.
#define OMNC_OBS_CONCAT_INNER(a, b) a##b
#define OMNC_OBS_CONCAT(a, b) OMNC_OBS_CONCAT_INNER(a, b)
#define OMNC_SCOPED_TIMER(name)                                            \
  static ::omnc::obs::Timer& OMNC_OBS_CONCAT(omnc_obs_timer_, __LINE__) =  \
      ::omnc::obs::MetricsRegistry::global().timer(name);                  \
  ::omnc::obs::ScopedTimer OMNC_OBS_CONCAT(omnc_obs_scope_, __LINE__)(     \
      OMNC_OBS_CONCAT(omnc_obs_timer_, __LINE__))

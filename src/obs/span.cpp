#include "obs/span.h"

namespace omnc::obs {

const char* span_kind_name(SpanEvent::Kind kind) {
  switch (kind) {
    case SpanEvent::Kind::kEnqueue:
      return "enq";
    case SpanEvent::Kind::kTransmit:
      return "tx";
    case SpanEvent::Kind::kReceive:
      return "rx";
    case SpanEvent::Kind::kDrop:
      return "drop";
    case SpanEvent::Kind::kInnovate:
      return "inn";
    case SpanEvent::Kind::kDecode:
      return "dec";
  }
  return "?";
}

}  // namespace omnc::obs

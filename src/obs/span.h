// Packet-lifecycle spans: the causal unit of the observability plane.
//
// Every coded-data frame a node creates gets a span id — (origin node,
// per-origin sequence) — stamped into the wire header (wire/frame.h, v2).
// The id follows the frame through the transport, so each step of the
// packet's life emits one SpanEvent carrying that id:
//
//   kEnqueue   — the creating node drew the packet from its encoder or
//                recode buffer; `parents` is the packet's input basis (the
//                spans of the innovative packets the recoder combined —
//                empty at the source, whose packets are DAG roots).
//   kTransmit  — the frame was offered to the transport.
//   kReceive   — a copy reached a node and parsed; `rank` is the receiver's
//                decode/buffer rank after absorbing it.
//   kDrop      — a copy died in transit (channel loss, fault injection,
//                stray datagram); `peer` is the sender, `node` the intended
//                receiver (-1 when unknown).
//   kInnovate  — the receive increased the receiver's rank.
//   kDecode    — the destination reached full rank; `parents` is the basis
//                that decoded the generation, `span` the completing packet.
//
// Relays propagate causality: a recoded packet's parents are the spans of
// the innovative packets currently in its buffer, so walking parents from a
// kDecode event reconstructs the per-generation coding DAG all the way back
// to source-created roots (trace_inspect --timeline does exactly that).
//
// Header-only on purpose: src/emu emits these without linking the obs trace
// machinery, and the deterministic-clock guarantee (byte-identical span
// streams per seed) falls out of events flowing through the same serialized
// sink as MetricEvents.
#pragma once

#include <cstdint>
#include <vector>

namespace omnc::obs {

/// Identity of one created packet.  seq 0 is the null id ("untraced"):
/// per-origin counters start at 1, so (0, 0) never names a real packet.
struct SpanId {
  std::uint16_t origin = 0;
  std::uint32_t seq = 0;

  bool valid() const { return seq != 0; }
  /// Dense total order / map key.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }
  bool operator==(const SpanId&) const = default;
};

struct SpanEvent {
  enum class Kind : std::uint8_t {
    kEnqueue,
    kTransmit,
    kReceive,
    kDrop,
    kInnovate,
    kDecode,
  };

  Kind kind = Kind::kEnqueue;
  double time = 0.0;       // virtual seconds since run start
  std::uint32_t session = 0;
  std::uint32_t generation = 0;
  int node = -1;           // the node the event happened at
  int peer = -1;           // kReceive/kDrop: the sending node
  SpanId span;             // the packet the event is about
  std::size_t rank = 0;    // kReceive/kInnovate: receiver rank after absorb;
                           // kDecode: basis size
  /// kInnovate at a destination: pivot column the packet landed on (-1 when
  /// unknown — relays and pre-family traces don't report one).
  int pivot = -1;
  /// kInnovate: the packet took the systematic zero-work fast path (an
  /// uncoded original landing on a free pivot; DESIGN.md §15).
  bool uncoded = false;
  std::vector<SpanId> parents;  // kEnqueue (recoded input basis) and kDecode

  bool operator==(const SpanEvent&) const = default;
};

/// Short names used in the JSONL schema and the CLI views.
const char* span_kind_name(SpanEvent::Kind kind);

}  // namespace omnc::obs

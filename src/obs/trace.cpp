#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/registry.h"

#ifndef OMNC_BUILD_STAMP
#define OMNC_BUILD_STAMP "unknown"
#endif

namespace omnc::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_string(std::string& out, const char* key, const std::string& s) {
  out += '"';
  out += key;
  out += "\":\"";
  append_escaped(out, s);
  out += '"';
}

/// %.17g round-trips every finite IEEE-754 double through strtod exactly.
void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  // 64-bit integers do not survive a double-typed JSON number; write them as
  // decimal strings.  Worst case: a 10-char key, 20 digits, quoting — 36.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":\"%" PRIu64 "\"", key, value);
  out += buf;
}

void append_int(std::string& out, const char* key, long long value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key, value);
  out += buf;
}

void append_num(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  append_double(out, value);
}

const char* event_kind(protocols::MetricEvent::Type type) {
  using Type = protocols::MetricEvent::Type;
  switch (type) {
    case Type::kTx: return "tx";
    case Type::kRx: return "rx";
    case Type::kQueueSample: return "q";
    case Type::kGenerationAck: return "ack";
    case Type::kStaleFlush: return "flush";
    case Type::kQueueDrop: return "drop";
    case Type::kMacContention: return "cont";
    case Type::kMacCollision: return "coll";
    case Type::kEmuSend: return "esend";
    case Type::kEmuDrop: return "edrop";
    case Type::kEmuDeliver: return "edeliver";
    case Type::kEmuParseError: return "eperr";
    case Type::kEmuFaultLoss: return "floss";
    case Type::kEmuFaultReorder: return "freord";
    case Type::kEmuFaultDup: return "fdup";
    case Type::kEmuFaultPartition: return "fpart";
    case Type::kEmuFaultBlackout: return "fblack";
    case Type::kEmuResync: return "eresync";
    case Type::kEmuStall: return "estall";
  }
  return "?";
}

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
}

std::uint64_t double_bits(double d) {
  std::uint64_t u;
  __builtin_memcpy(&u, &d, sizeof(u));
  return u;
}

void append_result(std::string& out, const protocols::SessionResult& r,
                   const std::vector<std::size_t>* edge_innovative) {
  out += '{';
  append_int(out, "conn", r.connected ? 1 : 0);
  out += ',';
  append_num(out, "thr", r.throughput_bytes_per_s);
  out += ',';
  append_num(out, "thr_gen", r.throughput_per_generation);
  out += ',';
  append_int(out, "gens", r.generations_completed);
  out += ',';
  append_num(out, "mean_q", r.mean_queue);
  out += ',';
  append_num(out, "nur", r.node_utility_ratio);
  out += ',';
  append_num(out, "pur", r.path_utility_ratio);
  out += ',';
  append_int(out, "tx", static_cast<long long>(r.transmissions));
  out += ',';
  append_int(out, "del", static_cast<long long>(r.packets_delivered));
  out += ',';
  append_int(out, "drops", static_cast<long long>(r.queue_drops));
  out += ',';
  append_int(out, "rc_it", r.rc_iterations);
  out += ',';
  append_int(out, "rc_conv", r.rc_converged ? 1 : 0);
  out += ',';
  append_int(out, "rc_msgs", static_cast<long long>(r.rc_messages));
  out += ',';
  append_num(out, "pgamma", r.predicted_gamma);
  if (edge_innovative != nullptr) {
    out += ",\"edge_inn\":[";
    for (std::size_t e = 0; e < edge_innovative->size(); ++e) {
      if (e > 0) out += ',';
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%zu", (*edge_innovative)[e]);
      out += buf;
    }
    out += ']';
  }
  out += '}';
}

}  // namespace

TraceRecorder::TraceRecorder(const std::string& path, const std::string& tool,
                             const std::string& params, std::uint64_t seed)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"manifest\",";
  append_int(line, "schema", kTraceSchemaVersion);
  line += ',';
  append_string(line, "build", OMNC_BUILD_STAMP);
  line += ',';
  append_string(line, "tool", tool);
  line += ',';
  append_string(line, "params", params);
  line += ',';
  append_u64(line, "seed", seed);
  line += '}';
  write_line(line);
}

TraceRecorder::~TraceRecorder() {
  if (file_ != nullptr) std::fclose(file_);
}

std::uint64_t TraceRecorder::hash_graph(const routing::SessionGraph& graph) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  hash_mix(h, static_cast<std::uint64_t>(graph.nodes.size()));
  for (const net::NodeId id : graph.nodes) {
    hash_mix(h, static_cast<std::uint64_t>(id));
  }
  hash_mix(h, static_cast<std::uint64_t>(graph.source));
  hash_mix(h, static_cast<std::uint64_t>(graph.destination));
  for (const double etx : graph.etx_to_dst) hash_mix(h, double_bits(etx));
  hash_mix(h, static_cast<std::uint64_t>(graph.edges.size()));
  for (const auto& edge : graph.edges) {
    hash_mix(h, static_cast<std::uint64_t>(edge.from));
    hash_mix(h, static_cast<std::uint64_t>(edge.to));
    hash_mix(h, double_bits(edge.p));
  }
  return h;
}

int TraceRecorder::begin_run(
    const RunContext& context,
    const std::vector<const routing::SessionGraph*>& graphs) {
  if (file_ == nullptr) return -1;

  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const auto* graph : graphs) hash_mix(hash, hash_graph(*graph));

  const std::lock_guard<std::mutex> lock(mutex_);
  const int run = next_run_++;

  std::string line = "{\"t\":\"run_begin\",";
  append_int(line, "r", run);
  line += ',';
  append_string(line, "protocol", context.protocol);
  line += ',';
  append_u64(line, "seed", context.seed);
  line += ',';
  append_u64(line, "graph_hash", hash);
  line += ',';
  append_int(line, "topo_nodes", context.topology_nodes);
  line += ',';
  append_int(line, "gen_blocks", context.generation_blocks);
  line += ',';
  append_int(line, "block_bytes", context.block_bytes);
  line += ',';
  append_num(line, "capacity", context.capacity_bytes_per_s);
  line += ',';
  append_num(line, "cbr", context.cbr_bytes_per_s);
  line += ',';
  append_num(line, "sim_seconds", context.sim_seconds);
  line += ',';
  append_int(line, "sessions", static_cast<long long>(graphs.size()));
  line += ',';
  append_int(line, "shared_q", context.shared_queue ? 1 : 0);
  if (!context.code_family.empty()) {
    line += ',';
    append_string(line, "code_family", context.code_family);
  }
  line += '}';
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);

  for (std::size_t s = 0; s < graphs.size(); ++s) {
    const routing::SessionGraph& graph = *graphs[s];
    std::string g = "{\"t\":\"graph\",";
    append_int(g, "r", run);
    g += ',';
    append_int(g, "s", static_cast<long long>(s));
    g += ',';
    append_int(g, "src", graph.source);
    g += ',';
    append_int(g, "dst", graph.destination);
    g += ",\"nodes\":[";
    for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
      if (i > 0) g += ',';
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d", graph.nodes[i]);
      g += buf;
    }
    g += "],\"etx\":[";
    for (std::size_t i = 0; i < graph.etx_to_dst.size(); ++i) {
      if (i > 0) g += ',';
      append_double(g, graph.etx_to_dst[i]);
    }
    g += "],\"edges\":[";
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      if (e > 0) g += ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "[%d,%d,", graph.edges[e].from,
                    graph.edges[e].to);
      g += buf;
      append_double(g, graph.edges[e].p);
      g += ']';
    }
    g += "]}";
    std::fputs(g.c_str(), file_);
    std::fputc('\n', file_);
  }
  return run;
}

void TraceRecorder::record_event(int run, const protocols::MetricEvent& event) {
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"ev\",";
  append_int(line, "r", run);
  line += ",\"k\":\"";
  line += event_kind(event.type);
  line += "\",";
  append_num(line, "tm", event.time);
  // Fields at their MetricEvent defaults are omitted; the reader restores
  // them, which keeps queue-sample-dominated traces compact.
  if (event.session != 0) {
    line += ',';
    append_int(line, "s", event.session);
  }
  if (event.node != -1) {
    line += ',';
    append_int(line, "n", event.node);
  }
  if (event.tx_local != -1) {
    line += ',';
    append_int(line, "tl", event.tx_local);
  }
  if (event.rx_local != -1) {
    line += ',';
    append_int(line, "rl", event.rx_local);
  }
  if (event.edge != -1) {
    line += ',';
    append_int(line, "e", event.edge);
  }
  if (event.innovative) {
    line += ',';
    append_int(line, "i", 1);
  }
  if (event.generation != 0) {
    line += ',';
    append_int(line, "g", event.generation);
  }
  if (event.value != 0.0) {
    line += ',';
    append_num(line, "v", event.value);
  }
  line += '}';
  write_line(line);
}

void TraceRecorder::record_span(int run, const SpanEvent& event) {
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"span\",";
  append_int(line, "r", run);
  line += ",\"k\":\"";
  line += span_kind_name(event.kind);
  line += "\",";
  append_num(line, "tm", event.time);
  if (event.session != 0) {
    line += ',';
    append_int(line, "s", event.session);
  }
  if (event.generation != 0) {
    line += ',';
    append_int(line, "g", event.generation);
  }
  if (event.node != -1) {
    line += ',';
    append_int(line, "n", event.node);
  }
  if (event.peer != -1) {
    line += ',';
    append_int(line, "p", event.peer);
  }
  line += ',';
  append_int(line, "o", event.span.origin);
  line += ',';
  append_int(line, "q", static_cast<long long>(event.span.seq));
  if (event.rank != 0) {
    line += ',';
    append_int(line, "rk", static_cast<long long>(event.rank));
  }
  if (event.pivot != -1) {
    line += ',';
    append_int(line, "pv", event.pivot);
  }
  if (event.uncoded) {
    line += ',';
    append_int(line, "uc", 1);
  }
  if (!event.parents.empty()) {
    line += ",\"par\":[";
    for (std::size_t i = 0; i < event.parents.size(); ++i) {
      if (i > 0) line += ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "[%u,%u]",
                    static_cast<unsigned>(event.parents[i].origin),
                    static_cast<unsigned>(event.parents[i].seq));
      line += buf;
    }
    line += ']';
  }
  line += '}';
  write_line(line);
}

void TraceRecorder::record_histogram(int run, const std::string& name,
                                     const Histogram& histogram) {
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"hist\",";
  append_int(line, "r", run);
  line += ',';
  append_string(line, "name", name);
  line += ",\"h\":";
  line += histogram.to_json();
  line += '}';
  write_line(line);
}

void TraceRecorder::record_opt_iteration(int run, int iteration, double gamma,
                                         const std::vector<double>& b) {
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"opt_iter\",";
  append_int(line, "r", run);
  line += ',';
  append_int(line, "it", iteration);
  line += ',';
  append_num(line, "gamma", gamma);
  line += ",\"b\":[";
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i > 0) line += ',';
    append_double(line, b[i]);
  }
  line += "]}";
  write_line(line);
}

void TraceRecorder::record_probe(int session, int edge, int from, int to,
                                 double p_true, double p_estimate) {
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"probe\",";
  append_int(line, "s", session);
  line += ',';
  append_int(line, "e", edge);
  line += ',';
  append_int(line, "from", from);
  line += ',';
  append_int(line, "to", to);
  line += ',';
  append_num(line, "pt", p_true);
  line += ',';
  append_num(line, "pe", p_estimate);
  line += '}';
  write_line(line);
}

void TraceRecorder::end_run(
    int run, const std::vector<protocols::SessionResult>& results,
    const std::vector<std::vector<std::size_t>>& edge_innovative) {
  if (file_ == nullptr) return;
  std::string line = "{\"t\":\"run_end\",";
  append_int(line, "r", run);
  line += ",\"results\":[";
  for (std::size_t s = 0; s < results.size(); ++s) {
    if (s > 0) line += ',';
    append_result(line, results[s],
                  s < edge_innovative.size() ? &edge_innovative[s] : nullptr);
  }
  line += "]}";
  write_line(line);
}

void TraceRecorder::record_registry() {
  if (file_ == nullptr) return;
  for (const MetricRow& row : MetricsRegistry::global().rows()) {
    std::string line = "{\"t\":\"metric\",";
    append_string(line, "name", row.name);
    line += ',';
    append_string(line, "kind", row.kind);
    line += ',';
    append_int(line, "count", static_cast<long long>(row.count));
    line += ',';
    append_num(line, "value", row.value);
    line += ',';
    append_int(line, "min_ns", static_cast<long long>(row.min_ns));
    line += ',';
    append_int(line, "max_ns", static_cast<long long>(row.max_ns));
    line += ',';
    append_num(line, "p50_ns", row.p50_ns);
    line += ',';
    append_num(line, "p99_ns", row.p99_ns);
    line += '}';
    write_line(line);
  }
}

void TraceRecorder::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

}  // namespace omnc::obs

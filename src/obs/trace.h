// Run-wide JSONL tracing on top of the MetricsBus.
//
// A TraceRecorder serializes every MetricEvent a traced run emits — plus the
// optimizer's per-iteration state, link-probing estimates, and registry
// snapshots — into a schema-versioned JSON-lines file.  The file opens with
// a manifest (schema version, build stamp, tool name, master seed); each run
// contributes a run_begin record carrying its protocol, seed, coding/MAC
// parameters and a hash of its session graphs, the graphs themselves (nodes,
// ETX distances, edges with reception probabilities), the raw event stream,
// and a run_end record with the SessionResults the live sinks assembled.
//
// Doubles are printed with %.17g, which round-trips IEEE-754 exactly, so an
// offline replay of the event stream through the same sinks reproduces every
// live statistic bit for bit (tools/trace_inspect --verify checks this).
//
// The recorder is thread-safe: run_all's workers trace concurrently into the
// same file, each line is written atomically under a mutex, and every record
// carries its run id so interleaved runs demultiplex on read.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/span.h"
#include "protocols/metrics.h"
#include "protocols/metrics_bus.h"
#include "routing/node_selection.h"

namespace omnc::obs {

/// Schema 2 added packet-lifecycle "span" records and serialized "hist"
/// histogram records; the reader accepts 1 and 2.
inline constexpr int kTraceSchemaVersion = 2;

/// Per-run manifest data written into the run_begin record.
struct RunContext {
  std::string protocol;       // "omnc", "more", "oldmore", "etx", ...
  std::uint64_t seed = 0;     // the run's protocol seed
  int topology_nodes = 0;     // sink dimension (events index topology ids)
  int generation_blocks = 0;  // coding geometry (throughput reconstruction)
  int block_bytes = 0;
  double capacity_bytes_per_s = 0.0;
  double cbr_bytes_per_s = 0.0;
  double sim_seconds = 0.0;
  /// Multi-unicast: mean_queue of every recorded result is the channel-wide
  /// shared average, not the per-session one assemble() computes.
  bool shared_queue = false;
  /// Code-family selector the run's sessions used ("dense", "systematic",
  /// "banded:W"; DESIGN.md §15).  Empty means dense and is omitted from the
  /// run_begin record, so pre-family traces stay byte-identical.
  std::string code_family;
};

class TraceRecorder {
 public:
  /// Opens `path` and writes the manifest.  `tool` names the producing
  /// binary, `params` is its canonical parameter string, `seed` the master
  /// workload seed.  On open failure ok() is false and every record call is
  /// a no-op.
  TraceRecorder(const std::string& path, const std::string& tool,
                const std::string& params, std::uint64_t seed);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Starts a run: writes run_begin (with a combined structural hash of the
  /// graphs) plus one graph record per session.  Returns the run id every
  /// subsequent record for this run must carry.
  int begin_run(const RunContext& context,
                const std::vector<const routing::SessionGraph*>& graphs);

  /// Serializes one bus event (RunSink forwards here).
  void record_event(int run, const protocols::MetricEvent& event);

  /// Serializes one packet-lifecycle span event (obs/span.h).  Emission
  /// order is the tap's serialized order, so deterministic-clock runs
  /// produce byte-identical span streams per seed.
  void record_span(int run, const SpanEvent& event);

  /// Serializes one named latency histogram (sparse bucket encoding; see
  /// Histogram::to_json).  Typically written once at end of run.
  void record_histogram(int run, const std::string& name,
                        const Histogram& histogram);

  /// One rate-control iteration: recovered gamma-bar and b-bar (Fig. 1).
  void record_opt_iteration(int run, int iteration, double gamma,
                            const std::vector<double>& b);

  /// One probed link: true PHY probability vs the prober's estimate.
  void record_probe(int session, int edge, int from, int to, double p_true,
                    double p_estimate);

  /// Finishes a run: records the live sinks' assembled per-session results
  /// and innovative-delivery edge counts — the ground truth trace_inspect
  /// verifies its replay against.
  void end_run(int run, const std::vector<protocols::SessionResult>& results,
               const std::vector<std::vector<std::size_t>>& edge_innovative);

  /// Snapshots the global MetricsRegistry (one record per instrument).
  void record_registry();

  /// FNV-1a over a graph's structure (nodes, endpoints, ETX, edges).
  static std::uint64_t hash_graph(const routing::SessionGraph& graph);

 private:
  void write_line(const std::string& line);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  int next_run_ = 0;
};

/// TraceSink adapter stamping every event with its run id.  A null recorder
/// yields an inert sink, so call sites can construct unconditionally and
/// subscribe `sink_or_null()` (MetricsBus ignores nullptr).
class RunSink final : public protocols::TraceSink {
 public:
  RunSink(TraceRecorder* recorder, int run)
      : recorder_(recorder), run_(run) {}

  void on_event(const protocols::MetricEvent& event) override {
    if (recorder_ != nullptr) recorder_->record_event(run_, event);
  }

  protocols::TraceSink* sink_or_null() {
    return recorder_ != nullptr ? this : nullptr;
  }

 private:
  TraceRecorder* recorder_;
  int run_;
};

}  // namespace omnc::obs

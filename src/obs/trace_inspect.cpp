#include "obs/trace_inspect.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace omnc::obs {
namespace {

/// Fields assemble() never writes come from the recorded result, so a
/// replayed record differs from the ground truth only where the event
/// stream disagrees.
protocols::SessionResult diagnostics_base(const protocols::SessionResult& r) {
  protocols::SessionResult base;
  base.rc_iterations = r.rc_iterations;
  base.rc_converged = r.rc_converged;
  base.rc_messages = r.rc_messages;
  base.predicted_gamma = r.predicted_gamma;
  return base;
}

void check(VerifyReport* report, int run, std::size_t session,
           const char* field, double recorded, double replayed) {
  ++report->comparisons;
  const bool equal = recorded == replayed ||
                     (std::isnan(recorded) && std::isnan(replayed));
  if (equal) return;
  report->ok = false;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "run %d session %zu: %s recorded %.17g != replayed %.17g", run,
                session, field, recorded, replayed);
  report->mismatches.push_back(buf);
}

}  // namespace

ReplayedRun replay_run(const RecordedRun& run) {
  ReplayedRun out;
  if (run.graphs.empty()) return out;

  std::vector<const routing::SessionGraph*> graphs;
  graphs.reserve(run.graphs.size());
  for (const auto& graph : run.graphs) graphs.push_back(&graph);

  coding::CodingParams coding;
  coding.generation_blocks =
      static_cast<std::uint16_t>(run.context.generation_blocks);
  coding.block_bytes = static_cast<std::uint16_t>(run.context.block_bytes);

  protocols::SessionResultSink results(graphs, coding,
                                       run.context.topology_nodes);
  protocols::QueueTimelineSink queues(run.context.topology_nodes);
  protocols::EdgeDeliverySink edges(graphs);

  for (const protocols::MetricEvent& event : run.events) {
    results.on_event(event);
    queues.on_event(event);
    edges.on_event(event);
  }
  out.events_replayed = run.events.size();

  out.sessions.resize(run.graphs.size());
  for (std::size_t s = 0; s < run.graphs.size(); ++s) {
    ReplayedSession& session = out.sessions[s];
    const protocols::SessionResult base =
        s < run.results.size() ? diagnostics_base(run.results[s])
                               : protocols::SessionResult{};
    session.result = results.assemble(s, base);
    session.edge_deliveries = edges.deliveries(s);
  }
  for (const protocols::MetricEvent& event : run.events) {
    if (event.type != protocols::MetricEvent::Type::kGenerationAck) continue;
    if (event.session < out.sessions.size()) {
      out.sessions[event.session].ack_latencies.push_back(event.value);
    }
  }

  out.shared_mean_queue = results.shared_mean_queue();
  if (run.context.shared_queue) {
    // Multi-unicast reports the channel-wide average for every session.
    for (auto& session : out.sessions) {
      session.result.mean_queue = out.shared_mean_queue;
    }
  }

  out.queue_timelines.resize(
      static_cast<std::size_t>(run.context.topology_nodes));
  out.queue_time_average.resize(
      static_cast<std::size_t>(run.context.topology_nodes));
  for (int node = 0; node < run.context.topology_nodes; ++node) {
    out.queue_timelines[static_cast<std::size_t>(node)] =
        queues.timeline(node);
    out.queue_time_average[static_cast<std::size_t>(node)] =
        queues.time_average(node);
  }
  return out;
}

namespace {

void verify_replay(const RecordedRun& run, VerifyReport* out) {
  VerifyReport& report = *out;
  const ReplayedRun replay = replay_run(run);
  for (std::size_t s = 0; s < run.results.size(); ++s) {
    if (s >= replay.sessions.size()) {
      report.ok = false;
      report.mismatches.push_back("recorded more sessions than graphs");
      break;
    }
    const protocols::SessionResult& recorded = run.results[s];
    const protocols::SessionResult& replayed = replay.sessions[s].result;
    const int id = run.id;
    check(&report, id, s, "throughput", recorded.throughput_bytes_per_s,
          replayed.throughput_bytes_per_s);
    check(&report, id, s, "throughput_per_generation",
          recorded.throughput_per_generation,
          replayed.throughput_per_generation);
    check(&report, id, s, "generations",
          recorded.generations_completed, replayed.generations_completed);
    check(&report, id, s, "mean_queue", recorded.mean_queue,
          replayed.mean_queue);
    check(&report, id, s, "node_utility_ratio", recorded.node_utility_ratio,
          replayed.node_utility_ratio);
    check(&report, id, s, "path_utility_ratio", recorded.path_utility_ratio,
          replayed.path_utility_ratio);
    check(&report, id, s, "transmissions",
          static_cast<double>(recorded.transmissions),
          static_cast<double>(replayed.transmissions));
    check(&report, id, s, "packets_delivered",
          static_cast<double>(recorded.packets_delivered),
          static_cast<double>(replayed.packets_delivered));
    check(&report, id, s, "queue_drops",
          static_cast<double>(recorded.queue_drops),
          static_cast<double>(replayed.queue_drops));

    // Fig. 4 raw counts, from both the recorded array and the independent
    // EdgeDeliverySink replay.  Runs that recorded no edge counts (e.g. a
    // pure rate-control run) skip this comparison.
    if (s < run.edge_innovative.size() && !run.edge_innovative[s].empty()) {
      const auto& recorded_edges = run.edge_innovative[s];
      const auto& replayed_edges = replay.sessions[s].edge_deliveries;
      ++report.comparisons;
      if (recorded_edges != replayed_edges) {
        report.ok = false;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "run %d session %zu: edge delivery counts differ",
                      run.id, s);
        report.mismatches.push_back(buf);
      }
    }
  }
}

}  // namespace

VerifyReport verify_run(const RecordedRun& run) {
  VerifyReport report;
  if (!run.completed) return report;  // no ground truth to compare against

  // Replay-based checks need the graphs; result-only runs (the uncoded ETX
  // baseline records no event stream) skip them.
  if (!run.graphs.empty()) verify_replay(run, &report);

  // Optimizer iterations recorded alongside the run must agree with the
  // diagnostics baked into the result record.
  if (!run.opt_gamma.empty() && !run.results.empty()) {
    const protocols::SessionResult& r = run.results.front();
    check(&report, run.id, 0, "rc_iterations",
          static_cast<double>(r.rc_iterations),
          static_cast<double>(run.opt_gamma.size()));
    check(&report, run.id, 0, "predicted_gamma", r.predicted_gamma,
          run.opt_gamma.back());
  }
  return report;
}

VerifyReport verify_trace(const Trace& trace) {
  VerifyReport merged;
  for (const RecordedRun& run : trace.runs) {
    VerifyReport report = verify_run(run);
    merged.comparisons += report.comparisons;
    if (!report.ok) merged.ok = false;
    merged.mismatches.insert(merged.mismatches.end(),
                             report.mismatches.begin(),
                             report.mismatches.end());
  }
  return merged;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q / 100.0 * static_cast<double>(values.size());
  auto index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

const SpanDag::Node* SpanDag::find(SpanId id) const {
  for (const Node& node : nodes) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

std::vector<SpanDag> build_span_dags(const std::vector<SpanEvent>& spans) {
  std::map<std::uint32_t, SpanDag> dags;
  std::map<std::uint32_t, std::map<std::uint64_t, std::size_t>> index;
  for (const SpanEvent& event : spans) {
    SpanDag& dag = dags[event.generation];
    dag.generation = event.generation;
    dag.events.push_back(event);
    if (!event.span.valid()) continue;
    auto& nodes_of = index[event.generation];
    const auto [it, inserted] =
        nodes_of.emplace(event.span.key(), dag.nodes.size());
    if (inserted) {
      SpanDag::Node node;
      node.id = event.span;
      node.first_time = event.time;
      dag.nodes.push_back(node);
    }
    SpanDag::Node& node = dag.nodes[it->second];
    switch (event.kind) {
      case SpanEvent::Kind::kEnqueue:
        node.creator = event.node;
        node.parents = event.parents;
        break;
      case SpanEvent::Kind::kTransmit:
        node.transmitted = true;
        break;
      case SpanEvent::Kind::kReceive:
        node.received = true;
        break;
      case SpanEvent::Kind::kDrop:
        node.dropped = true;
        break;
      case SpanEvent::Kind::kInnovate:
        node.innovative = true;
        break;
      case SpanEvent::Kind::kDecode:
        dag.decoded = true;
        dag.decode_span = event.span;
        dag.decode_time = event.time;
        dag.decode_basis = event.parents;
        break;
    }
  }
  std::vector<SpanDag> out;
  out.reserve(dags.size());
  for (auto& [generation, dag] : dags) out.push_back(std::move(dag));
  return out;
}

SpanDagCheck check_span_dags(const std::vector<SpanDag>& dags) {
  SpanDagCheck check;
  auto problem = [&check](std::uint32_t generation, const char* what,
                          SpanId span) {
    check.complete = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "generation %u: span (%u,%u) %s",
                  generation, static_cast<unsigned>(span.origin), span.seq,
                  what);
    check.problems.push_back(buf);
  };
  for (const SpanDag& dag : dags) {
    if (!dag.decoded) continue;
    ++check.decoded_generations;
    if (dag.decode_basis.empty()) {
      problem(dag.generation, "decode has an empty basis", dag.decode_span);
      continue;
    }
    // Walk the decode basis back through recorded parents; every path must
    // terminate in a source root (an enqueue with no parents).
    std::set<std::uint64_t> visited;
    std::vector<SpanId> frontier = dag.decode_basis;
    bool reached_root = false;
    while (!frontier.empty()) {
      const SpanId span = frontier.back();
      frontier.pop_back();
      if (!visited.insert(span.key()).second) continue;
      const SpanDag::Node* node = dag.find(span);
      if (node == nullptr || node->creator < 0) {
        problem(dag.generation, "has no enqueue record", span);
        continue;
      }
      if (node->parents.empty()) {
        reached_root = true;
        continue;
      }
      for (const SpanId& parent : node->parents) {
        frontier.push_back(parent);
      }
    }
    if (!reached_root) {
      problem(dag.generation, "DAG never reaches a source root",
              dag.decode_span);
    }
  }
  return check;
}

}  // namespace omnc::obs

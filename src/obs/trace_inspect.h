// Offline replay of a recorded trace through the live metric sinks.
//
// replay_run() feeds a RecordedRun's event stream to fresh
// SessionResultSink / QueueTimelineSink / EdgeDeliverySink instances built
// from the reconstructed session graphs — the same code the live run used —
// and returns the statistics they assemble: per-session SessionResults,
// queue timelines and time averages, per-edge innovative-delivery counts,
// and generation ACK latencies.  verify_run() compares every replayed
// number with the ground truth the recorder captured at run end, with exact
// double equality: a %.17g round trip is lossless, so any difference means
// the trace or the sinks diverged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace_reader.h"
#include "protocols/metrics.h"
#include "protocols/metrics_bus.h"

namespace omnc::obs {

/// Everything the sinks reconstruct for one session of a replayed run.
struct ReplayedSession {
  protocols::SessionResult result;
  std::vector<std::size_t> edge_deliveries;  // EdgeDeliverySink counts
  std::vector<double> ack_latencies;         // seconds, in completion order
};

struct ReplayedRun {
  std::vector<ReplayedSession> sessions;
  /// Per topology node: every end-of-slot queue sample and its time average
  /// (QueueTimelineSink).
  std::vector<std::vector<protocols::QueueTimelineSink::Sample>>
      queue_timelines;
  std::vector<double> queue_time_average;
  /// Channel-wide mean queue over all transmitting nodes (the multi-unicast
  /// Fig. 3 scalar).
  double shared_mean_queue = 0.0;
  std::size_t events_replayed = 0;
};

/// Replays the run's event stream through fresh sinks.  Prepare-time
/// diagnostics (rate-control fields), which no event carries, are seeded
/// from the recorded results so assembled records are directly comparable.
ReplayedRun replay_run(const RecordedRun& run);

struct VerifyReport {
  bool ok = true;
  std::size_t comparisons = 0;
  std::vector<std::string> mismatches;
};

/// Replays `run` and compares against its recorded run_end ground truth
/// (exact equality).  Runs without an event stream (e.g. the uncoded ETX
/// baseline) or without a run_end record verify vacuously.
VerifyReport verify_run(const RecordedRun& run);

/// verify_run over every run; reports are merged.
VerifyReport verify_trace(const Trace& trace);

/// Nearest-rank percentile; q in [0, 100].  0 on empty input.
double percentile(std::vector<double> values, double q);

// ---------------------------------------------------------------------------
// Span-DAG reconstruction (schema >= 2 traces; see obs/span.h).
// ---------------------------------------------------------------------------

/// The causal DAG of one generation, rebuilt from its span events.
struct SpanDag {
  struct Node {
    SpanId id;
    int creator = -1;  // node that enqueued the packet; -1 = enqueue unseen
    std::vector<SpanId> parents;  // recoded input basis (empty = source root)
    bool transmitted = false;
    bool received = false;   // at least one copy reached some node
    bool dropped = false;    // at least one copy died in transit
    bool innovative = false;
    double first_time = 0.0;  // time of the span's earliest event
  };

  std::uint32_t generation = 0;
  bool decoded = false;     // a kDecode event was seen
  SpanId decode_span;       // the packet that completed the decode
  double decode_time = 0.0;
  std::vector<SpanId> decode_basis;  // parents of the kDecode event
  std::vector<Node> nodes;           // first-seen order
  std::vector<SpanEvent> events;     // this generation's events, trace order

  const Node* find(SpanId id) const;
};

/// Groups one run's span stream into per-generation DAGs (ascending
/// generation id).
std::vector<SpanDag> build_span_dags(const std::vector<SpanEvent>& spans);

struct SpanDagCheck {
  bool complete = true;  // every decoded generation's DAG reaches its roots
  std::size_t decoded_generations = 0;
  std::vector<std::string> problems;
};

/// Walks every decoded generation's decode basis back through recorded
/// parents.  The walk must terminate in source roots (spans enqueued with an
/// empty parent list); unreachable parents (no enqueue record) and cycles
/// are reported as problems and mark the check incomplete.
SpanDagCheck check_span_dags(const std::vector<SpanDag>& dags);

}  // namespace omnc::obs

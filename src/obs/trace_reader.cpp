#include "obs/trace_reader.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

namespace omnc::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser covering the subset the
// recorder emits (objects, arrays, strings, numbers, booleans, null).
// Numbers are parsed with strtod, which restores %.17g output exactly.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  const Json* find(const char* key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num(const char* key, double fallback = 0.0) const {
    const Json* v = find(key);
    return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
  }
  long long integer(const char* key, long long fallback = 0) const {
    return static_cast<long long>(num(key, static_cast<double>(fallback)));
  }
  std::string text(const char* key) const {
    const Json* v = find(key);
    return (v != nullptr && v->kind == Kind::kString) ? v->str : std::string();
  }
  std::uint64_t u64(const char* key) const {
    const Json* v = find(key);
    if (v == nullptr || v->kind != Kind::kString) return 0;
    return std::strtoull(v->str.c_str(), nullptr, 10);
  }
};

class Parser {
 public:
  explicit Parser(const char* text) : p_(text) {}

  bool parse(Json* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      *error = error_;
      return false;
    }
    skip_ws();
    if (*p_ != '\0') {
      *error = "trailing characters";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' || *p_ == '\n') ++p_;
  }

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  bool value(Json* out) {
    switch (*p_) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        out->kind = Json::Kind::kString;
        return string(&out->str);
      }
      case 't':
        if (std::strncmp(p_, "true", 4) != 0) return fail("bad literal");
        p_ += 4;
        out->kind = Json::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (std::strncmp(p_, "false", 5) != 0) return fail("bad literal");
        p_ += 5;
        out->kind = Json::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (std::strncmp(p_, "null", 4) != 0) return fail("bad literal");
        p_ += 4;
        out->kind = Json::Kind::kNull;
        return true;
      default: return number(out);
    }
  }

  bool object(Json* out) {
    out->kind = Json::Kind::kObject;
    ++p_;  // '{'
    skip_ws();
    if (*p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (*p_ != ':') return fail("expected ':'");
      ++p_;
      skip_ws();
      Json child;
      if (!value(&child)) return false;
      out->fields.emplace_back(std::move(key), std::move(child));
      skip_ws();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Json* out) {
    out->kind = Json::Kind::kArray;
    ++p_;  // '['
    skip_ws();
    if (*p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      Json child;
      if (!value(&child)) return false;
      out->items.push_back(std::move(child));
      skip_ws();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    if (*p_ != '"') return fail("expected string");
    ++p_;
    out->clear();
    while (*p_ != '"') {
      if (*p_ == '\0') return fail("unterminated string");
      if (*p_ == '\\') {
        ++p_;
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            // The recorder only emits \u00xx control escapes.
            char hex[5] = {0, 0, 0, 0, 0};
            for (int i = 0; i < 4; ++i) {
              if (p_[1 + i] == '\0') return fail("bad \\u escape");
              hex[i] = p_[1 + i];
            }
            *out += static_cast<char>(std::strtol(hex, nullptr, 16));
            p_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
        ++p_;
      } else {
        *out += *p_;
        ++p_;
      }
    }
    ++p_;  // closing quote
    return true;
  }

  bool number(Json* out) {
    char* end = nullptr;
    const double v = std::strtod(p_, &end);
    if (end == p_) return fail("expected value");
    out->kind = Json::Kind::kNumber;
    out->number = v;
    p_ = end;
    return true;
  }

  const char* p_;
  std::string error_;
};

protocols::MetricEvent::Type event_type_of(const std::string& kind,
                                           bool* known) {
  using Type = protocols::MetricEvent::Type;
  *known = true;
  if (kind == "tx") return Type::kTx;
  if (kind == "rx") return Type::kRx;
  if (kind == "q") return Type::kQueueSample;
  if (kind == "ack") return Type::kGenerationAck;
  if (kind == "flush") return Type::kStaleFlush;
  if (kind == "drop") return Type::kQueueDrop;
  if (kind == "cont") return Type::kMacContention;
  if (kind == "coll") return Type::kMacCollision;
  if (kind == "esend") return Type::kEmuSend;
  if (kind == "edrop") return Type::kEmuDrop;
  if (kind == "edeliver") return Type::kEmuDeliver;
  if (kind == "eperr") return Type::kEmuParseError;
  if (kind == "floss") return Type::kEmuFaultLoss;
  if (kind == "freord") return Type::kEmuFaultReorder;
  if (kind == "fdup") return Type::kEmuFaultDup;
  if (kind == "fpart") return Type::kEmuFaultPartition;
  if (kind == "fblack") return Type::kEmuFaultBlackout;
  if (kind == "eresync") return Type::kEmuResync;
  if (kind == "estall") return Type::kEmuStall;
  *known = false;
  return Type::kTx;
}

SpanEvent::Kind span_kind_of(const std::string& kind, bool* known) {
  using Kind = SpanEvent::Kind;
  *known = true;
  if (kind == "enq") return Kind::kEnqueue;
  if (kind == "tx") return Kind::kTransmit;
  if (kind == "rx") return Kind::kReceive;
  if (kind == "drop") return Kind::kDrop;
  if (kind == "inn") return Kind::kInnovate;
  if (kind == "dec") return Kind::kDecode;
  *known = false;
  return Kind::kEnqueue;
}

/// Bucket counts ride in [index, "count"] pairs; u64 counts are decimal
/// strings (see Histogram::to_json).
bool parse_histogram(const Json& h, Histogram* out) {
  std::vector<std::pair<int, std::uint64_t>> buckets;
  if (const Json* b = h.find("b"); b != nullptr) {
    for (const Json& pair : b->items) {
      if (pair.items.size() != 2 ||
          pair.items[0].kind != Json::Kind::kNumber ||
          pair.items[1].kind != Json::Kind::kString) {
        return false;
      }
      buckets.emplace_back(
          static_cast<int>(pair.items[0].number),
          std::strtoull(pair.items[1].str.c_str(), nullptr, 10));
    }
  }
  return Histogram::assemble(h.u64("count"), h.num("sum"), h.num("min"),
                             h.num("max"), buckets, out);
}

protocols::SessionResult parse_result(const Json& j,
                                      std::vector<std::size_t>* edges) {
  protocols::SessionResult r;
  r.connected = j.integer("conn") != 0;
  r.throughput_bytes_per_s = j.num("thr");
  r.throughput_per_generation = j.num("thr_gen");
  r.generations_completed = static_cast<int>(j.integer("gens"));
  r.mean_queue = j.num("mean_q");
  r.node_utility_ratio = j.num("nur");
  r.path_utility_ratio = j.num("pur");
  r.transmissions = static_cast<std::size_t>(j.integer("tx"));
  r.packets_delivered = static_cast<std::size_t>(j.integer("del"));
  r.queue_drops = static_cast<std::size_t>(j.integer("drops"));
  r.rc_iterations = static_cast<int>(j.integer("rc_it"));
  r.rc_converged = j.integer("rc_conv") != 0;
  r.rc_messages = static_cast<std::size_t>(j.integer("rc_msgs"));
  r.predicted_gamma = j.num("pgamma");
  edges->clear();
  if (const Json* inn = j.find("edge_inn"); inn != nullptr) {
    for (const Json& e : inn->items) {
      edges->push_back(static_cast<std::size_t>(e.number));
    }
  }
  return r;
}

}  // namespace

bool read_trace(const std::string& path, Trace* out, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    *error = "cannot open " + path;
    return false;
  }

  // Runs are demultiplexed by id; the map keeps ids ordered for the final
  // flatten.
  std::map<int, RecordedRun> runs;
  auto run_of = [&runs](int id) -> RecordedRun& {
    RecordedRun& run = runs[id];
    run.id = id;
    return run;
  };

  std::string line;
  int line_number = 0;
  char buffer[1 << 16];
  bool ok = true;
  bool saw_manifest = false;
  while (ok && std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    ++line_number;
    line.assign(buffer);
    // Reassemble lines longer than the read buffer.
    while (!line.empty() && line.back() != '\n' &&
           std::fgets(buffer, sizeof(buffer), file) != nullptr) {
      line += buffer;
    }
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;

    Json record;
    std::string parse_error;
    if (!Parser(line.c_str()).parse(&record, &parse_error)) {
      char where[64];
      std::snprintf(where, sizeof(where), " (line %d)", line_number);
      *error = parse_error + where;
      ok = false;
      break;
    }

    const std::string type = record.text("t");
    if (type == "manifest") {
      saw_manifest = true;
      out->schema = static_cast<int>(record.integer("schema"));
      out->build = record.text("build");
      out->tool = record.text("tool");
      out->params = record.text("params");
      out->seed = record.u64("seed");
      // Schema 1 traces (pre-span/hist) remain readable.
      if (out->schema < 1 || out->schema > kTraceSchemaVersion) {
        char msg[64];
        std::snprintf(msg, sizeof(msg), "unsupported trace schema %d",
                      out->schema);
        *error = msg;
        ok = false;
      }
    } else if (type == "run_begin") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      run.context.protocol = record.text("protocol");
      run.context.seed = record.u64("seed");
      run.graph_hash = record.u64("graph_hash");
      run.context.topology_nodes =
          static_cast<int>(record.integer("topo_nodes"));
      run.context.generation_blocks =
          static_cast<int>(record.integer("gen_blocks"));
      run.context.block_bytes = static_cast<int>(record.integer("block_bytes"));
      run.context.capacity_bytes_per_s = record.num("capacity");
      run.context.cbr_bytes_per_s = record.num("cbr");
      run.context.sim_seconds = record.num("sim_seconds");
      run.context.shared_queue = record.integer("shared_q") != 0;
      run.context.code_family = record.text("code_family");
      run.graphs.resize(static_cast<std::size_t>(record.integer("sessions")));
    } else if (type == "graph") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      const auto s = static_cast<std::size_t>(record.integer("s"));
      if (s >= run.graphs.size()) run.graphs.resize(s + 1);
      routing::SessionGraph& graph = run.graphs[s];
      graph.source = static_cast<int>(record.integer("src"));
      graph.destination = static_cast<int>(record.integer("dst"));
      if (const Json* nodes = record.find("nodes"); nodes != nullptr) {
        for (const Json& n : nodes->items) {
          graph.nodes.push_back(static_cast<net::NodeId>(n.number));
        }
      }
      if (const Json* etx = record.find("etx"); etx != nullptr) {
        for (const Json& e : etx->items) graph.etx_to_dst.push_back(e.number);
      }
      if (const Json* edges = record.find("edges"); edges != nullptr) {
        for (const Json& e : edges->items) {
          if (e.items.size() != 3) {
            *error = "malformed graph edge";
            ok = false;
            break;
          }
          routing::SessionGraph::Edge edge;
          edge.from = static_cast<int>(e.items[0].number);
          edge.to = static_cast<int>(e.items[1].number);
          edge.p = e.items[2].number;
          graph.edges.push_back(edge);
        }
      }
    } else if (type == "ev") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      bool known = false;
      protocols::MetricEvent event;
      event.type = event_type_of(record.text("k"), &known);
      if (!known) continue;  // forward compatibility: skip unknown kinds
      event.time = record.num("tm");
      event.session = static_cast<std::uint32_t>(record.integer("s", 0));
      event.node = static_cast<net::NodeId>(record.integer("n", -1));
      event.tx_local = static_cast<int>(record.integer("tl", -1));
      event.rx_local = static_cast<int>(record.integer("rl", -1));
      event.edge = static_cast<int>(record.integer("e", -1));
      event.innovative = record.integer("i", 0) != 0;
      event.generation = static_cast<std::uint32_t>(record.integer("g", 0));
      event.value = record.num("v", 0.0);
      run.events.push_back(event);
    } else if (type == "span") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      bool known = false;
      SpanEvent event;
      event.kind = span_kind_of(record.text("k"), &known);
      if (!known) continue;  // forward compatibility: skip unknown kinds
      event.time = record.num("tm");
      event.session = static_cast<std::uint32_t>(record.integer("s", 0));
      event.generation = static_cast<std::uint32_t>(record.integer("g", 0));
      event.node = static_cast<int>(record.integer("n", -1));
      event.peer = static_cast<int>(record.integer("p", -1));
      event.span.origin = static_cast<std::uint16_t>(record.integer("o", 0));
      event.span.seq = static_cast<std::uint32_t>(record.integer("q", 0));
      event.rank = static_cast<std::size_t>(record.integer("rk", 0));
      event.pivot = static_cast<int>(record.integer("pv", -1));
      event.uncoded = record.integer("uc", 0) != 0;
      if (const Json* par = record.find("par"); par != nullptr) {
        for (const Json& p : par->items) {
          if (p.items.size() != 2) {
            *error = "malformed span parent";
            ok = false;
            break;
          }
          event.parents.push_back(
              SpanId{static_cast<std::uint16_t>(p.items[0].number),
                     static_cast<std::uint32_t>(p.items[1].number)});
        }
        if (!ok) break;
      }
      run.spans.push_back(std::move(event));
    } else if (type == "hist") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      const Json* h = record.find("h");
      Histogram histogram;
      if (h == nullptr || !parse_histogram(*h, &histogram)) {
        char where[64];
        std::snprintf(where, sizeof(where), "malformed histogram (line %d)",
                      line_number);
        *error = where;
        ok = false;
        break;
      }
      run.histograms.emplace_back(record.text("name"), std::move(histogram));
    } else if (type == "opt_iter") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      run.opt_gamma.push_back(record.num("gamma"));
      std::vector<double> b;
      if (const Json* bj = record.find("b"); bj != nullptr) {
        for (const Json& v : bj->items) b.push_back(v.number);
      }
      run.opt_b.push_back(std::move(b));
    } else if (type == "probe") {
      ProbeSample probe;
      probe.session = static_cast<int>(record.integer("s"));
      probe.edge = static_cast<int>(record.integer("e"));
      probe.from = static_cast<int>(record.integer("from"));
      probe.to = static_cast<int>(record.integer("to"));
      probe.p_true = record.num("pt");
      probe.p_estimate = record.num("pe");
      out->probes.push_back(probe);
    } else if (type == "run_end") {
      RecordedRun& run = run_of(static_cast<int>(record.integer("r")));
      run.completed = true;
      if (const Json* results = record.find("results"); results != nullptr) {
        for (const Json& r : results->items) {
          std::vector<std::size_t> edges;
          run.results.push_back(parse_result(r, &edges));
          run.edge_innovative.push_back(std::move(edges));
        }
      }
    } else if (type == "metric") {
      MetricSnapshot snapshot;
      snapshot.name = record.text("name");
      snapshot.kind = record.text("kind");
      snapshot.count = static_cast<std::uint64_t>(record.integer("count"));
      snapshot.value = record.num("value");
      snapshot.min_ns = static_cast<std::uint64_t>(record.integer("min_ns"));
      snapshot.max_ns = static_cast<std::uint64_t>(record.integer("max_ns"));
      snapshot.p50_ns = record.num("p50_ns");
      snapshot.p99_ns = record.num("p99_ns");
      out->registry.push_back(snapshot);
    }
    // Unknown record types are skipped (forward compatibility).
  }
  std::fclose(file);
  if (!ok) return false;
  if (!saw_manifest) {
    // An empty or truncated file must not "verify" vacuously: without a
    // manifest there is nothing to vouch for.
    *error = "no manifest record in " + path + " (empty or truncated trace?)";
    return false;
  }

  out->runs.reserve(runs.size());
  for (auto& [id, run] : runs) out->runs.push_back(std::move(run));
  return true;
}

}  // namespace omnc::obs

// Reads a TraceRecorder JSONL file back into typed records.
//
// The reader demultiplexes interleaved runs on their run id, reconstructs
// each run's SessionGraphs (nodes, endpoints, ETX distances, edges with
// reception probabilities — everything the metric sinks consult), and
// restores every MetricEvent field exactly, so replaying the stream through
// the live sinks reproduces the recorded run bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "protocols/metrics.h"
#include "protocols/metrics_bus.h"
#include "routing/node_selection.h"

namespace omnc::obs {

/// One recorded run: its manifest context, graphs, event stream, optimizer
/// iterations, and the results the live sinks assembled at run end.
struct RecordedRun {
  int id = -1;
  RunContext context;
  std::uint64_t graph_hash = 0;
  /// Reconstructed session graphs (range_neighbors is not serialized; no
  /// sink consults it).
  std::vector<routing::SessionGraph> graphs;
  std::vector<protocols::MetricEvent> events;
  /// Packet-lifecycle span events in recorded (tap-serialized) order
  /// (schema >= 2; empty for older traces).
  std::vector<SpanEvent> spans;
  /// Named latency histograms recorded at end of run (schema >= 2).
  std::vector<std::pair<std::string, Histogram>> histograms;
  /// Rate-control iterates in recorded order (Fig. 1 convergence curve).
  std::vector<double> opt_gamma;
  std::vector<std::vector<double>> opt_b;
  /// Ground truth from run_end.
  std::vector<protocols::SessionResult> results;
  std::vector<std::vector<std::size_t>> edge_innovative;
  bool completed = false;  // run_end was seen
};

/// One probed link (trace-scope; probing precedes the protocol runs).
struct ProbeSample {
  int session = 0;
  int edge = 0;
  int from = 0;
  int to = 0;
  double p_true = 0.0;
  double p_estimate = 0.0;
};

/// One registry instrument snapshot.
struct MetricSnapshot {
  std::string name;
  std::string kind;
  std::uint64_t count = 0;
  double value = 0.0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

struct Trace {
  int schema = 0;
  std::string build;
  std::string tool;
  std::string params;
  std::uint64_t seed = 0;
  std::vector<RecordedRun> runs;  // sorted by run id
  std::vector<ProbeSample> probes;
  std::vector<MetricSnapshot> registry;
};

/// Parses a JSONL trace.  Returns false (and sets `error`) on unreadable
/// files, malformed JSON, an unsupported schema version, or a file with no
/// manifest record (empty/truncated traces must fail loudly, not verify
/// vacuously).
bool read_trace(const std::string& path, Trace* out, std::string* error);

}  // namespace omnc::obs

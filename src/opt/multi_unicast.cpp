#include "opt/multi_unicast.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/assert.h"
#include "lp/simplex.h"
#include "routing/shortest_path.h"

namespace omnc::opt {
namespace {

/// Shared bookkeeping: the union of all sessions' nodes with interference
/// neighborhoods, and whether a node acts as a receiver anywhere (the
/// broadcast constraint applies at receivers).
struct UnionIndex {
  std::vector<net::NodeId> nodes;                 // union, sorted
  std::map<net::NodeId, int> to_union;            // topology id -> union idx
  std::vector<std::vector<int>> neighbors;        // union-local interference
  std::vector<bool> is_receiver;                  // non-source in >=1 session
  // member[s][local] = union index of session s's local node.
  std::vector<std::vector<int>> member;
};

UnionIndex build_union(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions) {
  UnionIndex u;
  for (const auto* graph : sessions) {
    OMNC_ASSERT(graph != nullptr && graph->size() >= 2);
    for (net::NodeId id : graph->nodes) u.to_union.emplace(id, 0);
  }
  int index = 0;
  for (auto& [id, slot] : u.to_union) {
    slot = index++;
    u.nodes.push_back(id);
  }
  u.neighbors.assign(u.nodes.size(), {});
  for (std::size_t a = 0; a < u.nodes.size(); ++a) {
    for (std::size_t b = 0; b < u.nodes.size(); ++b) {
      if (a != b && topology.interferes(u.nodes[a], u.nodes[b])) {
        u.neighbors[a].push_back(static_cast<int>(b));
      }
    }
  }
  u.is_receiver.assign(u.nodes.size(), false);
  u.member.resize(sessions.size());
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto* graph = sessions[s];
    u.member[s].resize(static_cast<std::size_t>(graph->size()));
    for (int local = 0; local < graph->size(); ++local) {
      const int global = u.to_union.at(graph->node_id(local));
      u.member[s][static_cast<std::size_t>(local)] = global;
      if (local != graph->source) {
        u.is_receiver[static_cast<std::size_t>(global)] = true;
      }
    }
  }
  return u;
}

}  // namespace

MultiSUnicastSolution solve_multi_sunicast(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions,
    double capacity) {
  MultiSUnicastSolution result;
  if (sessions.empty()) return result;
  const UnionIndex u = build_union(topology, sessions);
  const std::size_t k = sessions.size();

  // Variable layout: [t | per session: gamma_s, x^s_e..., b^s_i...].
  std::size_t num_vars = 1;
  std::vector<std::size_t> gamma_var(k);
  std::vector<std::size_t> x_base(k);
  std::vector<std::size_t> b_base(k);
  for (std::size_t s = 0; s < k; ++s) {
    gamma_var[s] = num_vars;
    x_base[s] = num_vars + 1;
    b_base[s] = x_base[s] + sessions[s]->edges.size();
    num_vars = b_base[s] + static_cast<std::size_t>(sessions[s]->size());
  }

  lp::Problem problem;
  problem.objective.assign(num_vars, 0.0);
  problem.objective[0] = 1.0;  // maximize the max-min throughput t

  for (std::size_t s = 0; s < k; ++s) {
    const auto& graph = *sessions[s];
    // gamma_s - t >= 0.
    {
      std::vector<double> row(num_vars, 0.0);
      row[gamma_var[s]] = 1.0;
      row[0] = -1.0;
      problem.add_ge(std::move(row), 0.0);
    }
    // Flow conservation.
    for (int i = 0; i < graph.size(); ++i) {
      std::vector<double> row(num_vars, 0.0);
      for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        if (graph.edges[e].from == i) row[x_base[s] + e] += 1.0;
        if (graph.edges[e].to == i) row[x_base[s] + e] -= 1.0;
      }
      if (i == graph.source) row[gamma_var[s]] = -1.0;
      if (i == graph.destination) row[gamma_var[s]] = 1.0;
      problem.add_eq(std::move(row), 0.0);
    }
    // Loss resilience b^s_i p >= x^s_e.
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      std::vector<double> row(num_vars, 0.0);
      row[b_base[s] + static_cast<std::size_t>(graph.edges[e].from)] =
          graph.edges[e].p;
      row[x_base[s] + e] = -1.0;
      problem.add_ge(std::move(row), 0.0);
    }
    // Loose per-variable bounds keep the program bounded.
    for (int i = 0; i < graph.size(); ++i) {
      std::vector<double> row(num_vars, 0.0);
      row[b_base[s] + static_cast<std::size_t>(i)] = 1.0;
      problem.add_le(std::move(row), capacity);
    }
  }

  // Shared broadcast constraint at every receiver of the union.
  for (std::size_t g = 0; g < u.nodes.size(); ++g) {
    if (!u.is_receiver[g]) continue;
    std::vector<double> row(num_vars, 0.0);
    auto add_node_rates = [&](std::size_t global, double coefficient) {
      for (std::size_t s = 0; s < k; ++s) {
        for (std::size_t local = 0; local < u.member[s].size(); ++local) {
          if (u.member[s][local] == static_cast<int>(global)) {
            row[b_base[s] + local] += coefficient;
          }
        }
      }
    };
    add_node_rates(g, 1.0);
    for (int nbr : u.neighbors[g]) {
      add_node_rates(static_cast<std::size_t>(nbr), 1.0);
    }
    problem.add_le(std::move(row), capacity);
  }

  const lp::Solution solution = lp::solve(problem);
  if (solution.status != lp::Status::kOptimal) return result;
  result.feasible = true;
  result.min_gamma = solution.objective;
  result.gamma.resize(k);
  result.b.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    result.gamma[s] = solution.x[gamma_var[s]];
    result.b[s].assign(
        solution.x.begin() + static_cast<long>(b_base[s]),
        solution.x.begin() +
            static_cast<long>(b_base[s] + static_cast<std::size_t>(
                                              sessions[s]->size())));
  }
  return result;
}

double multi_broadcast_load_factor(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions,
    const std::vector<std::vector<double>>& b, double capacity) {
  OMNC_ASSERT(b.size() == sessions.size());
  const UnionIndex u = build_union(topology, sessions);
  // Total rate per union node.
  std::vector<double> rate(u.nodes.size(), 0.0);
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    OMNC_ASSERT(b[s].size() == static_cast<std::size_t>(sessions[s]->size()));
    for (std::size_t local = 0; local < b[s].size(); ++local) {
      rate[static_cast<std::size_t>(u.member[s][local])] += b[s][local];
    }
  }
  double worst = 0.0;
  for (std::size_t g = 0; g < u.nodes.size(); ++g) {
    if (!u.is_receiver[g]) continue;
    double load = rate[g];
    for (int nbr : u.neighbors[g]) load += rate[static_cast<std::size_t>(nbr)];
    worst = std::max(worst, load / capacity);
  }
  return worst;
}

double multi_rescale_to_feasible(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions,
    std::vector<std::vector<double>>& b, double capacity) {
  const double load =
      multi_broadcast_load_factor(topology, sessions, b, capacity);
  if (load <= 1.0) return 1.0;
  const double scale = 1.0 / load;
  for (auto& rates : b) {
    for (double& value : rates) value *= scale;
  }
  return scale;
}

MultiSessionRateControl::MultiSessionRateControl(
    const net::Topology& topology,
    std::vector<const routing::SessionGraph*> sessions,
    const RateControlParams& params)
    : topology_(topology), sessions_(std::move(sessions)), params_(params) {
  OMNC_ASSERT(!sessions_.empty());
  for (const auto* graph : sessions_) {
    OMNC_ASSERT(graph != nullptr && graph->size() >= 2 &&
                !graph->edges.empty());
  }
}

MultiRateControlResult MultiSessionRateControl::run() {
  const UnionIndex u = build_union(topology_, sessions_);
  const std::size_t k = sessions_.size();
  const double unit = params_.capacity;  // normalized units, as in Table 1
  const double capacity = 1.0;

  struct SessionState {
    std::vector<double> lambda;  // per edge
    std::vector<double> b;       // per local node
    std::vector<double> b_avg;
    std::vector<double> x_avg;
    double gamma_avg = 0.0;
    std::vector<routing::GraphEdge> sp_edges;
  };
  std::vector<SessionState> state(k);
  for (std::size_t s = 0; s < k; ++s) {
    const auto& graph = *sessions_[s];
    state[s].lambda.assign(graph.edges.size(), 0.0);
    state[s].b.assign(static_cast<std::size_t>(graph.size()),
                      1e-3 * capacity);
    state[s].b_avg.assign(static_cast<std::size_t>(graph.size()), 0.0);
    state[s].x_avg.assign(graph.edges.size(), 0.0);
    state[s].sp_edges.resize(graph.edges.size());
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      state[s].sp_edges[e].from = graph.edges[e].from;
      state[s].sp_edges[e].to = graph.edges[e].to;
    }
  }
  std::vector<double> beta(u.nodes.size(), 0.0);  // shared congestion price

  MultiRateControlResult result;
  result.gamma.assign(k, 0.0);
  std::vector<double> prev_flat;
  int stable = 0;

  int t = 0;
  while (t < params_.max_iterations) {
    ++t;
    const double theta = params_.step_a /
                         (params_.step_b + params_.step_c * t);
    const double keep = static_cast<double>(t - 1) / t;

    // Per-node total rates for the shared price update.
    std::vector<double> total_rate(u.nodes.size(), 0.0);

    for (std::size_t s = 0; s < k; ++s) {
      const auto& graph = *sessions_[s];
      SessionState& ss = state[s];
      // SUB1 per session.
      for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        ss.sp_edges[e].cost = ss.lambda[e];
      }
      const routing::ShortestPathTree tree = routing::bellman_ford_to_target(
          graph.size(), ss.sp_edges, graph.destination);
      const double p_min =
          tree.distance[static_cast<std::size_t>(graph.source)];
      OMNC_ASSERT(p_min != routing::kUnreachable);
      const double gamma_t =
          (p_min <= 1.0 / capacity) ? capacity : 1.0 / p_min;
      std::vector<double> x_t(graph.edges.size(), 0.0);
      int node = graph.source;
      while (node != graph.destination) {
        const int next = tree.next_hop[static_cast<std::size_t>(node)];
        for (std::size_t e = 0; e < graph.edges.size(); ++e) {
          if (graph.edges[e].from == node && graph.edges[e].to == next) {
            x_t[e] = gamma_t;
            break;
          }
        }
        node = next;
      }
      for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        ss.x_avg[e] = keep * ss.x_avg[e] + x_t[e] / t;
      }
      result.gamma[s] = keep * result.gamma[s] + gamma_t / t;
      result.messages += graph.edges.size() *
                         static_cast<std::size_t>(tree.rounds);

      // SUB2 with the shared congestion price.
      std::vector<double> w(static_cast<std::size_t>(graph.size()), 0.0);
      for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        w[static_cast<std::size_t>(graph.edges[e].from)] +=
            ss.lambda[e] * graph.edges[e].p;
      }
      for (int i = 0; i < graph.size(); ++i) {
        const int global = u.member[s][static_cast<std::size_t>(i)];
        double price = u.is_receiver[static_cast<std::size_t>(global)]
                           ? beta[static_cast<std::size_t>(global)]
                           : 0.0;
        for (int nbr : u.neighbors[static_cast<std::size_t>(global)]) {
          if (u.is_receiver[static_cast<std::size_t>(nbr)]) {
            price += beta[static_cast<std::size_t>(nbr)];
          }
        }
        const double updated =
            ss.b[static_cast<std::size_t>(i)] +
            (w[static_cast<std::size_t>(i)] - price) /
                (2.0 * params_.proximal_c);
        ss.b[static_cast<std::size_t>(i)] =
            std::clamp(updated, 0.0, capacity);
        ss.b_avg[static_cast<std::size_t>(i)] =
            keep * ss.b_avg[static_cast<std::size_t>(i)] +
            ss.b[static_cast<std::size_t>(i)] / t;
        total_rate[static_cast<std::size_t>(global)] +=
            ss.b[static_cast<std::size_t>(i)];
      }
      // Lambda update (per session).
      for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        const auto& edge = graph.edges[e];
        const double slack =
            ss.b[static_cast<std::size_t>(edge.from)] * edge.p - x_t[e];
        ss.lambda[e] = std::max(0.0, ss.lambda[e] - theta * slack);
      }
      std::size_t degree = 0;
      for (const auto& nbrs : graph.range_neighbors) degree += nbrs.size();
      result.messages += 2 * degree;
    }

    // Shared congestion price update.
    for (std::size_t g = 0; g < u.nodes.size(); ++g) {
      if (!u.is_receiver[g]) continue;
      double load = total_rate[g];
      for (int nbr : u.neighbors[g]) {
        load += total_rate[static_cast<std::size_t>(nbr)];
      }
      beta[g] = std::max(0.0, beta[g] + theta * (load - capacity));
    }

    // Convergence on the concatenated recovered primal.
    std::vector<double> flat;
    for (std::size_t s = 0; s < k; ++s) {
      flat.insert(flat.end(), state[s].b_avg.begin(), state[s].b_avg.end());
      flat.push_back(result.gamma[s]);
    }
    if (!prev_flat.empty()) {
      double delta = 0.0;
      double scale = 1e-9;
      for (std::size_t i = 0; i < flat.size(); ++i) {
        delta = std::max(delta, std::abs(flat[i] - prev_flat[i]));
        scale = std::max(scale, flat[i]);
      }
      if (delta / scale < params_.tolerance) {
        if (++stable >= params_.stable_iterations) {
          result.converged = true;
          prev_flat = std::move(flat);
          break;
        }
      } else {
        stable = 0;
      }
    }
    prev_flat = std::move(flat);
  }

  result.iterations = t;
  result.b.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    result.b[s] = std::move(state[s].b_avg);
    for (double& value : result.b[s]) value *= unit;
    result.gamma[s] *= unit;
  }
  return result;
}

}  // namespace omnc::opt

// Multiple-unicast extension of the sUnicast framework — the scenario the
// paper's conclusion singles out ("the rate control framework can be
// flexibly extended to other scenarios such as the multiple-unicast case").
//
// K unicast sessions share the channel.  Each session s keeps its own
// selected subgraph, information rates x^s and broadcast rates b^s; the
// broadcast MAC constraint (4) now charges the *total* load around every
// receiver:
//
//   sum_s b^s_i + sum_{j in N(i)} sum_s b^s_j <= C       (i not a source-only node)
//
// Two solvers are provided:
//   * a centralized max-min LP (maximize t s.t. gamma_s >= t for all s) —
//     the fairness-oriented ground truth; and
//   * the distributed algorithm: per-session SUB1/lambda exactly as in
//     Table 1, with a single *shared* congestion price beta_i per node that
//     coordinates all sessions through the common constraint.  Because
//     every session maximizes U(gamma) = ln(gamma), the equilibrium is
//     proportionally fair across sessions.
#pragma once

#include <vector>

#include "net/topology.h"
#include "opt/rate_control.h"
#include "routing/node_selection.h"

namespace omnc::opt {

/// One session's view inside the joint problem.
struct MultiSessionMember {
  const routing::SessionGraph* graph = nullptr;
};

struct MultiRateControlResult {
  bool converged = false;
  int iterations = 0;
  /// Recovered throughput estimate per session.
  std::vector<double> gamma;
  /// rates[s][local node of session s] in bytes/s.
  std::vector<std::vector<double>> b;
  std::size_t messages = 0;
};

struct MultiSUnicastSolution {
  bool feasible = false;
  /// The max-min throughput t*.
  double min_gamma = 0.0;
  std::vector<double> gamma;             // per session (all >= t*)
  std::vector<std::vector<double>> b;    // per session, per local node
};

/// Centralized max-min LP over the shared topology.  Sessions' graphs must
/// reference nodes of `topology`.
MultiSUnicastSolution solve_multi_sunicast(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions,
    double capacity);

/// Joint load factor of per-session rate vectors: max over receivers of
/// (total own + neighborhood rate) / C, with neighborhoods taken from the
/// topology's interference relation.
double multi_broadcast_load_factor(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions,
    const std::vector<std::vector<double>>& b, double capacity);

/// Scales *all* sessions' rates by a common factor so the joint constraint
/// holds; returns the factor.
double multi_rescale_to_feasible(
    const net::Topology& topology,
    const std::vector<const routing::SessionGraph*>& sessions,
    std::vector<std::vector<double>>& b, double capacity);

class MultiSessionRateControl {
 public:
  MultiSessionRateControl(const net::Topology& topology,
                          std::vector<const routing::SessionGraph*> sessions,
                          const RateControlParams& params);

  MultiRateControlResult run();

 private:
  const net::Topology& topology_;
  std::vector<const routing::SessionGraph*> sessions_;
  RateControlParams params_;
};

}  // namespace omnc::opt

#include "opt/rate_control.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "routing/shortest_path.h"

namespace omnc::opt {

DistributedRateControl::DistributedRateControl(
    const routing::SessionGraph& graph, const RateControlParams& params)
    : graph_(graph), params_(params) {
  OMNC_ASSERT(graph.size() >= 2);
  OMNC_ASSERT(!graph.edges.empty());
  OMNC_ASSERT(params.capacity > 0.0);
  OMNC_ASSERT(params.proximal_c > 0.0);
}

RateControlResult DistributedRateControl::run(IterationTrace* trace) {
  const std::size_t v = static_cast<std::size_t>(graph_.size());
  const std::size_t e = graph_.edges.size();
  // The iteration runs in capacity-normalized units (C = 1): the paper's
  // step-size constants (A = 1, B = 0.5, C_step = 10) and the proximal
  // constant are dimensionless, and the Lagrange multipliers then live at
  // O(1) scale regardless of whether the channel is 2*10^4 or 10^5 bytes
  // per second.  Results are scaled back by `unit` on the way out.
  const double unit = params_.capacity;
  const double capacity = 1.0;

  // Step 1 (Table 1): primal variables start at small positive values, dual
  // variables at zero.
  std::vector<double> lambda(e, 0.0);       // multiplier of (5), per edge
  std::vector<double> beta(v, 0.0);         // congestion price, per node
  std::vector<double> b(v, 1e-3 * capacity);
  std::vector<double> b_avg(v, 0.0);
  std::vector<double> x_avg(e, 0.0);
  double gamma_avg = 0.0;

  // Edges of the shortest-path instance are rebuilt each iteration with the
  // current lambda as costs.
  std::vector<routing::GraphEdge> sp_edges(e);
  for (std::size_t edge = 0; edge < e; ++edge) {
    sp_edges[edge].from = graph_.edges[edge].from;
    sp_edges[edge].to = graph_.edges[edge].to;
  }

  RateControlResult result;
  std::vector<double> prev_b_avg(v, 0.0);
  double prev_gamma_avg = 0.0;
  int stable = 0;

  std::size_t neighbor_links = 0;
  for (const auto& nbrs : graph_.range_neighbors) neighbor_links += nbrs.size();

  int t = 0;
  while (t < params_.max_iterations) {
    ++t;
    const double theta =
        params_.step_a / (params_.step_b + params_.step_c * static_cast<double>(t));

    // ---- SUB1: shortest path under lambda costs, gamma = U'^-1(p_min). ----
    for (std::size_t edge = 0; edge < e; ++edge) {
      sp_edges[edge].cost = lambda[edge];
    }
    const routing::ShortestPathTree tree = routing::bellman_ford_to_target(
        graph_.size(), sp_edges, graph_.destination);
    const double p_min =
        tree.distance[static_cast<std::size_t>(graph_.source)];
    OMNC_ASSERT_MSG(p_min != routing::kUnreachable,
                    "session graph lost connectivity");
    // U(gamma) = ln(gamma) => gamma = 1/p_min, clamped into (0, C]: with all
    // lambda at zero the unclamped value would be infinite.
    const double gamma_t =
        (p_min <= 1.0 / capacity) ? capacity : 1.0 / p_min;
    // x^t: gamma_t on the links of the single shortest path, zero elsewhere.
    const double keep = static_cast<double>(t - 1) / static_cast<double>(t);
    std::vector<double> x_t(e, 0.0);
    {
      int node = graph_.source;
      while (node != graph_.destination) {
        const int next = tree.next_hop[static_cast<std::size_t>(node)];
        OMNC_ASSERT(next >= 0);
        // Find the edge (node -> next); linear scan is fine at these sizes.
        for (std::size_t edge = 0; edge < e; ++edge) {
          if (graph_.edges[edge].from == node &&
              graph_.edges[edge].to == next) {
            x_t[edge] = gamma_t;
            break;
          }
        }
        node = next;
      }
    }
    // Primal recovery (13): x-bar(t) = ((t-1) x-bar + x^t) / t.
    for (std::size_t edge = 0; edge < e; ++edge) {
      x_avg[edge] = keep * x_avg[edge] + x_t[edge] / static_cast<double>(t);
    }
    gamma_avg = keep * gamma_avg + gamma_t / static_cast<double>(t);
    // Bellman-Ford messages: one distance vector per edge per round.
    result.messages += e * static_cast<std::size_t>(tree.rounds);

    // ---- SUB2: proximal update of b, subgradient update of beta. ----
    // w_i = sum over outgoing links of lambda_ij p_ij.
    std::vector<double> w(v, 0.0);
    for (std::size_t edge = 0; edge < e; ++edge) {
      w[static_cast<std::size_t>(graph_.edges[edge].from)] +=
          lambda[edge] * graph_.edges[edge].p;
    }
    for (std::size_t i = 0; i < v; ++i) {
      double price = beta[i];  // beta_source stays 0 (no constraint at S)
      for (int j : graph_.range_neighbors[i]) {
        price += beta[static_cast<std::size_t>(j)];
      }
      const double updated =
          b[i] + (w[i] - price) / (2.0 * params_.proximal_c);
      b[i] = std::clamp(updated, 0.0, capacity);
    }
    // Congestion prices (15): beta_i += theta * (b_i + sum_{j in N(i)} b_j -
    // C), projected onto beta >= 0; only receivers (i != S) are constrained.
    for (std::size_t i = 0; i < v; ++i) {
      if (static_cast<int>(i) == graph_.source) continue;
      double load = b[i];
      for (int j : graph_.range_neighbors[i]) {
        load += b[static_cast<std::size_t>(j)];
      }
      beta[i] = std::max(0.0, beta[i] + theta * (load - capacity));
    }
    // Primal recovery (18).
    for (std::size_t i = 0; i < v; ++i) {
      b_avg[i] = keep * b_avg[i] + b[i] / static_cast<double>(t);
    }
    // Each node sends its updated rate and congestion price to every
    // neighbor (the only message passing besides the shortest path).
    result.messages += 2 * neighbor_links;

    // ---- Master: subgradient update of lambda (8), using the current
    // iterates b(t), x^t as the paper specifies. ----
    for (std::size_t edge = 0; edge < e; ++edge) {
      const auto& ge = graph_.edges[edge];
      const double slack =
          b[static_cast<std::size_t>(ge.from)] * ge.p - x_t[edge];
      lambda[edge] = std::max(0.0, lambda[edge] - theta * slack);
    }

    if (trace != nullptr) {
      trace->gamma.push_back(gamma_avg * unit);
      std::vector<double> b_scaled(b_avg);
      for (double& value : b_scaled) value *= unit;
      trace->b.push_back(std::move(b_scaled));
    }

    // ---- Convergence test on the recovered primal. ----
    double delta = std::abs(gamma_avg - prev_gamma_avg);
    double scale = std::max(gamma_avg, 1e-9 * capacity);
    for (std::size_t i = 0; i < v; ++i) {
      delta = std::max(delta, std::abs(b_avg[i] - prev_b_avg[i]));
      scale = std::max(scale, b_avg[i]);
    }
    prev_b_avg = b_avg;
    prev_gamma_avg = gamma_avg;
    if (delta / scale < params_.tolerance) {
      if (++stable >= params_.stable_iterations) {
        result.converged = true;
        break;
      }
    } else {
      stable = 0;
    }
  }

  result.iterations = t;
  result.gamma = gamma_avg * unit;
  result.b = std::move(b_avg);
  for (double& value : result.b) value *= unit;
  result.x = std::move(x_avg);
  for (double& value : result.x) value *= unit;
  // The final duals, in the same normalized units the iteration ran in.
  // They price *normalized* rates, so rescaling them by `unit` would be
  // wrong; consumers (e.g. wire::PriceUpdate) ship them as-is.
  result.lambda = std::move(lambda);
  result.beta = std::move(beta);
  return result;
}

}  // namespace omnc::opt

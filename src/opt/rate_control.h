// The distributed rate control algorithm of Table 1 — the paper's core
// contribution.
//
// The sUnicast program is decomposed by relaxing the coupling constraint
// b_i p_ij >= x_ij with Lagrange multipliers lambda_ij:
//
//   SUB1 (multipath opportunistic routing): with link costs lambda_ij, find
//     the shortest path (distributed Bellman-Ford) and send
//     gamma = U'^-1(p_min) = 1/p_min units along it (U = ln), then average
//     the per-iteration rates (primal recovery, eq. (13)) to obtain the
//     multipath split x-bar.
//
//   SUB2 (broadcast/encoding rate allocation): each node updates its rate
//     with the proximal step b_i += (w_i - beta_i - sum_{j in N(i)} beta_j)
//     / (2c), clamped to [0, C], where w_i = sum_j lambda_ij p_ij and beta_i
//     is the congestion price of the broadcast MAC constraint (4), itself
//     updated by projected subgradient ascent (eq. (15)); rates are averaged
//     as well (eq. (18)).
//
//   Master: lambda_ij is updated by the projected subgradient step (8) with
//     diminishing step sizes theta(t) = A / (B + C t).
//
// Everything a real deployment would exchange over the air (rates and
// congestion prices to neighbors, Bellman-Ford distance vectors) is counted
// in `messages`.
#pragma once

#include <cstddef>
#include <vector>

#include "routing/node_selection.h"

namespace omnc::opt {

struct RateControlParams {
  double capacity = 2e4;  // the MAC capacity C (bytes/second)

  // Diminishing step size theta(t) = step_a / (step_b + step_c * t).  The
  // paper's Fig. 1 quotes A = 1, B = 0.5, C = 10, but those constants leave
  // the dual far from its optimum within the reported iteration counts in
  // our normalized-rate implementation; the defaults below converge to
  // within a few percent of the centralized LP in ~100 iterations (the
  // paper reports an average of 91), and the constants remain "tunable
  // parameters that regulate convergence speed" exactly as the paper says.
  double step_a = 1.0;
  double step_b = 0.5;
  double step_c = 0.2;

  /// Proximal constant c in the quadratic term (update divides by 2c).
  double proximal_c = 0.5;

  /// Convergence: relative change of the recovered primal (b-bar, gamma-bar)
  /// below `tolerance` for `stable_iterations` consecutive iterations.
  double tolerance = 2.5e-3;
  int stable_iterations = 6;
  int max_iterations = 2000;
};

/// Per-iteration history for convergence plots (the paper's Fig. 1).
struct IterationTrace {
  std::vector<double> gamma;                 // recovered gamma-bar per iter
  std::vector<std::vector<double>> b;        // recovered b-bar per iter
};

struct RateControlResult {
  bool converged = false;
  int iterations = 0;
  double gamma = 0.0;              // recovered throughput estimate
  std::vector<double> b;           // recovered broadcast rates per node
  std::vector<double> x;           // recovered information rates per edge
  /// Final dual state, in the normalized (capacity-relative) units of the
  /// iteration: the link prices lambda_ij per edge (graph.edges order) and
  /// the congestion prices beta_i per node.  These are what a distributed
  /// deployment floods to its neighbors (wire::PriceUpdate).
  std::vector<double> lambda;
  std::vector<double> beta;
  /// Application-layer control messages that the distributed execution would
  /// exchange (rate+price notifications and Bellman-Ford updates).
  std::size_t messages = 0;
};

class DistributedRateControl {
 public:
  DistributedRateControl(const routing::SessionGraph& graph,
                         const RateControlParams& params);

  /// Runs Table 1 to convergence; optionally records per-iteration state.
  RateControlResult run(IterationTrace* trace = nullptr);

 private:
  const routing::SessionGraph& graph_;
  RateControlParams params_;
};

}  // namespace omnc::opt

#include "opt/sunicast.h"

#include <algorithm>

#include "common/assert.h"

namespace omnc::opt {

lp::Problem build_sunicast_lp(const routing::SessionGraph& graph,
                              double capacity) {
  OMNC_ASSERT(graph.size() >= 2);
  OMNC_ASSERT(capacity > 0.0);
  const std::size_t v = static_cast<std::size_t>(graph.size());
  const std::size_t e = graph.edges.size();
  const std::size_t num_vars = 1 + e + v;  // [gamma | x_e | b_i]
  const std::size_t gamma_var = 0;
  auto x_var = [&](std::size_t edge) { return 1 + edge; };
  auto b_var = [&](std::size_t node) { return 1 + e + node; };

  lp::Problem problem;
  problem.objective.assign(num_vars, 0.0);
  problem.objective[gamma_var] = 1.0;  // maximize gamma

  // Flow conservation (2): sum_out x - sum_in x - w(i) gamma = 0.
  for (std::size_t i = 0; i < v; ++i) {
    std::vector<double> row(num_vars, 0.0);
    for (std::size_t edge = 0; edge < e; ++edge) {
      if (graph.edges[edge].from == static_cast<int>(i)) row[x_var(edge)] += 1.0;
      if (graph.edges[edge].to == static_cast<int>(i)) row[x_var(edge)] -= 1.0;
    }
    if (static_cast<int>(i) == graph.source) {
      row[gamma_var] = -1.0;  // out - in = +gamma
    } else if (static_cast<int>(i) == graph.destination) {
      row[gamma_var] = 1.0;  // out - in = -gamma
    }
    problem.add_eq(std::move(row), 0.0);
  }

  // Broadcast MAC constraint (4): b_i + sum_{j in N(i)} b_j <= C, i != S.
  for (std::size_t i = 0; i < v; ++i) {
    if (static_cast<int>(i) == graph.source) continue;
    std::vector<double> row(num_vars, 0.0);
    row[b_var(i)] = 1.0;
    for (int j : graph.range_neighbors[i]) {
      row[b_var(static_cast<std::size_t>(j))] += 1.0;
    }
    problem.add_le(std::move(row), capacity);
  }

  // Loss-resilience constraint (5): b_i p_ij - x_ij >= 0.
  for (std::size_t edge = 0; edge < e; ++edge) {
    std::vector<double> row(num_vars, 0.0);
    row[b_var(static_cast<std::size_t>(graph.edges[edge].from))] =
        graph.edges[edge].p;
    row[x_var(edge)] = -1.0;
    problem.add_ge(std::move(row), 0.0);
  }

  // Loose bounds 0 <= b_i <= C keep the program bounded even for nodes whose
  // rate no receiver constraint covers (e.g. the source in degenerate
  // graphs).
  for (std::size_t i = 0; i < v; ++i) {
    std::vector<double> row(num_vars, 0.0);
    row[b_var(i)] = 1.0;
    problem.add_le(std::move(row), capacity);
  }
  return problem;
}

SUnicastSolution solve_sunicast(const routing::SessionGraph& graph,
                                double capacity) {
  SUnicastSolution result;
  if (graph.size() < 2 || graph.edges.empty()) return result;
  const lp::Problem problem = build_sunicast_lp(graph, capacity);
  const lp::Solution solution = lp::solve(problem);
  if (solution.status != lp::Status::kOptimal) return result;
  result.feasible = true;
  result.gamma = solution.objective;
  const std::size_t e = graph.edges.size();
  result.x.assign(solution.x.begin() + 1, solution.x.begin() + 1 + e);
  result.b.assign(solution.x.begin() + 1 + static_cast<long>(e),
                  solution.x.end());
  return result;
}

double broadcast_load_factor(const routing::SessionGraph& graph,
                             const std::vector<double>& b, double capacity) {
  OMNC_ASSERT(b.size() == static_cast<std::size_t>(graph.size()));
  OMNC_ASSERT(capacity > 0.0);
  double worst = 0.0;
  for (int i = 0; i < graph.size(); ++i) {
    if (i == graph.source) continue;
    double load = b[static_cast<std::size_t>(i)];
    for (int j : graph.range_neighbors[static_cast<std::size_t>(i)]) {
      load += b[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, load / capacity);
  }
  return worst;
}

double rescale_to_feasible(const routing::SessionGraph& graph,
                           std::vector<double>& b, double capacity) {
  const double load = broadcast_load_factor(graph, b, capacity);
  if (load <= 1.0) return 1.0;
  const double scale = 1.0 / load;
  for (double& rate : b) rate *= scale;
  return scale;
}

}  // namespace omnc::opt

#include "protocols/coded_base.h"

#include "common/assert.h"
#include "protocols/metrics_bus.h"
#include "protocols/session_engine.h"

namespace omnc::protocols {

CodedProtocolBase::CodedProtocolBase(const net::Topology& topology,
                                     const routing::SessionGraph& graph,
                                     const ProtocolConfig& config)
    : topology_(topology), graph_(graph), config_(config) {
  OMNC_ASSERT(graph_.size() >= 2);
}

std::size_t CodedProtocolBase::mac_queue_size(int local) const {
  OMNC_ASSERT(engine_ != nullptr);
  return engine_->mac_queue_size(/*session=*/0, local);
}

SessionResult CodedProtocolBase::run() {
  SessionResult diagnostics;
  diagnostics.connected = true;
  prepare(diagnostics);

  EngineConfig engine_config;
  engine_config.protocol = config_;
  engine_config.mac_rng_salt = 0x11;
  engine_config.detail_events = trace_sink_ != nullptr;
  SessionEngine engine(topology_,
                       {{&graph_, this, /*data_seed=*/config_.seed}},
                       engine_config);
  SessionResultSink sink({&graph_}, config_.coding, topology_.node_count());
  engine.bus().subscribe(&sink);
  engine.bus().subscribe(trace_sink_);  // nullptr is ignored

  engine_ = &engine;
  engine.run();
  engine_ = nullptr;

  edge_innovative_ = sink.edge_innovative(0);
  return sink.assemble(0, diagnostics);
}

}  // namespace omnc::protocols

#include "protocols/coded_base.h"

#include <algorithm>

#include "common/assert.h"
#include "routing/etx.h"
#include "routing/path_count.h"

namespace omnc::protocols {
namespace {

/// Peeks the generation id out of a serialized coded packet without a full
/// parse (bytes 4..7 of the header, big endian).
std::uint32_t frame_generation_id(const std::vector<std::uint8_t>& wire) {
  OMNC_ASSERT(wire.size() >= coding::CodedPacket::kHeaderBytes);
  return (static_cast<std::uint32_t>(wire[4]) << 24) |
         (static_cast<std::uint32_t>(wire[5]) << 16) |
         (static_cast<std::uint32_t>(wire[6]) << 8) | wire[7];
}

}  // namespace

CodedProtocolBase::CodedProtocolBase(const net::Topology& topology,
                                     const routing::SessionGraph& graph,
                                     const ProtocolConfig& config)
    : topology_(topology),
      graph_(graph),
      config_(config),
      rng_(config.seed) {
  OMNC_ASSERT(graph_.size() >= 2);
  const std::size_t v = static_cast<std::size_t>(graph_.size());
  edge_index_.assign(v * v, -1);
  for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
    edge_index_[static_cast<std::size_t>(graph_.edges[e].from) * v +
                static_cast<std::size_t>(graph_.edges[e].to)] =
        static_cast<int>(e);
  }
  edge_innovative_.assign(graph_.edges.size(), 0);
}

bool CodedProtocolBase::can_send(int local) const {
  if (local == graph_.source) return generation_active_;
  if (local == graph_.destination) return false;
  const auto& recoder = recoders_[static_cast<std::size_t>(local)];
  return recoder != nullptr &&
         recoder->generation_id() == current_generation_ &&
         recoder->can_send();
}

std::size_t CodedProtocolBase::mac_queue_size(int local) const {
  return mac_->queue_size(graph_.node_id(local));
}

SessionResult CodedProtocolBase::run() {
  result_ = SessionResult{};
  result_.connected = true;

  prepare(result_);

  // ACK latency over the reverse min-ETX path: per hop, ETX retransmissions
  // of one slot each.  The ACK itself is assumed not to consume data-channel
  // slots (it is a short control packet on the reverse path).
  {
    const auto reverse_route = routing::etx_route(
        topology_, graph_.node_id(graph_.destination),
        graph_.node_id(graph_.source));
    double etx_sum = 0.0;
    if (reverse_route.size() >= 2) {
      etx_sum = routing::route_etx(topology_, reverse_route);
    } else {
      // No reverse connectivity (possible with asymmetric link matrices):
      // charge the forward path cost instead.
      const auto forward_route =
          routing::etx_route(topology_, graph_.node_id(graph_.source),
                             graph_.node_id(graph_.destination));
      OMNC_ASSERT(forward_route.size() >= 2);
      etx_sum = routing::route_etx(topology_, forward_route);
    }
    ack_delay_s_ = etx_sum * (static_cast<double>(config_.mac.slot_bytes) /
                              config_.mac.capacity_bytes_per_s);
  }

  // MAC over the selected nodes.
  std::vector<net::NodeId> participants;
  participants.reserve(static_cast<std::size_t>(graph_.size()));
  for (int i = 0; i < graph_.size(); ++i) participants.push_back(graph_.node_id(i));
  mac_ = std::make_unique<net::SlottedMac>(simulator_, topology_, participants,
                                           config_.mac, rng_.fork(0x11));

  // Relay state for every non-source, non-destination node.
  recoders_.clear();
  recoders_.resize(static_cast<std::size_t>(graph_.size()));
  for (int i = 0; i < graph_.size(); ++i) {
    if (i == graph_.source || i == graph_.destination) continue;
    recoders_[static_cast<std::size_t>(i)] = std::make_unique<coding::Recoder>(
        config_.coding, /*session_id=*/0, current_generation_);
  }
  decoder_ = std::make_unique<coding::ProgressiveDecoder>(config_.coding,
                                                          current_generation_);

  mac_->set_receive_handler([this](net::NodeId rx, const net::Frame& frame) {
    on_receive_frame(rx, frame);
  });
  mac_->add_slot_hook([this](sim::Time now) { on_slot(now); });
  mac_->start();

  simulator_.run_until(config_.max_sim_seconds);
  mac_->stop();

  finalize_metrics(result_);
  return result_;
}

void CodedProtocolBase::start_generation_if_ready(sim::Time now) {
  if (generation_active_) return;
  if (result_.generations_completed >= config_.max_generations) return;
  // CBR source: generation g exists once (g+1) * generation_bytes have
  // arrived.
  const double bytes_arrived = config_.cbr_bytes_per_s * now;
  const double needed = static_cast<double>(current_generation_ + 1) *
                        static_cast<double>(config_.coding.generation_bytes());
  if (bytes_arrived + 1e-9 < needed) return;
  source_generation_.emplace(coding::Generation::synthetic(
      current_generation_, config_.coding, config_.seed));
  encoder_.emplace(*source_generation_, /*session_id=*/0);
  generation_active_ = true;
  generation_start_time_ = now;
  on_generation_start();
}

void CodedProtocolBase::on_slot(sim::Time now) {
  start_generation_if_ready(now);
  const double slot_seconds = mac_->slot_duration();
  for (int local = 0; local < graph_.size(); ++local) {
    if (local == graph_.destination) continue;
    // Policies are only consulted while the node holds something to send, so
    // credits/tokens are not consumed during forced idleness.
    if (!can_send(local)) continue;
    const int wanted = packets_to_enqueue(local, slot_seconds);
    if (wanted <= 0) continue;
    for (int k = 0; k < wanted; ++k) {
      coding::CodedPacket packet =
          (local == graph_.source)
              ? encoder_->next_packet(rng_)
              : recoders_[static_cast<std::size_t>(local)]->recode(rng_);
      net::Frame frame;
      frame.from = graph_.node_id(local);
      frame.to = net::kBroadcast;
      frame.bytes = std::make_shared<const std::vector<std::uint8_t>>(
          packet.serialize());
      if (!mac_->enqueue(std::move(frame))) {
        ++result_.queue_drops;
        break;  // queue full; no point stuffing more this slot
      }
    }
  }
}

void CodedProtocolBase::on_receive_frame(net::NodeId rx,
                                         const net::Frame& frame) {
  const int rx_local = graph_.local_index(rx);
  const int tx_local = graph_.local_index(frame.from);
  OMNC_ASSERT(rx_local >= 0 && tx_local >= 0);
  ++result_.packets_delivered;

  const std::uint32_t frame_gen = frame_generation_id(*frame.bytes);

  if (rx_local == graph_.destination) {
    // The decoder may already sit one generation ahead of the in-flight ACK;
    // packets of expired generations are ignored (the decoder's own id check
    // rejects them too, this just skips the parse).
    if (frame_gen != decoder_->generation_id()) return;
  } else if (rx_local == graph_.source) {
    return;  // the source ignores data packets
  } else {
    auto& recoder = recoders_[static_cast<std::size_t>(rx_local)];
    // A packet with a higher generation id dictates discarding the expired
    // generation (Sec. 4); with the ACK flush below this is a rare fallback.
    if (frame_gen > recoder->generation_id()) {
      flush_relay_to(rx_local, frame_gen);
    }
    if (frame_gen < recoder->generation_id()) return;  // stale
  }

  coding::CodedPacket packet;
  const bool ok = coding::CodedPacket::parse(*frame.bytes, &packet);
  OMNC_ASSERT_MSG(ok, "malformed frame on the air");

  bool innovative = false;
  if (rx_local == graph_.destination) {
    innovative = decoder_->offer(packet);
    if (innovative) {
      const std::size_t v = static_cast<std::size_t>(graph_.size());
      const int e = edge_index_[static_cast<std::size_t>(tx_local) * v +
                                static_cast<std::size_t>(rx_local)];
      if (e >= 0) ++edge_innovative_[static_cast<std::size_t>(e)];
    }
    on_reception(rx_local, tx_local, innovative);
    if (decoder_->complete()) {
      // End-to-end integrity: the progressively decoded generation must be
      // byte-identical to what the source encoded.
      const auto recovered = decoder_->recover();
      OMNC_ASSERT(source_generation_.has_value());
      OMNC_ASSERT_MSG(
          std::equal(recovered.begin(), recovered.end(),
                     source_generation_->bytes().begin()),
          "decoded generation does not match the source data");
      const double ack_time = simulator_.now() + ack_delay_s_;
      // The destination moves on immediately; packets of the old generation
      // are rejected by generation id from now on.
      decoder_->reset(current_generation_ + 1);
      simulator_.schedule_at(ack_time, [this, ack_time] { deliver_ack(ack_time); });
    }
    return;
  }

  auto& recoder = recoders_[static_cast<std::size_t>(rx_local)];
  innovative = recoder->offer(packet);
  if (innovative) {
    const std::size_t v = static_cast<std::size_t>(graph_.size());
    const int e = edge_index_[static_cast<std::size_t>(tx_local) * v +
                              static_cast<std::size_t>(rx_local)];
    if (e >= 0) ++edge_innovative_[static_cast<std::size_t>(e)];
  }
  on_reception(rx_local, tx_local, innovative);
}

void CodedProtocolBase::flush_relay_to(int local,
                                       std::uint32_t generation_id) {
  auto& recoder = recoders_[static_cast<std::size_t>(local)];
  if (recoder == nullptr || recoder->generation_id() == generation_id) return;
  recoder->reset(generation_id);
  if (config_.flush_stale_frames) {
    mac_->purge_queue(graph_.node_id(local),
                      [generation_id](const net::Frame& frame) {
                        return frame_generation_id(*frame.bytes) <
                               generation_id;
                      });
  }
  // Otherwise frames already handed to the MAC drain over the air and are
  // ignored by every receiver — queued congestion costs channel time.
}

void CodedProtocolBase::deliver_ack(double ack_time) {
  // Source: account the finished generation and advance.
  OMNC_ASSERT(generation_active_);
  const double elapsed = ack_time - generation_start_time_;
  OMNC_ASSERT(elapsed > 0.0);
  per_generation_throughput_.push_back(
      static_cast<double>(config_.coding.generation_bytes()) / elapsed);
  ++result_.generations_completed;
  last_ack_time_ = ack_time;
  generation_active_ = false;
  ++current_generation_;
  // The ACK is pseudo-broadcast on its way back: every node of the session
  // learns the generation expired.  Relays drop buffered and queued packets
  // of the old generation; the source drops its queued stale frames.
  const std::uint32_t live = current_generation_;
  for (int local = 0; local < graph_.size(); ++local) {
    if (local == graph_.source || local == graph_.destination) continue;
    flush_relay_to(local, live);
  }
  if (config_.flush_stale_frames) {
    mac_->purge_queue(graph_.node_id(graph_.source),
                      [live](const net::Frame& frame) {
                        return frame_generation_id(*frame.bytes) < live;
                      });
  }
  start_generation_if_ready(simulator_.now());
  if (result_.generations_completed >= config_.max_generations) {
    simulator_.stop();
  }
}

void CodedProtocolBase::finalize_metrics(SessionResult& result) {
  result.transmissions = mac_->total_transmissions();
  result.queue_drops += mac_->total_drops();

  if (!per_generation_throughput_.empty()) {
    double sum = 0.0;
    for (double value : per_generation_throughput_) sum += value;
    result.throughput_per_generation =
        sum / static_cast<double>(per_generation_throughput_.size());
    result.throughput_bytes_per_s =
        static_cast<double>(result.generations_completed) *
        static_cast<double>(config_.coding.generation_bytes()) /
        last_ack_time_;
  }

  // Fig. 3: mean over involved nodes of the per-node time-averaged queue.
  double queue_sum = 0.0;
  int involved = 0;
  for (int local = 0; local < graph_.size(); ++local) {
    const net::NodeId id = graph_.node_id(local);
    if (mac_->transmissions(id) == 0) continue;
    queue_sum += mac_->queue_time_average(id);
    ++involved;
  }
  result.mean_queue = involved > 0 ? queue_sum / involved : 0.0;

  // Fig. 4: node and path utility ratios.
  int transmitters = 0;
  int selectable = 0;
  for (int local = 0; local < graph_.size(); ++local) {
    if (local == graph_.destination) continue;
    ++selectable;
    if (mac_->transmissions(graph_.node_id(local)) > 0) ++transmitters;
  }
  result.node_utility_ratio =
      selectable > 0 ? static_cast<double>(transmitters) / selectable : 0.0;

  std::vector<bool> active(graph_.edges.size(), false);
  for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
    active[e] = edge_innovative_[e] > 0;
  }
  const double available = routing::count_paths(graph_);
  const double used = routing::count_paths_filtered(graph_, active);
  result.path_utility_ratio = available > 0.0 ? used / available : 0.0;
}

}  // namespace omnc::protocols

// Shared engine for the three coded protocols (OMNC, MORE, oldMORE).
//
// The engine owns the full end-to-end machinery described in Sec. 3.1 and
// Sec. 4 of the paper:
//   * the source encodes a CBR-fed generation with random linear coding and
//     broadcasts coded packets;
//   * relays keep an innovation filter, buffer innovative packets, re-encode
//     and rebroadcast;
//   * the destination decodes progressively; a decoded generation triggers
//     an uncoded ACK routed back over the reverse best (min-ETX) path, after
//     which the source moves on;
//   * relays flush expired generations when they hear a packet with a higher
//     generation ID (and drop queued stale frames).
//
// Subclasses only decide *when nodes transmit*: OMNC and oldMORE install
// token buckets fed by their rate vectors, MORE installs the credit
// heuristic.  Everything else — coding, queueing, ACKs, metrics — is
// identical across protocols, exactly like the paper's testbed setup
// ("both protocols share the same encoding and decoding modules").
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/recoder.h"
#include "common/rng.h"
#include "net/mac.h"
#include "net/topology.h"
#include "protocols/metrics.h"
#include "routing/node_selection.h"
#include "sim/simulator.h"

namespace omnc::protocols {

class CodedProtocolBase {
 public:
  CodedProtocolBase(const net::Topology& topology,
                    const routing::SessionGraph& graph,
                    const ProtocolConfig& config);
  virtual ~CodedProtocolBase() = default;

  /// Runs the whole session and returns its metrics.
  SessionResult run();

  /// Innovative deliveries per session-graph edge (for the path-utility
  /// metric); valid after run().
  const std::vector<std::size_t>& edge_innovative_deliveries() const {
    return edge_innovative_;
  }

 protected:
  // --- subclass policy hooks -------------------------------------------

  /// Computes rates/credits before the simulation starts; may record
  /// diagnostics into `result`.
  virtual void prepare(SessionResult& result) = 0;

  /// Number of packets `local` should hand to the MAC this slot (the engine
  /// clamps relays with nothing innovative to send).  `slot_seconds` is the
  /// slot length, for token refill.
  virtual int packets_to_enqueue(int local, double slot_seconds) = 0;

  /// Reception notification: rx_local received a packet last transmitted by
  /// tx_local (tx is always farther from the destination on a DAG edge).
  virtual void on_reception(int rx_local, int tx_local, bool innovative) {
    (void)rx_local;
    (void)tx_local;
    (void)innovative;
  }

  /// Called whenever the source starts a new generation (reset bursts).
  virtual void on_generation_start() {}

  // --- engine state available to policies ------------------------------

  const routing::SessionGraph& graph() const { return graph_; }
  const ProtocolConfig& config() const { return config_; }
  const net::Topology& topology() const { return topology_; }

  /// True if `local` currently holds something transmittable.
  bool can_send(int local) const;
  std::size_t mac_queue_size(int local) const;

 private:
  void on_slot(sim::Time now);
  void on_receive_frame(net::NodeId rx, const net::Frame& frame);
  void start_generation_if_ready(sim::Time now);
  void deliver_ack(sim::Time ack_time);
  void flush_relay_to(int local, std::uint32_t generation_id);
  void finalize_metrics(SessionResult& result);

  const net::Topology& topology_;
  const routing::SessionGraph& graph_;
  ProtocolConfig config_;

  sim::Simulator simulator_;
  std::unique_ptr<net::SlottedMac> mac_;
  Rng rng_;

  // Coding state.
  std::optional<coding::Generation> source_generation_;
  std::optional<coding::SourceEncoder> encoder_;
  std::vector<std::unique_ptr<coding::Recoder>> recoders_;  // per local node
  std::unique_ptr<coding::ProgressiveDecoder> decoder_;

  // Generation lifecycle.
  std::uint32_t current_generation_ = 0;  // id the source is emitting
  bool generation_active_ = false;
  double generation_start_time_ = 0.0;
  double ack_delay_s_ = 0.0;

  // Metrics.
  SessionResult result_;
  std::vector<std::size_t> edge_innovative_;
  std::vector<double> per_generation_throughput_;
  double last_ack_time_ = 0.0;

  // Fast edge lookup: edge_index_[from * size + to] = edge id or -1.
  std::vector<int> edge_index_;
};

}  // namespace omnc::protocols

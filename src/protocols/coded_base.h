// Thin single-session front end for the three coded protocols (OMNC, MORE,
// oldMORE).
//
// The heavy lifting lives in SessionEngine (slot loop, NodeRuntimes, ACK
// routing) and the MetricsBus sinks (SessionResult reconstruction).  A
// protocol subclass is just a TransmitPolicy plus a prepare() step that
// computes its rates or credits before the simulation starts — exactly the
// paper's framing: "both protocols share the same encoding and decoding
// modules" and differ only in when nodes transmit.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.h"
#include "protocols/metrics.h"
#include "protocols/transmit_policy.h"
#include "routing/node_selection.h"

namespace omnc::protocols {

class SessionEngine;
class TraceSink;

class CodedProtocolBase : public TransmitPolicy {
 public:
  CodedProtocolBase(const net::Topology& topology,
                    const routing::SessionGraph& graph,
                    const ProtocolConfig& config);

  /// Runs the whole session and returns its metrics.
  SessionResult run();

  /// Subscribes `sink` (e.g. an obs::RunSink) to the engine's bus for the
  /// next run() and switches the engine's detail event families on.  Purely
  /// observational: a traced run consumes exactly the same RNG stream and
  /// produces byte-identical results.  nullptr (the default) turns tracing
  /// back off.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  /// Innovative deliveries per session-graph edge (for the path-utility
  /// metric); valid after run().
  const std::vector<std::size_t>& edge_innovative_deliveries() const {
    return edge_innovative_;
  }

 protected:
  /// Computes rates/credits before the simulation starts; may record
  /// diagnostics into `result`.
  virtual void prepare(SessionResult& result) = 0;

  // packets_to_enqueue / on_reception / on_generation_start come from
  // TransmitPolicy; the engine calls them during run().

  const routing::SessionGraph& graph() const { return graph_; }
  const ProtocolConfig& config() const { return config_; }
  const net::Topology& topology() const { return topology_; }

  /// Current MAC queue length of a session-local node; valid during run()
  /// (source-backlog probes of the credit policies).
  std::size_t mac_queue_size(int local) const;

 private:
  const net::Topology& topology_;
  const routing::SessionGraph& graph_;
  ProtocolConfig config_;

  SessionEngine* engine_ = nullptr;  // live only inside run()
  TraceSink* trace_sink_ = nullptr;  // non-owning; optional
  std::vector<std::size_t> edge_innovative_;
};

}  // namespace omnc::protocols

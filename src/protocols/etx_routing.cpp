#include "protocols/etx_routing.h"

#include <algorithm>

#include "common/assert.h"
#include "routing/etx.h"

namespace omnc::protocols {

EtxRoutingProtocol::EtxRoutingProtocol(const net::Topology& topology,
                                       net::NodeId src, net::NodeId dst,
                                       const ProtocolConfig& config)
    : topology_(topology), src_(src), dst_(dst), config_(config) {
  route_ = routing::etx_route(topology, src, dst);
}

SessionResult EtxRoutingProtocol::run() {
  SessionResult result;
  if (route_.size() < 2) return result;  // not connected
  result.connected = true;

  sim::Simulator simulator;
  Rng rng(config_.seed ^ 0xe7e7e7e7ULL);
  net::SlottedMac mac(simulator, topology_, route_, config_.mac,
                      rng.fork(0x22));

  // next_hop[node] on the route.
  std::vector<net::NodeId> next(static_cast<std::size_t>(topology_.node_count()),
                                -1);
  for (std::size_t i = 0; i + 1 < route_.size(); ++i) {
    next[static_cast<std::size_t>(route_[i])] = route_[i + 1];
  }

  // One data frame carries one block worth of payload and occupies one slot,
  // exactly like a coded packet (same airtime per packet for all protocols).
  const auto payload = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(config_.coding.block_bytes, 0xda));
  const double packet_bytes = static_cast<double>(config_.coding.block_bytes);

  double bytes_delivered = 0.0;
  double last_delivery_time = 0.0;
  std::size_t packets_submitted = 0;

  mac.set_receive_handler([&](net::NodeId rx, const net::Frame& frame) {
    (void)frame;
    if (rx == dst_) {
      bytes_delivered += packet_bytes;
      last_delivery_time = simulator.now();
      return;
    }
    // Store-and-forward: pass it down the path.
    net::Frame forward;
    forward.from = rx;
    forward.to = next[static_cast<std::size_t>(rx)];
    forward.reliable = true;
    forward.bytes = payload;
    mac.enqueue(std::move(forward));
  });

  // CBR source: submit packets as bytes arrive.
  mac.add_slot_hook([&](sim::Time now) {
    const double arrived = config_.cbr_bytes_per_s * now;
    while (static_cast<double>(packets_submitted + 1) * packet_bytes <=
           arrived) {
      net::Frame frame;
      frame.from = src_;
      frame.to = next[static_cast<std::size_t>(src_)];
      frame.reliable = true;
      frame.bytes = payload;
      if (!mac.enqueue(std::move(frame))) break;  // source queue full
      ++packets_submitted;
    }
  });

  mac.start();
  simulator.run_until(config_.max_sim_seconds);
  mac.stop();

  result.throughput_bytes_per_s =
      last_delivery_time > 0.0 ? bytes_delivered / last_delivery_time : 0.0;
  result.throughput_per_generation = result.throughput_bytes_per_s;
  result.transmissions = mac.total_transmissions();
  result.queue_drops = mac.total_drops();

  double queue_sum = 0.0;
  int involved = 0;
  for (net::NodeId node : route_) {
    if (mac.transmissions(node) == 0) continue;
    queue_sum += mac.queue_time_average(node);
    ++involved;
  }
  result.mean_queue = involved > 0 ? queue_sum / involved : 0.0;
  result.node_utility_ratio = 1.0;  // single path: all selected nodes used
  result.path_utility_ratio = 1.0;
  return result;
}

}  // namespace omnc::protocols

// High-throughput single-path routing with the ETX metric (Couto et al.) —
// the traditional baseline every throughput gain in the paper is measured
// against.
//
// The session runs uncoded store-and-forward unicast along the min-ETX path.
// Reliability comes from MAC-layer retransmissions (reliable unicast frames
// in the slotted MAC), which the paper notes is more efficient than
// end-to-end retransmission.  The source is fed by the same CBR process as
// the coded protocols.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/mac.h"
#include "net/topology.h"
#include "protocols/metrics.h"
#include "sim/simulator.h"

namespace omnc::protocols {

class EtxRoutingProtocol {
 public:
  EtxRoutingProtocol(const net::Topology& topology, net::NodeId src,
                     net::NodeId dst, const ProtocolConfig& config);

  /// Runs the session; result.connected == false when no route exists.
  SessionResult run();

  const std::vector<net::NodeId>& route() const { return route_; }

 private:
  const net::Topology& topology_;
  net::NodeId src_;
  net::NodeId dst_;
  ProtocolConfig config_;
  std::vector<net::NodeId> route_;
};

}  // namespace omnc::protocols

// Per-session configuration and result records shared by all protocols.
#pragma once

#include <cstddef>
#include <cstdint>

#include "codes/code_spec.h"
#include "coding/generation.h"
#include "net/mac.h"

namespace omnc::protocols {

struct ProtocolConfig {
  coding::CodingParams coding;   // generation geometry (paper: 40 x 1 KB)
  /// Code family every session's nodes run (DESIGN.md §15); the dense
  /// default reproduces the pre-family engine byte-for-byte.
  codes::CodeSpec code;
  net::MacConfig mac;            // channel capacity, slot size, queue bound
  /// Application offered load; the paper uses UDP CBR at half the channel
  /// capacity.
  double cbr_bytes_per_s = 1e4;
  /// Session ends at this virtual time or after max_generations, whichever
  /// comes first.
  double max_sim_seconds = 150.0;
  int max_generations = 1000;
  std::uint64_t seed = 1;
  /// When false (default), packets of an expired generation that are already
  /// queued at the MAC drain over the air (receivers ignore them) — queued
  /// congestion costs real channel time, which is the paper's Fig. 3
  /// mechanism.  When true, stale frames are dropped from the queues at the
  /// generation switch (an idealization, kept for ablation).
  bool flush_stale_frames = false;
};

struct SessionResult {
  bool connected = false;

  /// Completed-generation bytes divided by the time of the last ACK.
  double throughput_bytes_per_s = 0.0;
  /// Mean of per-generation throughputs (the paper's measurement: throughput
  /// computed at each ACK, averaged over the session).
  double throughput_per_generation = 0.0;
  int generations_completed = 0;

  /// Average over involved nodes of the per-node time-averaged transmit
  /// queue (Fig. 3 metric).
  double mean_queue = 0.0;
  /// Fig. 4 metrics.
  double node_utility_ratio = 0.0;
  double path_utility_ratio = 0.0;

  std::size_t transmissions = 0;
  std::size_t packets_delivered = 0;
  std::size_t queue_drops = 0;

  // Rate-control diagnostics (OMNC) / LP diagnostics (oldMORE).
  int rc_iterations = 0;
  bool rc_converged = false;
  std::size_t rc_messages = 0;
  /// Throughput the optimization framework predicts (gamma-bar for OMNC).
  double predicted_gamma = 0.0;
};

}  // namespace omnc::protocols

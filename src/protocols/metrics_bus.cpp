#include "protocols/metrics_bus.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "routing/path_count.h"

namespace omnc::protocols {

void MetricsBus::subscribe(TraceSink* sink) {
  if (sink == nullptr) return;
  sinks_.push_back(sink);
}

void MetricsBus::unsubscribe(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

SessionResultSink::SessionResultSink(
    std::vector<const routing::SessionGraph*> graphs,
    const coding::CodingParams& coding, int topology_nodes)
    : coding_(coding) {
  OMNC_ASSERT(!graphs.empty());
  sessions_.resize(graphs.size());
  for (std::size_t s = 0; s < graphs.size(); ++s) {
    OMNC_ASSERT(graphs[s] != nullptr);
    sessions_[s].graph = graphs[s];
    sessions_[s].edge_innovative.assign(graphs[s]->edges.size(), 0);
  }
  node_transmissions_.assign(static_cast<std::size_t>(topology_nodes), 0);
  node_queue_.assign(static_cast<std::size_t>(topology_nodes), TimeAverage{});
}

void SessionResultSink::on_event(const MetricEvent& event) {
  switch (event.type) {
    case MetricEvent::Type::kTx:
      ++transmissions_;
      ++node_transmissions_[static_cast<std::size_t>(event.node)];
      break;
    case MetricEvent::Type::kRx: {
      PerSession& session = sessions_[event.session];
      ++session.packets_delivered;
      if (event.innovative && event.edge >= 0) {
        ++session.edge_innovative[static_cast<std::size_t>(event.edge)];
      }
      break;
    }
    case MetricEvent::Type::kQueueSample:
      node_queue_[static_cast<std::size_t>(event.node)].advance_to(
          event.time, event.value);
      break;
    case MetricEvent::Type::kGenerationAck: {
      PerSession& session = sessions_[event.session];
      ++session.generations_completed;
      session.last_ack_time = event.time;
      // event.value is the generation's start-to-ACK latency in seconds.
      session.per_generation_throughput.push_back(
          static_cast<double>(coding_.generation_bytes()) / event.value);
      break;
    }
    case MetricEvent::Type::kStaleFlush:
      break;  // not part of SessionResult; QueueTimelineSink-style sinks use it
    case MetricEvent::Type::kQueueDrop:
      ++queue_drops_;
      break;
    case MetricEvent::Type::kMacContention:
    case MetricEvent::Type::kMacCollision:
      break;  // trace-only detail; no SessionResult field derives from them
    case MetricEvent::Type::kEmuSend:
    case MetricEvent::Type::kEmuDrop:
    case MetricEvent::Type::kEmuDeliver:
    case MetricEvent::Type::kEmuParseError:
    case MetricEvent::Type::kEmuFaultLoss:
    case MetricEvent::Type::kEmuFaultReorder:
    case MetricEvent::Type::kEmuFaultDup:
    case MetricEvent::Type::kEmuFaultPartition:
    case MetricEvent::Type::kEmuFaultBlackout:
      break;  // emulation transport detail; aggregated by trace_inspect
  }
}

SessionResult SessionResultSink::assemble(std::size_t session,
                                          SessionResult base) const {
  const PerSession& state = sessions_[session];
  const routing::SessionGraph& graph = *state.graph;
  SessionResult result = std::move(base);
  result.connected = true;

  result.transmissions = transmissions_;
  result.queue_drops = queue_drops_;
  result.packets_delivered = state.packets_delivered;
  result.generations_completed = state.generations_completed;

  if (!state.per_generation_throughput.empty()) {
    double sum = 0.0;
    for (double value : state.per_generation_throughput) sum += value;
    result.throughput_per_generation =
        sum / static_cast<double>(state.per_generation_throughput.size());
    result.throughput_bytes_per_s =
        static_cast<double>(result.generations_completed) *
        static_cast<double>(coding_.generation_bytes()) / state.last_ack_time;
  }

  // Fig. 3: mean over involved nodes of the per-node time-averaged queue,
  // summed in graph-local order.
  double queue_sum = 0.0;
  int involved = 0;
  for (int local = 0; local < graph.size(); ++local) {
    const std::size_t id = static_cast<std::size_t>(graph.node_id(local));
    if (node_transmissions_[id] == 0) continue;
    queue_sum += node_queue_[id].average();
    ++involved;
  }
  result.mean_queue = involved > 0 ? queue_sum / involved : 0.0;

  // Fig. 4: node and path utility ratios.
  int transmitters = 0;
  int selectable = 0;
  for (int local = 0; local < graph.size(); ++local) {
    if (local == graph.destination) continue;
    ++selectable;
    const std::size_t id = static_cast<std::size_t>(graph.node_id(local));
    if (node_transmissions_[id] > 0) ++transmitters;
  }
  result.node_utility_ratio =
      selectable > 0 ? static_cast<double>(transmitters) / selectable : 0.0;

  std::vector<bool> active(graph.edges.size(), false);
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    active[e] = state.edge_innovative[e] > 0;
  }
  const double available = routing::count_paths(graph);
  const double used = routing::count_paths_filtered(graph, active);
  result.path_utility_ratio = available > 0.0 ? used / available : 0.0;
  return result;
}

double SessionResultSink::shared_mean_queue() const {
  double queue_sum = 0.0;
  int involved = 0;
  for (std::size_t id = 0; id < node_transmissions_.size(); ++id) {
    if (node_transmissions_[id] == 0) continue;
    queue_sum += node_queue_[id].average();
    ++involved;
  }
  return involved > 0 ? queue_sum / involved : 0.0;
}

QueueTimelineSink::QueueTimelineSink(int topology_nodes) {
  timelines_.resize(static_cast<std::size_t>(topology_nodes));
  averages_.assign(static_cast<std::size_t>(topology_nodes), TimeAverage{});
}

void QueueTimelineSink::on_event(const MetricEvent& event) {
  if (event.type != MetricEvent::Type::kQueueSample) return;
  // Samples for nodes outside the topology range (a replayed trace from a
  // different deployment, a buggy emitter) are dropped rather than indexed.
  if (event.node < 0 ||
      static_cast<std::size_t>(event.node) >= timelines_.size()) {
    return;
  }
  const std::size_t id = static_cast<std::size_t>(event.node);
  timelines_[id].push_back({event.time, event.value});
  averages_[id].advance_to(event.time, event.value);
}

const std::vector<QueueTimelineSink::Sample>& QueueTimelineSink::timeline(
    net::NodeId node) const {
  return timelines_[static_cast<std::size_t>(node)];
}

double QueueTimelineSink::time_average(net::NodeId node) const {
  return averages_[static_cast<std::size_t>(node)].average();
}

EdgeDeliverySink::EdgeDeliverySink(
    std::vector<const routing::SessionGraph*> graphs) {
  deliveries_.resize(graphs.size());
  for (std::size_t s = 0; s < graphs.size(); ++s) {
    OMNC_ASSERT(graphs[s] != nullptr);
    deliveries_[s].assign(graphs[s]->edges.size(), 0);
  }
}

void EdgeDeliverySink::on_event(const MetricEvent& event) {
  if (event.type != MetricEvent::Type::kRx) return;
  if (!event.innovative || event.edge < 0) return;
  // Unknown sessions or edge ids beyond the session graph (empty graphs
  // included) are ignored instead of indexed out of range.
  if (event.session >= deliveries_.size()) return;
  auto& edges = deliveries_[event.session];
  if (static_cast<std::size_t>(event.edge) >= edges.size()) return;
  ++edges[static_cast<std::size_t>(event.edge)];
}

}  // namespace omnc::protocols

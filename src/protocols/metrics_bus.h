// Pluggable observability for the session engine.
//
// The engine does not accumulate metrics itself.  It emits typed events on a
// MetricsBus — one per transmission, reception, end-of-slot queue sample,
// generation ACK, stale-generation flush, and queue drop — and registered
// TraceSinks reconstruct whatever statistic they need: SessionResultSink
// rebuilds the full per-session SessionResult, QueueTimelineSink keeps the
// per-node queue timelines behind Fig. 3, EdgeDeliverySink counts innovative
// deliveries per session-graph edge for Fig. 4.  New instrumentation is a new
// sink; the engine never changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coding/generation.h"
#include "common/stats.h"
#include "net/topology.h"
#include "protocols/metrics.h"
#include "routing/node_selection.h"

namespace omnc::protocols {

struct MetricEvent {
  enum class Type : std::uint8_t {
    kTx,             // a node transmitted the head of its MAC queue
    kRx,             // a session frame reached a session node (any outcome)
    kQueueSample,    // end-of-slot transmit-queue length of one node
    kGenerationAck,  // a generation's ACK reached the source
    kStaleFlush,     // a relay discarded an expired generation
    kQueueDrop,      // a frame was rejected by a full MAC queue
    // Detail families (emitted only when EngineConfig::detail_events is on,
    // i.e. a trace is being recorded; the aggregate sinks ignore them):
    kMacContention,  // CSMA backoff outcome: value = audible contenders,
                     // innovative = the node fired its attempt this slot
    kMacCollision,   // hidden-terminal loss: node (the receiver) was covered
                     // by two or more concurrent transmitters
    // Transport families, emitted by the emulation runtime (src/emu) only;
    // the aggregate sinks ignore them:
    kEmuSend,        // a node broadcast one wire frame; value = frame bytes
    kEmuDrop,        // one per-receiver copy was lost in transit
    kEmuDeliver,     // one copy reached a receiver's poll(); value = bytes
    kEmuParseError,  // a received buffer failed wire::Frame::parse, or (when
                     // generation == 1) a datagram arrived truncated and was
                     // discarded whole before reaching the parser
    // Fault-injection family, emitted by emu::FaultTransport; generation
    // carries the deterministic per-link copy index the decision applied to:
    kEmuFaultLoss,       // Gilbert–Elliott burst loss killed a copy
    kEmuFaultReorder,    // a copy was held back past later arrivals
    kEmuFaultDup,        // a copy was duplicated in flight
    kEmuFaultPartition,  // a copy crossed a scheduled partition and was cut
    kEmuFaultBlackout,   // a copy touched a blacked-out (crashed) node
    // Recovery family, emitted by emu::EmuNode; feeds the health plane's
    // resync-storm and stall anomaly detectors:
    kEmuResync,     // node broadcast/refreshed a ResyncRequest
    kEmuStall,      // source escalated redundancy after an ACK stall;
                    // value = the boost factor in force
  };

  Type type = Type::kTx;
  double time = 0.0;           // virtual time the event occurred at
  std::uint32_t session = 0;   // kRx / kGenerationAck / kStaleFlush
  net::NodeId node = -1;       // acting node (tx, rx, sampled, flushing, …)
  int tx_local = -1;           // kRx: sender's session-local index
  int rx_local = -1;           // kRx: receiver's session-local index
  int edge = -1;               // kRx: session-graph edge id when innovative
  bool innovative = false;     // kRx: rank-increasing for the receiver
  std::uint32_t generation = 0;  // kGenerationAck: completed id;
                                 // kStaleFlush: id flushed *to*
  double value = 0.0;  // kQueueSample: queue length; kGenerationAck: seconds
                       // from generation start to ACK arrival
};

/// Receives every event emitted on the bus, in emission order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const MetricEvent& event) = 0;
};

/// Fan-out of engine events to registered sinks (non-owning, in
/// subscription order).
class MetricsBus {
 public:
  /// Registers a sink; a nullptr is ignored, which lets optional
  /// instrumentation (e.g. a trace recorder) wire through nullable pointers
  /// without call-site branching.
  void subscribe(TraceSink* sink);
  /// Removes every registration of `sink`; needed when a sink's lifetime
  /// ends before the engine's (runner reuse).  Unknown sinks are a no-op.
  void unsubscribe(TraceSink* sink);

  void emit(const MetricEvent& event) {
    ++emitted_;
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }

  std::size_t sink_count() const { return sinks_.size(); }
  std::size_t events_emitted() const { return emitted_; }

 private:
  std::vector<TraceSink*> sinks_;
  std::size_t emitted_ = 0;
};

/// Rebuilds per-session SessionResults from the event stream.  assemble()
/// writes the measured fields into a caller-provided base record, which lets
/// policies keep their prepare-time diagnostics (rate-control iterations,
/// predicted gamma) in the same struct.
class SessionResultSink : public TraceSink {
 public:
  SessionResultSink(std::vector<const routing::SessionGraph*> graphs,
                    const coding::CodingParams& coding, int topology_nodes);

  void on_event(const MetricEvent& event) override;

  SessionResult assemble(std::size_t session, SessionResult base = {}) const;

  /// Innovative deliveries per session-graph edge (Fig. 4 raw counts).
  const std::vector<std::size_t>& edge_innovative(std::size_t session) const {
    return sessions_[session].edge_innovative;
  }

  /// Mean over *all* transmitting nodes (every session's participants) of
  /// the per-node time-averaged queue — the shared-channel Fig. 3 metric the
  /// multi-unicast runs report.
  double shared_mean_queue() const;

 private:
  struct PerSession {
    const routing::SessionGraph* graph = nullptr;
    std::size_t packets_delivered = 0;
    int generations_completed = 0;
    double last_ack_time = 0.0;
    std::vector<double> per_generation_throughput;
    std::vector<std::size_t> edge_innovative;
  };

  std::vector<PerSession> sessions_;
  coding::CodingParams coding_;
  std::vector<std::size_t> node_transmissions_;  // by topology NodeId
  std::vector<TimeAverage> node_queue_;          // by topology NodeId
  std::size_t transmissions_ = 0;
  std::size_t queue_drops_ = 0;
};

/// Full per-node queue timelines (every end-of-slot sample), for queue
/// dynamics plots beyond the scalar Fig. 3 average.
class QueueTimelineSink : public TraceSink {
 public:
  struct Sample {
    double time = 0.0;
    double queue = 0.0;
  };

  explicit QueueTimelineSink(int topology_nodes);

  void on_event(const MetricEvent& event) override;

  const std::vector<Sample>& timeline(net::NodeId node) const;
  /// Time-weighted average of the node's sampled queue (the Fig. 3 scalar).
  double time_average(net::NodeId node) const;

 private:
  std::vector<std::vector<Sample>> timelines_;  // by topology NodeId
  std::vector<TimeAverage> averages_;
};

/// Innovative-delivery counts per session-graph edge (Fig. 4 raw data).
class EdgeDeliverySink : public TraceSink {
 public:
  explicit EdgeDeliverySink(
      std::vector<const routing::SessionGraph*> graphs);

  void on_event(const MetricEvent& event) override;

  const std::vector<std::size_t>& deliveries(std::size_t session) const {
    return deliveries_[session];
  }

 private:
  std::vector<std::vector<std::size_t>> deliveries_;
};

}  // namespace omnc::protocols

#include "protocols/more.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace omnc::protocols {

void compute_more_credits(const routing::SessionGraph& graph,
                          std::vector<double>* z,
                          std::vector<double>* tx_credit) {
  const std::size_t v = static_cast<std::size_t>(graph.size());
  z->assign(v, 0.0);
  tx_credit->assign(v, 0.0);

  // Fast probability lookup between local nodes (0 when no DAG edge).
  std::vector<double> p(v * v, 0.0);
  for (const auto& edge : graph.edges) {
    p[static_cast<std::size_t>(edge.from) * v +
      static_cast<std::size_t>(edge.to)] = edge.p;
  }
  auto prob = [&](int a, int b) {
    return p[static_cast<std::size_t>(a) * v + static_cast<std::size_t>(b)];
  };
  auto closer = [&](int a, int b) {  // true if a is closer to dst than b
    return graph.etx_to_dst[static_cast<std::size_t>(a)] <
           graph.etx_to_dst[static_cast<std::size_t>(b)];
  };

  // Farthest-first order (topological): the source is processed first, the
  // destination last.
  const std::vector<int> order = graph.topological_order();
  std::vector<double> expected_from_upstream(v, 0.0);  // per-source-packet

  for (int j : order) {
    if (j == graph.destination) continue;
    // L_j: packets j must forward — heard by j, missed by everyone closer.
    double load;
    if (j == graph.source) {
      load = 1.0;
    } else {
      load = 0.0;
      for (int i : order) {
        if (i == j || closer(i, j)) continue;  // only farther nodes
        const double pij = prob(i, j);
        if (pij <= 0.0 || (*z)[static_cast<std::size_t>(i)] <= 0.0) continue;
        double missed_by_closer = 1.0;
        for (int k = 0; k < graph.size(); ++k) {
          if (k == i || k == j || !closer(k, j)) continue;
          missed_by_closer *= 1.0 - prob(i, k);
        }
        load += (*z)[static_cast<std::size_t>(i)] * pij * missed_by_closer;
      }
    }
    // Probability one transmission of j reaches somebody closer.
    double forward_success = 1.0;
    for (int k = 0; k < graph.size(); ++k) {
      if (k == j || !closer(k, j)) continue;
      forward_success *= 1.0 - prob(j, k);
    }
    forward_success = 1.0 - forward_success;
    OMNC_ASSERT_MSG(forward_success > 0.0,
                    "selected forwarder has no downstream links");
    (*z)[static_cast<std::size_t>(j)] = load / forward_success;
  }

  // TX credit: z_j normalized by the expected receptions from upstream.
  for (int j : order) {
    if (j == graph.source || j == graph.destination) continue;
    double receptions = 0.0;
    for (int i = 0; i < graph.size(); ++i) {
      if (i == j || closer(i, j)) continue;
      receptions += (*z)[static_cast<std::size_t>(i)] * prob(i, j);
    }
    if (receptions > 0.0) {
      (*tx_credit)[static_cast<std::size_t>(j)] =
          (*z)[static_cast<std::size_t>(j)] / receptions;
    }
  }
}

MoreProtocol::MoreProtocol(const net::Topology& topology,
                           const routing::SessionGraph& graph,
                           const ProtocolConfig& config,
                           const MoreConfig& more_config)
    : CodedProtocolBase(topology, graph, config),
      more_config_(more_config) {}

void MoreProtocol::prepare(SessionResult& result) {
  compute_more_credits(graph(), &z_, &tx_credit_);
  credits_.emplace(graph(), tx_credit_, more_config_.source_backlog,
                   more_config_.max_enqueue_per_slot,
                   [this](int local) { return mac_queue_size(local); });
  (void)result;
}

void MoreProtocol::on_generation_start() { credits_->on_generation_start(); }

void MoreProtocol::on_reception(int rx_local, int tx_local, bool innovative) {
  credits_->on_reception(rx_local, tx_local, innovative);
}

int MoreProtocol::packets_to_enqueue(int local, double slot_seconds) {
  return credits_->packets_to_enqueue(local, slot_seconds);
}

}  // namespace omnc::protocols

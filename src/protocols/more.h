// MORE (Chachulski et al., SIGCOMM'07) — the credit-based heuristic baseline.
//
// Forwarders are ordered by ETX distance to the destination.  For each node
// the heuristic computes z_i, the expected number of transmissions i must
// make per source packet, from the link loss probabilities:
//
//   L_src = 1
//   L_j   = sum_{i farther} z_i * p_ij * prod_{k closer than j} (1 - p_ik)
//   z_j   = L_j / (1 - prod_{k closer than j} (1 - p_jk))
//
// and the per-reception transmission credit
//
//   TX_credit_j = z_j / (sum_{i farther} z_i * p_ij),
//
// i.e. z_j normalized by the expected number of packets j hears from
// upstream.  At run time a forwarder adds TX_credit to its credit counter on
// every packet it hears from upstream and hands one re-encoded packet to the
// MAC per whole credit; the source stays backlogged.  There is no rate
// control: whether the queued packets can actually be sent is up to the MAC
// — the congestion obliviousness the paper demonstrates in Fig. 3.
#pragma once

#include <optional>
#include <vector>

#include "protocols/coded_base.h"

namespace omnc::protocols {

struct MoreConfig {
  /// The source keeps this many packets queued so it always contends.
  std::size_t source_backlog = 2;
  /// At most this many packets are handed to the MAC per node per slot.
  int max_enqueue_per_slot = 4;
};

class MoreProtocol final : public CodedProtocolBase {
 public:
  MoreProtocol(const net::Topology& topology,
               const routing::SessionGraph& graph,
               const ProtocolConfig& config, const MoreConfig& more_config);

  /// The heuristic's expected transmission counts (per local node); valid
  /// after run().
  const std::vector<double>& z() const { return z_; }
  const std::vector<double>& tx_credit() const { return tx_credit_; }

 protected:
  void prepare(SessionResult& result) override;
  int packets_to_enqueue(int local, double slot_seconds) override;
  void on_reception(int rx_local, int tx_local, bool innovative) override;
  void on_generation_start() override;

 private:
  MoreConfig more_config_;
  std::vector<double> z_;
  std::vector<double> tx_credit_;
  std::optional<CreditPolicy> credits_;
};

/// Computes (z, TX_credit) for a session graph; exposed for tests and the
/// ablation benches.
void compute_more_credits(const routing::SessionGraph& graph,
                          std::vector<double>* z,
                          std::vector<double>* tx_credit);

}  // namespace omnc::protocols

#include "protocols/multi_unicast.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "protocols/metrics_bus.h"
#include "protocols/session_engine.h"
#include "protocols/transmit_policy.h"

namespace omnc::protocols {

MultiUnicastOmnc::MultiUnicastOmnc(
    const net::Topology& topology,
    std::vector<const routing::SessionGraph*> graphs,
    const MultiUnicastConfig& config)
    : topology_(topology), graphs_(std::move(graphs)), config_(config) {
  OMNC_ASSERT(!graphs_.empty());
}

MultiUnicastResult MultiUnicastOmnc::run() {
  MultiUnicastResult result;
  const std::size_t k = graphs_.size();

  // Joint rate control and common-factor rescale.
  opt::RateControlParams params = config_.rate_control;
  params.capacity = config_.protocol.mac.capacity_bytes_per_s;
  opt::MultiSessionRateControl controller(topology_, graphs_, params);
  opt::MultiRateControlResult rc = controller.run();
  result.rc_converged = rc.converged;
  result.rc_iterations = rc.iterations;
  rates_ = std::move(rc.b);
  opt::multi_rescale_to_feasible(topology_, graphs_, rates_, params.capacity);

  // One engine (and one MAC) over all sessions; each gets its own token
  // bucket fed by its rate vector.
  std::vector<TokenBucketPolicy> policies;
  policies.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    policies.emplace_back(rates_[s],
                          static_cast<double>(config_.protocol.mac.slot_bytes),
                          config_.token_burst_cap);
  }
  std::vector<EngineSessionSpec> specs;
  specs.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    specs.push_back({graphs_[s], &policies[s],
                     config_.protocol.seed ^ (s * 0x9e3779b9ULL)});
  }
  EngineConfig engine_config;
  engine_config.protocol = config_.protocol;
  engine_config.mac_rng_salt = 0x31;
  engine_config.detail_events = config_.trace_sink != nullptr;
  SessionEngine engine(topology_, std::move(specs), engine_config);
  // Random initial token phases: mutually inaudible transmitters with
  // identical rates would otherwise cross their send thresholds in the same
  // slots forever and collide at every common receiver.
  for (auto& policy : policies) policy.randomize_phases(engine.rng());

  SessionResultSink sink(graphs_, config_.protocol.coding,
                         topology_.node_count());
  engine.bus().subscribe(&sink);
  engine.bus().subscribe(config_.trace_sink);  // nullptr is ignored
  engine.run();

  // Metrics.
  result.sessions.reserve(k);
  result.edge_innovative.reserve(k);
  double min_throughput = -1.0;
  for (std::size_t s = 0; s < k; ++s) {
    result.sessions.push_back(sink.assemble(s));
    result.edge_innovative.push_back(sink.edge_innovative(s));
    const SessionResult& out = result.sessions.back();
    result.aggregate_throughput += out.throughput_per_generation;
    if (min_throughput < 0.0 ||
        out.throughput_per_generation < min_throughput) {
      min_throughput = out.throughput_per_generation;
    }
  }
  result.min_throughput = std::max(0.0, min_throughput);

  // Shared-channel queue metric (per involved node, across sessions): every
  // session reports the same channel-wide value.
  const double mean_queue = sink.shared_mean_queue();
  for (auto& out : result.sessions) out.mean_queue = mean_queue;
  return result;
}

}  // namespace omnc::protocols

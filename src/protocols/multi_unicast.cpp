#include "protocols/multi_unicast.h"

#include <algorithm>
#include <set>

#include "common/assert.h"
#include "common/logging.h"
#include "routing/etx.h"

namespace omnc::protocols {
namespace {

std::uint32_t frame_session_id(const std::vector<std::uint8_t>& wire) {
  OMNC_ASSERT(wire.size() >= coding::CodedPacket::kHeaderBytes);
  return (static_cast<std::uint32_t>(wire[0]) << 24) |
         (static_cast<std::uint32_t>(wire[1]) << 16) |
         (static_cast<std::uint32_t>(wire[2]) << 8) | wire[3];
}

std::uint32_t frame_generation_id(const std::vector<std::uint8_t>& wire) {
  return (static_cast<std::uint32_t>(wire[4]) << 24) |
         (static_cast<std::uint32_t>(wire[5]) << 16) |
         (static_cast<std::uint32_t>(wire[6]) << 8) | wire[7];
}

}  // namespace

MultiUnicastOmnc::MultiUnicastOmnc(
    const net::Topology& topology,
    std::vector<const routing::SessionGraph*> graphs,
    const MultiUnicastConfig& config)
    : topology_(topology),
      graphs_(std::move(graphs)),
      config_(config),
      rng_(config.protocol.seed) {
  OMNC_ASSERT(!graphs_.empty());
}

MultiUnicastResult MultiUnicastOmnc::run() {
  MultiUnicastResult result;
  const std::size_t k = graphs_.size();

  // Joint rate control and common-factor rescale.
  opt::RateControlParams params = config_.rate_control;
  params.capacity = config_.protocol.mac.capacity_bytes_per_s;
  opt::MultiSessionRateControl controller(topology_, graphs_, params);
  opt::MultiRateControlResult rc = controller.run();
  result.rc_converged = rc.converged;
  result.rc_iterations = rc.iterations;
  rates_ = std::move(rc.b);
  opt::multi_rescale_to_feasible(topology_, graphs_, rates_,
                                 params.capacity);

  // One MAC over the union of all session nodes.
  std::set<net::NodeId> union_nodes;
  for (const auto* graph : graphs_) {
    union_nodes.insert(graph->nodes.begin(), graph->nodes.end());
  }
  std::vector<net::NodeId> participants(union_nodes.begin(),
                                        union_nodes.end());
  mac_ = std::make_unique<net::SlottedMac>(
      simulator_, topology_, participants, config_.protocol.mac,
      rng_.fork(0x31));

  sessions_.clear();
  sessions_.resize(k);
  result.sessions.assign(k, SessionResult{});
  for (std::size_t s = 0; s < k; ++s) {
    SessionState& session = sessions_[s];
    session.graph = graphs_[s];
    // Random initial token phases: mutually inaudible transmitters with
    // identical rates would otherwise cross their send thresholds in the
    // same slots forever and collide at every common receiver.
    session.tokens.assign(static_cast<std::size_t>(session.graph->size()),
                          0.0);
    for (double& token : session.tokens) token = rng_.next_double();
    session.recoders.resize(static_cast<std::size_t>(session.graph->size()));
    for (int local = 0; local < session.graph->size(); ++local) {
      if (local == session.graph->source ||
          local == session.graph->destination) {
        continue;
      }
      session.recoders[static_cast<std::size_t>(local)] =
          std::make_unique<coding::Recoder>(config_.protocol.coding,
                                            static_cast<std::uint32_t>(s), 0);
    }
    session.decoder = std::make_unique<coding::ProgressiveDecoder>(
        config_.protocol.coding, 0);
    const auto reverse = routing::etx_route(
        topology_, session.graph->node_id(session.graph->destination),
        session.graph->node_id(session.graph->source));
    const double etx_sum =
        reverse.size() >= 2 ? routing::route_etx(topology_, reverse) : 4.0;
    session.ack_delay = etx_sum * mac_->slot_duration();
    result.sessions[s].connected = true;
  }

  mac_->set_receive_handler([this](net::NodeId rx, const net::Frame& frame) {
    on_receive(rx, frame);
  });
  mac_->add_slot_hook([this](sim::Time now) { on_slot(now); });
  mac_->start();
  simulator_.run_until(config_.protocol.max_sim_seconds);
  mac_->stop();

  // Metrics.
  double min_throughput = -1.0;
  for (std::size_t s = 0; s < k; ++s) {
    SessionState& session = sessions_[s];
    SessionResult& out = result.sessions[s];
    out.generations_completed = session.generations;
    if (!session.per_generation_throughput.empty()) {
      double sum = 0.0;
      for (double v : session.per_generation_throughput) sum += v;
      out.throughput_per_generation =
          sum / session.per_generation_throughput.size();
      out.throughput_bytes_per_s =
          static_cast<double>(session.generations) *
          config_.protocol.coding.generation_bytes() / session.last_ack;
    }
    result.aggregate_throughput += out.throughput_per_generation;
    if (min_throughput < 0.0 ||
        out.throughput_per_generation < min_throughput) {
      min_throughput = out.throughput_per_generation;
    }
  }
  result.min_throughput = std::max(0.0, min_throughput);

  // Shared-channel queue metric (per involved node, across sessions).
  double queue_sum = 0.0;
  int involved = 0;
  for (net::NodeId node : mac_->participants()) {
    if (mac_->transmissions(node) == 0) continue;
    queue_sum += mac_->queue_time_average(node);
    ++involved;
  }
  const double mean_queue = involved > 0 ? queue_sum / involved : 0.0;
  for (auto& out : result.sessions) out.mean_queue = mean_queue;
  return result;
}

void MultiUnicastOmnc::start_generation_if_ready(std::size_t s,
                                                 sim::Time now) {
  SessionState& session = sessions_[s];
  if (session.active) return;
  const double arrived = config_.protocol.cbr_bytes_per_s * now;
  const double needed =
      static_cast<double>(session.current_generation + 1) *
      static_cast<double>(config_.protocol.coding.generation_bytes());
  if (arrived + 1e-9 < needed) return;
  session.generation.emplace(coding::Generation::synthetic(
      session.current_generation, config_.protocol.coding,
      config_.protocol.seed ^ (s * 0x9e3779b9ULL)));
  session.encoder.emplace(*session.generation,
                          static_cast<std::uint32_t>(s));
  session.active = true;
  session.generation_start = now;
  OMNC_LOG_TRACE("session %zu: generation %u starts at t=%.2f", s,
                 session.current_generation, now);
}

void MultiUnicastOmnc::on_slot(sim::Time now) {
  const double slot_seconds = mac_->slot_duration();
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    start_generation_if_ready(s, now);
    SessionState& session = sessions_[s];
    const auto& graph = *session.graph;
    for (int local = 0; local < graph.size(); ++local) {
      if (local == graph.destination) continue;
      const bool is_source = local == graph.source;
      const auto& recoder = session.recoders[static_cast<std::size_t>(local)];
      const bool can_send =
          is_source ? session.active
                    : (recoder != nullptr &&
                       recoder->generation_id() == session.current_generation &&
                       recoder->can_send());
      if (!can_send) continue;
      double& tokens = session.tokens[static_cast<std::size_t>(local)];
      const double packets_per_s =
          rates_[s][static_cast<std::size_t>(local)] /
          static_cast<double>(config_.protocol.mac.slot_bytes);
      tokens = std::min(tokens + packets_per_s * slot_seconds,
                        config_.token_burst_cap);
      if (tokens < 1.0) continue;
      const int send = static_cast<int>(tokens);
      tokens -= send;
      for (int j = 0; j < send; ++j) {
        coding::CodedPacket packet = is_source
                                         ? session.encoder->next_packet(rng_)
                                         : recoder->recode(rng_);
        net::Frame frame;
        frame.from = graph.node_id(local);
        frame.to = net::kBroadcast;
        frame.bytes = std::make_shared<const std::vector<std::uint8_t>>(
            packet.serialize());
        if (!mac_->enqueue(std::move(frame))) break;
      }
    }
  }
}

void MultiUnicastOmnc::on_receive(net::NodeId rx, const net::Frame& frame) {
  const std::uint32_t s = frame_session_id(*frame.bytes);
  if (s >= sessions_.size()) return;
  SessionState& session = sessions_[s];
  const auto& graph = *session.graph;
  const int rx_local = graph.local_index(rx);
  if (rx_local < 0) return;  // overheard by a node outside this session

  const std::uint32_t gen = frame_generation_id(*frame.bytes);
  if (rx_local == graph.destination) {
    if (gen != session.decoder->generation_id()) return;
    coding::CodedPacket packet;
    if (!coding::CodedPacket::parse(*frame.bytes, &packet)) return;
    session.decoder->offer(packet);
    if (session.decoder->complete()) {
      const auto recovered = session.decoder->recover();
      OMNC_ASSERT(session.generation.has_value());
      OMNC_ASSERT_MSG(
          std::equal(recovered.begin(), recovered.end(),
                     session.generation->bytes().begin()),
          "decoded generation does not match the source data");
      const double ack_time = simulator_.now() + session.ack_delay;
      session.decoder->reset(session.current_generation + 1);
      simulator_.schedule_at(ack_time, [this, s, ack_time] {
        deliver_ack(s, ack_time);
      });
    }
    return;
  }
  if (rx_local == graph.source) return;

  auto& recoder = session.recoders[static_cast<std::size_t>(rx_local)];
  if (gen > recoder->generation_id()) recoder->reset(gen);
  if (gen < recoder->generation_id()) return;
  coding::CodedPacket packet;
  if (!coding::CodedPacket::parse(*frame.bytes, &packet)) return;
  recoder->offer(packet);
}

void MultiUnicastOmnc::deliver_ack(std::size_t s, double ack_time) {
  SessionState& session = sessions_[s];
  OMNC_ASSERT(session.active);
  const double elapsed = ack_time - session.generation_start;
  session.per_generation_throughput.push_back(
      static_cast<double>(config_.protocol.coding.generation_bytes()) /
      elapsed);
  ++session.generations;
  session.last_ack = ack_time;
  OMNC_LOG_TRACE("session %zu: generation %u acked at t=%.2f", s,
                 session.current_generation, ack_time);
  session.active = false;
  ++session.current_generation;
  for (int local = 0; local < session.graph->size(); ++local) {
    auto& recoder = session.recoders[static_cast<std::size_t>(local)];
    if (recoder != nullptr &&
        recoder->generation_id() < session.current_generation) {
      recoder->reset(session.current_generation);
    }
  }
  start_generation_if_ready(s, simulator_.now());
}

}  // namespace omnc::protocols

// OMNC for concurrent unicast sessions — the multiple-unicast scenario the
// paper's conclusion points to.
//
// K sessions share one channel (one SessionEngine, one MAC instance over the
// union of their selected nodes).  Rates come from the joint distributed
// rate control (opt/multi_unicast.h), which couples the sessions through
// shared congestion prices; each session then runs an independent
// TokenBucketPolicy and per-(session, node) NodeRuntimes inside the shared
// engine, and frames carry the session id so receptions dispatch to the
// right coding state.
#pragma once

#include <vector>

#include "net/topology.h"
#include "opt/multi_unicast.h"
#include "protocols/metrics.h"
#include "routing/node_selection.h"

namespace omnc::protocols {

class TraceSink;

struct MultiUnicastConfig {
  ProtocolConfig protocol;             // shared coding / MAC / CBR settings
  opt::RateControlParams rate_control;
  double token_burst_cap = 2.0;
  /// Optional trace sink subscribed to the shared engine's bus; non-null
  /// also switches the detail event families on.  Purely observational.
  TraceSink* trace_sink = nullptr;
};

struct MultiUnicastResult {
  /// Per-session metrics (same fields as single-session runs).
  std::vector<SessionResult> sessions;
  /// Innovative deliveries per session-graph edge, per session.
  std::vector<std::vector<std::size_t>> edge_innovative;
  /// Sum and minimum of the per-session per-generation throughputs.
  double aggregate_throughput = 0.0;
  double min_throughput = 0.0;
  bool rc_converged = false;
  int rc_iterations = 0;
};

class MultiUnicastOmnc {
 public:
  MultiUnicastOmnc(const net::Topology& topology,
                   std::vector<const routing::SessionGraph*> graphs,
                   const MultiUnicastConfig& config);

  MultiUnicastResult run();

  /// Installed per-session rate vectors (bytes/s); valid after run().
  const std::vector<std::vector<double>>& rates() const { return rates_; }

 private:
  const net::Topology& topology_;
  std::vector<const routing::SessionGraph*> graphs_;
  MultiUnicastConfig config_;
  std::vector<std::vector<double>> rates_;
};

}  // namespace omnc::protocols

// OMNC for concurrent unicast sessions — the multiple-unicast scenario the
// paper's conclusion points to.
//
// K sessions share one channel (one MAC instance over the union of their
// selected nodes).  Rates come from the joint distributed rate control
// (opt/multi_unicast.h), which couples the sessions through shared
// congestion prices; each node then runs independent per-session coding
// state (re-encoders, decoders, token buckets), and frames carry the session
// id so receivers dispatch to the right generation state.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/recoder.h"
#include "common/rng.h"
#include "net/mac.h"
#include "net/topology.h"
#include "opt/multi_unicast.h"
#include "protocols/metrics.h"
#include "routing/node_selection.h"
#include "sim/simulator.h"

namespace omnc::protocols {

struct MultiUnicastConfig {
  ProtocolConfig protocol;             // shared coding / MAC / CBR settings
  opt::RateControlParams rate_control;
  double token_burst_cap = 2.0;
};

struct MultiUnicastResult {
  /// Per-session metrics (same fields as single-session runs).
  std::vector<SessionResult> sessions;
  /// Sum and minimum of the per-session per-generation throughputs.
  double aggregate_throughput = 0.0;
  double min_throughput = 0.0;
  bool rc_converged = false;
  int rc_iterations = 0;
};

class MultiUnicastOmnc {
 public:
  MultiUnicastOmnc(const net::Topology& topology,
                   std::vector<const routing::SessionGraph*> graphs,
                   const MultiUnicastConfig& config);

  MultiUnicastResult run();

  /// Installed per-session rate vectors (bytes/s); valid after run().
  const std::vector<std::vector<double>>& rates() const { return rates_; }

 private:
  struct SessionState {
    const routing::SessionGraph* graph = nullptr;
    std::optional<coding::Generation> generation;
    std::optional<coding::SourceEncoder> encoder;
    std::vector<std::unique_ptr<coding::Recoder>> recoders;  // per local
    std::unique_ptr<coding::ProgressiveDecoder> decoder;
    std::vector<double> tokens;  // per local node
    std::uint32_t current_generation = 0;
    bool active = false;
    double generation_start = 0.0;
    double ack_delay = 0.0;
    double last_ack = 0.0;
    std::vector<double> per_generation_throughput;
    int generations = 0;
  };

  void on_slot(sim::Time now);
  void on_receive(net::NodeId rx, const net::Frame& frame);
  void start_generation_if_ready(std::size_t s, sim::Time now);
  void deliver_ack(std::size_t s, double ack_time);

  const net::Topology& topology_;
  std::vector<const routing::SessionGraph*> graphs_;
  MultiUnicastConfig config_;
  Rng rng_;

  sim::Simulator simulator_;
  std::unique_ptr<net::SlottedMac> mac_;
  std::vector<SessionState> sessions_;
  std::vector<std::vector<double>> rates_;
};

}  // namespace omnc::protocols

#include "protocols/node_runtime.h"

#include "common/assert.h"

namespace omnc::protocols {

NodeRuntime::NodeRuntime(Role role, const coding::CodingParams& params,
                         std::uint32_t session_id, std::uint64_t data_seed,
                         const codes::CodeSpec& spec)
    : role_(role),
      params_(params),
      session_id_(session_id),
      data_seed_(data_seed),
      spec_(spec.clamped_for(params)) {
  switch (role_) {
    case Role::kSource:
      break;
    case Role::kRelay:
      recoder_ = std::make_unique<codes::FamilyRecoder>(
          params_, session_id_, /*generation_id=*/0, spec_);
      break;
    case Role::kDestination:
      decoder_ = std::make_unique<codes::FamilyDecoder>(
          params_, /*generation_id=*/0, spec_);
      break;
  }
}

NodeRuntime NodeRuntime::source(const coding::CodingParams& params,
                                std::uint32_t session_id,
                                std::uint64_t data_seed,
                                const codes::CodeSpec& spec) {
  return NodeRuntime(Role::kSource, params, session_id, data_seed, spec);
}

NodeRuntime NodeRuntime::relay(const coding::CodingParams& params,
                               std::uint32_t session_id,
                               const codes::CodeSpec& spec) {
  return NodeRuntime(Role::kRelay, params, session_id, /*data_seed=*/0, spec);
}

NodeRuntime NodeRuntime::destination(const coding::CodingParams& params,
                                     const codes::CodeSpec& spec) {
  return NodeRuntime(Role::kDestination, params, /*session_id=*/0,
                     /*data_seed=*/0, spec);
}

std::uint32_t NodeRuntime::generation_id() const {
  switch (role_) {
    case Role::kSource:
      return current_generation_;
    case Role::kRelay:
      return recoder_->generation_id();
    case Role::kDestination:
      return decoder_->generation_id();
  }
  return 0;  // unreachable
}

bool NodeRuntime::can_send(std::uint32_t live_generation) const {
  switch (role_) {
    case Role::kSource:
      return generation_active_;
    case Role::kRelay:
      return recoder_->generation_id() == live_generation &&
             recoder_->can_send();
    case Role::kDestination:
      return false;
  }
  return false;  // unreachable
}

coding::CodedPacket NodeRuntime::next_packet(
    Rng& rng, coding::CodedStructure* structure) {
  coding::CodedPacket out;
  next_packet_into(rng, &out, structure);
  return out;
}

void NodeRuntime::next_packet_into(Rng& rng, coding::CodedPacket* out,
                                   coding::CodedStructure* structure) {
  coding::CodedStructure local;
  coding::CodedStructure* sink = structure ? structure : &local;
  if (role_ == Role::kSource) {
    OMNC_ASSERT(encoder_.has_value());
    encoder_->next_packet_into(rng, out, sink);
    return;
  }
  OMNC_ASSERT(role_ == Role::kRelay);
  recoder_->recode_into(rng, out, sink);
}

NodeRuntime::ReceiveOutcome NodeRuntime::receive(
    const coding::CodedPacket& packet) {
  return receive(packet.as_view(), coding::CodedStructure::make_dense());
}

NodeRuntime::ReceiveOutcome NodeRuntime::receive(
    const coding::CodedPacketView& view) {
  return receive(view, coding::CodedStructure::make_dense());
}

NodeRuntime::ReceiveOutcome NodeRuntime::receive(
    const coding::CodedPacketView& view,
    const coding::CodedStructure& structure) {
  ReceiveOutcome outcome;
  switch (role_) {
    case Role::kSource:
      break;  // the source ignores data packets
    case Role::kRelay:
      outcome.innovative = recoder_->offer(view, structure);
      break;
    case Role::kDestination: {
      const codes::FamilyDecoder::OfferResult result =
          decoder_->offer(view, structure);
      outcome.innovative = result.innovative;
      outcome.pivot = result.pivot;
      outcome.uncoded = result.uncoded;
      outcome.generation_complete = decoder_->complete();
      break;
    }
  }
  return outcome;
}

bool NodeRuntime::maybe_start_generation(double now, double cbr_bytes_per_s,
                                         int max_generations) {
  OMNC_ASSERT(role_ == Role::kSource);
  if (generation_active_) return false;
  if (generations_completed_ >= max_generations) return false;
  // CBR source: generation g exists once (g+1) * generation_bytes have
  // arrived.
  const double bytes_arrived = cbr_bytes_per_s * now;
  const double needed = static_cast<double>(current_generation_ + 1) *
                        static_cast<double>(params_.generation_bytes());
  if (bytes_arrived + 1e-9 < needed) return false;
  source_generation_.emplace(
      coding::Generation::synthetic(current_generation_, params_, data_seed_));
  encoder_.emplace(*source_generation_, session_id_, spec_);
  generation_active_ = true;
  generation_start_time_ = now;
  return true;
}

void NodeRuntime::complete_generation() {
  OMNC_ASSERT(role_ == Role::kSource);
  OMNC_ASSERT(generation_active_);
  ++generations_completed_;
  generation_active_ = false;
  ++current_generation_;
}

const coding::Generation& NodeRuntime::generation() const {
  OMNC_ASSERT(role_ == Role::kSource);
  OMNC_ASSERT(source_generation_.has_value());
  return *source_generation_;
}

bool NodeRuntime::flush_to(std::uint32_t generation_id) {
  if (role_ != Role::kRelay) return false;
  if (recoder_->generation_id() == generation_id) return false;
  recoder_->reset(generation_id);
  return true;
}

std::vector<std::uint8_t> NodeRuntime::recover() const {
  OMNC_ASSERT(role_ == Role::kDestination);
  return decoder_->recover();
}

std::size_t NodeRuntime::recovered_size() const {
  OMNC_ASSERT(role_ == Role::kDestination);
  return decoder_->recovered_size();
}

void NodeRuntime::recover_into(std::span<std::uint8_t> out) const {
  OMNC_ASSERT(role_ == Role::kDestination);
  decoder_->recover_into(out);
}

void NodeRuntime::advance_generation() {
  OMNC_ASSERT(role_ == Role::kDestination);
  decoder_->reset(decoder_->generation_id() + 1);
}

std::size_t NodeRuntime::rank() const {
  switch (role_) {
    case Role::kSource:
      return 0;
    case Role::kRelay:
      return recoder_->rank();
    case Role::kDestination:
      return decoder_->rank();
  }
  return 0;  // unreachable
}

const codes::StructuredDecoder::Stats* NodeRuntime::structured_stats() const {
  return role_ == Role::kDestination ? decoder_->structured_stats() : nullptr;
}

}  // namespace omnc::protocols

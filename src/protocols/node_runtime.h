// Per-node, per-session coding runtime.
//
// A NodeRuntime owns everything one node keeps for one session, keyed by its
// role in the session DAG:
//   * source      — the CBR-gated current generation, its family-
//                   parameterized encoder, and the generation lifecycle
//                   counters;
//   * relay       — the innovation-filtered recode buffer (Sec. 4, "Packet
//                   and Queue Management") plus generation-expiry flushing;
//   * destination — the family-parameterized decoder (progressive
//                   Gauss–Jordan for dense, the structured CBD-style decoder
//                   for systematic/banded — DESIGN.md §15).
//
// The code family is a construction-time CodeSpec; the default dense spec
// reproduces the pre-family pipeline byte-for-byte and draw-for-draw.  Every
// emitted packet carries a CodedStructure side channel describing its
// coefficient structure, which the wire layer compresses and receive() feeds
// back into the decoder's structural fast paths.
//
// The SessionEngine composes one NodeRuntime per (session, node) pair; in
// the multi-unicast scenario a physical node therefore carries several
// runtimes with different roles, one per session it participates in.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "codes/code_spec.h"
#include "codes/family_runtime.h"
#include "coding/coded_packet.h"
#include "coding/generation.h"
#include "common/rng.h"

namespace omnc::protocols {

class NodeRuntime {
 public:
  enum class Role : std::uint8_t { kSource, kRelay, kDestination };

  static NodeRuntime source(const coding::CodingParams& params,
                            std::uint32_t session_id, std::uint64_t data_seed,
                            const codes::CodeSpec& spec = {});
  static NodeRuntime relay(const coding::CodingParams& params,
                           std::uint32_t session_id,
                           const codes::CodeSpec& spec = {});
  static NodeRuntime destination(const coding::CodingParams& params,
                                 const codes::CodeSpec& spec = {});

  Role role() const { return role_; }
  const codes::CodeSpec& code_spec() const { return spec_; }

  /// The generation this node currently works on: the id the source is
  /// emitting, the relay is buffering, or the destination is decoding.
  std::uint32_t generation_id() const;

  /// True if this node holds something transmittable.  `live_generation` is
  /// the id the session's source is currently emitting; a relay stuck on an
  /// older generation must stay silent.
  bool can_send(std::uint32_t live_generation) const;

  /// Emits one coded packet from the source encoder or the relay's recode
  /// basis.  Requires can_send().  `structure` (optional) receives the
  /// packet's coefficient structure for wire compression; dense-spec
  /// emissions are byte- and draw-identical to the pre-family pipeline.
  coding::CodedPacket next_packet(Rng& rng,
                                  coding::CodedStructure* structure = nullptr);

  /// Allocation-free variant: fills `out` reusing its vectors' capacity.
  /// Identical output bytes (and rng draw sequence) to next_packet().
  void next_packet_into(Rng& rng, coding::CodedPacket* out,
                        coding::CodedStructure* structure = nullptr);

  struct ReceiveOutcome {
    bool innovative = false;
    /// Destination only: the decoder just reached full rank.
    bool generation_complete = false;
    /// Destination only: pivot column the packet claimed, -1 if rejected.
    int pivot = -1;
    /// Destination only: landed via the systematic zero-work fast path.
    bool uncoded = false;
  };

  /// Absorbs a packet of this node's current generation (relay or
  /// destination).  The overloads without a structure treat the packet as
  /// dense.
  ReceiveOutcome receive(const coding::CodedPacket& packet);
  ReceiveOutcome receive(const coding::CodedPacketView& view);

  /// Zero-copy family-aware variant: the view's coefficient span holds the
  /// structure's explicit bytes (all n for dense, the window for banded,
  /// empty for an uncoded original), exactly as DataFrameView::parse yields.
  ReceiveOutcome receive(const coding::CodedPacketView& view,
                         const coding::CodedStructure& structure);

  // --- source lifecycle --------------------------------------------------

  /// CBR gate: starts generation g once g+1 generations' worth of bytes have
  /// arrived, unless `max_generations` are already done.  Returns true when
  /// a generation actually started.
  bool maybe_start_generation(double now, double cbr_bytes_per_s,
                              int max_generations);
  /// ACK bookkeeping: retires the active generation and advances the emitted
  /// id.
  void complete_generation();

  bool generation_active() const { return generation_active_; }
  double generation_start_time() const { return generation_start_time_; }
  int generations_completed() const { return generations_completed_; }
  /// The plaintext of the active generation (end-to-end integrity checks).
  const coding::Generation& generation() const;

  // --- relay lifecycle ---------------------------------------------------

  /// Discards the buffered generation and retargets `generation_id`.
  /// Returns false (no-op) when already there.
  bool flush_to(std::uint32_t generation_id);

  // --- destination lifecycle --------------------------------------------

  /// The recovered plaintext of the completed generation.
  std::vector<std::uint8_t> recover() const;
  /// recover() byte count for this session's coding geometry.
  std::size_t recovered_size() const;
  /// Allocation-free recovery into a caller-owned buffer of exactly
  /// recovered_size() bytes; byte-identical to recover().
  void recover_into(std::span<std::uint8_t> out) const;
  /// Moves the decoder to the next generation; stale packets are rejected by
  /// generation id from now on.
  void advance_generation();

  std::size_t rank() const;

  /// Destination only: structured-decoder statistics (nullptr under the
  /// dense spec).
  const codes::StructuredDecoder::Stats* structured_stats() const;

 private:
  NodeRuntime(Role role, const coding::CodingParams& params,
              std::uint32_t session_id, std::uint64_t data_seed,
              const codes::CodeSpec& spec);

  Role role_;
  coding::CodingParams params_;
  std::uint32_t session_id_ = 0;
  std::uint64_t data_seed_ = 0;
  codes::CodeSpec spec_;  // clamped to params_

  // Source state.
  std::optional<coding::Generation> source_generation_;
  std::optional<codes::FamilyEncoder> encoder_;
  std::uint32_t current_generation_ = 0;
  bool generation_active_ = false;
  double generation_start_time_ = 0.0;
  int generations_completed_ = 0;

  // Relay / destination state.
  std::unique_ptr<codes::FamilyRecoder> recoder_;
  std::unique_ptr<codes::FamilyDecoder> decoder_;
};

}  // namespace omnc::protocols

#include "protocols/oldmore.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "lp/simplex.h"

namespace omnc::protocols {

std::vector<double> solve_min_cost_rates(const routing::SessionGraph& graph) {
  // Per-link expected-transmission accounting: delivering x_ij over link
  // (i, j) costs x_ij / p_ij transmissions by node i.  This is the variant
  // the paper ascribes to oldMORE — its "corresponding [constraint] in
  // [5, 17] favors high-quality paths": the optimum concentrates all flow on
  // the minimum-ETX route and zeroes everything else.  (OMNC's constraint
  // (5) instead lets a single broadcast serve every downstream link, which
  // is exactly the path-diversity contrast Sec. 5 demonstrates.)
  const std::size_t v = static_cast<std::size_t>(graph.size());
  const std::size_t e = graph.edges.size();

  lp::Problem problem;
  // Minimize sum_e x_e / p_e == maximize the negation.
  problem.objective.assign(e, 0.0);
  for (std::size_t edge = 0; edge < e; ++edge) {
    problem.objective[edge] = -1.0 / graph.edges[edge].p;
  }
  // Flow conservation at unit demand.
  for (std::size_t i = 0; i < v; ++i) {
    std::vector<double> row(e, 0.0);
    for (std::size_t edge = 0; edge < e; ++edge) {
      if (graph.edges[edge].from == static_cast<int>(i)) row[edge] += 1.0;
      if (graph.edges[edge].to == static_cast<int>(i)) row[edge] -= 1.0;
    }
    double rhs = 0.0;
    if (static_cast<int>(i) == graph.source) rhs = 1.0;
    if (static_cast<int>(i) == graph.destination) rhs = -1.0;
    problem.add_eq(std::move(row), rhs);
  }

  const lp::Solution solution = lp::solve(problem);
  if (solution.status != lp::Status::kOptimal) return {};
  // z_i = expected transmissions of node i per source packet.
  std::vector<double> z(v, 0.0);
  for (std::size_t edge = 0; edge < e; ++edge) {
    z[static_cast<std::size_t>(graph.edges[edge].from)] +=
        solution.x[edge] / graph.edges[edge].p;
  }
  return z;
}

OldMoreProtocol::OldMoreProtocol(const net::Topology& topology,
                                 const routing::SessionGraph& graph,
                                 const ProtocolConfig& config,
                                 const OldMoreConfig& oldmore_config)
    : CodedProtocolBase(topology, graph, config),
      oldmore_config_(oldmore_config) {}

void OldMoreProtocol::prepare(SessionResult& result) {
  z_ = solve_min_cost_rates(graph());
  OMNC_ASSERT_MSG(!z_.empty(), "min-cost program infeasible");
  for (double& value : z_) {
    if (value < oldmore_config_.prune_epsilon) value = 0.0;  // pruned node
  }
  // TX credit as in MORE, but fed by the LP's z: normalize by the expected
  // number of packets heard from upstream per source packet.
  const std::size_t v = static_cast<std::size_t>(graph().size());
  tx_credit_.assign(v, 0.0);
  std::vector<double> p(v * v, 0.0);
  for (const auto& edge : graph().edges) {
    p[static_cast<std::size_t>(edge.from) * v +
      static_cast<std::size_t>(edge.to)] = edge.p;
  }
  for (int j = 0; j < graph().size(); ++j) {
    if (j == graph().source || j == graph().destination) continue;
    if (z_[static_cast<std::size_t>(j)] <= 0.0) continue;
    double receptions = 0.0;
    for (int i = 0; i < graph().size(); ++i) {
      if (i == j) continue;
      // Upstream: farther from the destination.
      if (graph().etx_to_dst[static_cast<std::size_t>(i)] <=
          graph().etx_to_dst[static_cast<std::size_t>(j)]) {
        continue;
      }
      receptions += z_[static_cast<std::size_t>(i)] *
                    p[static_cast<std::size_t>(i) * v +
                      static_cast<std::size_t>(j)];
    }
    if (receptions > 0.0) {
      tx_credit_[static_cast<std::size_t>(j)] =
          z_[static_cast<std::size_t>(j)] / receptions;
    }
  }
  credits_.emplace(graph(), tx_credit_, oldmore_config_.source_backlog,
                   oldmore_config_.max_enqueue_per_slot,
                   [this](int local) { return mac_queue_size(local); });
  result.predicted_gamma = config().cbr_bytes_per_s;  // what it assumes
}

void OldMoreProtocol::on_generation_start() {
  credits_->on_generation_start();
}

void OldMoreProtocol::on_reception(int rx_local, int tx_local,
                                   bool innovative) {
  credits_->on_reception(rx_local, tx_local, innovative);
}

int OldMoreProtocol::packets_to_enqueue(int local, double slot_seconds) {
  return credits_->packets_to_enqueue(local, slot_seconds);
}

}  // namespace omnc::protocols

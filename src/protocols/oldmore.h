// oldMORE — the preliminary MORE (MIT tech report 2006), which the paper
// describes as the min-cost formulation of Lun et al. [17] "subsequently
// applied to an unpublished system implementation, i.e., the preliminary
// version of MORE".
//
// The expected transmission counts come from the min-cost program
//
//   minimize   sum_i z_i
//   subject to sum_j x_ij - sum_j x_ji = w(i)      (unit demand S -> T)
//              z_i * p_ij >= x_ij,   x >= 0, z >= 0
//
// solved centrally; the runtime is the MORE credit machine driven by those
// z values (TX_credit_i = z_i / expected upstream receptions).  Two
// properties follow, both of which the paper demonstrates:
//   * minimizing total transmissions concentrates flow on high-quality
//     paths, pruning nodes attached through low-quality links (z_i = 0 for
//     most nodes -> low node and path utility, Fig. 4);
//   * there is no channel-capacity term (no counterpart of constraint (4)),
//     so the credits are oblivious to congestion.
#pragma once

#include <optional>
#include <vector>

#include "protocols/coded_base.h"

namespace omnc::protocols {

struct OldMoreConfig {
  /// The source keeps this many packets queued so it always contends.
  std::size_t source_backlog = 2;
  /// At most this many packets are handed to the MAC per node per slot.
  int max_enqueue_per_slot = 4;
  /// z values below this are the LP's numerical zeros: the node is pruned.
  double prune_epsilon = 1e-6;
};

class OldMoreProtocol final : public CodedProtocolBase {
 public:
  OldMoreProtocol(const net::Topology& topology,
                  const routing::SessionGraph& graph,
                  const ProtocolConfig& config,
                  const OldMoreConfig& oldmore_config);

  /// Min-cost expected transmission counts per local node; valid after
  /// run().
  const std::vector<double>& z() const { return z_; }
  const std::vector<double>& tx_credit() const { return tx_credit_; }

 protected:
  void prepare(SessionResult& result) override;
  int packets_to_enqueue(int local, double slot_seconds) override;
  void on_reception(int rx_local, int tx_local, bool innovative) override;
  void on_generation_start() override;

 private:
  OldMoreConfig oldmore_config_;
  std::vector<double> z_;
  std::vector<double> tx_credit_;
  std::optional<CreditPolicy> credits_;
};

/// Solves the min-cost program at unit demand; returns per-node z (empty on
/// infeasibility).  Exposed for tests and benches.
std::vector<double> solve_min_cost_rates(const routing::SessionGraph& graph);

}  // namespace omnc::protocols

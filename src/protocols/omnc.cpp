#include "protocols/omnc.h"

#include <utility>

#include "common/assert.h"
#include "opt/sunicast.h"

namespace omnc::protocols {

OmncProtocol::OmncProtocol(const net::Topology& topology,
                           const routing::SessionGraph& graph,
                           const ProtocolConfig& config,
                           const OmncConfig& omnc_config)
    : CodedProtocolBase(topology, graph, config),
      omnc_config_(omnc_config) {}

void OmncProtocol::prepare(SessionResult& result) {
  opt::RateControlParams params = omnc_config_.rate_control;
  params.capacity = config().mac.capacity_bytes_per_s;
  opt::DistributedRateControl controller(graph(), params);
  opt::RateControlResult rc = controller.run(omnc_config_.iteration_trace);

  result.rc_iterations = rc.iterations;
  result.rc_converged = rc.converged;
  result.rc_messages = rc.messages;
  result.predicted_gamma = rc.gamma;

  rates_ = std::move(rc.b);
  opt::rescale_to_feasible(graph(), rates_, params.capacity);
  bucket_.emplace(rates_, static_cast<double>(config().mac.slot_bytes),
                  omnc_config_.token_burst_cap);
  Rng phase(config().seed ^ 0x70ca);
  bucket_->randomize_phases(phase);
}

int OmncProtocol::packets_to_enqueue(int local, double slot_seconds) {
  return bucket_->packets_to_enqueue(local, slot_seconds);
}

}  // namespace omnc::protocols

#include "protocols/omnc.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "opt/sunicast.h"

namespace omnc::protocols {

OmncProtocol::OmncProtocol(const net::Topology& topology,
                           const routing::SessionGraph& graph,
                           const ProtocolConfig& config,
                           const OmncConfig& omnc_config)
    : CodedProtocolBase(topology, graph, config),
      omnc_config_(omnc_config) {}

void OmncProtocol::prepare(SessionResult& result) {
  opt::RateControlParams params = omnc_config_.rate_control;
  params.capacity = config().mac.capacity_bytes_per_s;
  opt::DistributedRateControl controller(graph(), params);
  opt::RateControlResult rc = controller.run();

  result.rc_iterations = rc.iterations;
  result.rc_converged = rc.converged;
  result.rc_messages = rc.messages;
  result.predicted_gamma = rc.gamma;

  rates_ = std::move(rc.b);
  opt::rescale_to_feasible(graph(), rates_, params.capacity);
  // Random initial phases de-synchronize equal-rate transmitters that
  // cannot hear each other (see multi_unicast.cpp).
  tokens_.assign(rates_.size(), 0.0);
  Rng phase(config().seed ^ 0x70ca);
  for (double& token : tokens_) token = phase.next_double();
}

int OmncProtocol::packets_to_enqueue(int local, double slot_seconds) {
  const std::size_t i = static_cast<std::size_t>(local);
  // Rates and the channel capacity are both measured in air bytes/s, so a
  // token is one slot's worth of air (slot_bytes); using payload bytes here
  // would overcommit the channel by the coding-header overhead.
  const double packets_per_s =
      rates_[i] / static_cast<double>(config().mac.slot_bytes);
  tokens_[i] = std::min(tokens_[i] + packets_per_s * slot_seconds,
                        omnc_config_.token_burst_cap);
  if (tokens_[i] < 1.0) return 0;
  const int send = static_cast<int>(tokens_[i]);
  tokens_[i] -= send;
  return send;
}

}  // namespace omnc::protocols

#include "protocols/session_engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "routing/etx.h"

namespace omnc::protocols {
namespace {

/// Peeks the session id out of a serialized coded packet without a full
/// parse (bytes 0..3 of the header, big endian).
std::uint32_t frame_session_id(const std::vector<std::uint8_t>& wire) {
  OMNC_ASSERT(wire.size() >= coding::CodedPacket::kHeaderBytes);
  return (static_cast<std::uint32_t>(wire[0]) << 24) |
         (static_cast<std::uint32_t>(wire[1]) << 16) |
         (static_cast<std::uint32_t>(wire[2]) << 8) | wire[3];
}

/// Same for the generation id (bytes 4..7).
std::uint32_t frame_generation_id(const std::vector<std::uint8_t>& wire) {
  OMNC_ASSERT(wire.size() >= coding::CodedPacket::kHeaderBytes);
  return (static_cast<std::uint32_t>(wire[4]) << 24) |
         (static_cast<std::uint32_t>(wire[5]) << 16) |
         (static_cast<std::uint32_t>(wire[6]) << 8) | wire[7];
}

}  // namespace

void SessionEngine::MacTap::on_transmit(sim::Time now, net::NodeId node) {
  MetricEvent event;
  event.type = MetricEvent::Type::kTx;
  event.time = now;
  event.node = node;
  bus_->emit(event);
}

void SessionEngine::MacTap::on_queue_sample(sim::Time now, net::NodeId node,
                                            std::size_t queue_len) {
  MetricEvent event;
  event.type = MetricEvent::Type::kQueueSample;
  event.time = now;
  event.node = node;
  event.value = static_cast<double>(queue_len);
  bus_->emit(event);
}

void SessionEngine::MacTap::on_drop(sim::Time now, net::NodeId node) {
  MetricEvent event;
  event.type = MetricEvent::Type::kQueueDrop;
  event.time = now;
  event.node = node;
  bus_->emit(event);
}

void SessionEngine::MacTap::on_contention(sim::Time now, net::NodeId node,
                                          int contenders, bool attempted) {
  if (!detail_) return;
  MetricEvent event;
  event.type = MetricEvent::Type::kMacContention;
  event.time = now;
  event.node = node;
  event.value = static_cast<double>(contenders);
  event.innovative = attempted;
  bus_->emit(event);
}

void SessionEngine::MacTap::on_collision(sim::Time now, net::NodeId rx) {
  if (!detail_) return;
  MetricEvent event;
  event.type = MetricEvent::Type::kMacCollision;
  event.time = now;
  event.node = rx;
  bus_->emit(event);
}

SessionEngine::SessionEngine(const net::Topology& topology,
                             std::vector<EngineSessionSpec> specs,
                             const EngineConfig& config)
    : topology_(topology),
      config_(config),
      rng_(config.protocol.seed),
      mac_tap_(bus_, config.detail_events) {
  OMNC_ASSERT(!specs.empty());

  // One MAC over the union of all session nodes, in first-seen order (for a
  // single session this is the graph-local order, which the MAC's per-link
  // fading initialization depends on).
  std::vector<net::NodeId> participants;
  std::vector<bool> seen(static_cast<std::size_t>(topology_.node_count()),
                         false);
  for (const EngineSessionSpec& spec : specs) {
    OMNC_ASSERT(spec.graph != nullptr && spec.policy != nullptr);
    OMNC_ASSERT(spec.graph->size() >= 2);
    for (net::NodeId id : spec.graph->nodes) {
      if (seen[static_cast<std::size_t>(id)]) continue;
      seen[static_cast<std::size_t>(id)] = true;
      participants.push_back(id);
    }
  }
  mac_ = std::make_unique<net::SlottedMac>(simulator_, topology_, participants,
                                           config_.protocol.mac,
                                           rng_.fork(config_.mac_rng_salt));

  sessions_.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const EngineSessionSpec& spec = specs[s];
    const routing::SessionGraph& graph = *spec.graph;
    Session session;
    session.graph = spec.graph;
    session.policy = spec.policy;
    session.runtimes.reserve(static_cast<std::size_t>(graph.size()));
    for (int local = 0; local < graph.size(); ++local) {
      if (local == graph.source) {
        session.runtimes.push_back(NodeRuntime::source(
            config_.protocol.coding, static_cast<std::uint32_t>(s),
            spec.data_seed, config_.protocol.code));
      } else if (local == graph.destination) {
        session.runtimes.push_back(NodeRuntime::destination(
            config_.protocol.coding, config_.protocol.code));
      } else {
        session.runtimes.push_back(NodeRuntime::relay(
            config_.protocol.coding, static_cast<std::uint32_t>(s),
            config_.protocol.code));
      }
    }
    const std::size_t v = static_cast<std::size_t>(graph.size());
    session.edge_index.assign(v * v, -1);
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      session.edge_index[static_cast<std::size_t>(graph.edges[e].from) * v +
                         static_cast<std::size_t>(graph.edges[e].to)] =
          static_cast<int>(e);
    }
    session.ack_delay_s = compute_ack_delay(graph);
    sessions_.push_back(std::move(session));
  }
}

double SessionEngine::compute_ack_delay(
    const routing::SessionGraph& graph) const {
  // ACK latency over the reverse min-ETX path: per hop, ETX retransmissions
  // of one slot each.  The ACK itself is assumed not to consume data-channel
  // slots (it is a short control packet on the reverse path).  With no
  // reverse connectivity (possible with asymmetric link matrices) the
  // forward path cost is charged instead; with neither, a flat 4-slot cost.
  const auto reverse_route =
      routing::etx_route(topology_, graph.node_id(graph.destination),
                         graph.node_id(graph.source));
  double etx_sum = 4.0;
  if (reverse_route.size() >= 2) {
    etx_sum = routing::route_etx(topology_, reverse_route);
  } else {
    const auto forward_route =
        routing::etx_route(topology_, graph.node_id(graph.source),
                           graph.node_id(graph.destination));
    if (forward_route.size() >= 2) {
      etx_sum = routing::route_etx(topology_, forward_route);
    }
  }
  return etx_sum * (static_cast<double>(config_.protocol.mac.slot_bytes) /
                    config_.protocol.mac.capacity_bytes_per_s);
}

std::size_t SessionEngine::mac_queue_size(std::size_t session,
                                          int local) const {
  return mac_->queue_size(sessions_[session].graph->node_id(local));
}

int SessionEngine::generations_completed(std::size_t session) const {
  const Session& state = sessions_[session];
  return state.runtimes[static_cast<std::size_t>(state.graph->source)]
      .generations_completed();
}

void SessionEngine::run() {
  mac_->set_receive_handler([this](net::NodeId rx, const net::Frame& frame) {
    on_receive_frame(rx, frame);
  });
  mac_->add_slot_hook([this](sim::Time now) { on_slot(now); });
  mac_->set_observer(&mac_tap_);
  mac_->start();

  simulator_.run_until(config_.protocol.max_sim_seconds);
  mac_->stop();
}

void SessionEngine::maybe_start_generation(std::size_t session,
                                           sim::Time now) {
  Session& state = sessions_[session];
  NodeRuntime& source =
      state.runtimes[static_cast<std::size_t>(state.graph->source)];
  if (source.maybe_start_generation(now, config_.protocol.cbr_bytes_per_s,
                                    config_.protocol.max_generations)) {
    OMNC_LOG_TRACE("session %zu: generation %u starts at t=%.2f", session,
                   source.generation_id(), now);
    state.policy->on_generation_start();
  }
}

void SessionEngine::on_slot(sim::Time now) {
  OMNC_SCOPED_TIMER("engine/slot");
  const double slot_seconds = mac_->slot_duration();
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    maybe_start_generation(s, now);
    Session& state = sessions_[s];
    const routing::SessionGraph& graph = *state.graph;
    const std::uint32_t live =
        state.runtimes[static_cast<std::size_t>(graph.source)]
            .generation_id();
    for (int local = 0; local < graph.size(); ++local) {
      if (local == graph.destination) continue;
      NodeRuntime& node = state.runtimes[static_cast<std::size_t>(local)];
      // Policies are only consulted while the node holds something to send,
      // so credits/tokens are not consumed during forced idleness.
      if (!node.can_send(live)) continue;
      const int wanted = state.policy->packets_to_enqueue(local, slot_seconds);
      if (wanted <= 0) continue;
      for (int k = 0; k < wanted; ++k) {
        net::Frame frame;
        coding::CodedPacket packet = node.next_packet(rng_, &frame.structure);
        frame.from = graph.node_id(local);
        frame.to = net::kBroadcast;
        frame.bytes = std::make_shared<const std::vector<std::uint8_t>>(
            packet.serialize());
        if (!mac_->enqueue(std::move(frame))) {
          break;  // queue full (MacTap counted the drop); stop for this slot
        }
      }
    }
  }
}

void SessionEngine::emit_rx(std::size_t session, net::NodeId rx, int tx_local,
                            int rx_local, int edge, bool innovative) {
  MetricEvent event;
  event.type = MetricEvent::Type::kRx;
  event.time = simulator_.now();
  event.session = static_cast<std::uint32_t>(session);
  event.node = rx;
  event.tx_local = tx_local;
  event.rx_local = rx_local;
  event.edge = edge;
  event.innovative = innovative;
  bus_.emit(event);
}

void SessionEngine::on_receive_frame(net::NodeId rx, const net::Frame& frame) {
  const std::uint32_t s = frame_session_id(*frame.bytes);
  if (s >= sessions_.size()) return;
  Session& state = sessions_[s];
  const routing::SessionGraph& graph = *state.graph;
  const int rx_local = graph.local_index(rx);
  if (rx_local < 0) return;  // overheard by a node outside this session
  const int tx_local = graph.local_index(frame.from);
  OMNC_ASSERT(tx_local >= 0);

  const std::uint32_t frame_gen = frame_generation_id(*frame.bytes);
  NodeRuntime& node = state.runtimes[static_cast<std::size_t>(rx_local)];

  if (rx_local == graph.destination) {
    // The decoder may already sit one generation ahead of the in-flight ACK;
    // packets of expired generations are ignored (the decoder's own id check
    // rejects them too, this just skips the parse).
    if (frame_gen != node.generation_id()) {
      emit_rx(s, rx, tx_local, rx_local, -1, false);
      return;
    }
  } else if (rx_local == graph.source) {
    emit_rx(s, rx, tx_local, rx_local, -1, false);
    return;  // the source ignores data packets
  } else {
    // A packet with a higher generation id dictates discarding the expired
    // generation (Sec. 4); with the ACK flush below this is a rare fallback.
    if (frame_gen > node.generation_id()) {
      flush_relay_to(s, rx_local, frame_gen);
    }
    if (frame_gen < node.generation_id()) {
      emit_rx(s, rx, tx_local, rx_local, -1, false);
      return;  // stale
    }
  }

  coding::CodedPacket packet;
  const bool ok = coding::CodedPacket::parse(*frame.bytes, &packet);
  OMNC_ASSERT_MSG(ok, "malformed frame on the air");

  // The sim's bytes are always the dense wire form, but the frame's
  // structure side channel keeps the structured decoders' fast paths alive;
  // the view is re-sliced to the structure's explicit coefficient bytes.
  coding::CodedPacketView view = packet.as_view();
  switch (frame.structure.kind) {
    case coding::CodedStructure::Kind::kDense:
      break;
    case coding::CodedStructure::Kind::kUncoded:
      view.coefficients = {};
      break;
    case coding::CodedStructure::Kind::kWindow:
      view.coefficients =
          view.coefficients.subspan(frame.structure.offset,
                                    frame.structure.width);
      break;
  }
  const NodeRuntime::ReceiveOutcome outcome =
      node.receive(view, frame.structure);
  int edge = -1;
  if (outcome.innovative) {
    const std::size_t v = static_cast<std::size_t>(graph.size());
    edge = state.edge_index[static_cast<std::size_t>(tx_local) * v +
                            static_cast<std::size_t>(rx_local)];
  }
  emit_rx(s, rx, tx_local, rx_local, edge, outcome.innovative);
  state.policy->on_reception(rx_local, tx_local, outcome.innovative);

  if (rx_local == graph.destination && outcome.generation_complete) {
    // End-to-end integrity: the progressively decoded generation must be
    // byte-identical to what the source encoded.
    const auto recovered = node.recover();
    const NodeRuntime& source =
        state.runtimes[static_cast<std::size_t>(graph.source)];
    OMNC_ASSERT_MSG(
        std::equal(recovered.begin(), recovered.end(),
                   source.generation().bytes().begin()),
        "decoded generation does not match the source data");
    const double ack_time = simulator_.now() + state.ack_delay_s;
    // The destination moves on immediately; packets of the old generation
    // are rejected by generation id from now on.
    node.advance_generation();
    simulator_.schedule_at(ack_time,
                           [this, s, ack_time] { deliver_ack(s, ack_time); });
  }
}

void SessionEngine::flush_relay_to(std::size_t session, int local,
                                   std::uint32_t generation_id) {
  Session& state = sessions_[session];
  if (!state.runtimes[static_cast<std::size_t>(local)].flush_to(
          generation_id)) {
    return;
  }
  MetricEvent event;
  event.type = MetricEvent::Type::kStaleFlush;
  event.time = simulator_.now();
  event.session = static_cast<std::uint32_t>(session);
  event.node = state.graph->node_id(local);
  event.generation = generation_id;
  bus_.emit(event);
  if (config_.protocol.flush_stale_frames) {
    const std::uint32_t s = static_cast<std::uint32_t>(session);
    mac_->purge_queue(state.graph->node_id(local),
                      [s, generation_id](const net::Frame& frame) {
                        return frame_session_id(*frame.bytes) == s &&
                               frame_generation_id(*frame.bytes) <
                                   generation_id;
                      });
  }
  // Otherwise frames already handed to the MAC drain over the air and are
  // ignored by every receiver — queued congestion costs channel time.
}

void SessionEngine::deliver_ack(std::size_t session, double ack_time) {
  Session& state = sessions_[session];
  const routing::SessionGraph& graph = *state.graph;
  NodeRuntime& source =
      state.runtimes[static_cast<std::size_t>(graph.source)];
  OMNC_ASSERT(source.generation_active());
  const double elapsed = ack_time - source.generation_start_time();
  OMNC_ASSERT(elapsed > 0.0);
  const std::uint32_t completed = source.generation_id();
  source.complete_generation();
  OMNC_LOG_TRACE("session %zu: generation %u acked at t=%.2f", session,
                 completed, ack_time);

  MetricEvent event;
  event.type = MetricEvent::Type::kGenerationAck;
  event.time = ack_time;
  event.session = static_cast<std::uint32_t>(session);
  event.node = graph.node_id(graph.source);
  event.generation = completed;
  event.value = elapsed;
  bus_.emit(event);

  // The ACK is pseudo-broadcast on its way back: every node of the session
  // learns the generation expired.  Relays drop buffered and queued packets
  // of the old generation; the source drops its queued stale frames.
  const std::uint32_t live = source.generation_id();
  for (int local = 0; local < graph.size(); ++local) {
    if (local == graph.source || local == graph.destination) continue;
    flush_relay_to(session, local, live);
  }
  if (config_.protocol.flush_stale_frames) {
    const std::uint32_t s = static_cast<std::uint32_t>(session);
    mac_->purge_queue(graph.node_id(graph.source),
                      [s, live](const net::Frame& frame) {
                        return frame_session_id(*frame.bytes) == s &&
                               frame_generation_id(*frame.bytes) < live;
                      });
  }
  maybe_start_generation(session, simulator_.now());

  bool all_done = true;
  for (std::size_t other = 0; other < sessions_.size(); ++other) {
    if (generations_completed(other) < config_.protocol.max_generations) {
      all_done = false;
      break;
    }
  }
  if (all_done) simulator_.stop();
}

}  // namespace omnc::protocols

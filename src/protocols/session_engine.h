// Shared slot-loop engine for all coded protocols.
//
// The engine owns the full end-to-end machinery described in Sec. 3.1 and
// Sec. 4 of the paper:
//   * sources encode CBR-fed generations with random linear coding and
//     broadcast coded packets;
//   * relays keep an innovation filter, buffer innovative packets, re-encode
//     and rebroadcast;
//   * destinations decode progressively; a decoded generation triggers an
//     uncoded ACK routed back over the reverse best (min-ETX) path, after
//     which the source moves on;
//   * relays flush expired generations when they hear a packet with a higher
//     generation ID (and, optionally, drop queued stale frames).
//
// One engine drives any number of concurrent unicast sessions over a single
// shared MAC: each session contributes a DAG, a TransmitPolicy deciding when
// its nodes send, and per-(session, node) NodeRuntimes holding the coding
// state; frames carry the session id so receptions dispatch to the right
// runtime.  The engine accumulates no metrics itself — it emits typed
// MetricEvents on its MetricsBus and sinks reconstruct whatever statistics
// they need.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/mac.h"
#include "net/topology.h"
#include "protocols/metrics.h"
#include "protocols/metrics_bus.h"
#include "protocols/node_runtime.h"
#include "protocols/transmit_policy.h"
#include "routing/node_selection.h"
#include "sim/simulator.h"

namespace omnc::protocols {

/// One session to drive: its DAG, its transmit policy (non-owning; must
/// outlive the engine), and the seed for its synthetic source data.
struct EngineSessionSpec {
  const routing::SessionGraph* graph = nullptr;
  TransmitPolicy* policy = nullptr;
  std::uint64_t data_seed = 0;
};

struct EngineConfig {
  ProtocolConfig protocol;
  /// Stream id the MAC's RNG is forked under; distinct per scenario family
  /// so single- and multi-session runs draw independent channel streams.
  std::uint64_t mac_rng_salt = 0x11;
  /// Also emit the high-volume detail event families (kMacContention,
  /// kMacCollision) on the bus.  Off by default so untraced runs pay nothing
  /// beyond the aggregate events; purely observational either way — the
  /// simulation consumes no RNG and takes no branch on it.
  bool detail_events = false;
};

class SessionEngine {
 public:
  SessionEngine(const net::Topology& topology,
                std::vector<EngineSessionSpec> specs,
                const EngineConfig& config);

  /// Subscribe sinks here before run().
  MetricsBus& bus() { return bus_; }
  /// The engine's packet-coding RNG (already past the MAC fork); callers may
  /// draw from it between construction and run() to seed policy phases.
  Rng& rng() { return rng_; }

  /// Runs every session to max_sim_seconds (or until all sessions hit
  /// max_generations).
  void run();

  std::size_t session_count() const { return sessions_.size(); }
  const routing::SessionGraph& graph(std::size_t session) const {
    return *sessions_[session].graph;
  }
  const ProtocolConfig& protocol_config() const { return config_.protocol; }
  const net::SlottedMac& mac() const { return *mac_; }
  /// MAC queue length of a session-local node (policy backlog probes).
  std::size_t mac_queue_size(std::size_t session, int local) const;
  int generations_completed(std::size_t session) const;

 private:
  struct Session {
    const routing::SessionGraph* graph = nullptr;
    TransmitPolicy* policy = nullptr;
    std::vector<NodeRuntime> runtimes;  // per local node
    /// Fast edge lookup: edge_index[from * size + to] = edge id or -1.
    std::vector<int> edge_index;
    double ack_delay_s = 0.0;
  };

  /// Forwards MAC activity onto the bus.
  class MacTap final : public net::MacObserver {
   public:
    MacTap(MetricsBus& bus, bool detail) : bus_(&bus), detail_(detail) {}
    void on_transmit(sim::Time now, net::NodeId node) override;
    void on_queue_sample(sim::Time now, net::NodeId node,
                         std::size_t queue_len) override;
    void on_drop(sim::Time now, net::NodeId node) override;
    void on_contention(sim::Time now, net::NodeId node, int contenders,
                       bool attempted) override;
    void on_collision(sim::Time now, net::NodeId rx) override;

   private:
    MetricsBus* bus_;
    bool detail_;  // forward contention/collision detail events
  };

  void on_slot(sim::Time now);
  void on_receive_frame(net::NodeId rx, const net::Frame& frame);
  void maybe_start_generation(std::size_t session, sim::Time now);
  void deliver_ack(std::size_t session, double ack_time);
  void flush_relay_to(std::size_t session, int local,
                      std::uint32_t generation_id);
  void emit_rx(std::size_t session, net::NodeId rx, int tx_local, int rx_local,
               int edge, bool innovative);
  double compute_ack_delay(const routing::SessionGraph& graph) const;

  const net::Topology& topology_;
  EngineConfig config_;
  Rng rng_;

  sim::Simulator simulator_;
  std::unique_ptr<net::SlottedMac> mac_;
  std::vector<Session> sessions_;
  MetricsBus bus_;
  MacTap mac_tap_;
};

}  // namespace omnc::protocols

#include "protocols/transmit_policy.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace omnc::protocols {

TokenBucketPolicy::TokenBucketPolicy(std::vector<double> rates_bytes_per_s,
                                     double slot_bytes, double burst_cap)
    : rates_(std::move(rates_bytes_per_s)),
      slot_bytes_(slot_bytes),
      burst_cap_(burst_cap) {
  OMNC_ASSERT(slot_bytes_ > 0.0);
  tokens_.assign(rates_.size(), 0.0);
}

void TokenBucketPolicy::randomize_phases(Rng& rng) {
  for (double& token : tokens_) token = rng.next_double();
}

int TokenBucketPolicy::packets_to_enqueue(int local, double slot_seconds) {
  const std::size_t i = static_cast<std::size_t>(local);
  const double packets_per_s = rates_[i] / slot_bytes_;
  tokens_[i] =
      std::min(tokens_[i] + packets_per_s * slot_seconds, burst_cap_);
  if (tokens_[i] < 1.0) return 0;
  const int send = static_cast<int>(tokens_[i]);
  tokens_[i] -= send;
  return send;
}

CreditPolicy::CreditPolicy(const routing::SessionGraph& graph,
                           std::vector<double> tx_credit,
                           std::size_t source_backlog,
                           int max_enqueue_per_slot,
                           std::function<std::size_t(int local)> queue_probe)
    : graph_(graph),
      tx_credit_(std::move(tx_credit)),
      source_backlog_(source_backlog),
      max_enqueue_per_slot_(max_enqueue_per_slot),
      queue_probe_(std::move(queue_probe)) {
  OMNC_ASSERT(tx_credit_.size() == static_cast<std::size_t>(graph_.size()));
  OMNC_ASSERT(queue_probe_ != nullptr);
  credit_.assign(tx_credit_.size(), 0.0);
}

int CreditPolicy::packets_to_enqueue(int local, double slot_seconds) {
  (void)slot_seconds;
  if (local == graph_.source) {
    // Backlogged source: always contends for the medium.
    const std::size_t queued = queue_probe_(local);
    if (queued >= source_backlog_) return 0;
    return static_cast<int>(source_backlog_ - queued);
  }
  const std::size_t i = static_cast<std::size_t>(local);
  if (credit_[i] < 1.0) return 0;
  const int send =
      std::min(static_cast<int>(credit_[i]), max_enqueue_per_slot_);
  credit_[i] -= send;
  return send;
}

void CreditPolicy::on_reception(int rx_local, int tx_local, bool innovative) {
  (void)innovative;  // credit accrues on every upstream reception
  if (rx_local == graph_.source || rx_local == graph_.destination) return;
  // Upstream check: tx must be farther from the destination.
  if (graph_.etx_to_dst[static_cast<std::size_t>(tx_local)] <=
      graph_.etx_to_dst[static_cast<std::size_t>(rx_local)]) {
    return;
  }
  credit_[static_cast<std::size_t>(rx_local)] +=
      tx_credit_[static_cast<std::size_t>(rx_local)];
}

void CreditPolicy::on_generation_start() {
  std::fill(credit_.begin(), credit_.end(), 0.0);
}

}  // namespace omnc::protocols

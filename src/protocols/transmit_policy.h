// Transmit policies — the only behavioural difference between the coded
// protocols (paper Sec. 5: "both protocols share the same encoding and
// decoding modules").  The SessionEngine consults its session's policy once
// per slot per sendable node; the policy answers how many packets to hand to
// the MAC and observes receptions / generation starts to update its state.
//
// Two concrete policies cover the paper's protocols:
//   * TokenBucketPolicy — rate-driven (OMNC single- and multi-session): node
//     i accumulates b_i / slot_bytes tokens per second and sends one packet
//     per whole token, burst-capped;
//   * CreditPolicy — the MORE/oldMORE credit machine: a forwarder earns
//     TX_credit per packet heard from upstream and spends one credit per
//     transmission, while the source simply keeps itself backlogged.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "routing/node_selection.h"

namespace omnc::protocols {

/// Decides when the nodes of one session transmit.  `local` is always a
/// session-local node index of the policy's own session graph.
class TransmitPolicy {
 public:
  virtual ~TransmitPolicy() = default;

  /// Number of packets `local` should hand to the MAC this slot; only called
  /// while the node holds something transmittable, so credits/tokens are not
  /// consumed during forced idleness.  `slot_seconds` is the slot length,
  /// for token refill.
  virtual int packets_to_enqueue(int local, double slot_seconds) = 0;

  /// Reception notification: rx_local received a packet last transmitted by
  /// tx_local (tx is always farther from the destination on a DAG edge).
  virtual void on_reception(int rx_local, int tx_local, bool innovative) {
    (void)rx_local;
    (void)tx_local;
    (void)innovative;
  }

  /// Called whenever the source starts a new generation (reset bursts).
  virtual void on_generation_start() {}
};

/// Rate-driven token bucket per node (OMNC).  Rates and the channel capacity
/// are both measured in air bytes/s, so a token is one slot's worth of air
/// (slot_bytes); using payload bytes would overcommit the channel by the
/// coding-header overhead.
class TokenBucketPolicy final : public TransmitPolicy {
 public:
  TokenBucketPolicy(std::vector<double> rates_bytes_per_s,
                    double slot_bytes, double burst_cap);

  /// Random initial phases de-synchronize equal-rate transmitters that
  /// cannot hear each other: with identical rates they would otherwise cross
  /// their send thresholds in the same slots forever and collide at every
  /// common receiver.
  void randomize_phases(Rng& rng);

  int packets_to_enqueue(int local, double slot_seconds) override;

 private:
  std::vector<double> rates_;   // bytes/s per local node
  std::vector<double> tokens_;  // packets
  double slot_bytes_;
  double burst_cap_;
};

/// The MORE credit machine; also drives oldMORE (with LP-derived credits).
/// `queue_probe(local)` reports the node's current MAC queue length so the
/// source can top its backlog up.
class CreditPolicy final : public TransmitPolicy {
 public:
  CreditPolicy(const routing::SessionGraph& graph,
               std::vector<double> tx_credit, std::size_t source_backlog,
               int max_enqueue_per_slot,
               std::function<std::size_t(int local)> queue_probe);

  int packets_to_enqueue(int local, double slot_seconds) override;
  void on_reception(int rx_local, int tx_local, bool innovative) override;
  void on_generation_start() override;

 private:
  const routing::SessionGraph& graph_;
  std::vector<double> tx_credit_;  // per local node
  std::vector<double> credit_;     // per local node
  std::size_t source_backlog_;
  int max_enqueue_per_slot_;
  std::function<std::size_t(int local)> queue_probe_;
};

}  // namespace omnc::protocols

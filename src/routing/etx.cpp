#include "routing/etx.h"

#include "common/assert.h"

namespace omnc::routing {
namespace {

std::vector<GraphEdge> etx_edges(const net::Topology& topology) {
  std::vector<GraphEdge> edges;
  for (net::NodeId i = 0; i < topology.node_count(); ++i) {
    for (net::NodeId j : topology.neighbors(i)) {
      edges.push_back(GraphEdge{i, j, 1.0 / topology.prob(i, j)});
    }
  }
  return edges;
}

}  // namespace

double link_etx(const net::Topology& topology, net::NodeId from,
                net::NodeId to) {
  const double p = topology.prob(from, to);
  if (p <= 0.0) return kUnreachable;
  return 1.0 / p;
}

ShortestPathTree etx_tree_to(const net::Topology& topology,
                             net::NodeId target) {
  return dijkstra_to_target(topology.node_count(), etx_edges(topology),
                            target);
}

std::vector<net::NodeId> etx_route(const net::Topology& topology,
                                   net::NodeId src, net::NodeId dst) {
  const ShortestPathTree tree = etx_tree_to(topology, dst);
  return extract_path(tree, src, dst);
}

int etx_hop_count(const net::Topology& topology, net::NodeId src,
                  net::NodeId dst) {
  const auto route = etx_route(topology, src, dst);
  if (route.size() < 2) return 0;
  return static_cast<int>(route.size()) - 1;
}

double route_etx(const net::Topology& topology,
                 const std::vector<net::NodeId>& route) {
  OMNC_ASSERT(route.size() >= 2);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    total += link_etx(topology, route[i], route[i + 1]);
  }
  return total;
}

}  // namespace omnc::routing

// Expected transmission count (ETX) metric and routing (Couto et al.,
// MobiCom'03) — the high-throughput single-path baseline the paper compares
// against, and the distance metric its node-selection procedure uses.
//
// Per the paper, ETX of link (i, j) is 1 / p_ij, with p_ij the one-way
// reception probability.
#pragma once

#include <vector>

#include "net/topology.h"
#include "routing/shortest_path.h"

namespace omnc::routing {

/// ETX of one link; kUnreachable when no link exists.
double link_etx(const net::Topology& topology, net::NodeId from,
                net::NodeId to);

/// ETX distance of every node to `target` (Dijkstra over the whole
/// topology), with next hops toward the target.
ShortestPathTree etx_tree_to(const net::Topology& topology,
                             net::NodeId target);

/// The min-ETX route from src to dst; empty when disconnected.
std::vector<net::NodeId> etx_route(const net::Topology& topology,
                                   net::NodeId src, net::NodeId dst);

/// Hop count of the min-ETX route (0 when disconnected or src == dst).
int etx_hop_count(const net::Topology& topology, net::NodeId src,
                  net::NodeId dst);

/// Total ETX cost of a given route.
double route_etx(const net::Topology& topology,
                 const std::vector<net::NodeId>& route);

}  // namespace omnc::routing

#include "routing/link_prober.h"

#include <memory>

#include "common/assert.h"

namespace omnc::routing {

ProbeReport measure_link_qualities(const net::Topology& topology,
                                   const std::vector<net::NodeId>& participants,
                                   const ProbeConfig& config, Rng rng) {
  OMNC_ASSERT(!participants.empty());
  OMNC_ASSERT(config.probes_per_node > 0);
  sim::Simulator simulator;
  net::SlottedMac mac(simulator, topology, participants, config.mac, rng);

  const std::size_t n = participants.size();
  std::vector<int> index_of(static_cast<std::size_t>(topology.node_count()),
                            -1);
  for (std::size_t i = 0; i < n; ++i) {
    index_of[static_cast<std::size_t>(participants[i])] = static_cast<int>(i);
  }

  ProbeReport report;
  report.estimate.assign(n, std::vector<double>(n, 0.0));
  report.sent.assign(n, 0);
  std::vector<std::vector<int>> received(n, std::vector<int>(n, 0));

  // Probe payload identifies the sender; one shared buffer per sender.
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> payloads;
  payloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    payloads.push_back(std::make_shared<const std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>{static_cast<std::uint8_t>(i),
                                  static_cast<std::uint8_t>(i >> 8)}));
  }

  mac.set_receive_handler([&](net::NodeId rx, const net::Frame& frame) {
    const int tx_index = index_of[static_cast<std::size_t>(frame.from)];
    const int rx_index = index_of[static_cast<std::size_t>(rx)];
    OMNC_ASSERT(tx_index >= 0 && rx_index >= 0);
    ++received[static_cast<std::size_t>(tx_index)]
              [static_cast<std::size_t>(rx_index)];
  });

  // Staggered campaign: probe slots are owned round-robin so that probes
  // never collide with each other — exactly how deployed ETX probing
  // schedules (e.g. Roofnet's) stagger broadcast probes.
  std::size_t slot_counter = 0;
  mac.add_slot_hook([&](sim::Time) {
    const std::size_t owner = slot_counter++ % n;
    if (report.sent[owner] >= config.probes_per_node) return;
    if (mac.queue_size(participants[owner]) > 0) return;
    net::Frame frame;
    frame.from = participants[owner];
    frame.to = net::kBroadcast;
    frame.bytes = payloads[owner];
    if (mac.enqueue(std::move(frame))) ++report.sent[owner];
  });

  mac.start();
  // Upper bound: every node needs probes_per_node slots; conflicts stretch
  // the campaign, so allow a generous multiple before giving up.
  const double horizon =
      mac.slot_duration() * config.probes_per_node * static_cast<double>(n) * 4.0;
  double t = 0.0;
  bool done = false;
  while (!done && t < horizon) {
    t += mac.slot_duration() * 64.0;
    simulator.run_until(t);
    done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (report.sent[i] < config.probes_per_node) {
        done = false;
        break;
      }
    }
  }
  mac.stop();
  report.duration_s = simulator.now();

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (report.sent[i] == 0) continue;
      report.estimate[i][j] = static_cast<double>(received[i][j]) /
                              static_cast<double>(report.sent[i]);
    }
  }
  return report;
}

net::Topology topology_from_probes(const std::vector<net::NodeId>& participants,
                                   const ProbeReport& report, int node_count) {
  std::vector<std::vector<double>> p(
      static_cast<std::size_t>(node_count),
      std::vector<double>(static_cast<std::size_t>(node_count), 0.0));
  for (std::size_t i = 0; i < participants.size(); ++i) {
    for (std::size_t j = 0; j < participants.size(); ++j) {
      if (i == j) continue;
      p[static_cast<std::size_t>(participants[i])]
       [static_cast<std::size_t>(participants[j])] = report.estimate[i][j];
    }
  }
  return net::Topology::from_link_matrix(p);
}

}  // namespace omnc::routing

// Link-quality measurement (Sec. 4 of the paper): each node broadcasts
// probing packets and receivers estimate p_ij as the fraction of probes
// correctly received.  The prober drives real probe frames through the
// slotted MAC so that estimation error, probe scheduling and channel
// competition are all exercised end-to-end.
//
// Protocol layers may run on measured probabilities (honest mode) or on the
// ground-truth PHY matrix (fast mode for large sweeps); tests verify the two
// agree within sampling error.
#pragma once

#include <vector>

#include "common/rng.h"
#include "net/mac.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace omnc::routing {

struct ProbeConfig {
  int probes_per_node = 200;
  net::MacConfig mac;
};

struct ProbeReport {
  /// estimate[i][j] = measured reception probability from participant index i
  /// to participant index j (0 when no probe got through).
  std::vector<std::vector<double>> estimate;
  /// Probes actually transmitted per participant.
  std::vector<int> sent;
  /// Virtual seconds the measurement campaign occupied.
  double duration_s = 0.0;
};

/// Runs a probing campaign among `participants` on a fresh simulator.
ProbeReport measure_link_qualities(const net::Topology& topology,
                                   const std::vector<net::NodeId>& participants,
                                   const ProbeConfig& config, Rng rng);

/// Builds a topology whose link probabilities are the measured estimates —
/// the view protocols see in honest mode.
net::Topology topology_from_probes(const std::vector<net::NodeId>& participants,
                                   const ProbeReport& report,
                                   int node_count);

}  // namespace omnc::routing

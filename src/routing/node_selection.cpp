#include "routing/node_selection.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"
#include "routing/etx.h"

namespace omnc::routing {

int SessionGraph::local_index(net::NodeId id) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> SessionGraph::out_edges_of(int local) const {
  std::vector<int> out;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].from == local) out.push_back(static_cast<int>(e));
  }
  return out;
}

std::vector<int> SessionGraph::in_edges_of(int local) const {
  std::vector<int> in;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].to == local) in.push_back(static_cast<int>(e));
  }
  return in;
}

std::vector<int> SessionGraph::topological_order() const {
  std::vector<int> order(nodes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const double da = etx_to_dst[static_cast<std::size_t>(a)];
    const double db = etx_to_dst[static_cast<std::size_t>(b)];
    if (da != db) return da > db;  // farther first
    return a < b;
  });
  return order;
}

SessionGraph select_nodes(const net::Topology& topology, net::NodeId src,
                          net::NodeId dst) {
  OMNC_ASSERT(src != dst);
  SessionGraph graph;
  const ShortestPathTree tree = etx_tree_to(topology, dst);
  const double src_distance = tree.distance[static_cast<std::size_t>(src)];
  if (src_distance == kUnreachable) return graph;  // disconnected

  // Candidate set: src, dst, and every node strictly closer than src.
  const int n = topology.node_count();
  std::vector<bool> candidate(static_cast<std::size_t>(n), false);
  candidate[static_cast<std::size_t>(src)] = true;
  for (net::NodeId v = 0; v < n; ++v) {
    const double d = tree.distance[static_cast<std::size_t>(v)];
    if (d != kUnreachable && d < src_distance) {
      candidate[static_cast<std::size_t>(v)] = true;
    }
  }

  // DAG edge u -> v: link exists and v is strictly closer to dst.
  auto is_dag_edge = [&](net::NodeId u, net::NodeId v) {
    if (!candidate[static_cast<std::size_t>(u)] ||
        !candidate[static_cast<std::size_t>(v)]) {
      return false;
    }
    if (topology.prob(u, v) <= 0.0) return false;
    return tree.distance[static_cast<std::size_t>(v)] <
           tree.distance[static_cast<std::size_t>(u)];
  };

  // Forward reachability from src across DAG edges.
  std::vector<bool> from_src(static_cast<std::size_t>(n), false);
  {
    std::vector<net::NodeId> stack{src};
    from_src[static_cast<std::size_t>(src)] = true;
    while (!stack.empty()) {
      const net::NodeId u = stack.back();
      stack.pop_back();
      for (net::NodeId v : topology.neighbors(u)) {
        if (!from_src[static_cast<std::size_t>(v)] && is_dag_edge(u, v)) {
          from_src[static_cast<std::size_t>(v)] = true;
          stack.push_back(v);
        }
      }
    }
  }
  // Backward reachability to dst.
  std::vector<bool> to_dst(static_cast<std::size_t>(n), false);
  {
    std::vector<net::NodeId> stack{dst};
    to_dst[static_cast<std::size_t>(dst)] = true;
    while (!stack.empty()) {
      const net::NodeId v = stack.back();
      stack.pop_back();
      for (net::NodeId u : topology.neighbors(v)) {
        if (!to_dst[static_cast<std::size_t>(u)] && is_dag_edge(u, v)) {
          to_dst[static_cast<std::size_t>(u)] = true;
          stack.push_back(u);
        }
      }
    }
  }

  for (net::NodeId v = 0; v < n; ++v) {
    if (candidate[static_cast<std::size_t>(v)] &&
        from_src[static_cast<std::size_t>(v)] &&
        to_dst[static_cast<std::size_t>(v)]) {
      graph.nodes.push_back(v);
      graph.etx_to_dst.push_back(tree.distance[static_cast<std::size_t>(v)]);
    }
  }
  if (graph.local_index(src) < 0 || graph.local_index(dst) < 0) {
    return SessionGraph{};  // src pruned => no usable path
  }
  graph.source = graph.local_index(src);
  graph.destination = graph.local_index(dst);

  for (int a = 0; a < graph.size(); ++a) {
    for (int b = 0; b < graph.size(); ++b) {
      if (a == b) continue;
      const net::NodeId u = graph.node_id(a);
      const net::NodeId v = graph.node_id(b);
      if (is_dag_edge(u, v)) {
        graph.edges.push_back(
            SessionGraph::Edge{a, b, topology.prob(u, v)});
      }
    }
  }

  // N(i) of the broadcast MAC constraint (4): nodes whose transmissions are
  // audible at i, i.e. the interference neighborhood (equal to the link
  // neighborhood at base power, wider when transmit power is raised).
  graph.range_neighbors.assign(graph.nodes.size(), {});
  for (int a = 0; a < graph.size(); ++a) {
    for (int b = a + 1; b < graph.size(); ++b) {
      const net::NodeId u = graph.node_id(a);
      const net::NodeId v = graph.node_id(b);
      if (topology.interferes(u, v)) {
        graph.range_neighbors[static_cast<std::size_t>(a)].push_back(b);
        graph.range_neighbors[static_cast<std::size_t>(b)].push_back(a);
      }
    }
  }
  return graph;
}

double selection_overhead_transmissions(const net::Topology& topology,
                                        const SessionGraph& graph) {
  // Each selected node pseudo-broadcasts the distance announcement once per
  // neighbor, with reliable delivery costing the link's ETX in expectation.
  double total = 0.0;
  for (int a = 0; a < graph.size(); ++a) {
    const net::NodeId u = graph.node_id(a);
    for (int b : graph.range_neighbors[static_cast<std::size_t>(a)]) {
      const net::NodeId v = graph.node_id(b);
      const double p = topology.prob(u, v);
      if (p > 0.0) total += 1.0 / p;
    }
  }
  return total;
}

}  // namespace omnc::routing

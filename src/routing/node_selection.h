// Node selection and implicit multipath construction (Sec. 4 of the paper).
//
// Forwarders are the nodes whose ETX distance to the destination is strictly
// smaller than the source's ("each relay is closer to the destination T than
// its predecessor").  The selected subgraph's directed edges run from a node
// to every in-range node that is strictly closer, which makes the session
// graph a DAG.  Nodes that cannot be reached from the source through that
// DAG, or from which the destination cannot be reached, contribute nothing
// and are pruned.
//
// The multiple opportunistic paths are implicit: every DAG edge may carry
// coded traffic; no explicit disjoint-path computation is performed.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.h"
#include "routing/shortest_path.h"

namespace omnc::routing {

/// The per-session subgraph all higher layers (optimization, protocols)
/// operate on.  Node indices are local (0 .. size-1); `nodes` maps back to
/// topology ids.
struct SessionGraph {
  struct Edge {
    int from = 0;  // local index, strictly farther from the destination
    int to = 0;    // local index, strictly closer
    double p = 0.0;  // one-way reception probability
  };

  std::vector<net::NodeId> nodes;  // selected nodes; includes source and dst
  int source = -1;                 // local index
  int destination = -1;            // local index
  std::vector<double> etx_to_dst;  // per local node
  std::vector<Edge> edges;
  /// Undirected in-range neighborhoods within the selected set; this is the
  /// N(i) of the broadcast MAC constraint (4).
  std::vector<std::vector<int>> range_neighbors;

  int size() const { return static_cast<int>(nodes.size()); }
  /// Local index of a topology node; -1 if not selected.
  int local_index(net::NodeId id) const;
  net::NodeId node_id(int local) const { return nodes[static_cast<std::size_t>(local)]; }

  std::vector<int> out_edges_of(int local) const;   // edge indices
  std::vector<int> in_edges_of(int local) const;    // edge indices

  /// Local node indices ordered by decreasing ETX distance (a topological
  /// order of the DAG; source first, destination last).
  std::vector<int> topological_order() const;
};

/// Runs the node-selection procedure.  Returns an empty graph (size 0) when
/// src cannot reach dst.
SessionGraph select_nodes(const net::Topology& topology, net::NodeId src,
                          net::NodeId dst);

/// Expected number of pseudo-broadcast transmissions needed to disseminate
/// the distance information during node selection (Katti et al.'s
/// pseudo-broadcast delivers reliably to each neighbor at unicast-ARQ cost,
/// i.e. the link's ETX); reported as protocol overhead.
double selection_overhead_transmissions(const net::Topology& topology,
                                        const SessionGraph& graph);

}  // namespace omnc::routing

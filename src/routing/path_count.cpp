#include "routing/path_count.h"

#include "common/assert.h"

namespace omnc::routing {
namespace {

/// paths_from[v] = number of v -> destination paths over active edges.
std::vector<double> paths_to_destination(const SessionGraph& graph,
                                         const std::vector<bool>& edge_active) {
  std::vector<double> paths(graph.nodes.size(), 0.0);
  if (graph.size() == 0) return paths;
  paths[static_cast<std::size_t>(graph.destination)] = 1.0;
  const std::vector<int> order = graph.topological_order();
  // Process closest-to-destination first (reverse topological order).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int v = *it;
    if (v == graph.destination) continue;
    double total = 0.0;
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      if (!edge_active[e]) continue;
      if (graph.edges[e].from != v) continue;
      total += paths[static_cast<std::size_t>(graph.edges[e].to)];
    }
    paths[static_cast<std::size_t>(v)] = total;
  }
  return paths;
}

/// paths_from_source[v] = number of source -> v paths over active edges.
std::vector<double> paths_from_source(const SessionGraph& graph,
                                      const std::vector<bool>& edge_active) {
  std::vector<double> paths(graph.nodes.size(), 0.0);
  if (graph.size() == 0) return paths;
  paths[static_cast<std::size_t>(graph.source)] = 1.0;
  const std::vector<int> order = graph.topological_order();
  for (int v : order) {
    if (v == graph.source) continue;
    double total = 0.0;
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      if (!edge_active[e]) continue;
      if (graph.edges[e].to != v) continue;
      total += paths[static_cast<std::size_t>(graph.edges[e].from)];
    }
    paths[static_cast<std::size_t>(v)] = total;
  }
  return paths;
}

}  // namespace

double count_paths(const SessionGraph& graph) {
  return count_paths_filtered(graph,
                              std::vector<bool>(graph.edges.size(), true));
}

double count_paths_filtered(const SessionGraph& graph,
                            const std::vector<bool>& edge_active) {
  OMNC_ASSERT(edge_active.size() == graph.edges.size());
  if (graph.size() == 0) return 0.0;
  const auto paths = paths_to_destination(graph, edge_active);
  return paths[static_cast<std::size_t>(graph.source)];
}

int count_nodes_on_active_paths(const SessionGraph& graph,
                                const std::vector<bool>& edge_active) {
  OMNC_ASSERT(edge_active.size() == graph.edges.size());
  if (graph.size() == 0) return 0;
  const auto down = paths_to_destination(graph, edge_active);
  const auto up = paths_from_source(graph, edge_active);
  int count = 0;
  for (int v = 0; v < graph.size(); ++v) {
    if (v == graph.destination) continue;
    if (up[static_cast<std::size_t>(v)] > 0.0 &&
        down[static_cast<std::size_t>(v)] > 0.0) {
      ++count;
    }
  }
  return count;
}

}  // namespace omnc::routing

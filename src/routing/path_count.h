// Path counting on the session DAG — the denominator and numerator of the
// paper's "path utility ratio" (Fig. 4): the number of source-to-destination
// paths involved in the transmission divided by the number of paths available
// after node selection.
//
// Counts are exact DAG path counts computed by dynamic programming over the
// topological order; values are doubles because path counts grow
// exponentially with graph size.
#pragma once

#include <vector>

#include "routing/node_selection.h"

namespace omnc::routing {

/// Number of source->destination paths using every DAG edge.
double count_paths(const SessionGraph& graph);

/// Number of source->destination paths restricted to edges where
/// edge_active[e] is true.
double count_paths_filtered(const SessionGraph& graph,
                            const std::vector<bool>& edge_active);

/// Node utility ratio helper: nodes (excluding the destination) that lie on
/// at least one active path, given active edges.
int count_nodes_on_active_paths(const SessionGraph& graph,
                                const std::vector<bool>& edge_active);

}  // namespace omnc::routing

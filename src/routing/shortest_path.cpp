#include "routing/shortest_path.h"

#include <queue>

#include "common/assert.h"

namespace omnc::routing {
namespace {

/// Adjacency "who can reach target through this edge": for cost-to-target we
/// relax backwards, so index edges by their head (to).
std::vector<std::vector<const GraphEdge*>> index_by_head(
    int node_count, const std::vector<GraphEdge>& edges) {
  std::vector<std::vector<const GraphEdge*>> by_head(
      static_cast<std::size_t>(node_count));
  for (const GraphEdge& e : edges) {
    OMNC_ASSERT(e.from >= 0 && e.from < node_count);
    OMNC_ASSERT(e.to >= 0 && e.to < node_count);
    OMNC_ASSERT(e.cost >= 0.0);
    by_head[static_cast<std::size_t>(e.to)].push_back(&e);
  }
  return by_head;
}

}  // namespace

ShortestPathTree dijkstra_to_target(int node_count,
                                    const std::vector<GraphEdge>& edges,
                                    int target) {
  OMNC_ASSERT(target >= 0 && target < node_count);
  const auto by_head = index_by_head(node_count, edges);
  ShortestPathTree tree;
  tree.distance.assign(static_cast<std::size_t>(node_count), kUnreachable);
  tree.next_hop.assign(static_cast<std::size_t>(node_count), -1);
  using Item = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  tree.distance[static_cast<std::size_t>(target)] = 0.0;
  heap.emplace(0.0, target);
  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(node)]) continue;
    for (const GraphEdge* e : by_head[static_cast<std::size_t>(node)]) {
      const double candidate = dist + e->cost;
      if (candidate < tree.distance[static_cast<std::size_t>(e->from)]) {
        tree.distance[static_cast<std::size_t>(e->from)] = candidate;
        tree.next_hop[static_cast<std::size_t>(e->from)] = e->to;
        heap.emplace(candidate, e->from);
      }
    }
  }
  return tree;
}

ShortestPathTree bellman_ford_to_target(int node_count,
                                        const std::vector<GraphEdge>& edges,
                                        int target) {
  OMNC_ASSERT(target >= 0 && target < node_count);
  ShortestPathTree tree;
  tree.distance.assign(static_cast<std::size_t>(node_count), kUnreachable);
  tree.next_hop.assign(static_cast<std::size_t>(node_count), -1);
  tree.distance[static_cast<std::size_t>(target)] = 0.0;
  tree.rounds = 0;
  bool changed = true;
  while (changed && tree.rounds < node_count + 1) {
    changed = false;
    ++tree.rounds;
    for (const GraphEdge& e : edges) {
      const double through = tree.distance[static_cast<std::size_t>(e.to)];
      if (through == kUnreachable) continue;
      const double candidate = through + e.cost;
      if (candidate <
          tree.distance[static_cast<std::size_t>(e.from)] - 1e-15) {
        tree.distance[static_cast<std::size_t>(e.from)] = candidate;
        tree.next_hop[static_cast<std::size_t>(e.from)] = e.to;
        changed = true;
      }
    }
  }
  return tree;
}

std::vector<int> extract_path(const ShortestPathTree& tree, int from,
                              int target) {
  std::vector<int> path;
  if (tree.distance[static_cast<std::size_t>(from)] == kUnreachable) {
    return path;
  }
  int node = from;
  path.push_back(node);
  while (node != target) {
    node = tree.next_hop[static_cast<std::size_t>(node)];
    OMNC_ASSERT_MSG(node >= 0, "broken next_hop chain");
    path.push_back(node);
    OMNC_ASSERT_MSG(path.size() <= tree.distance.size(),
                    "next_hop cycle detected");
  }
  return path;
}

}  // namespace omnc::routing

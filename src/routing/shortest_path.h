// Generic single-target shortest paths on small directed graphs.
//
// Two solvers share one edge representation:
//   * dijkstra() — the centralized solver used for ETX distances and node
//     selection;
//   * bellman_ford() — the distributed-style iterative solver the rate
//     control algorithm uses for SUB1 ("find the shortest path in a
//     distributed manner"); it also reports how many relaxation rounds were
//     needed, which the message-overhead accounting consumes.
#pragma once

#include <limits>
#include <vector>

namespace omnc::routing {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct GraphEdge {
  int from = 0;
  int to = 0;
  double cost = 0.0;  // must be >= 0
};

struct ShortestPathTree {
  /// distance[v] = cost of the cheapest v -> target path (kUnreachable if
  /// none).
  std::vector<double> distance;
  /// next_hop[v] = successor of v on that path; -1 at the target and for
  /// unreachable nodes.
  std::vector<int> next_hop;
  /// Relaxation rounds used (Bellman–Ford only; 1 for Dijkstra).
  int rounds = 1;
};

/// Cost-to-target for every node, Dijkstra (binary heap).
ShortestPathTree dijkstra_to_target(int node_count,
                                    const std::vector<GraphEdge>& edges,
                                    int target);

/// Cost-to-target via synchronous Bellman–Ford rounds (each round models one
/// neighborhood message exchange).
ShortestPathTree bellman_ford_to_target(int node_count,
                                        const std::vector<GraphEdge>& edges,
                                        int target);

/// Follows next_hop from `from`; empty when unreachable, otherwise the node
/// sequence from -> ... -> target.
std::vector<int> extract_path(const ShortestPathTree& tree, int from,
                              int target);

}  // namespace omnc::routing

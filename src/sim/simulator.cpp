#include "sim/simulator.h"

#include "common/assert.h"

namespace omnc::sim {

EventId Simulator::schedule_in(Time delay, std::function<void()> fn) {
  OMNC_ASSERT(delay >= 0.0);
  return queue_.schedule_at(queue_.now() + delay, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && queue_.step()) {
  }
}

bool Simulator::run_until(Time t) {
  OMNC_ASSERT(t >= queue_.now());
  stopped_ = false;
  while (!stopped_) {
    Time at = 0.0;
    if (!queue_.next_time(&at) || at > t) break;
    queue_.step();
  }
  if (!stopped_) queue_.advance_to(t);
  return !stopped_;
}

}  // namespace omnc::sim

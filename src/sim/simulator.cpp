#include "sim/simulator.h"

#include "common/assert.h"

namespace omnc::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  OMNC_ASSERT_MSG(at >= now_, "scheduling into the past");
  const EventId id = next_id_++;
  heap_.push(Event{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> fn) {
  OMNC_ASSERT(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (handlers_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // lazily dropped
    auto it = handlers_.find(ev.id);
    OMNC_ASSERT(it != handlers_.end());
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.at;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

bool Simulator::run_until(Time t) {
  OMNC_ASSERT(t >= now_);
  stopped_ = false;
  while (!stopped_) {
    if (heap_.empty()) break;
    // Peek the next live event's time without firing it.
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > t) break;
    step();
  }
  if (!stopped_) now_ = t;
  return !stopped_;
}

}  // namespace omnc::sim

// Discrete-event simulation core of the Drift-substitute testbed.
//
// A Simulator owns a virtual clock and a time-ordered event queue.  Events
// scheduled for the same instant fire in scheduling order (stable), which
// keeps runs deterministic.  Cancellation is lazy: cancelled events stay in
// the heap but are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace omnc::sim {

using Time = double;  // seconds
using EventId = std::uint64_t;

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now), returning a handle that
  /// can be cancelled.
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds.
  EventId schedule_in(Time delay, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown event is
  /// a no-op.
  void cancel(EventId id);

  /// Runs until the queue is empty or stop() is called.
  void run();

  /// Processes every event with time <= t and advances the clock to exactly
  /// t.  Returns false if stop() was called while draining.
  bool run_until(Time t);

  /// Requests the run loop to exit after the current event returns.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t events_processed() const { return processed_; }
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the next live event and runs it; returns false when drained.
  bool step();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::size_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace omnc::sim

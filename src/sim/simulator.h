// Discrete-event simulation core of the Drift-substitute testbed.
//
// A Simulator is a thin client of vtime::EventQueue — the same scheduling
// core that drives the emulation's WarpClock — adding only the run-loop
// policy (run / run_until / stop).  Events scheduled for the same instant
// fire in scheduling order (stable), which keeps runs deterministic.
// Cancellation is lazy: cancelled events stay in the heap but are skipped
// when popped.
#pragma once

#include <cstdint>
#include <functional>

#include "time/event_queue.h"

namespace omnc::sim {

using Time = vtime::Time;        // seconds
using EventId = vtime::EventId;

class Simulator {
 public:
  Time now() const { return queue_.now(); }

  /// Schedules `fn` at absolute time `at` (>= now), returning a handle that
  /// can be cancelled.
  EventId schedule_at(Time at, std::function<void()> fn) {
    return queue_.schedule_at(at, std::move(fn));
  }

  /// Schedules `fn` after `delay` seconds.
  EventId schedule_in(Time delay, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown event is
  /// a no-op.
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue is empty or stop() is called.
  void run();

  /// Processes every event with time <= t and advances the clock to exactly
  /// t.  Returns false if stop() was called while draining.
  bool run_until(Time t);

  /// Requests the run loop to exit after the current event returns.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t events_processed() const { return queue_.processed(); }
  std::size_t pending() const { return queue_.pending(); }

 private:
  vtime::EventQueue queue_;
  bool stopped_ = false;
};

}  // namespace omnc::sim

#include "time/clock.h"

#include <chrono>
#include <thread>

#include "common/assert.h"

namespace omnc::vtime {

const char* clock_mode_name(ClockMode mode) {
  switch (mode) {
    case ClockMode::kReal: return "real";
    case ClockMode::kWarp: return "warp";
    case ClockMode::kDeterministic: return "det";
  }
  return "?";
}

bool parse_clock_mode(const std::string& name, ClockMode* out) {
  if (name == "real") {
    *out = ClockMode::kReal;
  } else if (name == "warp") {
    *out = ClockMode::kWarp;
  } else if (name == "det" || name == "deterministic") {
    *out = ClockMode::kDeterministic;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RealClock

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

RealClock::RealClock(double speedup) : speedup_(speedup) {
  OMNC_ASSERT_MSG(speedup > 0.0, "speedup must be positive");
}

double RealClock::now() const {
  if (!started_) return 0.0;
  return static_cast<double>(steady_ns() - origin_ns_) * 1e-9 * speedup_;
}

void RealClock::start(int participants) {
  (void)participants;
  OMNC_ASSERT_MSG(!started_, "RealClock started twice");
  started_ = true;
  origin_ns_ = steady_ns();
}

void RealClock::sleep_until(double t) {
  const double remaining_virtual = t - now();
  if (remaining_virtual <= 0.0) return;
  const double wall_s = remaining_virtual / speedup_;
  std::this_thread::sleep_for(std::chrono::duration<double>(wall_s));
}

// ---------------------------------------------------------------------------
// WarpClock

double WarpClock::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wakeups_.now();
}

void WarpClock::start(int participants) {
  std::lock_guard<std::mutex> lock(mutex_);
  OMNC_ASSERT_MSG(participants > 0, "WarpClock needs at least one participant");
  OMNC_ASSERT_MSG(active_ == 0, "WarpClock started twice");
  active_ = participants;
}

void WarpClock::sleep_until(double t) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (t <= wakeups_.now()) return;
  // `sleeping_` counts participants whose wake-up is still pending, so it is
  // decremented when the event *fires*, not when the thread resumes — a
  // fast thread re-entering the barrier cannot advance time past peers that
  // were woken but have not run yet.
  bool due = false;
  wakeups_.schedule_at(t, [this, &due] {
    due = true;
    --sleeping_;
  });
  ++sleeping_;
  if (sleeping_ == active_) advance_locked();
  cv_.wait(lock, [&due] { return due; });
}

void WarpClock::leave() {
  std::lock_guard<std::mutex> lock(mutex_);
  OMNC_ASSERT_MSG(active_ > 0, "leave() without a matching start()");
  --active_;
  // The departure may complete the barrier for everyone still asleep.
  if (active_ > 0 && sleeping_ == active_) advance_locked();
}

void WarpClock::advance_locked() {
  // Fire every wake-up at the earliest pending instant, so participants with
  // tied deadlines resume within the same virtual "now".
  Time at = 0.0;
  if (!wakeups_.next_time(&at)) return;  // nobody to wake (all leaving)
  wakeups_.step();                       // advances now() to `at`
  Time next = 0.0;
  while (wakeups_.next_time(&next) && next == at) wakeups_.step();
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// DeterministicClock

void DeterministicClock::start(int participants) {
  OMNC_ASSERT_MSG(participants == 1,
                  "DeterministicClock is single-threaded by design");
}

// ---------------------------------------------------------------------------

std::unique_ptr<Clock> make_clock(ClockMode mode, double speedup) {
  switch (mode) {
    case ClockMode::kReal: return std::make_unique<RealClock>(speedup);
    case ClockMode::kWarp: return std::make_unique<WarpClock>();
    case ClockMode::kDeterministic:
      return std::make_unique<DeterministicClock>();
  }
  return nullptr;
}

}  // namespace omnc::vtime

// The clock seam: one notion of "virtual now" shared by every time consumer
// (DESIGN.md §12).
//
// A Clock maps a run's virtual timeline onto execution.  The emulation
// harness, its transports, the fault injector, and the trace timestamps all
// read the same Clock, so there is exactly one time origin per run and three
// interchangeable ways to advance it:
//
//   * RealClock — virtual time is wall time times `speedup`; sleep_until
//     blocks the calling thread for the corresponding wall interval.  The
//     pre-seam behaviour, and the only mode where UDP socket latency is
//     physically meaningful.
//   * WarpClock — virtual time jumps as fast as the run loops allow.  Every
//     participating thread parks in sleep_until; once all of them are
//     parked, the clock advances to the earliest requested wake-up (ties
//     wake together) — a condition-variable barrier over the shared
//     EventQueue.  Hours of virtual adversity run in CI seconds; thread
//     interleaving *within* one instant still varies, so warp runs are fast
//     but not bit-reproducible.
//   * DeterministicClock — single-threaded cooperative stepping: now()
//     advances only when the (sole) driver calls sleep_until/advance_to.
//     With every RNG seeded, two same-seed runs are bit-identical end to
//     end, which is what makes seed-replay debugging possible.
//
// Threading contract: now() is safe from any thread.  sleep_until/leave may
// only be called by threads counted in start(participants); a WarpClock
// deadlocks if a registered participant neither sleeps nor leaves, exactly
// like a missing thread at any barrier.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "time/event_queue.h"

namespace omnc::vtime {

enum class ClockMode { kReal, kWarp, kDeterministic };

/// "real" | "warp" | "det".
const char* clock_mode_name(ClockMode mode);

/// Parses "real" | "warp" | "det" (also accepts "deterministic").
bool parse_clock_mode(const std::string& name, ClockMode* out);

class Clock {
 public:
  virtual ~Clock() = default;

  virtual ClockMode mode() const = 0;

  /// Virtual seconds since start(); 0.0 before the run opens.
  virtual double now() const = 0;

  /// Opens the run for `participants` run-loop threads.  Call once, before
  /// any participant sleeps.
  virtual void start(int participants) = 0;

  /// Blocks the calling participant until virtual time reaches `t`; returns
  /// immediately when `t` has already passed.
  virtual void sleep_until(double t) = 0;

  /// The calling participant permanently exits the run loop; it must not
  /// sleep afterwards.  The WarpClock shrinks its barrier so the remaining
  /// participants keep advancing.
  virtual void leave() = 0;
};

/// Wall time times speedup, from one steady origin captured at start().
/// This class is the single place in the tree allowed to touch
/// std::chrono::steady_clock or thread sleeps for run timing (grep-enforced
/// by the no_wallclock_outside_realclock test).
class RealClock final : public Clock {
 public:
  explicit RealClock(double speedup = 1.0);

  ClockMode mode() const override { return ClockMode::kReal; }
  double now() const override;
  void start(int participants) override;
  void sleep_until(double t) override;
  void leave() override {}

  double speedup() const { return speedup_; }

 private:
  double speedup_;
  bool started_ = false;
  std::uint64_t origin_ns_ = 0;  // steady epoch of start()
};

/// Barrier-synchronized virtual time: advances to the earliest pending
/// wake-up whenever every active participant is parked in sleep_until.
class WarpClock final : public Clock {
 public:
  ClockMode mode() const override { return ClockMode::kWarp; }
  double now() const override;
  void start(int participants) override;
  void sleep_until(double t) override;
  void leave() override;

 private:
  /// Fires every wake-up at the earliest pending instant once all active
  /// participants are asleep.  Caller holds mutex_.
  void advance_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  EventQueue wakeups_;
  int active_ = 0;
  int sleeping_ = 0;
};

/// Single-threaded cooperative time: sleep_until just moves the hand.  Also
/// handy as a hand-cranked time source in unit tests.
class DeterministicClock final : public Clock {
 public:
  ClockMode mode() const override { return ClockMode::kDeterministic; }
  double now() const override { return now_; }
  void start(int participants) override;
  void sleep_until(double t) override { advance_to(t); }
  void leave() override {}

  /// Moves the hand forward; moving backwards is a no-op.
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

 private:
  double now_ = 0.0;
};

/// `speedup` applies to RealClock only (virtual seconds per wall second).
std::unique_ptr<Clock> make_clock(ClockMode mode, double speedup);

}  // namespace omnc::vtime

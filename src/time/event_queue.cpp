#include "time/event_queue.h"

#include "common/assert.h"

namespace omnc::vtime {

EventId EventQueue::schedule_at(Time at, std::function<void()> fn) {
  OMNC_ASSERT_MSG(at >= now_, "scheduling into the past");
  const EventId id = next_id_++;
  heap_.push(Event{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void EventQueue::cancel(EventId id) {
  if (handlers_.erase(id) > 0) cancelled_.insert(id);
}

bool EventQueue::next_time(Time* at) {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
  if (heap_.empty()) return false;
  *at = heap_.top().at;
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // lazily dropped
    auto it = handlers_.find(ev.id);
    OMNC_ASSERT(it != handlers_.end());
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.at;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void EventQueue::advance_to(Time t) {
  if (t > now_) now_ = t;
}

}  // namespace omnc::vtime

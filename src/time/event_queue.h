// Virtual-time event queue: the shared scheduling core of the testbed.
//
// One EventQueue underlies every virtual-time consumer in the repo — the
// slot simulator (sim::Simulator is a thin client), the WarpClock's
// thread-wakeup ledger, and any future event-driven runtime — so "what fires
// next" is decided by exactly one piece of code.  Events scheduled for the
// same instant fire in scheduling order (stable), which keeps runs
// deterministic.  Cancellation is lazy: cancelled events stay in the heap
// but are skipped when popped.
//
// The queue is not thread-safe; callers that share one across threads (the
// WarpClock) serialize externally.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace omnc::vtime {

using Time = double;  // seconds
using EventId = std::uint64_t;

class EventQueue {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now), returning a handle that
  /// can be cancelled.
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown event
  /// is a no-op.
  void cancel(EventId id);

  /// Earliest pending live event time, pruning cancelled heap tops along the
  /// way.  Returns false when the queue is drained.
  bool next_time(Time* at);

  /// Pops the next live event, advances the clock to its instant, and runs
  /// it.  Returns false when drained.
  bool step();

  /// Advances the clock with no event processing; `t` may not precede a
  /// pending event (callers drain due events first) and moving backwards is
  /// a no-op.
  void advance_to(Time t);

  std::size_t processed() const { return processed_; }
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::size_t processed_ = 0;
};

}  // namespace omnc::vtime

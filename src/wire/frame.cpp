#include "wire/frame.h"

#include <cstring>

#include "common/assert.h"

namespace omnc::wire {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

double get_double(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool valid_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kCodedData) &&
         raw <= static_cast<std::uint8_t>(FrameType::kCodedDataCompact);
}

/// Appends just the body of `frame` (everything after the header) to `out`,
/// so the caller's buffer is the only allocation site on the transmit path.
void append_body(const Frame& frame, std::vector<std::uint8_t>& out) {
  switch (frame.type) {
    case FrameType::kCodedData: {
      const coding::CodedPacket& pkt = frame.packet;
      put_u32(out, pkt.session_id);
      put_u32(out, pkt.generation_id);
      put_u16(out, pkt.generation_blocks);
      put_u16(out, pkt.block_bytes);
      out.insert(out.end(), pkt.coefficients.begin(), pkt.coefficients.end());
      out.insert(out.end(), pkt.payload.begin(), pkt.payload.end());
      break;
    }
    case FrameType::kCodedDataCompact: {
      const bool ok =
          coding::serialize_compact(frame.packet, frame.structure, out);
      OMNC_ASSERT_MSG(ok, "compact frame with a dense/inconsistent structure");
      break;
    }
    case FrameType::kGenerationAck:
      put_u32(out, frame.ack.generation_id);
      put_u16(out, frame.ack.origin_local);
      put_u32(out, frame.ack.ack_seq);
      break;
    case FrameType::kProbeBeacon:
      put_u16(out, frame.beacon.origin_local);
      put_u32(out, frame.beacon.sequence);
      break;
    case FrameType::kProbeReport:
      put_u16(out, frame.report.reporter_local);
      put_u16(out, frame.report.probed_local);
      put_u32(out, frame.report.beacons_heard);
      put_u32(out, frame.report.window);
      break;
    case FrameType::kPriceUpdate: {
      const PriceUpdate& price = frame.price;
      OMNC_ASSERT(price.lambdas.size() <= 0xffff);
      put_u16(out, price.node_local);
      put_u32(out, price.iteration);
      put_double(out, price.beta);
      put_double(out, price.rate_bytes_per_s);
      put_u16(out, static_cast<std::uint16_t>(price.lambdas.size()));
      for (const PriceUpdate::Lambda& entry : price.lambdas) {
        put_u16(out, entry.to_local);
        put_double(out, entry.lambda);
      }
      break;
    }
    case FrameType::kResyncRequest:
      put_u16(out, frame.resync_request.origin_local);
      put_u32(out, frame.resync_request.last_seen_generation);
      break;
    case FrameType::kResyncInfo:
      put_u32(out, frame.resync_info.generation_id);
      put_u32(out, frame.resync_info.price_iteration);
      break;
  }
}

/// Byte count append_body will produce for `frame`.
std::size_t body_size(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kCodedData:
      return frame.packet.wire_size();
    case FrameType::kCodedDataCompact:
      return coding::compact_wire_size(frame.structure,
                                       frame.packet.block_bytes);
    case FrameType::kGenerationAck:
      return GenerationAck::kBytes;
    case FrameType::kProbeBeacon:
      return ProbeBeacon::kBytes;
    case FrameType::kProbeReport:
      return ProbeReport::kBytes;
    case FrameType::kPriceUpdate:
      return PriceUpdate::kFixedBytes +
             PriceUpdate::kLambdaBytes * frame.price.lambdas.size();
    case FrameType::kResyncRequest:
      return ResyncRequest::kBytes;
    case FrameType::kResyncInfo:
      return ResyncInfo::kBytes;
  }
  return 0;
}

/// Parses the body of one frame type; `body` is exactly the payload (the
/// header's length field already matched the buffer).  Returns false when
/// the payload size disagrees with the type's layout.
bool parse_body(FrameType type, std::uint32_t session_id,
                std::span<const std::uint8_t> body, Frame* out) {
  switch (type) {
    case FrameType::kCodedData: {
      if (!coding::CodedPacket::parse(body, &out->packet)) return false;
      // The embedded packet header repeats the session id; a frame whose
      // two copies disagree was corrupted or forged.
      return out->packet.session_id == session_id;
    }
    case FrameType::kCodedDataCompact: {
      coding::CodedPacketView view;
      if (!coding::parse_compact(body, &view, &out->structure)) return false;
      if (view.session_id != session_id) return false;
      // The owning frame always exposes dense coefficients; the kept
      // structure says which of them serialize() re-emits, so the round
      // trip reproduces the compact bytes exactly.
      out->packet.session_id = view.session_id;
      out->packet.generation_id = view.generation_id;
      out->packet.generation_blocks = view.generation_blocks;
      out->packet.block_bytes = view.block_bytes;
      out->packet.coefficients.assign(view.generation_blocks, 0);
      coding::expand_coefficients(out->structure, view.coefficients,
                                  view.generation_blocks,
                                  out->packet.coefficients.data());
      out->packet.payload.assign(view.payload.begin(), view.payload.end());
      return true;
    }
    case FrameType::kGenerationAck:
      if (body.size() != GenerationAck::kBytes) return false;
      out->ack.generation_id = get_u32(body.data());
      out->ack.origin_local = get_u16(body.data() + 4);
      out->ack.ack_seq = get_u32(body.data() + 6);
      return true;
    case FrameType::kProbeBeacon:
      if (body.size() != ProbeBeacon::kBytes) return false;
      out->beacon.origin_local = get_u16(body.data());
      out->beacon.sequence = get_u32(body.data() + 2);
      return true;
    case FrameType::kProbeReport:
      if (body.size() != ProbeReport::kBytes) return false;
      out->report.reporter_local = get_u16(body.data());
      out->report.probed_local = get_u16(body.data() + 2);
      out->report.beacons_heard = get_u32(body.data() + 4);
      out->report.window = get_u32(body.data() + 8);
      return true;
    case FrameType::kPriceUpdate: {
      if (body.size() < PriceUpdate::kFixedBytes) return false;
      PriceUpdate price;
      price.node_local = get_u16(body.data());
      price.iteration = get_u32(body.data() + 2);
      price.beta = get_double(body.data() + 6);
      price.rate_bytes_per_s = get_double(body.data() + 14);
      const std::size_t count = get_u16(body.data() + 22);
      // All size arithmetic in std::size_t: count <= 0xffff and the
      // per-entry size is constant, so the product cannot overflow; the
      // exact-size check then pins the claimed count to the actual payload.
      const std::size_t expected =
          PriceUpdate::kFixedBytes + PriceUpdate::kLambdaBytes * count;
      if (body.size() != expected) return false;
      price.lambdas.resize(count);
      const std::uint8_t* p = body.data() + PriceUpdate::kFixedBytes;
      for (std::size_t i = 0; i < count; ++i) {
        price.lambdas[i].to_local = get_u16(p);
        price.lambdas[i].lambda = get_double(p + 2);
        p += PriceUpdate::kLambdaBytes;
      }
      out->price = std::move(price);
      return true;
    }
    case FrameType::kResyncRequest:
      if (body.size() != ResyncRequest::kBytes) return false;
      out->resync_request.origin_local = get_u16(body.data());
      out->resync_request.last_seen_generation = get_u32(body.data() + 2);
      return true;
    case FrameType::kResyncInfo:
      if (body.size() != ResyncInfo::kBytes) return false;
      out->resync_info.generation_id = get_u32(body.data());
      out->resync_info.price_iteration = get_u32(body.data() + 4);
      return true;
  }
  return false;  // unknown type (already rejected by the header check)
}

/// Everything the fixed header carries, plus the byte range the checksum
/// field covers (trace tag + payload on v2, payload only on v1).
struct Header {
  FrameType type = FrameType::kCodedData;
  std::uint32_t session_id = 0;
  std::uint16_t trace_origin = 0;
  std::uint32_t trace_seq = 0;
  std::uint32_t checksum = 0;
  std::span<const std::uint8_t> payload;
  std::span<const std::uint8_t> checksummed;
};

/// Validates the fixed header of either wire version; on success fills
/// `out`.  Does not verify the checksum (peeks skip it; Frame::parse
/// checks).
bool parse_header(std::span<const std::uint8_t> bytes, Header* out) {
  if (bytes.size() < kHeaderBytesV1) return false;
  if (get_u32(bytes.data()) != kMagic) return false;
  const std::uint8_t version = bytes[4];
  if (version != kWireVersion && version != kWireVersionV1) return false;
  const std::size_t header_bytes =
      version == kWireVersionV1 ? kHeaderBytesV1 : kHeaderBytes;
  if (!valid_type(bytes[5])) return false;
  const std::size_t payload_bytes = get_u32(bytes.data() + 10);
  // Bound the length field before any arithmetic with it: a hostile header
  // may claim up to 4 GiB.
  if (payload_bytes > kMaxFrameBytes) return false;
  if (bytes.size() != header_bytes + payload_bytes) return false;
  out->type = static_cast<FrameType>(bytes[5]);
  out->session_id = get_u32(bytes.data() + 6);
  out->checksum = get_u32(bytes.data() + 14);
  if (version == kWireVersion) {
    out->trace_origin = get_u16(bytes.data() + kTraceTagOffset);
    out->trace_seq = get_u32(bytes.data() + kTraceTagOffset + 2);
  } else {
    out->trace_origin = 0;
    out->trace_seq = 0;
  }
  out->payload = bytes.subspan(header_bytes);
  // v1 checksums cover the payload alone; v2 starts at the trace tag so a
  // flipped tag bit is caught like any payload corruption.
  out->checksummed = bytes.subspan(
      version == kWireVersionV1 ? kHeaderBytesV1 : kTraceTagOffset);
  return true;
}

}  // namespace

std::uint32_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

std::vector<std::uint8_t> Frame::serialize() const {
  std::vector<std::uint8_t> out;
  serialize_into(&out);
  return out;
}

void Frame::serialize_into(std::vector<std::uint8_t>* out) const {
  const std::size_t body_bytes = body_size(*this);
  OMNC_ASSERT(body_bytes <= kMaxFrameBytes);
  out->clear();
  out->reserve(kHeaderBytes + body_bytes);
  put_u32(*out, kMagic);
  out->push_back(kWireVersion);
  out->push_back(static_cast<std::uint8_t>(type));
  put_u32(*out, session_id);
  put_u32(*out, static_cast<std::uint32_t>(body_bytes));
  put_u32(*out, 0);  // checksum; patched once the covered bytes are in place
  put_u16(*out, trace_origin);
  put_u32(*out, trace_seq);
  append_body(*this, *out);
  OMNC_ASSERT(out->size() == kHeaderBytes + body_bytes);
  const std::uint32_t sum =
      fnv1a(std::span<const std::uint8_t>(*out).subspan(kTraceTagOffset));
  (*out)[14] = static_cast<std::uint8_t>(sum >> 24);
  (*out)[15] = static_cast<std::uint8_t>(sum >> 16);
  (*out)[16] = static_cast<std::uint8_t>(sum >> 8);
  (*out)[17] = static_cast<std::uint8_t>(sum);
}

bool Frame::parse(std::span<const std::uint8_t> bytes, Frame* out) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  if (header.checksum != fnv1a(header.checksummed)) return false;
  Frame frame;
  frame.type = header.type;
  frame.session_id = header.session_id;
  frame.trace_origin = header.trace_origin;
  frame.trace_seq = header.trace_seq;
  if (!parse_body(header.type, header.session_id, header.payload, &frame)) {
    return false;
  }
  *out = std::move(frame);
  return true;
}

bool DataFrameView::parse(std::span<const std::uint8_t> bytes,
                          DataFrameView* out) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  if (header.type != FrameType::kCodedData &&
      header.type != FrameType::kCodedDataCompact) {
    return false;
  }
  if (header.checksum != fnv1a(header.checksummed)) return false;
  DataFrameView view;
  view.session_id = header.session_id;
  view.trace_origin = header.trace_origin;
  view.trace_seq = header.trace_seq;
  if (header.type == FrameType::kCodedData) {
    if (!coding::CodedPacketView::parse(header.payload, &view.packet)) {
      return false;
    }
    view.structure = coding::CodedStructure::make_dense();
  } else {
    if (!coding::parse_compact(header.payload, &view.packet,
                               &view.structure)) {
      return false;
    }
  }
  // The embedded packet header repeats the session id; a frame whose two
  // copies disagree was corrupted or forged (same check as Frame::parse).
  if (view.packet.session_id != header.session_id) return false;
  *out = view;
  return true;
}

Frame make_coded_data(coding::CodedPacket packet) {
  Frame frame;
  frame.type = FrameType::kCodedData;
  frame.session_id = packet.session_id;
  frame.packet = std::move(packet);
  return frame;
}

Frame make_coded_data_compact(coding::CodedPacket packet,
                              const coding::CodedStructure& structure) {
  OMNC_ASSERT(!structure.dense());
  Frame frame;
  frame.type = FrameType::kCodedDataCompact;
  frame.session_id = packet.session_id;
  frame.packet = std::move(packet);
  frame.structure = structure;
  return frame;
}

Frame make_ack(std::uint32_t session_id, const GenerationAck& ack) {
  Frame frame;
  frame.type = FrameType::kGenerationAck;
  frame.session_id = session_id;
  frame.ack = ack;
  return frame;
}

Frame make_beacon(std::uint32_t session_id, const ProbeBeacon& beacon) {
  Frame frame;
  frame.type = FrameType::kProbeBeacon;
  frame.session_id = session_id;
  frame.beacon = beacon;
  return frame;
}

Frame make_report(std::uint32_t session_id, const ProbeReport& report) {
  Frame frame;
  frame.type = FrameType::kProbeReport;
  frame.session_id = session_id;
  frame.report = report;
  return frame;
}

Frame make_price(std::uint32_t session_id, PriceUpdate price) {
  Frame frame;
  frame.type = FrameType::kPriceUpdate;
  frame.session_id = session_id;
  frame.price = std::move(price);
  return frame;
}

Frame make_resync_request(std::uint32_t session_id,
                          const ResyncRequest& request) {
  Frame frame;
  frame.type = FrameType::kResyncRequest;
  frame.session_id = session_id;
  frame.resync_request = request;
  return frame;
}

Frame make_resync_info(std::uint32_t session_id, const ResyncInfo& info) {
  Frame frame;
  frame.type = FrameType::kResyncInfo;
  frame.session_id = session_id;
  frame.resync_info = info;
  return frame;
}

bool peek_type(std::span<const std::uint8_t> bytes, FrameType* out) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  *out = header.type;
  return true;
}

bool peek_session(std::span<const std::uint8_t> bytes, std::uint32_t* out) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  *out = header.session_id;
  return true;
}

bool peek_trace(std::span<const std::uint8_t> bytes, std::uint16_t* origin,
                std::uint32_t* seq) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  *origin = header.trace_origin;
  *seq = header.trace_seq;
  return true;
}

bool peek_generation(std::span<const std::uint8_t> bytes, std::uint32_t* out) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  if (header.type != FrameType::kCodedData &&
      header.type != FrameType::kCodedDataCompact) {
    return false;
  }
  // Both data bodies open with the CodedPacket wire header: session id
  // (u32) then generation id (u32).
  if (header.payload.size() < 8) return false;
  *out = get_u32(header.payload.data() + 4);
  return true;
}

bool peek_data_session(std::span<const std::uint8_t> bytes,
                       std::uint32_t* out) {
  Header header;
  if (!parse_header(bytes, &header)) return false;
  if (header.type != FrameType::kCodedData &&
      header.type != FrameType::kCodedDataCompact) {
    return false;
  }
  // The CodedPacket wire header opens with its own session id (u32).
  if (header.payload.size() < 8) return false;
  *out = get_u32(header.payload.data());
  return true;
}

}  // namespace omnc::wire

// Versioned wire-frame layer: everything the protocols exchange, as bytes.
//
// Drift (the paper's emulation testbed) runs *real protocol code* over an
// emulated PHY; independent nodes can only interoperate if every message has
// a precise on-the-wire format — the same reason MORE (Chachulski et al.,
// SIGCOMM'07) and the practical-network-coding line (Chou & Wu) define their
// coded-packet headers down to the byte.  This header defines OMNC's frame
// vocabulary:
//
//   * coded data       — a coding::CodedPacket (coefficients + payload);
//   * generation ACK   — the destination's decode confirmation, flooded back;
//   * link-probe beacon/report — the prober's broadcast beacons and the
//     resulting reception-ratio estimates;
//   * price update     — the λ/β duals and recovered broadcast rate of the
//     sUnicast decomposition (distributed rate control state).
//
// Every frame starts with a fixed 24-byte header (big-endian, like
// CodedPacket):
//
//   offset size  field
//   0      4     magic      0x4F4D4E43 ("OMNC")
//   4      1     version    kWireVersion
//   5      1     frame type (FrameType)
//   6      4     session id
//   10     4     payload length (bytes following the header)
//   14     4     FNV-1a-32 checksum of bytes 18..end (trace tag + payload)
//   18     2     trace origin — session-local index of the node that created
//                the frame's span (obs/span.h)
//   20     4     trace sequence — per-origin counter; 0 marks an untraced
//                frame, so (origin, seq) = (0, 0) is the null span id
//
// Version 1 frames (the 18-byte header without the trace tag, checksum over
// the payload only) still parse — back-compat for recorded captures — and
// surface as untraced.  serialize() always emits version 2.
//
// Parsers are hardened: truncated buffers, inconsistent length fields,
// corrupted checksums, unknown types/versions, and garbage bytes all return
// `false` without reading out of bounds (mirroring CodedPacket::parse).
// serialize(parse(serialize(f))) is byte-identical for every valid frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_packet.h"

namespace omnc::wire {

inline constexpr std::uint32_t kMagic = 0x4F4D4E43;  // "OMNC"
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::uint8_t kWireVersionV1 = 1;

/// Fixed bytes before the payload of every frame.
inline constexpr std::size_t kHeaderBytes = 24;
/// The version-1 header (no trace tag); parsers still accept it.
inline constexpr std::size_t kHeaderBytesV1 = 18;
/// Where the trace tag starts — also the first checksummed byte of a v2
/// frame (the checksum covers the tag and the payload, so a flipped tag bit
/// is caught like any payload corruption).
inline constexpr std::size_t kTraceTagOffset = 18;

/// Upper bound a well-behaved sender may produce (and the emulation
/// transports accept); parsers reject any length field beyond it before
/// touching the payload.
inline constexpr std::size_t kMaxFrameBytes = 256 * 1024;

enum class FrameType : std::uint8_t {
  kCodedData = 1,      // payload: CodedPacket wire bytes
  kGenerationAck = 2,  // payload: GenerationAck
  kProbeBeacon = 3,    // payload: ProbeBeacon
  kProbeReport = 4,    // payload: ProbeReport
  kPriceUpdate = 5,    // payload: PriceUpdate
  kResyncRequest = 6,  // payload: ResyncRequest
  kResyncInfo = 7,     // payload: ResyncInfo
  // Structured coded data with a compressed coefficient vector: the
  // CodedPacket header, a CodedStructure tag (uncoded block index or band
  // offset/width + the window's coefficients), and the payload — the dense
  // n-byte coefficient vector is implied, not carried.  Emitted by the
  // systematic/banded code families (DESIGN.md §15); dense packets keep
  // kCodedData, whose bytes are unchanged.
  kCodedDataCompact = 8,
};

/// FNV-1a 32-bit over a byte range (the header checksum).
std::uint32_t fnv1a(std::span<const std::uint8_t> bytes);

/// Destination -> source decode confirmation for one generation, flooded
/// back over the session DAG.  `ack_seq` counts retransmissions of the same
/// ACK (the destination repeats it until the source moves on), which lets
/// receivers deduplicate without extra state.
struct GenerationAck {
  std::uint32_t generation_id = 0;
  std::uint16_t origin_local = 0;  // session-local index of the destination
  std::uint32_t ack_seq = 0;

  static constexpr std::size_t kBytes = 10;
  bool operator==(const GenerationAck&) const = default;
};

/// One link-probe broadcast: "I am node `origin_local`, this is beacon
/// number `sequence`".  Receivers count beacons per origin.
struct ProbeBeacon {
  std::uint16_t origin_local = 0;
  std::uint32_t sequence = 0;

  static constexpr std::size_t kBytes = 6;
  bool operator==(const ProbeBeacon&) const = default;
};

/// A receiver's reception-ratio estimate for one probed link:
/// p̂ = heard / window.
struct ProbeReport {
  std::uint16_t reporter_local = 0;  // who measured
  std::uint16_t probed_local = 0;    // whose beacons were counted
  std::uint32_t beacons_heard = 0;
  std::uint32_t window = 0;  // beacons the origin sent in the window

  static constexpr std::size_t kBytes = 12;
  bool operator==(const ProbeReport&) const = default;

  double estimate() const {
    return window > 0
               ? static_cast<double>(beacons_heard) / static_cast<double>(window)
               : 0.0;
  }
};

/// Rate-control state for one node of the sUnicast decomposition: the
/// congestion price β_i of the broadcast-MAC constraint, the recovered
/// broadcast rate b̄_i, and the link prices λ_ij of the node's outgoing DAG
/// edges.  Doubles travel as their IEEE-754 bit patterns (big-endian), so a
/// round trip is bit-exact.
struct PriceUpdate {
  struct Lambda {
    std::uint16_t to_local = 0;
    double lambda = 0.0;

    bool operator==(const Lambda&) const = default;
  };

  std::uint16_t node_local = 0;
  std::uint32_t iteration = 0;  // rate-control iteration the state is from
  double beta = 0.0;
  double rate_bytes_per_s = 0.0;  // recovered b̄_i
  std::vector<Lambda> lambdas;    // per outgoing edge

  static constexpr std::size_t kFixedBytes = 24;  // node+iter+beta+rate+count
  static constexpr std::size_t kLambdaBytes = 10;
  bool operator==(const PriceUpdate&) const = default;
};

/// "I lost track of the session — where is it now?"  Broadcast by a node
/// that has heard nothing for a while (post-blackout restart, healed
/// partition); relays re-flood it toward the source with per-origin rate
/// limiting.  `last_seen_generation` is the newest generation the requester
/// knows about, so the source can tell a fresh restart from mild lag.
struct ResyncRequest {
  std::uint16_t origin_local = 0;         // who is asking
  std::uint32_t last_seen_generation = 0;  // newest generation id it saw

  static constexpr std::size_t kBytes = 6;
  bool operator==(const ResyncRequest&) const = default;
};

/// The source's answer (also flooded): the live generation id and the
/// rate-control iteration currently in force, enough for a restarted node to
/// fast-forward its buffers and recognise stale prices.  The source follows
/// it with a full price reflood.
struct ResyncInfo {
  std::uint32_t generation_id = 0;    // the source's live generation
  std::uint32_t price_iteration = 0;  // newest flooded rate-control iteration

  static constexpr std::size_t kBytes = 8;
  bool operator==(const ResyncInfo&) const = default;
};

/// A decoded frame: the header fields that matter to receivers plus the
/// body of the one type the frame carries (the others stay default).
struct Frame {
  FrameType type = FrameType::kCodedData;
  std::uint32_t session_id = 0;

  /// Packet-lifecycle span id (obs/span.h): the session-local index of the
  /// node that created this frame and a per-origin sequence number.  seq 0
  /// means "untraced" — control frames and v1 captures parse as (0, 0).
  std::uint16_t trace_origin = 0;
  std::uint32_t trace_seq = 0;

  coding::CodedPacket packet;  // kCodedData / kCodedDataCompact (dense form)
  /// kCodedDataCompact: how `packet` compresses on the wire.  The in-memory
  /// packet always carries dense coefficients (parse expands them); the
  /// structure says which bytes serialize() re-emits, so a round trip is
  /// byte-identical.  Stays kDense for kCodedData frames.
  coding::CodedStructure structure;
  GenerationAck ack;           // kGenerationAck
  ProbeBeacon beacon;          // kProbeBeacon
  ProbeReport report;          // kProbeReport
  PriceUpdate price;           // kPriceUpdate
  ResyncRequest resync_request;  // kResyncRequest
  ResyncInfo resync_info;        // kResyncInfo

  std::vector<std::uint8_t> serialize() const;

  /// Serializes into a caller-owned buffer (cleared first), reusing its
  /// capacity — the transmit path emits one frame per call into the same
  /// vector without allocating in the steady state.  Byte-identical to
  /// serialize().
  void serialize_into(std::vector<std::uint8_t>* out) const;

  /// Parses one frame.  Returns false on anything malformed: short buffer,
  /// bad magic/version/unknown type, length field disagreeing with the
  /// buffer, checksum mismatch, or a body that fails its own validation
  /// (e.g. a CodedPacket whose n/m disagree with the payload size, or whose
  /// embedded session id disagrees with the frame header's).
  static bool parse(std::span<const std::uint8_t> bytes, Frame* out);
};

/// Zero-copy parse of a kCodedData frame: the full header is validated —
/// magic, version, type, length, checksum, and the embedded-vs-header
/// session id cross-check, exactly as Frame::parse does — but the coded
/// packet stays a CodedPacketView whose spans alias `bytes`.  This is the
/// receive hot path: nothing is copied out of the datagram buffer; the
/// caller hands the view to the coding layer, which copies the payload into
/// its arena only if the packet is innovative.  Returns false for any
/// malformed frame and for well-formed frames of any other type (callers
/// peek the type first or fall back to Frame::parse).  The view is only
/// valid while `bytes` is alive and unmodified.
struct DataFrameView {
  std::uint32_t session_id = 0;
  std::uint16_t trace_origin = 0;
  std::uint32_t trace_seq = 0;
  coding::CodedPacketView packet;
  /// kCodedDataCompact frames parse with their structure and a coefficient
  /// span holding only the explicit window bytes (empty for an uncoded
  /// original); kCodedData frames yield kDense and the full n-byte span.
  coding::CodedStructure structure;

  static bool parse(std::span<const std::uint8_t> bytes, DataFrameView* out);
};

// Convenience constructors -------------------------------------------------

/// Wraps a coded packet; the frame's session id is the packet's.
Frame make_coded_data(coding::CodedPacket packet);
/// Wraps a structured coded packet as a compact frame.  `packet` carries
/// dense coefficients; `structure` must be non-dense and consistent with it.
Frame make_coded_data_compact(coding::CodedPacket packet,
                              const coding::CodedStructure& structure);
Frame make_ack(std::uint32_t session_id, const GenerationAck& ack);
Frame make_beacon(std::uint32_t session_id, const ProbeBeacon& beacon);
Frame make_report(std::uint32_t session_id, const ProbeReport& report);
Frame make_price(std::uint32_t session_id, PriceUpdate price);
Frame make_resync_request(std::uint32_t session_id,
                          const ResyncRequest& request);
Frame make_resync_info(std::uint32_t session_id, const ResyncInfo& info);

/// Cheap peeks used by forwarding paths that do not need a full parse; they
/// validate only the header structure (magic/version/length/type range).
bool peek_type(std::span<const std::uint8_t> bytes, FrameType* out);
bool peek_session(std::span<const std::uint8_t> bytes, std::uint32_t* out);

/// Reads the trace tag of a frame that may never be delivered (drop
/// observers).  Version-1 frames and control frames yield (0, 0) = untraced.
bool peek_trace(std::span<const std::uint8_t> bytes, std::uint16_t* origin,
                std::uint32_t* seq);

/// Reads the generation id of a kCodedData / kCodedDataCompact frame without
/// a full parse (both body layouts open with the CodedPacket header, which
/// embeds it right after the session id).  False for non-data frames or a
/// payload too short to carry a packet header.
bool peek_generation(std::span<const std::uint8_t> bytes, std::uint32_t* out);

/// Reads the *embedded* session id of a kCodedData / kCodedDataCompact frame
/// — the CodedPacket's own copy at the start of the body, not the frame
/// header's.  Demultiplexers cross-check the two before routing a frame to a
/// session's runtime: a disagreement means corruption or forgery, and
/// Frame::parse / DataFrameView::parse would reject the frame anyway, so it
/// must never be attributed to either session.  False for non-data frames or
/// a payload too short to carry a packet header.
bool peek_data_session(std::span<const std::uint8_t> bytes,
                       std::uint32_t* out);

}  // namespace omnc::wire

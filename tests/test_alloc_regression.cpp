// Allocation-count regression: the steady-state receive paths — wire bytes
// -> DataFrameView -> RREF offer -> recover_into at the destination, and
// view offer -> recode_into -> serialize_into at a relay — must not touch
// the heap at all once first-generation warm-up has sized every arena and
// scratch vector.  Global operator new/delete are replaced with counting
// versions; each test drives one full generation inside a counting window
// and pins the delta to zero, so any future per-packet allocation (a stray
// copy, a vector that re-grows, a debug string) fails loudly instead of
// silently eroding the zero-copy pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "coding/coded_packet.h"
#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/generation.h"
#include "coding/recoder.h"
#include "common/rng.h"
#include "wire/frame.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded ? rounded : alignment)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace omnc {
namespace {

/// Serialized coded-data frames for one full generation (n + 4 packets —
/// enough redundancy that the decoder always completes).
std::vector<std::vector<std::uint8_t>> generation_frames(
    const coding::CodingParams& params, std::uint32_t generation_id) {
  const coding::Generation gen =
      coding::Generation::synthetic(generation_id, params, 7);
  coding::SourceEncoder encoder(gen, 1);
  Rng rng(100 + generation_id);
  std::vector<std::vector<std::uint8_t>> wires;
  for (int i = 0; i < params.generation_blocks + 4; ++i) {
    wire::Frame frame = wire::make_coded_data(encoder.next_packet(rng));
    frame.trace_origin = 1;
    frame.trace_seq = static_cast<std::uint32_t>(i + 1);
    wires.push_back(frame.serialize());
  }
  return wires;
}

TEST(AllocRegression, SteadyStateDecodePathIsAllocationFree) {
  const coding::CodingParams params{8, 64};
  const auto warmup = generation_frames(params, 0);
  const auto steady = generation_frames(params, 1);

  coding::ProgressiveDecoder decoder(params, 0);
  std::vector<std::uint8_t> recovered(params.generation_bytes());
  bool parsed_ok = true;
  bool completed = false;

  const auto drive = [&](const std::vector<std::vector<std::uint8_t>>& wires) {
    completed = false;
    for (const auto& bytes : wires) {
      wire::DataFrameView view;
      if (!wire::DataFrameView::parse(bytes, &view)) {
        parsed_ok = false;
        return;
      }
      decoder.offer(view.packet);
      if (decoder.complete()) {
        completed = true;
        break;
      }
    }
    if (completed) decoder.recover_into(std::span<std::uint8_t>(recovered));
  };

  // Warm-up generation: arenas, pivot maps, and scratch vectors size here.
  drive(warmup);
  ASSERT_TRUE(parsed_ok);
  ASSERT_TRUE(completed);
  decoder.reset(1);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  drive(steady);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_TRUE(parsed_ok);
  EXPECT_TRUE(completed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state parse -> offer -> recover_into must not allocate";
  // The recovered bytes are the real generation, not stale warm-up data.
  const coding::Generation expected =
      coding::Generation::synthetic(1, params, 7);
  const std::span<const std::uint8_t> want = expected.bytes();
  ASSERT_EQ(recovered.size(), want.size());
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(), want.begin()));
}

TEST(AllocRegression, SteadyStateRelayPathIsAllocationFree) {
  const coding::CodingParams params{8, 64};
  const auto warmup = generation_frames(params, 0);
  const auto steady = generation_frames(params, 1);

  coding::Recoder recoder(params, 1, 0);
  wire::Frame tx;
  tx.type = wire::FrameType::kCodedData;
  std::vector<std::uint8_t> tx_bytes;
  Rng recode_rng(9);
  bool parsed_ok = true;

  const auto drive = [&](const std::vector<std::vector<std::uint8_t>>& wires) {
    for (const auto& bytes : wires) {
      wire::DataFrameView view;
      if (!wire::DataFrameView::parse(bytes, &view)) {
        parsed_ok = false;
        return;
      }
      recoder.offer(view.packet);
      if (recoder.can_send()) {
        // The relay transmit path: recode from the basis arenas into the
        // reused packet, serialize into the reused buffer.
        recoder.recode_into(recode_rng, &tx.packet);
        tx.session_id = tx.packet.session_id;
        tx.trace_origin = 2;
        tx.trace_seq = 1;
        tx.serialize_into(&tx_bytes);
      }
    }
  };

  drive(warmup);
  ASSERT_TRUE(parsed_ok);
  ASSERT_TRUE(recoder.is_full());
  recoder.reset(1);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  drive(steady);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_TRUE(parsed_ok);
  EXPECT_TRUE(recoder.is_full());
  EXPECT_EQ(after - before, 0u)
      << "steady-state offer -> recode_into -> serialize_into must not "
         "allocate";
}

}  // namespace
}  // namespace omnc

// The vtime layer: EventQueue ordering/cancellation, clock-mode parsing,
// DeterministicClock stepping, RealClock wall anchoring, and the WarpClock
// barrier (virtual time far outrunning wall time, tied deadlines waking
// together, leave() unblocking the survivors).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "time/clock.h"
#include "time/event_queue.h"

namespace omnc::vtime {
namespace {

TEST(EventQueue, FiresInTimeOrderWithStableTies) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(1.0, [&] { order.push_back(11); });  // same instant, later
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.processed(), 3u);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue queue;
  int fired = 0;
  const EventId id = queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(2.0, [&] { ++fired; });
  queue.cancel(id);
  queue.cancel(999);  // unknown ids are a no-op
  EXPECT_EQ(queue.pending(), 1u);
  double at = 0.0;
  ASSERT_TRUE(queue.next_time(&at));
  EXPECT_DOUBLE_EQ(at, 2.0);  // the cancelled top was pruned
  while (queue.step()) {
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, AdvanceToNeverMovesBackwards) {
  EventQueue queue;
  queue.advance_to(5.0);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
  queue.advance_to(3.0);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
}

TEST(ClockMode, ParseAndNameRoundTrip) {
  ClockMode mode = ClockMode::kReal;
  EXPECT_TRUE(parse_clock_mode("warp", &mode));
  EXPECT_EQ(mode, ClockMode::kWarp);
  EXPECT_TRUE(parse_clock_mode("det", &mode));
  EXPECT_EQ(mode, ClockMode::kDeterministic);
  EXPECT_TRUE(parse_clock_mode("deterministic", &mode));
  EXPECT_EQ(mode, ClockMode::kDeterministic);
  EXPECT_TRUE(parse_clock_mode("real", &mode));
  EXPECT_EQ(mode, ClockMode::kReal);
  EXPECT_FALSE(parse_clock_mode("wall", &mode));
  EXPECT_STREQ(clock_mode_name(ClockMode::kWarp), "warp");
  EXPECT_STREQ(clock_mode_name(ClockMode::kDeterministic), "det");
  EXPECT_STREQ(clock_mode_name(ClockMode::kReal), "real");
}

TEST(DeterministicClock, SleepUntilJustMovesTheHand) {
  DeterministicClock clock;
  clock.start(1);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.sleep_until(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.sleep_until(1.0);  // backwards is a no-op
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(RealClock, ScalesWallTimeBySpeedup) {
  RealClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // unstarted
  clock.start(1);
  // Sleeping to 0.5 virtual seconds at 100x costs ~5ms of wall time.
  const auto wall_before = std::chrono::steady_clock::now();
  clock.sleep_until(0.5);
  const double wall_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_before)
          .count();
  EXPECT_GE(clock.now(), 0.5);
  EXPECT_LT(wall_elapsed, 0.5);  // far less wall than virtual
  clock.sleep_until(0.0);        // already passed: returns immediately
}

TEST(WarpClock, VirtualTimeOutrunsWallTime) {
  // Four participants tick through 100 virtual seconds; wall time is
  // bounded by loop overhead, not by the virtual duration.
  WarpClock clock;
  constexpr int kThreads = 4;
  constexpr double kTick = 0.01;
  constexpr int kIterations = 10000;  // 100 virtual seconds
  clock.start(kThreads);
  std::vector<int> steps(kThreads, 0);
  const auto wall_before = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      double next = kTick;
      for (int k = 0; k < kIterations; ++k) {
        clock.sleep_until(next);
        next += kTick;
        ++steps[static_cast<std::size_t>(i)];
      }
      clock.leave();
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_before)
          .count();
  // Every participant made every tick: nobody was skipped past.
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(steps[i], kIterations);
  EXPECT_GE(clock.now(), kTick * kIterations - 1e-9);
  EXPECT_LT(wall_elapsed, kTick * kIterations / 2.0)
      << "warp ran slower than half real time";
}

TEST(WarpClock, TiedDeadlinesWakeAtTheSameInstant) {
  WarpClock clock;
  constexpr int kThreads = 3;
  clock.start(kThreads);
  std::vector<double> wake_times(kThreads, -1.0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      clock.sleep_until(1.0);  // everyone asks for the same instant
      wake_times[static_cast<std::size_t>(i)] = clock.now();
      clock.leave();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const double t : wake_times) EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(WarpClock, LeaveUnblocksRemainingSleepers) {
  // One participant departs without ever sleeping; the other must still
  // advance (the barrier shrinks instead of deadlocking).
  WarpClock clock;
  clock.start(2);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_until(2.0);
    woke.store(true);
    clock.leave();
  });
  // Give the sleeper a moment to park, then depart.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  clock.leave();
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(MakeClock, ProducesTheRequestedMode) {
  EXPECT_EQ(make_clock(ClockMode::kReal, 2.0)->mode(), ClockMode::kReal);
  EXPECT_EQ(make_clock(ClockMode::kWarp, 1.0)->mode(), ClockMode::kWarp);
  EXPECT_EQ(make_clock(ClockMode::kDeterministic, 1.0)->mode(),
            ClockMode::kDeterministic);
}

}  // namespace
}  // namespace omnc::vtime

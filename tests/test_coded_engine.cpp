// Behavioural tests of the shared coded-protocol engine (generation
// lifecycle, ACKs, stale-frame handling) that the per-protocol tests don't
// pin down.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "protocols/omnc.h"
#include "protocols/more.h"
#include "routing/node_selection.h"

namespace omnc::protocols {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

ProtocolConfig engine_config(std::uint64_t seed) {
  ProtocolConfig config;
  config.coding.generation_blocks = 8;
  config.coding.block_bytes = 64;
  config.mac.capacity_bytes_per_s = 2e4;
  config.mac.slot_bytes = 12 + 8 + 64;
  config.mac.fading.enabled = false;
  config.cbr_bytes_per_s = 1e4;
  config.max_sim_seconds = 60.0;
  config.seed = seed;
  return config;
}

TEST(CodedEngine, PerGenerationThroughputExceedsWallClockThroughput) {
  // Wall-clock throughput includes CBR wait and ACK gaps; per-generation
  // throughput excludes them, so it is at least as large.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const SessionResult r =
      OmncProtocol(topo, graph, engine_config(1), OmncConfig{}).run();
  ASSERT_GT(r.generations_completed, 2);
  EXPECT_GE(r.throughput_per_generation, r.throughput_bytes_per_s * 0.99);
}

TEST(CodedEngine, LongerSessionsCompleteMoreGenerations) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig short_config = engine_config(2);
  short_config.max_sim_seconds = 30.0;
  ProtocolConfig long_config = engine_config(2);
  long_config.max_sim_seconds = 120.0;
  const SessionResult short_run =
      OmncProtocol(topo, graph, short_config, OmncConfig{}).run();
  const SessionResult long_run =
      OmncProtocol(topo, graph, long_config, OmncConfig{}).run();
  EXPECT_GT(long_run.generations_completed,
            short_run.generations_completed * 2);
}

TEST(CodedEngine, StaleFlushAblationDoesNotBreakDelivery) {
  // Flushing stale frames at the ACK (the idealized variant) must still
  // deliver, with queue behaviour no worse than draining.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig flush_config = engine_config(3);
  flush_config.flush_stale_frames = true;
  const SessionResult drained =
      MoreProtocol(topo, graph, engine_config(3), MoreConfig{}).run();
  const SessionResult flushed =
      MoreProtocol(topo, graph, flush_config, MoreConfig{}).run();
  EXPECT_GT(drained.generations_completed, 0);
  EXPECT_GT(flushed.generations_completed, 0);
  EXPECT_LE(flushed.mean_queue, drained.mean_queue + 1.0);
}

TEST(CodedEngine, ZeroCapacityForCbrMeansNoGenerations) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig config = engine_config(4);
  config.cbr_bytes_per_s = 1.0;  // the first generation never fills
  const SessionResult r =
      OmncProtocol(topo, graph, config, OmncConfig{}).run();
  EXPECT_EQ(r.generations_completed, 0);
  EXPECT_DOUBLE_EQ(r.throughput_per_generation, 0.0);
}

TEST(CodedEngine, TransmissionsScaleWithSimulatedTime) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig half = engine_config(5);
  half.max_sim_seconds = 30.0;
  ProtocolConfig full = engine_config(5);
  full.max_sim_seconds = 60.0;
  const SessionResult a =
      OmncProtocol(topo, graph, half, OmncConfig{}).run();
  const SessionResult b =
      OmncProtocol(topo, graph, full, OmncConfig{}).run();
  EXPECT_GT(b.transmissions, a.transmissions);
  EXPECT_LT(b.transmissions, a.transmissions * 3);
}

TEST(CodedEngine, PacketsDeliveredCountsOverhearing) {
  // Broadcast deliveries exceed transmissions when nodes have multiple
  // in-range receivers.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const SessionResult r =
      OmncProtocol(topo, graph, engine_config(6), OmncConfig{}).run();
  EXPECT_GT(r.packets_delivered, 0u);
  // The source alone reaches two relays per transmission on average > p.
  EXPECT_GT(static_cast<double>(r.packets_delivered),
            0.5 * static_cast<double>(r.transmissions));
}

}  // namespace
}  // namespace omnc::protocols

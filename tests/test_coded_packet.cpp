#include "coding/coded_packet.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "common/rng.h"

namespace omnc::coding {
namespace {

CodedPacket sample_packet() {
  CodedPacket pkt;
  pkt.session_id = 0xAABBCCDD;
  pkt.generation_id = 42;
  pkt.generation_blocks = 4;
  pkt.block_bytes = 16;
  pkt.coefficients = {1, 2, 3, 4};
  pkt.payload.assign(16, 0x5A);
  return pkt;
}

TEST(CodedPacket, SerializeParseRoundTrip) {
  const CodedPacket pkt = sample_packet();
  const auto wire = pkt.serialize();
  EXPECT_EQ(wire.size(), pkt.wire_size());
  CodedPacket parsed;
  ASSERT_TRUE(CodedPacket::parse(wire, &parsed));
  EXPECT_EQ(parsed.session_id, pkt.session_id);
  EXPECT_EQ(parsed.generation_id, pkt.generation_id);
  EXPECT_EQ(parsed.generation_blocks, pkt.generation_blocks);
  EXPECT_EQ(parsed.block_bytes, pkt.block_bytes);
  EXPECT_EQ(parsed.coefficients, pkt.coefficients);
  EXPECT_EQ(parsed.payload, pkt.payload);
}

TEST(CodedPacket, WireSizeAccounting) {
  const CodedPacket pkt = sample_packet();
  EXPECT_EQ(pkt.wire_size(), CodedPacket::kHeaderBytes + 4u + 16u);
}

TEST(CodedPacket, ParseRejectsTruncatedHeader) {
  std::vector<std::uint8_t> wire(CodedPacket::kHeaderBytes - 1, 0);
  CodedPacket out;
  EXPECT_FALSE(CodedPacket::parse(wire, &out));
}

TEST(CodedPacket, ParseRejectsLengthMismatch) {
  auto wire = sample_packet().serialize();
  wire.pop_back();
  CodedPacket out;
  EXPECT_FALSE(CodedPacket::parse(wire, &out));
  wire = sample_packet().serialize();
  wire.push_back(0);
  EXPECT_FALSE(CodedPacket::parse(wire, &out));
}

TEST(CodedPacket, ParseRejectsZeroDimensions) {
  CodedPacket pkt = sample_packet();
  pkt.generation_blocks = 0;
  pkt.coefficients.clear();
  const auto wire = pkt.serialize();
  CodedPacket out;
  EXPECT_FALSE(CodedPacket::parse(wire, &out));
}

TEST(CodedPacket, DimensionsMatch) {
  const CodedPacket pkt = sample_packet();
  EXPECT_TRUE(pkt.dimensions_match(CodingParams{4, 16}));
  EXPECT_FALSE(pkt.dimensions_match(CodingParams{4, 32}));
  EXPECT_FALSE(pkt.dimensions_match(CodingParams{8, 16}));
}

TEST(CodedPacket, EncoderPacketsRoundTripOnTheWire) {
  CodingParams params{6, 48};
  const Generation gen = Generation::synthetic(1, params, 77);
  SourceEncoder encoder(gen, 5);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const CodedPacket pkt = encoder.next_packet(rng);
    CodedPacket parsed;
    ASSERT_TRUE(CodedPacket::parse(pkt.serialize(), &parsed));
    EXPECT_EQ(parsed.coefficients, pkt.coefficients);
    EXPECT_EQ(parsed.payload, pkt.payload);
  }
}

}  // namespace
}  // namespace omnc::coding

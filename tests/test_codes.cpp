// Code-family subsystem (DESIGN.md §15): CodeSpec selection, the family
// encoder/recoder/decoder, and the structured CBD-style decoder.  The
// property sweeps pin the subsystem's two contracts:
//   * every family is byte-exact against the generation's original bytes
//     (and therefore against the dense reference) under loss, for every
//     geometry and every supported GF backend;
//   * the structural fast paths really are structural — a lossless
//     systematic decode performs zero GF multiply kernels, and a banded
//     decode never touches coefficient columns outside the offered windows
//     (the instrumented touched_lo/touched_hi range).
// RNG draw counts per family are pinned here too: they are part of the wire
// contract (family_runtime.h), because deterministic replay depends on them.
#include "codes/family_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "codes/code_spec.h"
#include "codes/structured_decoder.h"
#include "coding/coded_packet.h"
#include "coding/decoder.h"
#include "coding/generation.h"
#include "common/rng.h"
#include "emu/emu_harness.h"
#include "emu/loopback_transport.h"
#include "galois/region.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

namespace omnc::codes {
namespace {

/// The view a receiver sees: the structure's explicit coefficient bytes
/// only (all n for dense, the window for kWindow, none for kUncoded) —
/// exactly what parse_compact yields off the wire.
coding::CodedPacketView slice_view(const coding::CodedPacket& packet,
                                   const coding::CodedStructure& structure) {
  coding::CodedPacketView view = packet.as_view();
  switch (structure.kind) {
    case coding::CodedStructure::Kind::kDense:
      break;
    case coding::CodedStructure::Kind::kUncoded:
      view.coefficients = {};
      break;
    case coding::CodedStructure::Kind::kWindow:
      view.coefficients =
          view.coefficients.subspan(structure.offset, structure.width);
      break;
  }
  return view;
}

/// gen.bytes() is a span; gtest wants a homogeneous comparison.
testing::AssertionResult same_bytes(std::span<const std::uint8_t> got,
                                    std::span<const std::uint8_t> want) {
  if (got.size() != want.size()) {
    return testing::AssertionFailure()
           << "size " << got.size() << " != " << want.size();
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      return testing::AssertionFailure()
             << "byte " << i << ": " << int{got[i]} << " != " << int{want[i]};
    }
  }
  return testing::AssertionSuccess();
}

TEST(CodeSpec, SelectorParseRoundTrip) {
  for (const CodeSpec spec :
       {CodeSpec::dense(), CodeSpec::systematic(), CodeSpec::banded(0),
        CodeSpec::banded(8), CodeSpec::banded(513)}) {
    CodeSpec parsed;
    ASSERT_TRUE(CodeSpec::parse(spec.selector(), &parsed)) << spec.selector();
    EXPECT_EQ(parsed, spec) << spec.selector();
  }
}

TEST(CodeSpec, ParseRejectsGarbage) {
  CodeSpec spec = CodeSpec::banded(4);
  for (const char* text :
       {"", "Dense", "band", "banded:", "banded:x", "banded:-3", "rlnc"}) {
    EXPECT_FALSE(CodeSpec::parse(text, &spec)) << text;
    EXPECT_EQ(spec, CodeSpec::banded(4)) << "parse failure must not write";
  }
}

TEST(CodeSpec, ClampedForResolvesAutoAndBounds) {
  const coding::CodingParams params{64, 32};
  EXPECT_EQ(CodeSpec::banded(0).clamped_for(params).band_width, 16);
  EXPECT_EQ(CodeSpec::banded(200).clamped_for(params).band_width, 64);
  EXPECT_EQ(CodeSpec::banded(8).clamped_for(params).band_width, 8);
  EXPECT_EQ(CodeSpec::systematic().clamped_for(params),
            CodeSpec::systematic());
}

// --- the acceptance criterion: lossless systematic is multiply-free -------

TEST(Families, SystematicLosslessDecodeDoesZeroMultiplies) {
  const coding::CodingParams params{64, 1024};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 3);
  FamilyEncoder encoder(gen, 0, CodeSpec::systematic());
  FamilyDecoder decoder(params, 0, CodeSpec::systematic());
  Rng rng(1);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  gf::reset_kernel_stats();
  for (std::size_t i = 0; i < params.generation_blocks; ++i) {
    encoder.next_packet_into(rng, &packet, &structure);
    ASSERT_EQ(structure.kind, coding::CodedStructure::Kind::kUncoded);
    const FamilyDecoder::OfferResult outcome =
        decoder.offer(slice_view(packet, structure), structure);
    ASSERT_TRUE(outcome.innovative);
    EXPECT_TRUE(outcome.uncoded);
    EXPECT_EQ(outcome.pivot, static_cast<int>(i));
  }
  ASSERT_TRUE(decoder.complete());
  std::vector<std::uint8_t> out(params.generation_bytes());
  decoder.recover_into(std::span<std::uint8_t>(out));
  const gf::KernelStats stats = gf::kernel_stats();
  EXPECT_EQ(stats.mul_calls, 0u) << "lossless systematic must be pure memcpy";
  EXPECT_EQ(stats.mul_bytes, 0u);
  EXPECT_TRUE(same_bytes(out, gen.bytes()));
  ASSERT_NE(decoder.structured_stats(), nullptr);
  EXPECT_EQ(decoder.structured_stats()->uncoded_hits,
            params.generation_blocks);
}

// --- byte-exact recovery sweep: family x geometry x loss ------------------

struct SweepCase {
  CodeSpec spec;
  std::uint16_t blocks;
  std::uint16_t bytes;
  double loss;
};

class FamilySweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FamilySweepTest, RecoversOriginalBytesUnderLoss) {
  const SweepCase c = GetParam();
  const coding::CodingParams params{c.blocks, c.bytes};
  const coding::Generation gen =
      coding::Generation::synthetic(0, params, c.blocks * 7 + 1);
  FamilyEncoder encoder(gen, 0, c.spec);
  FamilyDecoder decoder(params, 0, c.spec);
  Rng rng(c.blocks * 100003 + c.bytes);
  Rng loss_rng(c.blocks + 17);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  std::size_t sent = 0;
  const std::size_t budget = 256u * c.blocks + 1024;
  while (!decoder.complete()) {
    ASSERT_LT(sent, budget) << "family failed to converge: "
                            << c.spec.selector();
    encoder.next_packet_into(rng, &packet, &structure);
    ++sent;
    if (loss_rng.next_double() < c.loss) continue;  // erased in flight
    decoder.offer(slice_view(packet, structure), structure);
  }
  std::vector<std::uint8_t> out(params.generation_bytes());
  decoder.recover_into(std::span<std::uint8_t>(out));
  EXPECT_TRUE(same_bytes(out, gen.bytes())) << c.spec.selector();
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const double loss : {0.0, 0.25, 0.5}) {
    for (const std::uint16_t blocks : {8, 16, 32, 64}) {
      cases.push_back({CodeSpec::systematic(), blocks, 64, loss});
      for (const std::uint16_t width : {2, 4, 8, 16}) {
        if (width > blocks) continue;
        cases.push_back({CodeSpec::banded(width), blocks, 64, loss});
      }
    }
    cases.push_back({CodeSpec::dense(), 16, 64, loss});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FamilySweepTest,
                         ::testing::ValuesIn(sweep_cases()));

// --- the banded structural bound ------------------------------------------

// Feeding only windows confined to [lo, hi) must keep every coefficient
// kernel inside [lo, hi): the structured decoder's elimination never
// wanders outside the offered bands (the instrumented note_touch range).
TEST(Families, BandedDecodeNeverTouchesOutsideOfferedWindows) {
  const coding::CodingParams params{64, 128};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 9);
  FamilyEncoder encoder(gen, 0, CodeSpec::banded(8));
  StructuredDecoder decoder(params, 0);
  Rng rng(11);
  const std::size_t lo = 16;
  const std::size_t hi = 48;
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  std::size_t offered = 0;
  for (std::size_t i = 0; i < 4096 && offered < 64; ++i) {
    encoder.next_packet_into(rng, &packet, &structure);
    ASSERT_EQ(structure.kind, coding::CodedStructure::Kind::kWindow);
    if (structure.offset < lo || structure.offset + structure.width > hi) {
      continue;
    }
    decoder.offer(slice_view(packet, structure), structure);
    ++offered;
  }
  ASSERT_GT(offered, 0u);
  EXPECT_GT(decoder.rank(), 0u);
  const StructuredDecoder::Stats& stats = decoder.stats();
  ASSERT_LE(stats.touched_lo, stats.touched_hi) << "kernels must have run";
  EXPECT_GE(stats.touched_lo, lo);
  EXPECT_LE(stats.touched_hi, hi);
}

// Full-rank banded sweep: the touched range stays inside the union of the
// offered windows for every band width and the stored windows stay narrow
// (the decode-cost claim rests on this).
TEST(Families, BandedSweepTouchedRangeMatchesOfferedUnion) {
  for (const std::uint16_t width : {2, 4, 8, 16}) {
    const coding::CodingParams params{64, 64};
    const coding::Generation gen =
        coding::Generation::synthetic(0, params, width);
    FamilyEncoder encoder(gen, 0, CodeSpec::banded(width));
    StructuredDecoder decoder(params, 0);
    Rng rng(width * 31 + 1);
    coding::CodedPacket packet;
    coding::CodedStructure structure;
    std::size_t union_lo = params.generation_blocks;
    std::size_t union_hi = 0;
    std::size_t sent = 0;
    while (!decoder.complete()) {
      ASSERT_LT(sent, 8192u);
      encoder.next_packet_into(rng, &packet, &structure);
      ++sent;
      if (decoder.offer(slice_view(packet, structure), structure)) {
        union_lo = std::min<std::size_t>(union_lo, structure.offset);
        union_hi = std::max<std::size_t>(union_hi,
                                         structure.offset + structure.width);
      }
    }
    const StructuredDecoder::Stats& stats = decoder.stats();
    EXPECT_GE(stats.touched_lo, union_lo) << "width " << width;
    EXPECT_LE(stats.touched_hi, union_hi) << "width " << width;
    std::vector<std::uint8_t> out(params.generation_bytes());
    decoder.recover_into(std::span<std::uint8_t>(out));
    EXPECT_TRUE(same_bytes(out, gen.bytes())) << "width " << width;
  }
}

// --- pinned RNG draw counts (family_runtime.h contract) -------------------

// Every next_byte()/next_u64() consumes exactly one xoshiro step, so a
// shadow Rng advanced by the documented draw count must stay in lockstep
// with the Rng the encoder actually used.
TEST(Families, EncoderDrawCountsArePinned) {
  const coding::CodingParams params{16, 32};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 5);
  const std::size_t n = params.generation_blocks;

  {  // dense: n byte draws per packet, all-zero repaired without re-draws.
    FamilyEncoder encoder(gen, 0, CodeSpec::dense());
    Rng used(42), shadow(42);
    coding::CodedPacket packet;
    coding::CodedStructure structure;
    for (int i = 0; i < 5; ++i) {
      encoder.next_packet_into(used, &packet, &structure);
      for (std::size_t d = 0; d < n; ++d) shadow.next_byte();
    }
    EXPECT_EQ(used.next_u64(), shadow.next_u64());
  }
  {  // systematic: zero draws for the n originals, then n per repair.
    FamilyEncoder encoder(gen, 0, CodeSpec::systematic());
    Rng used(42), shadow(42);
    coding::CodedPacket packet;
    coding::CodedStructure structure;
    for (std::size_t i = 0; i < n + 3; ++i) {
      encoder.next_packet_into(used, &packet, &structure);
      if (i >= n) {
        for (std::size_t d = 0; d < n; ++d) shadow.next_byte();
      }
    }
    EXPECT_EQ(used.next_u64(), shadow.next_u64());
  }
  {  // banded: exactly w byte draws; the window start is not drawn.
    const std::uint16_t width = 4;
    FamilyEncoder encoder(gen, 0, CodeSpec::banded(width));
    Rng used(42), shadow(42);
    coding::CodedPacket packet;
    coding::CodedStructure structure;
    for (int i = 0; i < 20; ++i) {
      encoder.next_packet_into(used, &packet, &structure);
      for (std::size_t d = 0; d < width; ++d) shadow.next_byte();
    }
    EXPECT_EQ(used.next_u64(), shadow.next_u64());
  }
}

TEST(Families, BandedWindowStartsCycleDeterministically) {
  const coding::CodingParams params{16, 32};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 5);
  const std::uint16_t width = 4;
  FamilyEncoder encoder(gen, 0, CodeSpec::banded(width));
  Rng rng(3);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  const std::size_t positions = params.generation_blocks - width + 1;
  for (std::size_t i = 0; i < 2 * positions; ++i) {
    encoder.next_packet_into(rng, &packet, &structure);
    EXPECT_EQ(structure.offset, i % positions);
    EXPECT_EQ(structure.width, width);
  }
}

// Structured forwards re-emit stored rows verbatim with zero draws; once
// exhausted the recoder falls back to a dense recode of rank() byte draws.
TEST(Families, RecoderForwardDrawsZeroThenDenseRankDraws) {
  const coding::CodingParams params{8, 16};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 2);
  FamilyEncoder encoder(gen, 0, CodeSpec::banded(3));
  FamilyRecoder recoder(params, 0, 0, CodeSpec::banded(3));
  Rng enc_rng(9);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  std::size_t stored = 0;
  for (int i = 0; i < 12; ++i) {
    encoder.next_packet_into(enc_rng, &packet, &structure);
    if (recoder.offer(slice_view(packet, structure), structure)) ++stored;
  }
  ASSERT_GT(stored, 0u);
  Rng used(42), shadow(42);
  coding::CodedPacket out;
  coding::CodedStructure out_structure;
  for (std::size_t i = 0; i < stored; ++i) {
    recoder.recode_into(used, &out, &out_structure);
    EXPECT_EQ(out_structure.kind, coding::CodedStructure::Kind::kWindow);
  }
  EXPECT_EQ(used.next_u64(), shadow.next_u64()) << "forwards draw nothing";
  Rng used2(42), shadow2(42);
  recoder.recode_into(used2, &out, &out_structure);
  EXPECT_TRUE(out_structure.dense());
  for (std::size_t d = 0; d < recoder.rank(); ++d) shadow2.next_byte();
  EXPECT_EQ(used2.next_u64(), shadow2.next_u64());
}

// --- relay and mixed-family paths -----------------------------------------

// Source -> lossy relay -> destination, all banded: the recoder's verbatim
// forwards plus dense fallbacks must still decode byte-exact.
TEST(Families, BandedSurvivesRecodingRelay) {
  const coding::CodingParams params{16, 48};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 4);
  const CodeSpec spec = CodeSpec::banded(4);
  FamilyEncoder encoder(gen, 0, spec);
  FamilyRecoder relay(params, 0, 0, spec);
  FamilyDecoder decoder(params, 0, spec);
  Rng rng(21);
  Rng loss_rng(22);
  coding::CodedPacket packet, relayed;
  coding::CodedStructure structure, relayed_structure;
  std::size_t steps = 0;
  while (!decoder.complete()) {
    ASSERT_LT(++steps, 4096u);
    encoder.next_packet_into(rng, &packet, &structure);
    if (loss_rng.next_double() < 0.3) continue;  // source -> relay loss
    relay.offer(slice_view(packet, structure), structure);
    if (relay.rank() == 0) continue;
    relay.recode_into(rng, &relayed, &relayed_structure);
    if (loss_rng.next_double() < 0.3) continue;  // relay -> dest loss
    decoder.offer(slice_view(relayed, relayed_structure), relayed_structure);
  }
  std::vector<std::uint8_t> out(params.generation_bytes());
  decoder.recover_into(std::span<std::uint8_t>(out));
  EXPECT_TRUE(same_bytes(out, gen.bytes()));
}

// Mixed-family peers: a dense-spec decoder must absorb structured packets
// (expanding them) and a structured decoder must absorb dense packets.
TEST(Families, MixedFamilyPeersInteroperate) {
  const coding::CodingParams params{12, 24};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 8);
  Rng rng(14);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  {  // structured packets into a dense-spec decoder
    FamilyEncoder encoder(gen, 0, CodeSpec::banded(3));
    FamilyDecoder dense_decoder(params, 0, CodeSpec::dense());
    std::size_t sent = 0;
    while (!dense_decoder.complete()) {
      ASSERT_LT(++sent, 2048u);
      encoder.next_packet_into(rng, &packet, &structure);
      dense_decoder.offer(slice_view(packet, structure), structure);
    }
    EXPECT_TRUE(same_bytes(dense_decoder.recover(), gen.bytes()));
  }
  {  // dense packets into a structured (banded-spec) decoder
    FamilyEncoder encoder(gen, 0, CodeSpec::dense());
    FamilyDecoder banded_decoder(params, 0, CodeSpec::banded(3));
    std::size_t sent = 0;
    while (!banded_decoder.complete()) {
      ASSERT_LT(++sent, 2048u);
      encoder.next_packet_into(rng, &packet, &structure);
      banded_decoder.offer(slice_view(packet, structure), structure);
    }
    EXPECT_TRUE(same_bytes(banded_decoder.recover(), gen.bytes()));
  }
}

// The dense family must stay byte- and draw-identical to the raw
// SourceEncoder/ProgressiveDecoder pipeline it wraps.
TEST(Families, DenseFamilyMatchesReferencePipeline) {
  const coding::CodingParams params{10, 40};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 6);
  FamilyEncoder family(gen, 0, CodeSpec::dense());
  coding::SourceEncoder reference(gen, 0);
  Rng family_rng(33), reference_rng(33);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  for (int i = 0; i < 24; ++i) {
    family.next_packet_into(family_rng, &packet, &structure);
    const coding::CodedPacket expected = reference.next_packet(reference_rng);
    EXPECT_TRUE(structure.dense());
    EXPECT_EQ(packet.coefficients, expected.coefficients);
    EXPECT_EQ(packet.payload, expected.payload);
  }
  EXPECT_EQ(family_rng.next_u64(), reference_rng.next_u64());
}

// --- every supported GF backend decodes byte-exactly ----------------------

TEST(Families, AllFamiliesByteExactOnEveryBackend) {
  constexpr gf::Backend kBackends[] = {
      gf::Backend::kScalarTable, gf::Backend::kSse2,  gf::Backend::kSsse3,
      gf::Backend::kAvx2,        gf::Backend::kGfni,  gf::Backend::kNeon,
      gf::Backend::kPortable,
  };
  const coding::CodingParams params{16, 96};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 12);
  const gf::Backend previous = gf::active_backend();
  for (const gf::Backend backend : kBackends) {
    if (!gf::backend_supported(backend)) continue;
    gf::set_backend(backend);
    for (const CodeSpec spec :
         {CodeSpec::dense(), CodeSpec::systematic(), CodeSpec::banded(4)}) {
      FamilyEncoder encoder(gen, 0, spec);
      FamilyDecoder decoder(params, 0, spec);
      Rng rng(77);
      Rng loss_rng(78);
      coding::CodedPacket packet;
      coding::CodedStructure structure;
      std::size_t sent = 0;
      while (!decoder.complete()) {
        ASSERT_LT(++sent, 4096u) << gf::backend_name(backend) << " "
                                 << spec.selector();
        encoder.next_packet_into(rng, &packet, &structure);
        if (loss_rng.next_double() < 0.2) continue;
        decoder.offer(slice_view(packet, structure), structure);
      }
      EXPECT_TRUE(same_bytes(decoder.recover(), gen.bytes()))
          << gf::backend_name(backend) << " " << spec.selector();
    }
  }
  gf::set_backend(previous);
}

// --- compact wire format --------------------------------------------------

TEST(CompactWire, RoundTripsEveryStructureKind) {
  const coding::CodingParams params{16, 32};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 1);
  Rng rng(2);
  for (const CodeSpec spec : {CodeSpec::systematic(), CodeSpec::banded(5)}) {
    FamilyEncoder encoder(gen, 0, spec);
    coding::CodedPacket packet;
    coding::CodedStructure structure;
    for (int i = 0; i < 20; ++i) {
      encoder.next_packet_into(rng, &packet, &structure);
      if (structure.dense()) continue;  // dense keeps the dense wire form
      std::vector<std::uint8_t> wire;
      ASSERT_TRUE(coding::serialize_compact(packet, structure, wire));
      EXPECT_EQ(wire.size(),
                coding::compact_wire_size(structure, params.block_bytes));
      coding::CodedPacketView view;
      coding::CodedStructure parsed;
      ASSERT_TRUE(coding::parse_compact(
          std::span<const std::uint8_t>(wire), &view, &parsed));
      EXPECT_EQ(parsed, structure);
      const coding::CodedPacketView expected = slice_view(packet, structure);
      EXPECT_TRUE(std::equal(view.coefficients.begin(),
                             view.coefficients.end(),
                             expected.coefficients.begin(),
                             expected.coefficients.end()));
      EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                             packet.payload.begin(), packet.payload.end()));
    }
  }
}

TEST(CompactWire, ParseRejectsTruncationAndGarbage) {
  const coding::CodingParams params{16, 32};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 1);
  FamilyEncoder encoder(gen, 0, CodeSpec::banded(5));
  Rng rng(2);
  coding::CodedPacket packet;
  coding::CodedStructure structure;
  encoder.next_packet_into(rng, &packet, &structure);
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(coding::serialize_compact(packet, structure, wire));
  coding::CodedPacketView view;
  coding::CodedStructure parsed;
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(coding::parse_compact(
        std::span<const std::uint8_t>(wire.data(), cut), &view, &parsed))
        << "truncated to " << cut;
  }
  Rng fuzz(99);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> garbage(fuzz.next_u64() % 64);
    for (auto& b : garbage) b = fuzz.next_byte();
    coding::parse_compact(std::span<const std::uint8_t>(garbage), &view,
                          &parsed);  // must not crash; result is irrelevant
  }
}

// --- end-to-end: each family through the threaded emulation ---------------

net::Topology emu_diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

/// Runs the fig-2 diamond over the loopback transport with `spec` and
/// demands byte-exact delivery of every generation.  The same path the
/// forced-family CI passes drive via OMNC_CODE_FAMILY.
void run_emu_with_family(const CodeSpec& spec) {
  const net::Topology topo = emu_diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  opt::RateControlParams rc_params;
  rc_params.capacity = 2e4;
  opt::DistributedRateControl control(graph, rc_params);
  const opt::RateControlResult rc = control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, rc_params.capacity);

  emu::LoopbackConfig loopback;
  loopback.seed = 5;
  emu::LoopbackTransport transport(
      graph.size(), emu::link_matrix_from_topology(topo, graph), loopback);
  emu::EmuConfig config;
  config.node.coding.generation_blocks = 8;
  config.node.coding.block_bytes = 64;
  config.node.cbr_bytes_per_s = 1e4;
  config.node.max_generations = 3;
  config.node.code = spec;
  config.clock_mode = vtime::ClockMode::kWarp;
  config.speedup = 20.0;
  config.wall_timeout_s = 45.0;
  emu::EmuHarness harness(graph, transport, config);
  harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
  const emu::EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed) << spec.selector();
  EXPECT_TRUE(result.data_ok) << spec.selector();
  EXPECT_EQ(result.generations_completed, 3) << spec.selector();
  EXPECT_EQ(result.parse_errors, 0u) << spec.selector();
}

TEST(FamilyEmu, DenseDeliversByteExact) { run_emu_with_family(CodeSpec::dense()); }

TEST(FamilyEmu, SystematicDeliversByteExact) {
  run_emu_with_family(CodeSpec::systematic());
}

TEST(FamilyEmu, BandedDeliversByteExact) {
  run_emu_with_family(CodeSpec::banded(2));
}

// The env seam the forced-family CI passes flip: OMNC_CODE_FAMILY selects
// the spec for this run (dense when unset), so `OMNC_CODE_FAMILY=banded:2
// ctest` genuinely re-executes the emulation under that family.
TEST(FamilyEmu, EnvSelectedFamilyDeliversByteExact) {
  run_emu_with_family(CodeSpec::from_env());
}

}  // namespace
}  // namespace omnc::codes

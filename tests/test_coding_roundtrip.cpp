// End-to-end coding property tests: source -> lossy relays -> destination
// with re-encoding at every hop, across a sweep of loss rates and fan-outs.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/recoder.h"
#include "common/rng.h"

namespace omnc::coding {
namespace {

// (loss probability, number of parallel relays)
class LossyRelayRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LossyRelayRoundTrip, DecodesThroughLossyDiamond) {
  const auto [loss, relays] = GetParam();
  CodingParams params{8, 40};
  const Generation gen = Generation::synthetic(0, params, 1000);
  SourceEncoder encoder(gen, 0);
  Rng rng(static_cast<std::uint64_t>(loss * 1000) + relays);

  std::vector<std::unique_ptr<Recoder>> relay_state;
  for (int r = 0; r < relays; ++r) {
    relay_state.push_back(std::make_unique<Recoder>(params, 0, 0));
  }
  ProgressiveDecoder decoder(params, 0);

  int slots = 0;
  const int max_slots = 100000;
  while (!decoder.complete() && slots < max_slots) {
    ++slots;
    // Source broadcast: each relay independently receives.
    const CodedPacket src_pkt = encoder.next_packet(rng);
    for (auto& relay : relay_state) {
      if (!rng.chance(loss)) relay->offer(src_pkt);
    }
    // Each relay broadcast: destination independently receives.
    for (auto& relay : relay_state) {
      if (relay->can_send() && !rng.chance(loss)) {
        decoder.offer(relay->recode(rng));
      }
    }
  }
  ASSERT_TRUE(decoder.complete()) << "loss=" << loss << " relays=" << relays;
  const auto recovered = decoder.recover();
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(),
                         gen.bytes().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    LossAndFanout, LossyRelayRoundTrip,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, 0.8),
                       ::testing::Values(1, 2, 4)));

TEST(CodingRoundTrip, ParallelRelaysContributeIndependentInformation) {
  // The paper's Sec. 3.2 premise: two relays that each hold *different*
  // subsets of source packets can jointly deliver more than either alone.
  CodingParams params{6, 16};
  const Generation gen = Generation::synthetic(0, params, 7);
  SourceEncoder encoder(gen, 0);
  Rng rng(99);

  Recoder relay_u(params, 0, 0);
  Recoder relay_v(params, 0, 0);
  // u gets packets 1..3, v gets packets 4..6 (disjoint subsets).
  for (int i = 0; i < 3; ++i) relay_u.offer(encoder.next_packet(rng));
  for (int i = 0; i < 3; ++i) relay_v.offer(encoder.next_packet(rng));
  ASSERT_EQ(relay_u.rank(), 3u);
  ASSERT_EQ(relay_v.rank(), 3u);

  ProgressiveDecoder decoder(params, 0);
  for (int i = 0; i < 30; ++i) {
    decoder.offer(relay_u.recode(rng));
    decoder.offer(relay_v.recode(rng));
  }
  // Jointly they span the full 6 dimensions with overwhelming probability.
  EXPECT_TRUE(decoder.complete());
}

TEST(CodingRoundTrip, ReencodingRefreshesCoefficients) {
  // A re-encoded packet must not simply replay a received coefficient
  // vector (that is the point of "trading structure for randomness").
  CodingParams params{4, 8};
  const Generation gen = Generation::synthetic(0, params, 3);
  SourceEncoder encoder(gen, 0);
  Rng rng(5);
  Recoder relay(params, 0, 0);
  CodedPacket original = encoder.next_packet(rng);
  relay.offer(original);
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    if (relay.recode(rng).coefficients == original.coefficients) ++identical;
  }
  // With one buffered packet the recoded coefficients are random multiples;
  // exact replay happens with probability 1/255 per draw.
  EXPECT_LE(identical, 3);
}

}  // namespace
}  // namespace omnc::coding

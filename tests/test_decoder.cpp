#include "coding/decoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "common/rng.h"

namespace omnc::coding {
namespace {

class DecoderTest : public ::testing::Test {
 protected:
  CodingParams params_{6, 32};
  Generation gen_ = Generation::synthetic(1, params_, 123);
  SourceEncoder encoder_{gen_, 0};
  Rng rng_{7};
};

TEST_F(DecoderTest, ProgressiveDecodeRecoversOriginal) {
  ProgressiveDecoder decoder(params_, 1);
  int offered = 0;
  while (!decoder.complete()) {
    decoder.offer(encoder_.next_packet(rng_));
    ++offered;
    ASSERT_LT(offered, 100);
  }
  const auto recovered = decoder.recover();
  ASSERT_EQ(recovered.size(), gen_.bytes().size());
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(),
                         gen_.bytes().begin()));
}

TEST_F(DecoderTest, RankGrowsByAtMostOnePerPacket) {
  ProgressiveDecoder decoder(params_, 1);
  std::size_t last_rank = 0;
  for (int i = 0; i < 40 && !decoder.complete(); ++i) {
    const bool innovative = decoder.offer(encoder_.next_packet(rng_));
    EXPECT_EQ(decoder.rank(), last_rank + (innovative ? 1 : 0));
    last_rank = decoder.rank();
  }
  EXPECT_TRUE(decoder.complete());
}

TEST_F(DecoderTest, DuplicatePacketIsNotInnovative) {
  ProgressiveDecoder decoder(params_, 1);
  const CodedPacket pkt = encoder_.next_packet(rng_);
  EXPECT_TRUE(decoder.offer(pkt));
  EXPECT_FALSE(decoder.offer(pkt));
  EXPECT_EQ(decoder.rank(), 1u);
  EXPECT_EQ(decoder.packets_seen(), 2u);
  EXPECT_EQ(decoder.packets_innovative(), 1u);
}

TEST_F(DecoderTest, WrongGenerationRejected) {
  ProgressiveDecoder decoder(params_, 2);  // decoder expects generation 2
  EXPECT_FALSE(decoder.offer(encoder_.next_packet(rng_)));  // packet is gen 1
  EXPECT_EQ(decoder.rank(), 0u);
  EXPECT_EQ(decoder.packets_seen(), 0u);
}

TEST_F(DecoderTest, DimensionMismatchRejected) {
  ProgressiveDecoder decoder(params_, 1);
  CodedPacket pkt = encoder_.next_packet(rng_);
  pkt.block_bytes = 16;
  pkt.payload.resize(16);
  EXPECT_FALSE(decoder.offer(pkt));
}

TEST_F(DecoderTest, SystematicPacketsDecodeImmediately) {
  ProgressiveDecoder decoder(params_, 1);
  for (std::size_t b = 0; b < params_.generation_blocks; ++b) {
    std::vector<std::uint8_t> unit(params_.generation_blocks, 0);
    unit[b] = 1;
    ASSERT_TRUE(decoder.offer(encoder_.packet_with_coefficients(unit)));
    // Each systematic packet decodes its block on the fly.
    const std::uint8_t* block = decoder.decoded_block(b);
    ASSERT_NE(block, nullptr);
    EXPECT_TRUE(std::equal(block, block + params_.block_bytes, gen_.block(b)));
  }
  EXPECT_TRUE(decoder.complete());
}

TEST_F(DecoderTest, PartiallyDecodedBlocksReportedNullUntilResolved) {
  ProgressiveDecoder decoder(params_, 1);
  // One random (dense) packet: no block is individually decodable yet.
  decoder.offer(encoder_.next_packet(rng_));
  int resolved = 0;
  for (std::size_t b = 0; b < params_.generation_blocks; ++b) {
    if (decoder.decoded_block(b) != nullptr) ++resolved;
  }
  EXPECT_EQ(resolved, 0);
}

TEST_F(DecoderTest, ResetRetargetsGeneration) {
  ProgressiveDecoder decoder(params_, 1);
  while (!decoder.complete()) decoder.offer(encoder_.next_packet(rng_));
  decoder.reset(2);
  EXPECT_EQ(decoder.generation_id(), 2u);
  EXPECT_EQ(decoder.rank(), 0u);
  EXPECT_FALSE(decoder.complete());
  EXPECT_FALSE(decoder.offer(encoder_.next_packet(rng_)));  // old gen now rejected
}

// Parameterized sweep over generation geometries: decoding must need exactly
// n innovative packets regardless of shape.
class DecoderGeometryTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DecoderGeometryTest, DecodesWithExactlyNInnovativePackets) {
  const auto [blocks, bytes] = GetParam();
  CodingParams params{static_cast<std::uint16_t>(blocks),
                      static_cast<std::uint16_t>(bytes)};
  const Generation gen = Generation::synthetic(0, params, 55);
  SourceEncoder encoder(gen, 0);
  ProgressiveDecoder decoder(params, 0);
  Rng rng(blocks * 1000 + bytes);
  while (!decoder.complete()) decoder.offer(encoder.next_packet(rng));
  EXPECT_EQ(decoder.packets_innovative(), static_cast<std::size_t>(blocks));
  const auto recovered = decoder.recover();
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(),
                         gen.bytes().begin()));
}

INSTANTIATE_TEST_SUITE_P(Geometries, DecoderGeometryTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 7},
                                           std::pair{8, 64}, std::pair{16, 17},
                                           std::pair{40, 128},
                                           std::pair{64, 16}));

}  // namespace
}  // namespace omnc::coding

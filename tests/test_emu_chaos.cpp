// Chaos soak: the fig-2 diamond under EmuHarness, swept across every shipped
// FaultPlan preset (burst loss, jitter/reorder/dup, a 2 s partition, a
// single-node blackout, and the combined chaos scenario).  The acceptance
// gate is liveness + integrity: under every scenario all generations decode
// byte-exactly and the run terminates — no deadlock, no unbounded
// redundancy — with goodput inside a generous band of the clean run
// (thread scheduling is nondeterministic, see DESIGN.md §10).
//
// The soak runs under the WarpClock (DESIGN.md §12): virtual time advances
// as fast as the node threads can step, so sweeping every preset costs
// milliseconds of wall time instead of sleeping through the virtual
// seconds.  One small RealClock smoke keeps the wall-paced path covered.
//
// The run is long enough (in virtual seconds) that the scheduled partition
// (2-4 s) and blackout (2.5-4.5 s) windows open mid-session.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "emu/emu_harness.h"
#include "emu/fault_transport.h"
#include "emu/loopback_transport.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

namespace omnc::emu {
namespace {

constexpr double kCapacity = 2e4;
constexpr int kGenerations = 40;  // ~6 virtual seconds on this topology

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

EmuConfig soak_config(vtime::ClockMode clock_mode) {
  EmuConfig config;
  config.node.coding.generation_blocks = 8;
  config.node.coding.block_bytes = 64;
  config.node.cbr_bytes_per_s = 1e4;
  config.node.max_generations = kGenerations;
  config.clock_mode = clock_mode;
  config.speedup = 20.0;
  config.wall_timeout_s = 45.0;
  return config;
}

struct SoakOutcome {
  EmuRunResult result;
  FaultStats faults;
};

SoakOutcome run_scenario(const std::string& preset,
                         vtime::ClockMode clock_mode = vtime::ClockMode::kWarp) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  opt::RateControlParams params;
  params.capacity = kCapacity;
  opt::DistributedRateControl control(graph, params);
  const opt::RateControlResult rc = control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, kCapacity);

  LoopbackConfig loopback;
  loopback.seed = 1;
  LoopbackTransport base(graph.size(), link_matrix_from_topology(topo, graph),
                         loopback);
  SoakOutcome outcome;
  const EmuConfig config = soak_config(clock_mode);
  if (preset.empty()) {
    EmuHarness harness(graph, base, config);
    harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
    outcome.result = harness.run();
    return outcome;
  }
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::parse(preset, &plan, &error)) << preset << ": "
                                                       << error;
  FaultTransport faulty(base, plan);
  EmuHarness harness(graph, faulty, config);
  harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
  outcome.result = harness.run();
  outcome.faults = faulty.fault_stats();
  return outcome;
}

TEST(EmuChaosSoak, EveryPresetRetiresAllGenerationsWithinGoodputBand) {
  const SoakOutcome clean = run_scenario("");
  ASSERT_TRUE(clean.result.completed);
  ASSERT_TRUE(clean.result.data_ok);
  ASSERT_EQ(clean.result.generations_completed, kGenerations);
  ASSERT_GT(clean.result.goodput_bytes_per_s, 0.0);

  for (const std::string& preset : FaultPlan::preset_names()) {
    SCOPED_TRACE("preset: " + preset);
    const SoakOutcome outcome = run_scenario(preset);
    // Liveness + integrity: every generation decoded byte-exactly, and the
    // run terminated on its own (no timeout, no deadlock).
    EXPECT_TRUE(outcome.result.completed);
    EXPECT_TRUE(outcome.result.data_ok);
    EXPECT_EQ(outcome.result.generations_completed, kGenerations);
    // Goodput stays within a generous band of the clean run — injected
    // faults cost throughput but must not collapse or inflate it.
    const double ratio = outcome.result.goodput_bytes_per_s /
                         clean.result.goodput_bytes_per_s;
    EXPECT_GT(ratio, 0.1) << "goodput " << outcome.result.goodput_bytes_per_s
                          << " vs clean "
                          << clean.result.goodput_bytes_per_s;
    EXPECT_LT(ratio, 3.0) << "goodput " << outcome.result.goodput_bytes_per_s
                          << " vs clean "
                          << clean.result.goodput_bytes_per_s;
    // Bounded redundancy: the stall boost must not balloon traffic past a
    // small multiple of the clean run's transmission volume.
    EXPECT_LT(outcome.result.transport.frames_sent,
              12 * clean.result.transport.frames_sent);
  }
}

TEST(EmuChaosSoak, RandomFaultPresetsActuallyInject) {
  // The stochastic scenarios must visibly perturb the run (the windowed
  // scenarios are pinned deterministically in test_fault_transport).
  const SoakOutcome burst = run_scenario("burst");
  EXPECT_GT(burst.faults.lost, 0u);
  const SoakOutcome jitter = run_scenario("jitter");
  EXPECT_GT(jitter.faults.duplicated + jitter.faults.reordered, 0u);
}

TEST(EmuChaosSoak, RealClockSmoke) {
  // One short wall-paced run keeps the RealClock path (thread sleeps, wall
  // deadline) covered now that the soak itself warps.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  opt::RateControlParams params;
  params.capacity = kCapacity;
  opt::DistributedRateControl control(graph, params);
  const opt::RateControlResult rc = control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, kCapacity);

  LoopbackConfig loopback;
  loopback.seed = 1;
  LoopbackTransport base(graph.size(), link_matrix_from_topology(topo, graph),
                         loopback);
  EmuConfig config = soak_config(vtime::ClockMode::kReal);
  config.node.max_generations = 4;
  EmuHarness harness(graph, base, config);
  harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
  const EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
  EXPECT_EQ(result.generations_completed, 4);
}

}  // namespace
}  // namespace omnc::emu

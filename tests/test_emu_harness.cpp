// End-to-end emulation runs: the fig-2 diamond under EmuHarness must decode
// every generation byte-exactly over both transports, and loopback goodput
// must land within a (generous) band of the slot simulator's throughput on
// the same topology.  Loopback runs use the WarpClock so nobody sleeps
// through virtual seconds; the UDP smoke stays wall-paced.  Decoded data is
// checked exactly; rates and timings are tolerance-checked under threaded
// clocks because scheduling is not deterministic (DESIGN.md §10), while
// DeterministicClock runs must reproduce *exactly* (§12).
#include <gtest/gtest.h>

#include <vector>

#include "emu/emu_harness.h"
#include "emu/loopback_transport.h"
#include "emu/udp_transport.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "protocols/metrics_bus.h"
#include "protocols/omnc.h"
#include "routing/node_selection.h"

namespace omnc::emu {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

constexpr double kCapacity = 2e4;

EmuConfig fast_emu_config(
    int generations, vtime::ClockMode clock_mode = vtime::ClockMode::kWarp) {
  EmuConfig config;
  config.node.coding.generation_blocks = 8;
  config.node.coding.block_bytes = 64;
  config.node.cbr_bytes_per_s = 1e4;
  config.node.max_generations = generations;
  config.clock_mode = clock_mode;
  config.speedup = 20.0;
  config.wall_timeout_s = 45.0;
  return config;
}

/// The same preparation OmncProtocol::prepare runs, so the emulated nodes
/// transmit at the rates the optimizer would install in the simulator.
opt::RateControlResult rate_control_for(const routing::SessionGraph& graph) {
  opt::RateControlParams params;
  params.capacity = kCapacity;
  opt::DistributedRateControl control(graph, params);
  return control.run();
}

std::vector<double> feasible_rates(const routing::SessionGraph& graph,
                                   const opt::RateControlResult& rc) {
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, kCapacity);
  return rates;
}

TEST(EmuHarness, DiamondOverLoopbackMatchesSlotSimulator) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ASSERT_EQ(graph.size(), 4);

  // Slot-simulator baseline on the identical topology and coding geometry.
  protocols::ProtocolConfig sim_config;
  sim_config.coding.generation_blocks = 8;
  sim_config.coding.block_bytes = 64;
  sim_config.mac.capacity_bytes_per_s = kCapacity;
  sim_config.mac.slot_bytes = 12 + 8 + 64;
  sim_config.mac.fading.enabled = false;
  sim_config.cbr_bytes_per_s = 1e4;
  sim_config.max_sim_seconds = 60.0;
  sim_config.seed = 1;
  protocols::OmncProtocol omnc(topo, graph, sim_config, protocols::OmncConfig{});
  const protocols::SessionResult sim = omnc.run();
  ASSERT_GT(sim.throughput_bytes_per_s, 0.0);

  // Emulated run: distributed mode (prices flooded in-band as frames).
  const opt::RateControlResult rc = rate_control_for(graph);
  LoopbackConfig loopback;
  loopback.seed = 1;
  LoopbackTransport transport(graph.size(),
                              link_matrix_from_topology(topo, graph), loopback);
  EmuConfig config = fast_emu_config(6);
  EmuHarness harness(graph, transport, config);
  harness.install_price_table(feasible_rates(graph, rc), rc.lambda, rc.beta,
                              rc.iterations);
  const EmuRunResult result = harness.run();

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);  // every decoded byte matched the source
  EXPECT_EQ(result.generations_completed, 6);
  EXPECT_EQ(result.parse_errors, 0u);
  EXPECT_GT(result.goodput_bytes_per_s, 0.0);
  EXPECT_EQ(result.ack_latencies.size(), 6u);
  EXPECT_GT(result.mean_ack_latency, 0.0);
  EXPECT_GT(result.transport.frames_sent, 0u);
  EXPECT_GT(result.transport.copies_dropped, 0u);  // links are lossy

  // Cross-check: the emulation models no MAC contention, so it runs faster
  // than the slot simulator (tool-measured ratio ≈ 2.2 on this topology);
  // the band is wide to absorb CI scheduling noise, not protocol drift.
  const double ratio = result.goodput_bytes_per_s / sim.throughput_bytes_per_s;
  EXPECT_GT(ratio, 0.1) << "emu goodput " << result.goodput_bytes_per_s
                        << " vs sim " << sim.throughput_bytes_per_s;
  EXPECT_LT(ratio, 6.0) << "emu goodput " << result.goodput_bytes_per_s
                        << " vs sim " << sim.throughput_bytes_per_s;
}

TEST(EmuHarness, LoopbackRunsAreDataDeterministic) {
  // Two identically seeded loopback runs decode the same generations with
  // the same data verdict (timing may differ; decoded content must not).
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const opt::RateControlResult rc = rate_control_for(graph);
  for (int repeat = 0; repeat < 2; ++repeat) {
    LoopbackConfig loopback;
    loopback.seed = 99;
    LoopbackTransport transport(
        graph.size(), link_matrix_from_topology(topo, graph), loopback);
    EmuHarness harness(graph, transport, fast_emu_config(3));
    harness.install_price_table(feasible_rates(graph, rc), rc.lambda, rc.beta,
                                rc.iterations);
    const EmuRunResult result = harness.run();
    EXPECT_TRUE(result.completed) << "repeat " << repeat;
    EXPECT_TRUE(result.data_ok) << "repeat " << repeat;
    EXPECT_EQ(result.generations_completed, 3) << "repeat " << repeat;
  }
}

/// One deterministic-clock run on a fresh transport stack; everything the
/// run produces is a pure function of `seed`.
EmuRunResult run_deterministic(std::uint64_t seed) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const opt::RateControlResult rc = rate_control_for(graph);
  LoopbackConfig loopback;
  loopback.seed = seed;
  LoopbackTransport transport(graph.size(),
                              link_matrix_from_topology(topo, graph), loopback);
  EmuConfig config = fast_emu_config(4, vtime::ClockMode::kDeterministic);
  config.node.data_seed = seed;
  config.node.rng_seed = seed;
  EmuHarness harness(graph, transport, config);
  harness.install_price_table(feasible_rates(graph, rc), rc.lambda, rc.beta,
                              rc.iterations);
  return harness.run();
}

TEST(EmuHarness, DeterministicRunsAreExactlyReproducible) {
  // Under the DeterministicClock the *entire* result — not just the decoded
  // bytes — must replay bit for bit: goodput, latencies, frame counts.
  const EmuRunResult first = run_deterministic(5);
  const EmuRunResult second = run_deterministic(5);
  ASSERT_TRUE(first.completed);
  ASSERT_TRUE(first.data_ok);
  EXPECT_EQ(first.generations_completed, second.generations_completed);
  EXPECT_EQ(first.goodput_bytes_per_s, second.goodput_bytes_per_s);
  EXPECT_EQ(first.last_ack_time, second.last_ack_time);
  EXPECT_EQ(first.mean_ack_latency, second.mean_ack_latency);
  EXPECT_EQ(first.ack_latencies, second.ack_latencies);
  EXPECT_EQ(first.data_packets_sent, second.data_packets_sent);
  EXPECT_EQ(first.virtual_elapsed, second.virtual_elapsed);
  EXPECT_EQ(first.transport.frames_sent, second.transport.frames_sent);
  EXPECT_EQ(first.transport.bytes_sent, second.transport.bytes_sent);
  EXPECT_EQ(first.transport.copies_delivered,
            second.transport.copies_delivered);
  EXPECT_EQ(first.transport.copies_dropped, second.transport.copies_dropped);

  // A different seed must actually change the run, or the "determinism"
  // above is just the harness ignoring the seeds.
  const EmuRunResult other = run_deterministic(6);
  EXPECT_TRUE(other.transport.frames_sent != first.transport.frames_sent ||
              other.goodput_bytes_per_s != first.goodput_bytes_per_s ||
              other.ack_latencies != first.ack_latencies);
}

TEST(EmuHarness, OracleRatesCompleteWithoutPriceFrames) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const opt::RateControlResult rc = rate_control_for(graph);
  LoopbackTransport transport(graph.size(),
                              link_matrix_from_topology(topo, graph));
  EmuHarness harness(graph, transport, fast_emu_config(2));
  harness.install_rates(feasible_rates(graph, rc));
  const EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
}

TEST(EmuHarness, MetricSinkSeesTransportAndAckEvents) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const opt::RateControlResult rc = rate_control_for(graph);
  LoopbackTransport transport(graph.size(),
                              link_matrix_from_topology(topo, graph));
  EmuHarness harness(graph, transport, fast_emu_config(2));
  harness.install_rates(feasible_rates(graph, rc));
  std::size_t sends = 0, delivers = 0, acks = 0;
  harness.set_metric_sink([&](const protocols::MetricEvent& event) {
    switch (event.type) {
      case protocols::MetricEvent::Type::kEmuSend: ++sends; break;
      case protocols::MetricEvent::Type::kEmuDeliver: ++delivers; break;
      case protocols::MetricEvent::Type::kGenerationAck: ++acks; break;
      default: break;
    }
  });
  const EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed);
  EXPECT_GT(sends, 0u);
  EXPECT_GT(delivers, 0u);
  EXPECT_EQ(acks, 2u);  // one kGenerationAck per retired generation
}

TEST(EmuHarness, DiamondOverUdpSmoke) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const opt::RateControlResult rc = rate_control_for(graph);
  // UDP datagrams travel through the kernel in *wall* time, so the socket
  // transport stays on the RealClock; warping would outrun the network.
  UdpTransport transport(graph.size());
  EmuHarness harness(graph, transport,
                     fast_emu_config(2, vtime::ClockMode::kReal));
  harness.install_price_table(feasible_rates(graph, rc), rc.lambda, rc.beta,
                              rc.iterations);
  const EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
  EXPECT_EQ(result.generations_completed, 2);
}

}  // namespace
}  // namespace omnc::emu

// Loss-recovery hardening in EmuNode, driven as scripted single-threaded
// schedules (manual virtual clock, deterministic transports):
//   * the destination's ACK flood degrades to a keepalive instead of going
//     mute, so sustained reverse-path loss cannot deadlock the source
//     (regression pin for the repeat-limit silence bug);
//   * duplicate and stale ACKs never double-complete a generation;
//   * reordered / duplicated forward-path data still decodes byte-exactly;
//   * a relay's price-installed rate decays once the price plane goes stale;
//   * a blacked-out node resyncs (request + source reply) after restart.
#include <gtest/gtest.h>

#include <vector>

#include "emu/emu_node.h"
#include "emu/fault_transport.h"
#include "emu/loopback_transport.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"
#include "wire/frame.h"

namespace omnc::emu {
namespace {

std::vector<double> perfect_links(int n) {
  std::vector<double> m(static_cast<std::size_t>(n) * n, 1.0);
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i) * n + i] = 0.0;
  return m;
}

net::Topology two_node_topology() {
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  p[0][1] = p[1][0] = 0.9;
  return net::Topology::from_link_matrix(p);
}

net::Topology chain_topology(int hops) {
  const int n = hops + 1;
  std::vector<std::vector<double>> p(static_cast<std::size_t>(n),
                                     std::vector<double>(n, 0.0));
  for (int i = 0; i + 1 < n; ++i) {
    p[static_cast<std::size_t>(i)][static_cast<std::size_t>(i) + 1] = 0.9;
    p[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(i)] = 0.9;
  }
  return net::Topology::from_link_matrix(p);
}

EmuNodeConfig small_node_config(int generations) {
  EmuNodeConfig config;
  config.coding.generation_blocks = 4;
  config.coding.block_bytes = 32;
  config.cbr_bytes_per_s = 1e4;
  config.max_generations = generations;
  return config;
}

/// Per-sender kill switch over a perfect loopback: the scripted analogue of
/// a one-directional dead link.
class GateTransport final : public Transport {
 public:
  explicit GateTransport(Transport& inner)
      : inner_(inner),
        blocked_(static_cast<std::size_t>(inner.nodes()), false) {}

  void block(int sender) { blocked_[static_cast<std::size_t>(sender)] = true; }
  void unblock(int sender) {
    blocked_[static_cast<std::size_t>(sender)] = false;
  }

  int nodes() const override { return inner_.nodes(); }
  void send(int from, std::span<const std::uint8_t> frame) override {
    if (blocked_[static_cast<std::size_t>(from)]) return;
    inner_.send(from, frame);
  }
  std::size_t poll(int to, const Handler& handler) override {
    return inner_.poll(to, handler);
  }
  TransportStats stats() const override { return inner_.stats(); }

 private:
  Transport& inner_;
  std::vector<bool> blocked_;
};

/// Steps every node from `from` to `to` in lockstep (source first), the
/// deterministic stand-in for the harness's free-running threads.
void run_script(std::vector<EmuNode*>& nodes, double from, double to,
                double dt = 0.01) {
  for (double t = from; t < to; t += dt) {
    for (EmuNode* node : nodes) node->step(t);
  }
}

TEST(EmuRecovery, AckKeepaliveBreaksReversePathDeadlock) {
  // Reverse path dead for the whole fast-repeat budget: before the fix the
  // destination went permanently mute after ack_repeat_limit repeats and the
  // source waited forever.  Now it drops to a keepalive cadence, and the
  // first keepalive after the path heals retires the generation.
  const net::Topology topo = two_node_topology();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 1);
  ASSERT_EQ(graph.size(), 2);
  LoopbackTransport loopback(2, perfect_links(2));
  GateTransport transport(loopback);

  EmuNodeConfig config = small_node_config(2);
  config.ack_repeat_s = 0.05;
  config.ack_repeat_limit = 3;
  config.ack_keepalive_s = 0.3;
  config.stall_timeout_s = 0.25;
  EmuNode source(graph, 0, transport, config);
  EmuNode destination(graph, 1, transport, config);
  source.install_rate(4000.0);
  destination.install_rate(0.0);
  std::vector<EmuNode*> nodes{&source, &destination};

  transport.block(1);  // every ACK dies on the wire
  run_script(nodes, 0.0, 4.0);
  EXPECT_GE(destination.stats().generations_completed, 1);  // decoded fine
  EXPECT_EQ(source.stats().generations_completed, 0);       // ...but unheard
  EXPECT_GE(destination.stats().ack_keepalives, 5u);  // kept signalling
  EXPECT_GE(source.stats().stall_boosts, 1u);  // forward redundancy escalated

  transport.unblock(1);
  run_script(nodes, 4.0, 8.0);
  EXPECT_EQ(source.stats().generations_completed, 2);  // deadlock broken
  EXPECT_TRUE(destination.stats().data_ok);
}

TEST(EmuRecovery, DuplicateAndStaleAcksDoNotDoubleComplete) {
  const net::Topology topo = two_node_topology();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 1);
  LoopbackTransport loopback(2, perfect_links(2));
  // Every copy in both directions arrives twice.
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("dup=*:1.0", &plan, &error)) << error;
  FaultTransport transport(loopback, plan);
  double now = 0.0;
  transport.set_time_source([&] { return now; });

  const EmuNodeConfig config = small_node_config(2);
  EmuNode source(graph, 0, transport, config);
  EmuNode destination(graph, 1, transport, config);
  source.install_rate(4000.0);
  destination.install_rate(0.0);
  std::vector<EmuNode*> nodes{&source, &destination};
  for (now = 0.0; now < 6.0 && source.completed_generations() < 2;
       now += 0.01) {
    for (EmuNode* node : nodes) node->step(now);
  }
  // Exactly one completion (and one latency sample) per generation, despite
  // every ACK arriving at least twice.
  EXPECT_EQ(source.stats().generations_completed, 2);
  EXPECT_EQ(source.stats().ack_latencies.size(), 2u);
  EXPECT_TRUE(destination.stats().data_ok);
  EXPECT_GT(transport.fault_stats().duplicated, 0u);

  // A stale ACK for a long-retired generation injected out of the blue must
  // change nothing.
  const int completed = source.stats().generations_completed;
  transport.send(1, wire::make_ack(config.session_id,
                                   wire::GenerationAck{0, 1, 250})
                        .serialize());
  source.step(now + 0.01);
  EXPECT_EQ(source.stats().generations_completed, completed);
}

TEST(EmuRecovery, ReorderedForwardDataStillDecodes) {
  const net::Topology topo = two_node_topology();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 1);
  LoopbackTransport loopback(2, perfect_links(2));
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("seed=5; reorder=0-1:0.6,0.03; jitter=0-1:0.01",
                               &plan, &error))
      << error;
  FaultTransport transport(loopback, plan);
  double now = 0.0;
  transport.set_time_source([&] { return now; });

  const EmuNodeConfig config = small_node_config(3);
  EmuNode source(graph, 0, transport, config);
  EmuNode destination(graph, 1, transport, config);
  source.install_rate(4000.0);
  destination.install_rate(0.0);
  std::vector<EmuNode*> nodes{&source, &destination};
  for (now = 0.0; now < 8.0 && source.completed_generations() < 3;
       now += 0.01) {
    for (EmuNode* node : nodes) node->step(now);
  }
  EXPECT_EQ(source.stats().generations_completed, 3);
  EXPECT_TRUE(destination.stats().data_ok);
  EXPECT_GT(transport.fault_stats().reordered, 0u);
}

TEST(EmuRecovery, StalePriceDecaysRelayRate) {
  // A relay whose rate came from a PriceUpdate must not keep transmitting at
  // full price-installed rate after the price plane goes silent.
  const net::Topology topo = chain_topology(2);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 2);
  ASSERT_EQ(graph.size(), 3);
  LoopbackTransport loopback(3, perfect_links(3));
  GateTransport transport(loopback);

  EmuNodeConfig config = small_node_config(100);
  config.price_stale_s = 0.5;
  config.price_decay_tau_s = 0.5;
  EmuNode source(graph, 0, transport, config);
  EmuNode relay(graph, 1, transport, config);
  EmuNode destination(graph, 2, transport, config);

  opt::RateControlParams params;
  params.capacity = 2e4;
  opt::DistributedRateControl control(graph, params);
  const opt::RateControlResult rc = control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, 2e4);
  source.set_price_table(rates, rc.lambda, rc.beta, rc.iterations);

  std::vector<EmuNode*> nodes{&source, &relay, &destination};
  run_script(nodes, 0.0, 1.0);  // prices flood and install
  ASSERT_TRUE(relay.stats().rate_installed);
  EXPECT_EQ(relay.stats().price_decays, 0u);

  // Source falls silent; after price_stale_s the relay enters a staleness
  // episode and throttles itself.
  transport.block(0);
  run_script(nodes, 1.0, 3.0);
  EXPECT_GE(relay.stats().price_decays, 1u);

  // A fresh flood ends the episode; a later outage starts a new one.
  transport.unblock(0);
  run_script(nodes, 3.0, 4.0);
  transport.block(0);
  run_script(nodes, 4.0, 6.0);
  EXPECT_GE(relay.stats().price_decays, 2u);
}

TEST(EmuRecovery, SilenceTriggersResyncRequestAndSourceReply) {
  // Forward path dead, reverse path alive (the post-partition shape): the
  // destination's silence clock must fire a ResyncRequest that the source
  // answers with ResyncInfo and a price reflood.
  const net::Topology topo = two_node_topology();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 1);
  LoopbackTransport loopback(2, perfect_links(2));
  GateTransport transport(loopback);

  EmuNodeConfig config = small_node_config(8);
  config.resync_silence_s = 0.4;
  config.resync_reply_min_gap_s = 0.1;
  EmuNode source(graph, 0, transport, config);
  EmuNode destination(graph, 1, transport, config);
  source.install_rate(4000.0);
  destination.install_rate(0.0);
  std::vector<EmuNode*> nodes{&source, &destination};

  run_script(nodes, 0.0, 1.0);  // session under way
  transport.block(0);           // source falls silent, reverse path works
  run_script(nodes, 1.0, 3.0);
  EXPECT_GE(destination.stats().resync_requests, 1u);
  EXPECT_GE(source.stats().resync_replies, 1u);

  transport.unblock(0);
  double now = 3.0;
  for (; now < 12.0 && source.completed_generations() < 8; now += 0.01) {
    for (EmuNode* node : nodes) node->step(now);
  }
  EXPECT_EQ(source.stats().generations_completed, 8);
  EXPECT_TRUE(destination.stats().data_ok);
}

TEST(EmuRecovery, BlackoutRestartStillRetiresEveryGeneration) {
  // Full crash window (neither sends nor receives): progress halts, the
  // silence clock arms resync, and after restart the session drains every
  // generation with intact data — the no-deadlock acceptance shape.
  const net::Topology topo = two_node_topology();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 1);
  LoopbackTransport loopback(2, perfect_links(2));
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("blackout=1:1.0-2.5", &plan, &error)) << error;
  FaultTransport transport(loopback, plan);
  double now = 0.0;
  transport.set_time_source([&] { return now; });

  EmuNodeConfig config = small_node_config(20);
  config.resync_silence_s = 0.4;
  EmuNode source(graph, 0, transport, config);
  EmuNode destination(graph, 1, transport, config);
  source.install_rate(4000.0);
  destination.install_rate(0.0);
  std::vector<EmuNode*> nodes{&source, &destination};
  for (now = 0.0; now < 15.0 && source.completed_generations() < 20;
       now += 0.01) {
    for (EmuNode* node : nodes) node->step(now);
  }
  EXPECT_GT(transport.fault_stats().blackout_rx_drops, 0u);
  EXPECT_GE(destination.stats().resync_requests, 1u);  // armed while isolated
  EXPECT_EQ(source.stats().generations_completed, 20);
  EXPECT_TRUE(destination.stats().data_ok);
}

}  // namespace
}  // namespace omnc::emu
